#ifndef DEEPSD_SIM_TRAFFIC_MODEL_H_
#define DEEPSD_SIM_TRAFFIC_MODEL_H_

#include "data/types.h"
#include "sim/area_profile.h"
#include "util/rng.h"

namespace deepsd {
namespace sim {

/// Generates per-area traffic conditions (paper Definition 4): the number of
/// road segments at each of four congestion levels, level 1 most congested.
///
/// Congestion is driven by a "pressure" signal in [0, 1] that combines the
/// area's demand utilisation (demand vs supply), rush-hour shape and weather
/// penalty — so traffic genuinely carries information about imminent gaps,
/// which is what makes the paper's traffic block earn its accuracy delta.
class TrafficModel {
 public:
  explicit TrafficModel(util::Rng rng) : rng_(rng) {}

  /// Produces the traffic record for one (area, day, minute). `pressure`
  /// must be in [0, 1]; callers derive it from the demand/supply state.
  data::TrafficRecord Sample(const AreaProfile& profile, int area, int day,
                             int ts, double pressure);

  /// Deterministic expected fraction of segments in each level for a given
  /// pressure (exposed for tests).
  static void LevelFractions(double pressure, double fractions[4]);

 private:
  util::Rng rng_;
};

}  // namespace sim
}  // namespace deepsd

#endif  // DEEPSD_SIM_TRAFFIC_MODEL_H_
