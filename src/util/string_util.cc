#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace deepsd {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string MinuteToClock(int minute_of_day) {
  int h = minute_of_day / 60;
  int m = minute_of_day % 60;
  return StrFormat("%02d:%02d", h, m);
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace util
}  // namespace deepsd
