#include "util/rate_limiter.h"

#include <algorithm>

namespace deepsd {
namespace util {

RateLimiter::RateLimiter(double rate_per_second, double burst)
    : rate_per_second_(rate_per_second),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_refill_us_(NowSteadyUs()) {}

void RateLimiter::RefillLocked(int64_t now_us) const {
  if (now_us <= last_refill_us_) return;  // clock handed in out of order
  const double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) * 1e-6;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_second_);
  last_refill_us_ = now_us;
}

bool RateLimiter::TryAcquireAt(int64_t now_us, double tokens) {
  if (unlimited()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now_us);
  if (tokens_ + 1e-9 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double RateLimiter::AvailableAt(int64_t now_us) const {
  if (unlimited()) return burst_;
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now_us);
  return tokens_;
}

void RateLimiter::ResetAt(int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = burst_;
  last_refill_us_ = now_us;
}

}  // namespace util
}  // namespace deepsd
