// Continuous-learning loop overhead gates (docs/continuous_learning.md):
// the crash-safety and shadow machinery must be cheap enough to ride the
// live ingest path.
//
//   1. Ledger throughput: PromotionLedger::Append (frame + CRC + flush)
//      must sustain >= 2000 appends/s, and Replay of the resulting log
//      must reproduce every record and Derive a consistent state. The
//      loop writes a handful of records per candidate, so this bounds
//      ledger overhead at far below one ingest minute.
//   2. Shadow overhead: driving a full simulated day through a
//      ShadowEvaluator (serving tap + candidate re-answer + double
//      ground-truth join) is measured against the same feed through a
//      bare OnlineAccuracyTracker. The comparison must join samples on
//      both sides; the per-prediction overhead is reported.
//
//   bench_learn_loop [--ledger-records=20000] [--areas=8] [--json=PATH]
//
// Exit status is 0 only if every gate holds.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "feature/feature_assembler.h"
#include "learn/ledger.h"
#include "learn/shadow_eval.h"
#include "nn/parameter.h"
#include "sim/city_sim.h"
#include "store/pack.h"
#include "store/stored_model.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace deepsd {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct LedgerResult {
  double appends_per_sec = 0;
  double replays_per_sec = 0;
  bool ok = false;
};

LedgerResult RunLedgerGate(const std::string& dir, int records) {
  LedgerResult out;
  const std::string path = dir + "/bench.ledger";
  std::remove(path.c_str());
  learn::PromotionLedger ledger(path);
  if (!ledger.Open().ok()) return out;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < records; ++i) {
    learn::LedgerRecord r;
    // Cycle through the lifecycle so replay exercises every event decoder.
    r.event = static_cast<learn::LedgerEvent>(1 + i % 10);
    r.t_abs = i;
    r.candidate_id = "ft-" + std::to_string(i / 10 + 1);
    r.artifact_path = dir + "/" + r.candidate_id + ".dsar";
    r.prior_version = "init";
    r.serving_mae = 4.0;
    r.candidate_mae = 3.0;
    r.shadow_samples = 128;
    if (!ledger.Append(std::move(r)).ok()) return out;
  }
  const double append_s = SecondsSince(t0);

  std::vector<learn::LedgerRecord> replayed;
  const auto t1 = std::chrono::steady_clock::now();
  if (!learn::PromotionLedger::Replay(path, &replayed).ok()) return out;
  const double replay_s = SecondsSince(t1);

  out.appends_per_sec = records / append_s;
  out.replays_per_sec = records / replay_s;
  const learn::LedgerState state = learn::PromotionLedger::Derive(replayed);
  out.ok = static_cast<int>(replayed.size()) == records &&
           state.next_seq == static_cast<uint64_t>(records) + 1 &&
           out.appends_per_sec >= 2000.0;
  std::remove(path.c_str());
  return out;
}

struct ShadowResult {
  double bare_us_per_pred = 0;
  double shadow_us_per_pred = 0;
  uint64_t samples = 0;
  bool ok = false;
};

ShadowResult RunShadowGate(const std::string& dir, int areas) {
  ShadowResult out;

  sim::CityConfig city;
  city.num_areas = areas;
  city.num_days = 4;
  city.seed = 7;
  city.mean_scale = 0.8;
  const data::OrderDataset dataset = sim::SimulateCity(city, nullptr);

  feature::FeatureConfig features;
  feature::FeatureAssembler assembler(&dataset, features, /*ref_day_begin=*/0,
                                      /*ref_day_end=*/3);

  core::DeepSDConfig model_config;
  model_config.num_areas = areas;
  nn::ParameterStore params;
  util::Rng rng(17);
  core::DeepSDModel model(model_config, core::DeepSDModel::Mode::kBasic,
                          &params, &rng);
  store::PackOptions pack;
  pack.version_id = "bench";
  const std::string artifact = dir + "/bench.dsar";
  if (!store::PackModelArtifact(model, params, nullptr, pack, artifact)
           .ok()) {
    return out;
  }
  std::shared_ptr<const store::StoredModel> candidate;
  if (!store::StoredModel::Open(artifact, &candidate).ok()) return out;

  eval::OnlineAccuracyConfig acc;
  acc.num_areas = areas;
  acc.publish_metrics = false;

  // Index the replay day once so both runs iterate identical events.
  const int day = 3;
  std::vector<std::vector<data::Order>> by_minute(data::kMinutesPerDay);
  for (const data::Order& o : dataset.orders()) {
    if (o.day == day) by_minute[o.ts].push_back(o);
  }
  std::vector<int> all_areas(static_cast<size_t>(areas));
  for (int a = 0; a < areas; ++a) all_areas[static_cast<size_t>(a)] = a;
  serving::PredictResult served;
  served.gaps.assign(static_cast<size_t>(areas), 1.0f);
  served.tier = serving::FallbackTier::kNone;

  int predictions = 0;
  // Bare tracker: the cost serving already pays without a shadow.
  eval::OnlineAccuracyTracker bare(acc);
  const auto t0 = std::chrono::steady_clock::now();
  for (int minute = 0; minute < data::kMinutesPerDay; ++minute) {
    const int64_t now_abs = day * data::kMinutesPerDay + minute;
    bare.OnClockAdvance(now_abs);
    if (minute % 10 == 0 && minute >= 20) {
      bare.OnPrediction(all_areas, served, {}, now_abs);
      ++predictions;
    }
    for (const data::Order& o : by_minute[static_cast<size_t>(minute)]) {
      bare.OnOrderAccepted(o, now_abs);
    }
  }
  const double bare_s = SecondsSince(t0);

  // Shadow: same feed through the evaluator — tap, candidate re-answer on
  // the private predictor, and the double-sided ground-truth join.
  learn::ShadowEvaluator shadow(candidate, &assembler, acc);
  const auto t1 = std::chrono::steady_clock::now();
  for (int minute = 0; minute < data::kMinutesPerDay; ++minute) {
    const int64_t now_abs = day * data::kMinutesPerDay + minute;
    shadow.AdvanceTo(day, minute);
    if (minute % 10 == 0 && minute >= 20) {
      shadow.OnPrediction(all_areas, served, {}, now_abs);
    }
    for (const data::Order& o : by_minute[static_cast<size_t>(minute)]) {
      shadow.AddOrder(o);
    }
  }
  const double shadow_s = SecondsSince(t1);

  const learn::ShadowComparison cmp = shadow.Compare();
  out.bare_us_per_pred = bare_s * 1e6 / predictions;
  out.shadow_us_per_pred = shadow_s * 1e6 / predictions;
  out.samples = cmp.samples;
  // The gate is functional, not a latency race: both sides must have
  // joined the same slots (the overhead numbers are informational).
  out.ok = cmp.samples > 0 && cmp.serving.count == cmp.candidate.count;
  std::remove(artifact.c_str());
  return out;
}

int Main(int argc, char** argv) {
  util::CommandLine cli(argc, argv);
  const util::Status st =
      cli.CheckKnown({"ledger-records", "areas", "json"});
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const int records = static_cast<int>(cli.GetInt("ledger-records", 20000));
  const int areas = static_cast<int>(cli.GetInt("areas", 8));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_learn_loop").string();
  std::filesystem::create_directories(dir);

  const LedgerResult ledger = RunLedgerGate(dir, records);
  std::printf(
      "ledger    %d records: %.0f appends/s, %.0f replays/s  [%s]\n", records,
      ledger.appends_per_sec, ledger.replays_per_sec,
      ledger.ok ? "ok" : "FAIL");

  const ShadowResult shadow = RunShadowGate(dir, areas);
  std::printf(
      "shadow    %d areas, one day: %.1f us/pred bare, %.1f us/pred "
      "shadowed (%llu joined samples)  [%s]\n",
      areas, shadow.bare_us_per_pred, shadow.shadow_us_per_pred,
      static_cast<unsigned long long>(shadow.samples),
      shadow.ok ? "ok" : "FAIL");

  const bool all_ok = ledger.ok && shadow.ok;
  const std::string json_path = cli.GetString("json", "");
  if (!json_path.empty()) {
    std::string json = util::StrFormat(
        "{\n  \"ledger_appends_per_sec\": %.0f,\n"
        "  \"ledger_replays_per_sec\": %.0f,\n"
        "  \"shadow_us_per_pred\": %.1f,\n"
        "  \"bare_us_per_pred\": %.1f,\n"
        "  \"shadow_samples\": %llu,\n  \"all_gates_ok\": %s\n}\n",
        ledger.appends_per_sec, ledger.replays_per_sec,
        shadow.shadow_us_per_pred, shadow.bare_us_per_pred,
        static_cast<unsigned long long>(shadow.samples),
        all_ok ? "true" : "false");
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ledger.ok) std::fprintf(stderr, "FAIL: ledger gate\n");
  if (!shadow.ok) std::fprintf(stderr, "FAIL: shadow gate\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace deepsd

int main(int argc, char** argv) { return deepsd::Main(argc, argv); }
