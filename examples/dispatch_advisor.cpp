// Dispatch advisor: the application the paper's introduction motivates.
//
// Every 10 minutes of a simulated operating day, predict the supply-demand
// gap of every area for the next 10 minutes with a trained Advanced DeepSD
// model and emit dispatch advice: which areas to send idle drivers to, and
// how a gap-weighted dispatch policy compares against a no-prediction
// baseline in unmet demand covered.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "sim/city_sim.h"
#include "util/string_util.h"

namespace {

struct Advice {
  int area;
  float predicted_gap;
};

}  // namespace

int main() {
  using namespace deepsd;

  sim::CityConfig city;
  city.num_areas = 12;
  city.num_days = 22;
  city.seed = 99;
  data::OrderDataset dataset = sim::SimulateCity(city);

  const int train_end = 21;
  const int ops_day = 21;  // the day we advise on
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_end);
  auto train_items = data::MakeItems(dataset, 0, train_end, 20, 1430, 15);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  nn::ParameterStore params;
  util::Rng rng(1);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced, &params,
                          &rng);
  core::AssemblerSource train_source(&assembler, train_items, true);
  core::TrainConfig tc;
  tc.epochs = 4;
  tc.best_k = 2;
  std::printf("training Advanced DeepSD on %zu items...\n",
              train_items.size());
  core::Trainer(tc).Train(&model, &params, train_source, train_source);

  // Operating loop: at each decision epoch, rank areas by predicted gap.
  std::printf("\n=== dispatch advice for day %d ===\n", ops_day);
  double covered_by_policy = 0, covered_by_uniform = 0, total_gap = 0;
  const int kDriversPerRound = 10;

  for (int t = 480; t <= 1320; t += 10) {
    std::vector<data::PredictionItem> round_items;
    for (int a = 0; a < dataset.num_areas(); ++a) {
      data::PredictionItem item;
      item.area = a;
      item.day = ops_day;
      item.t = t;
      item.week_id = dataset.WeekId(ops_day);
      item.gap = static_cast<float>(dataset.Gap(a, ops_day, t));
      round_items.push_back(item);
    }
    core::AssemblerSource source(&assembler, round_items, true);
    std::vector<float> predicted = model.Predict(source);

    std::vector<Advice> advice;
    for (int a = 0; a < dataset.num_areas(); ++a) {
      advice.push_back({a, predicted[static_cast<size_t>(a)]});
    }
    std::sort(advice.begin(), advice.end(),
              [](const Advice& x, const Advice& y) {
                return x.predicted_gap > y.predicted_gap;
              });

    // Policy: allocate the idle-driver budget proportionally to predicted
    // gaps. Baseline: spread uniformly. "Covered" demand in an area is
    // min(true gap, drivers sent there).
    double pred_sum = 1e-9;
    for (const Advice& a : advice) pred_sum += std::max(a.predicted_gap, 0.0f);
    for (int a = 0; a < dataset.num_areas(); ++a) {
      double true_gap = round_items[static_cast<size_t>(a)].gap;
      total_gap += true_gap;
      double policy_drivers = kDriversPerRound *
                              std::max(predicted[static_cast<size_t>(a)], 0.0f) /
                              pred_sum;
      double uniform_drivers =
          static_cast<double>(kDriversPerRound) / dataset.num_areas();
      covered_by_policy += std::min(true_gap, policy_drivers);
      covered_by_uniform += std::min(true_gap, uniform_drivers);
    }

    if (t % 120 == 0) {
      std::printf("%s  hot areas:", util::MinuteToClock(t).c_str());
      for (int k = 0; k < 3; ++k) {
        std::printf("  #%d (pred gap %.1f, true %d)", advice[k].area,
                    advice[k].predicted_gap,
                    dataset.Gap(advice[k].area, ops_day, t));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nunmet demand over the day: %.0f rides\n"
      "covered by prediction-weighted dispatch: %.1f rides\n"
      "covered by uniform dispatch:             %.1f rides\n"
      "improvement: %.1f%%\n",
      total_gap, covered_by_policy, covered_by_uniform,
      100.0 * (covered_by_policy - covered_by_uniform) /
          std::max(covered_by_uniform, 1.0));
  return 0;
}
