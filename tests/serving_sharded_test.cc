// Sharded scatter-gather serving (docs/sharding.md). The spine is the
// shard-equivalence contract: PredictCity() at ANY shard count is bitwise
// identical to the 1-shard path (and to a direct OnlinePredictor) under an
// infinite deadline — sharding is a throughput/isolation decision, never
// an accuracy one. Around it: scatter-gather accounting invariants,
// per-shard deadline budgeting driven through the virtual-clock budget
// hook, citywide stall detection across shard buffers, and the
// drain-vs-in-flight-gather race.

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/empirical_average.h"
#include "src/serving/online_predictor.h"
#include "src/serving/sharded_predictor.h"
#include "src/util/deadline.h"
#include "tests/test_util.h"

namespace deepsd {
namespace serving {
namespace {

class ShardedPredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 12 areas so 8 shards nearly all own something; small days/model so
    // a full equivalence sweep stays cheap on the 1-core CI runner.
    ds_ = deepsd::testing::MakeSmallCity(12, 12, 616);
    feature::FeatureConfig fc;
    assembler_ = std::make_unique<feature::FeatureAssembler>(&ds_, fc, 0, 10);
    store_ = std::make_unique<nn::ParameterStore>();
    rng_ = std::make_unique<util::Rng>(1);
    core::DeepSDConfig config;
    config.num_areas = ds_.num_areas();
    config.use_weather = true;
    config.use_traffic = true;
    model_ = std::make_unique<core::DeepSDModel>(
        config, core::DeepSDModel::Mode::kBasic, store_.get(), rng_.get());
    baseline_.Fit(data::MakeItems(ds_, 0, 10, 20, 1430, 10));

    direct_ = std::make_unique<OnlinePredictor>(model_.get(),
                                                assembler_.get());
    direct_->set_baseline(&baseline_);
    ReplayFreshFeeds(direct_->buffer(), 11, 700);
    for (int a = 0; a < ds_.num_areas(); ++a) areas_.push_back(a);
  }

  /// Replays fully fresh feeds up to minute t of `day`. Sink is anything
  /// with the AdvanceTo / AddOrder / AddWeather / AddTraffic surface — an
  /// OrderStreamBuffer or a ShardedPredictor — so the direct predictor and
  /// every sharded configuration see the identical event stream.
  template <typename Sink>
  void ReplayFreshFeeds(Sink& sink, int day, int t) {
    const int start = t - 60;
    sink.AdvanceTo(day, start);
    for (int ts = start; ts < t; ++ts) {
      for (int a = 0; a < ds_.num_areas(); ++a) {
        for (const data::Order& o : ds_.OrdersAt(a, day, ts)) {
          sink.AddOrder(o);
        }
        data::TrafficRecord tr = ds_.TrafficAt(a, day, ts);
        tr.area = a;
        tr.day = day;
        tr.ts = ts;
        sink.AddTraffic(tr);
      }
      data::WeatherRecord w = ds_.WeatherAt(day, ts);
      w.day = day;
      w.ts = ts;
      sink.AddWeather(w);
    }
    sink.AdvanceTo(day, t);
  }

  /// A sharded predictor over `shards` shards with fresh feeds replayed
  /// and the baseline attached — the healthy starting state of each test.
  std::unique_ptr<ShardedPredictor> MakeSharded(
      int shards, ShardedPredictorConfig config = {}) {
    config.ring.num_shards = shards;
    auto sharded = std::make_unique<ShardedPredictor>(
        model_.get(), assembler_.get(), std::move(config));
    sharded->set_baseline(&baseline_);
    ReplayFreshFeeds(*sharded, 11, 700);
    return sharded;
  }

  data::OrderDataset ds_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
  std::unique_ptr<nn::ParameterStore> store_;
  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<core::DeepSDModel> model_;
  baselines::EmpiricalAverage baseline_;
  std::unique_ptr<OnlinePredictor> direct_;
  std::vector<int> areas_;
};

// ------------------------------------------------------ equivalence spine

TEST_F(ShardedPredictorTest, AnyShardCountMatchesDirectPathBitwise) {
  // The contract the whole design rests on: with healthy feeds and an
  // infinite deadline, shard count is invisible in the bits.
  const std::vector<float> want = direct_->PredictBatch(areas_);
  for (int shards : {1, 2, 4, 8}) {
    auto sharded = MakeSharded(shards);
    CityPredictResult r =
        sharded->PredictCity(areas_, util::Deadline::Infinite());
    EXPECT_EQ(r.tier, FallbackTier::kNone) << shards << " shards";
    EXPECT_TRUE(r.fully_served) << shards << " shards";
    EXPECT_FALSE(r.deadline_expired) << shards << " shards";
    ASSERT_EQ(r.gaps.size(), want.size()) << shards << " shards";
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(r.gaps[i], want[i])
          << shards << " shards, area " << areas_[i]
          << " — sharding must never change prediction bits";
    }
    for (const ShardOutcome& o : r.shards) {
      EXPECT_EQ(o.verdict, AdmitVerdict::kAdmitted);
      EXPECT_EQ(o.tier, FallbackTier::kNone);
    }
  }
}

TEST_F(ShardedPredictorTest, EquivalenceHoldsForScrambledDuplicateRequests) {
  // The merge maps slice positions back through the ring partition; a
  // request in adversarial order with duplicates must still come back in
  // caller order, bitwise equal to the direct call on the same vector.
  std::vector<int> request;
  for (int i = 0; i < 40; ++i) {
    request.push_back((i * 7 + 3) % ds_.num_areas());
  }
  const std::vector<float> want = direct_->PredictBatch(request);
  for (int shards : {2, 8}) {
    auto sharded = MakeSharded(shards);
    CityPredictResult r =
        sharded->PredictCity(request, util::Deadline::Infinite());
    ASSERT_EQ(r.gaps.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(r.gaps[i], want[i]) << shards << " shards, item " << i;
    }
  }
}

TEST_F(ShardedPredictorTest, EquivalenceHoldsWhileDegraded) {
  // Sharding must not change WHICH rung of the fallback ladder serves
  // either: stall the order feed 30 minutes past the replay and the
  // degraded answer must also be shard-count-invariant.
  direct_->AdvanceTo(11, 730);
  const FallbackTier want_tier = direct_->CurrentTier();
  ASSERT_NE(want_tier, FallbackTier::kNone);
  PredictResult direct_result =
      direct_->PredictBatch(areas_, util::Deadline::Infinite());
  EXPECT_EQ(direct_result.tier, want_tier);

  for (int shards : {1, 4}) {
    auto sharded = MakeSharded(shards);
    sharded->AdvanceTo(11, 730);
    CityPredictResult r =
        sharded->PredictCity(areas_, util::Deadline::Infinite());
    EXPECT_EQ(r.tier, want_tier) << shards << " shards";
    ASSERT_EQ(r.gaps.size(), direct_result.gaps.size());
    for (size_t i = 0; i < r.gaps.size(); ++i) {
      ASSERT_EQ(r.gaps[i], direct_result.gaps[i])
          << shards << " shards, area " << areas_[i];
    }
  }
}

TEST_F(ShardedPredictorTest, PredictCityAllCoversEveryArea) {
  auto sharded = MakeSharded(4);
  CityPredictResult r = sharded->PredictCityAll();
  ASSERT_EQ(r.gaps.size(), static_cast<size_t>(ds_.num_areas()));
  size_t routed = 0;
  for (const ShardOutcome& o : r.shards) routed += o.num_areas;
  EXPECT_EQ(routed, r.gaps.size());
  const std::vector<float> want = direct_->PredictBatch(areas_);
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(r.gaps[i], want[i]);
}

// ------------------------------------------------- scatter-gather routing

TEST_F(ShardedPredictorTest, StallClockIsCitywideAcrossShardBuffers) {
  // Orders land in their owner's buffer only, but every replica's
  // order-freshness clock must agree with the unsharded one — a shard
  // owning only quiet areas must not think the feed died.
  auto sharded = MakeSharded(4);
  const std::vector<int> loads =
      sharded->ring().LoadHistogram(ds_.num_areas());
  size_t buffered_total = 0;
  for (int s = 0; s < sharded->num_shards(); ++s) {
    const OrderStreamBuffer& buffer =
        sharded->shard_predictor(s).buffer();
    EXPECT_EQ(buffer.last_order_abs(), direct_->buffer().last_order_abs())
        << "shard " << s;
    // Tier only matters for shards that own areas: an idle shard never
    // receives traffic records (they route to owners) so its own replica
    // reports a degraded tier — and is never routed a request either.
    if (loads[static_cast<size_t>(s)] > 0) {
      EXPECT_EQ(sharded->shard_predictor(s).CurrentTier(),
                FallbackTier::kNone)
          << "shard " << s;
    }
    buffered_total += buffer.buffered_orders();
  }
  // ...while the orders themselves were routed, not broadcast.
  EXPECT_EQ(buffered_total, direct_->buffer().buffered_orders());
}

TEST_F(ShardedPredictorTest, MalformedOrderIsRejectedExactlyOnce) {
  auto sharded = MakeSharded(4);
  std::vector<int64_t> clocks;
  for (int s = 0; s < 4; ++s) {
    clocks.push_back(sharded->shard_predictor(s).buffer().last_order_abs());
  }
  data::Order bad;
  bad.day = 11;
  bad.ts = 705;
  bad.start_area = 9999;  // no such area
  sharded->AddOrder(bad);
  uint64_t rejected = 0;
  for (int s = 0; s < 4; ++s) {
    rejected += sharded->shard_predictor(s).buffer().rejected_events();
    // Garbage must not advance anyone's citywide freshness clock.
    EXPECT_EQ(sharded->shard_predictor(s).buffer().last_order_abs(),
              clocks[static_cast<size_t>(s)])
        << "shard " << s;
  }
  EXPECT_EQ(rejected, 1u);
}

TEST_F(ShardedPredictorTest, AccountingInvariantPerShardAndMerged) {
  auto sharded = MakeSharded(4);
  constexpr int kCalls = 6;
  for (int i = 0; i < kCalls; ++i) {
    CityPredictResult r =
        sharded->PredictCity(areas_, util::Deadline::Infinite());
    ASSERT_EQ(r.gaps.size(), areas_.size());
  }
  sharded->Drain();

  ShardedStats stats = sharded->stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  uint64_t offered_total = 0;
  int busy_shards = 0;
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    const ServingQueueStats& q = stats.per_shard[s];
    EXPECT_EQ(q.offered, q.admitted + q.shed_total()) << "shard " << s;
    EXPECT_EQ(q.completed, q.admitted) << "shard " << s;
    offered_total += q.offered;
    if (q.offered > 0) {
      ++busy_shards;
      EXPECT_EQ(q.offered, static_cast<uint64_t>(kCalls)) << "shard " << s;
    }
  }
  ServingQueueStats merged = stats.merged();
  EXPECT_EQ(merged.offered, offered_total);
  EXPECT_EQ(merged.offered, merged.admitted + merged.shed_total());
  // Every call fans out once per shard that owns any of the 12 areas.
  EXPECT_EQ(offered_total,
            static_cast<uint64_t>(kCalls) * static_cast<uint64_t>(
                                                busy_shards));
  EXPECT_GE(busy_shards, 2) << "the ring left 12 areas on one shard";
}

// ------------------------------------------- per-shard deadline budgeting

TEST_F(ShardedPredictorTest, ExpiredShardAnswersBaselineWhileSiblingsFresh) {
  // Satellite contract, driven by the virtual-clock budget hook: shard
  // `victim`'s budget is an already-expired absolute deadline, siblings
  // get infinity. Only the victim's slice may degrade.
  const int kShards = 4;
  ShardRingConfig probe_ring;
  probe_ring.num_shards = kShards;
  const int victim = ShardRing(probe_ring).ShardOf(areas_[0]);

  ShardedPredictorConfig config;
  config.shard_budget_fn = [victim](int shard, util::Deadline caller) {
    (void)caller;
    return shard == victim ? util::Deadline::AtSteadyUs(1)
                           : util::Deadline::Infinite();
  };
  auto sharded = MakeSharded(kShards, config);
  const std::vector<float> fresh = direct_->PredictBatch(areas_);

  CityPredictResult r =
      sharded->PredictCity(areas_, util::Deadline::Infinite());

  // Merged verdict: worst tier wins, and the report says who missed.
  EXPECT_EQ(r.tier, FallbackTier::kBaseline);
  EXPECT_FALSE(r.fully_served);
  bool saw_victim = false;
  for (const ShardOutcome& o : r.shards) {
    if (o.shard == victim) {
      saw_victim = true;
      EXPECT_EQ(o.verdict, AdmitVerdict::kShedDeadline);
      EXPECT_EQ(o.tier, FallbackTier::kBaseline);
    } else {
      EXPECT_EQ(o.verdict, AdmitVerdict::kAdmitted) << "shard " << o.shard;
      EXPECT_EQ(o.tier, FallbackTier::kNone) << "shard " << o.shard;
      EXPECT_FALSE(o.deadline_expired) << "shard " << o.shard;
    }
  }
  EXPECT_TRUE(saw_victim);

  // Victim areas answer from the baseline; sibling areas stay bitwise
  // fresh — degradation is contained to the shard that missed.
  const int minute = direct_->buffer().minute();
  for (size_t i = 0; i < areas_.size(); ++i) {
    if (sharded->ShardOf(areas_[i]) == victim) {
      EXPECT_EQ(r.gaps[i], baseline_.Predict(areas_[i], minute))
          << "area " << areas_[i];
    } else {
      EXPECT_EQ(r.gaps[i], fresh[i]) << "area " << areas_[i];
    }
  }

  // Per-shard expiry counters point at the victim and only the victim.
  ShardedStats stats = sharded->stats();
  for (int s = 0; s < kShards; ++s) {
    const ServingQueueStats& q = stats.per_shard[static_cast<size_t>(s)];
    if (s == victim) {
      EXPECT_EQ(q.shed_deadline, 1u);
    } else {
      EXPECT_EQ(q.shed_deadline + q.deadline_misses, 0u) << "shard " << s;
    }
  }
}

TEST_F(ShardedPredictorTest, BudgetPressureDegradesOnlyTheSlowShard) {
  // The mid-flight variant: the victim's worker is pinned down by a large
  // direct request, so its PredictCity slice waits out its small (but
  // not-yet-expired) budget in the queue. Whether it sheds at admission
  // or is admitted and misses depends on scheduler timing — both are
  // legitimate expiry outcomes — but either way the victim must degrade
  // alone and be counted in its own shard's expiry counters.
  const int kShards = 4;
  ShardRingConfig probe_ring;
  probe_ring.num_shards = kShards;
  const int victim = ShardRing(probe_ring).ShardOf(areas_[0]);

  ShardedPredictorConfig config;
  config.shard_budget_fn = [victim](int shard, util::Deadline caller) {
    (void)caller;
    return shard == victim ? util::Deadline::After(3000)
                           : util::Deadline::Infinite();
  };
  auto sharded = MakeSharded(kShards, config);

  std::vector<int> blocker;
  for (int i = 0; i < 2000; ++i) {
    blocker.push_back(i % ds_.num_areas());
  }
  auto blocker_future = sharded->shard_queue(victim).Submit(
      blocker, util::Deadline::Infinite());

  CityPredictResult r =
      sharded->PredictCity(areas_, util::Deadline::Infinite());
  blocker_future.get();

  bool victim_degraded = false;
  for (const ShardOutcome& o : r.shards) {
    if (o.shard == victim) {
      victim_degraded = o.verdict != AdmitVerdict::kAdmitted ||
                        o.deadline_expired;
    } else {
      EXPECT_EQ(o.verdict, AdmitVerdict::kAdmitted) << "shard " << o.shard;
      EXPECT_EQ(o.tier, FallbackTier::kNone) << "shard " << o.shard;
    }
  }
  if (victim_degraded) {
    EXPECT_EQ(r.tier, FallbackTier::kBaseline);
    const ServingQueueStats q = sharded->shard_queue(victim).stats();
    EXPECT_GE(q.shed_deadline + q.deadline_misses, 1u);
  }
  // Every area answered regardless.
  ASSERT_EQ(r.gaps.size(), areas_.size());
  for (float g : r.gaps) EXPECT_TRUE(std::isfinite(g));
}

TEST_F(ShardedPredictorTest, MergeSlackCarvesFiniteBudgetsOnly) {
  ShardedPredictorConfig config;
  config.merge_slack_us = 1'000'000'000;  // absurd slack
  auto sharded = MakeSharded(2, config);
  // Infinite caller deadlines must pass through infinite — the
  // equivalence path never gets a carved (finite) budget.
  CityPredictResult r =
      sharded->PredictCity(areas_, util::Deadline::Infinite());
  EXPECT_EQ(r.tier, FallbackTier::kNone);
  EXPECT_TRUE(r.fully_served);
  const std::vector<float> want = direct_->PredictBatch(areas_);
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(r.gaps[i], want[i]);

  // A finite caller budget minus the absurd slack is already expired at
  // every shard: all slices shed, all areas still answered (baseline).
  CityPredictResult carved =
      sharded->PredictCity(areas_, util::Deadline::After(10'000'000));
  EXPECT_FALSE(carved.fully_served);
  EXPECT_EQ(carved.tier, FallbackTier::kBaseline);
  ASSERT_EQ(carved.gaps.size(), areas_.size());
  const int minute = direct_->buffer().minute();
  for (size_t i = 0; i < areas_.size(); ++i) {
    EXPECT_EQ(carved.gaps[i], baseline_.Predict(areas_[i], minute));
  }
}

// ------------------------------------------------------- isolation, drain

TEST_F(ShardedPredictorTest, PerShardBreakersIsolateFailure) {
  ShardedPredictorConfig config;
  config.per_shard_breakers = true;
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration_us = 60'000'000;
  auto sharded = MakeSharded(4, config);
  const int victim = sharded->ShardOf(areas_[0]);

  // Trip ONLY the victim's breaker, through its public failure feed:
  // stall the feeds far past baseline_after_minutes so a served answer
  // lands on tier kBaseline, which the victim's queue records as a
  // breaker failure (failure_threshold = 1 trips immediately). Sibling
  // queues see no traffic here, so their breakers stay closed.
  sharded->AdvanceTo(11, 700 + 130);
  ServingResponse tripping = sharded->shard_queue(victim)
                                 .Submit({areas_[0]},
                                         util::Deadline::Infinite())
                                 .get();
  ASSERT_TRUE(tripping.admitted());
  ASSERT_EQ(tripping.result.tier, FallbackTier::kBaseline);

  CityPredictResult r =
      sharded->PredictCity(areas_, util::Deadline::Infinite());
  // The victim sheds on its open breaker; siblings still serve (their
  // tier reflects the stalled feeds, but they are admitted and answering).
  bool victim_shed_by_breaker = false;
  for (const ShardOutcome& o : r.shards) {
    if (o.shard == victim) {
      victim_shed_by_breaker = o.verdict == AdmitVerdict::kShedBreaker;
    } else {
      EXPECT_EQ(o.verdict, AdmitVerdict::kAdmitted) << "shard " << o.shard;
    }
  }
  EXPECT_TRUE(victim_shed_by_breaker);
  EXPECT_GE(sharded->shard_queue(victim).stats().shed_breaker, 1u);
}

TEST_F(ShardedPredictorTest, DrainRacingScatterGatherResolvesEverything) {
  // Satellite regression at the sharded level: callers hold unresolved
  // futures inside PredictCity while Drain() closes every shard queue.
  // Every in-flight call must come back fully populated; post-drain calls
  // degrade to the baseline with kShedDraining on every touched shard.
  auto sharded = MakeSharded(4);
  std::atomic<bool> go{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([this, &sharded, &go, &bad] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 10; ++i) {
        CityPredictResult r =
            sharded->PredictCity(areas_, util::Deadline::Infinite());
        if (r.gaps.size() != areas_.size()) bad.fetch_add(1);
        for (float g : r.gaps) {
          if (!std::isfinite(g)) bad.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  sharded->Drain();  // races the callers; must never strand a future
  for (auto& th : callers) th.join();
  EXPECT_EQ(bad.load(), 0);

  CityPredictResult after =
      sharded->PredictCity(areas_, util::Deadline::Infinite());
  EXPECT_FALSE(after.fully_served);
  EXPECT_EQ(after.tier, FallbackTier::kBaseline);
  for (const ShardOutcome& o : after.shards) {
    EXPECT_EQ(o.verdict, AdmitVerdict::kShedDraining);
  }
  const int minute = direct_->buffer().minute();
  for (size_t i = 0; i < areas_.size(); ++i) {
    EXPECT_EQ(after.gaps[i], baseline_.Predict(areas_[i], minute));
  }

  ShardedStats stats = sharded->stats();
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    const ServingQueueStats& q = stats.per_shard[s];
    EXPECT_EQ(q.offered, q.admitted + q.shed_total()) << "shard " << s;
    EXPECT_EQ(q.completed, q.admitted) << "shard " << s;
  }
}

}  // namespace
}  // namespace serving
}  // namespace deepsd
