#ifndef DEEPSD_UTIL_RNG_H_
#define DEEPSD_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace deepsd {
namespace util {

/// Deterministic, fast pseudo-random number generator (xoshiro256** with a
/// SplitMix64 seeding sequence). All randomness in the library flows through
/// this type so that simulations, model initialization and dropout are fully
/// reproducible from a single seed.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    // Avoid log(0).
    double u1 = 1.0 - Uniform();
    double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Poisson-distributed count with rate `lambda` (Knuth for small rates,
  /// normal approximation above 30 to stay O(1)).
  int Poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 30.0) {
      double v = Normal(lambda, std::sqrt(lambda));
      return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
    }
    double l = std::exp(-lambda);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }

  /// Exponential with rate `lambda`.
  double Exponential(double lambda) { return -std::log(1.0 - Uniform()) / lambda; }

  /// Forks an independent stream; the child is a deterministic function of
  /// the parent state and `stream_id`, so parallel components can draw
  /// without interleaving artifacts.
  Rng Fork(uint64_t stream_id) {
    return Rng(NextU64() ^ (0xD1B54A32D192ED03ULL * (stream_id + 1)));
  }

  /// The raw xoshiro state, for checkpointing: a generator restored with
  /// SetState continues the exact stream it was saved from, which is what
  /// lets a resumed training run replay the same shuffles a killed run
  /// would have drawn (src/core/checkpoint.h).
  std::array<uint64_t, 4> State() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[static_cast<size_t>(i)];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_RNG_H_
