// Property-style checks of the tree baselines against brute-force
// reference implementations on small inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/baselines/gbdt.h"
#include "src/baselines/tree.h"
#include "src/util/rng.h"

namespace deepsd {
namespace baselines {
namespace {

FeatureMatrix OneColumn(const std::vector<float>& xs) {
  FeatureMatrix m;
  m.rows = static_cast<int>(xs.size());
  m.cols = 1;
  m.values = xs;
  return m;
}

/// Brute-force best split of (x, y) by squared-error reduction over every
/// midpoint between distinct sorted x values. Returns the SSE of the best
/// two-leaf piecewise-constant fit.
double BestStumpSse(std::vector<float> x, std::vector<float> y) {
  std::vector<size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });
  auto sse = [&](size_t begin, size_t end) {
    double mean = 0;
    for (size_t i = begin; i < end; ++i) mean += y[idx[i]];
    mean /= static_cast<double>(end - begin);
    double s = 0;
    for (size_t i = begin; i < end; ++i) {
      s += (y[idx[i]] - mean) * (y[idx[i]] - mean);
    }
    return s;
  };
  double best = sse(0, x.size());
  for (size_t cut = 1; cut < x.size(); ++cut) {
    if (x[idx[cut]] == x[idx[cut - 1]]) continue;
    best = std::min(best, sse(0, cut) + sse(cut, x.size()));
  }
  return best;
}

class StumpSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StumpSweepTest, DepthOneTreeFindsOptimalSplit) {
  util::Rng rng(GetParam());
  const int n = 60;
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = static_cast<float>(rng.UniformInt(int64_t{0}, int64_t{20}));
    y[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(-5, 5)) +
                                (x[static_cast<size_t>(i)] > 10 ? 8.0f : 0.0f);
  }
  FeatureMatrix X = OneColumn(x);
  // Enough bins that each distinct integer value is its own bin.
  BinnedMatrix binned(X, 64);
  RegressionTree tree({.max_depth = 1, .min_samples_leaf = 1, .min_gain = 0});
  std::vector<int> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  util::Rng tree_rng(1);
  tree.Fit(binned, y, rows, &tree_rng);

  double tree_sse = 0;
  for (int r = 0; r < n; ++r) {
    double d = tree.PredictRow(binned, r) - y[static_cast<size_t>(r)];
    tree_sse += d * d;
  }
  double optimal = BestStumpSse(x, y);
  EXPECT_NEAR(tree_sse, optimal, optimal * 1e-4 + 1e-3)
      << "histogram stump missed the exact best split";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StumpSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(GbdtPropertyTest, InterpolatesTrainSetWithEnoughCapacity) {
  // Deep trees + lr 1.0 + enough rounds reproduce a small train set almost
  // exactly (squared-loss boosting residuals go to ~0).
  util::Rng rng(99);
  const int n = 40;
  FeatureMatrix X;
  X.rows = n;
  X.cols = 2;
  X.values.resize(static_cast<size_t>(n) * 2);
  std::vector<float> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    X.values[static_cast<size_t>(i) * 2] = static_cast<float>(i);
    X.values[static_cast<size_t>(i) * 2 + 1] = static_cast<float>(i % 7);
    y[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(-10, 10));
  }
  GbdtConfig config;
  config.num_trees = 30;
  config.learning_rate = 1.0;
  config.subsample = 1.0;
  config.tree.max_depth = 8;
  config.tree.min_samples_leaf = 1;
  Gbdt gbdt(config);
  gbdt.Fit(X, y);
  std::vector<float> pred = gbdt.Predict(X);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(pred[static_cast<size_t>(i)], y[static_cast<size_t>(i)], 0.05)
        << i;
  }
}

TEST(GbdtPropertyTest, PredictionIsSumOfShrunkenTrees) {
  // With one tree, prediction = base + lr·tree(x) exactly; verified via
  // two learning rates on identical data.
  util::Rng rng(7);
  const int n = 100;
  FeatureMatrix X = OneColumn([&] {
    std::vector<float> xs(static_cast<size_t>(n));
    for (float& v : xs) v = static_cast<float>(rng.Uniform(-1, 1));
    return xs;
  }());
  std::vector<float> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    y[static_cast<size_t>(i)] = 3.0f * X.at(i, 0);
  }
  double base = 0;
  for (float v : y) base += v;
  base /= n;

  GbdtConfig c1;
  c1.num_trees = 1;
  c1.learning_rate = 1.0;
  c1.subsample = 1.0;
  GbdtConfig c2 = c1;
  c2.learning_rate = 0.5;
  Gbdt full(c1), half(c2);
  full.Fit(X, y);
  half.Fit(X, y);
  for (int i = 0; i < n; i += 9) {
    double tree_out = full.PredictRow(X.row(i)) - base;
    EXPECT_NEAR(half.PredictRow(X.row(i)), base + 0.5 * tree_out, 1e-4);
  }
}

}  // namespace
}  // namespace baselines
}  // namespace deepsd
