#include "data/serialize.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/byte_io.h"

namespace deepsd {
namespace data {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'D', '1'};

}  // namespace

util::Status SaveDataset(const OrderDataset& dataset, const std::string& path) {
  util::ByteWriter out;
  out.PutRaw(kMagic, sizeof(kMagic));
  out.PutPod<int32_t>(dataset.num_areas());
  out.PutPod<int32_t>(dataset.num_days());
  out.PutPod<int32_t>(dataset.first_weekday());
  out.PutPodVec(dataset.orders());

  // Re-extract environment data through the query API (dense layout).
  std::vector<WeatherRecord> weather;
  if (dataset.has_weather()) {
    weather.reserve(static_cast<size_t>(dataset.num_days()) * kMinutesPerDay);
    for (int d = 0; d < dataset.num_days(); ++d) {
      for (int ts = 0; ts < kMinutesPerDay; ++ts) {
        WeatherRecord w = dataset.WeatherAt(d, ts);
        w.day = d;
        w.ts = ts;
        weather.push_back(w);
      }
    }
  }
  out.PutPodVec(weather);

  std::vector<TrafficRecord> traffic;
  if (dataset.has_traffic()) {
    traffic.reserve(static_cast<size_t>(dataset.num_areas()) *
                    dataset.num_days() * kMinutesPerDay);
    for (int a = 0; a < dataset.num_areas(); ++a) {
      for (int d = 0; d < dataset.num_days(); ++d) {
        for (int ts = 0; ts < kMinutesPerDay; ++ts) {
          TrafficRecord t = dataset.TrafficAt(a, d, ts);
          t.area = a;
          t.day = d;
          t.ts = ts;
          traffic.push_back(t);
        }
      }
    }
  }
  out.PutPodVec(traffic);

  // Atomic replace: readers (and crash recovery) only ever see a complete
  // dataset file.
  return util::AtomicWriteFile(path, out.bytes());
}

util::Status LoadDataset(const std::string& path, OrderDataset* out) {
  // ReadFileBytes is the fault-injection point (util::FaultInjector): with
  // DEEPSD_FAULTS set, reads may come back truncated or bit-flipped, and
  // everything below must fail with a typed Status — never UB.
  std::vector<char> bytes;
  if (util::Status s = util::ReadFileBytes(path, &bytes); !s.ok()) return s;

  util::ByteReader in(bytes);
  char magic[4];
  if (!in.GetRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  int32_t num_areas = 0, num_days = 0, first_weekday = 0;
  if (!in.GetPod(&num_areas) || !in.GetPod(&num_days) ||
      !in.GetPod(&first_weekday)) {
    return util::Status::IoError("truncated header in " + path);
  }
  if (num_areas <= 0 || num_days <= 0 || first_weekday < 0 ||
      first_weekday >= kDaysPerWeek) {
    return util::Status::InvalidArgument("bad header values in " + path);
  }

  // Length prefixes are validated against the actual remaining bytes, so a
  // corrupt count can never trigger a runaway allocation.
  std::vector<Order> orders;
  std::vector<WeatherRecord> weather;
  std::vector<TrafficRecord> traffic;
  if (!in.GetPodVec(&orders) || !in.GetPodVec(&weather) ||
      !in.GetPodVec(&traffic)) {
    return util::Status::IoError("truncated body in " + path);
  }
  if (in.remaining() != 0) {
    return util::Status::InvalidArgument("trailing garbage in " + path);
  }

  OrderDatasetBuilder builder(num_areas, num_days, first_weekday);
  for (const Order& o : orders) builder.AddOrder(o);
  for (const WeatherRecord& w : weather) builder.AddWeather(w);
  for (const TrafficRecord& t : traffic) builder.AddTraffic(t);
  return builder.Build(out);
}

}  // namespace data
}  // namespace deepsd
