// Reproduces paper Table III (effects of embedding): MAE / RMSE / seconds
// per epoch of Basic and Advanced DeepSD with embedding vs one-hot
// representation of the categorical inputs.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Table III: effects of embedding");

  std::vector<float> targets = exp.TestTargets();
  eval::TablePrinter table({"Representation", "Model", "MAE", "RMSE",
                            "Time (per epoch)"});

  struct Case {
    const char* repr;
    const char* model;
    core::DeepSDModel::Mode mode;
    bool embedding;
  };
  const Case cases[] = {
      {"One-hot", "Basic DeepSD", core::DeepSDModel::Mode::kBasic, false},
      {"Embedding", "Basic DeepSD", core::DeepSDModel::Mode::kBasic, true},
      {"One-hot", "Advanced DeepSD", core::DeepSDModel::Mode::kAdvanced, false},
      {"Embedding", "Advanced DeepSD", core::DeepSDModel::Mode::kAdvanced,
       true},
  };
  for (const Case& c : cases) {
    core::DeepSDConfig config = exp.ModelConfig();
    config.use_embedding = c.embedding;
    std::printf("training %s %s...\n", c.model, c.repr);
    auto trained = exp.TrainDeepSD(c.mode, config, /*seed=*/7);
    eval::Metrics m = eval::ComputeMetrics(trained.test_predictions, targets);
    table.AddRow({c.repr, c.model, util::StrFormat("%.2f", m.mae),
                  util::StrFormat("%.2f", m.rmse),
                  util::StrFormat("%.1fs", trained.result.seconds_per_epoch)});
  }

  std::printf("\nTable III. Effects of embedding\n");
  table.Print();
  std::printf(
      "\nPaper shape to verify: embedding beats one-hot on MAE/RMSE for both "
      "models and is faster per epoch.\n");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
