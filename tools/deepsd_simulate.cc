// deepsd_simulate: generate a synthetic car-hailing city and save it as a
// binary OrderDataset for the other tools.
//
//   deepsd_simulate --out=city.bin --areas=58 --days=52 --seed=42
//                   [--mean_scale=1.0] [--no_weather] [--no_traffic]
//                   [--metrics-out=metrics.jsonl] [--trace-out=trace.json]
//
// --metrics-out / --trace-out turn telemetry on and additionally run an
// instrumented end-to-end pass over the generated city — a short training
// run, a live-serving replay through OnlinePredictor, and one closed-loop
// dispatch evaluation — so the dumps cover every subsystem's hot path
// (trainer, predictor, order stream, feature assembly, dispatch). The
// metrics dump is JSON lines; the trace loads in chrome://tracing and
// Perfetto. See docs/observability.md.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/trainer.h"
#include "data/serialize.h"
#include "dispatch/closed_loop.h"
#include "dispatch/policies.h"
#include "obs/metrics_io.h"
#include "obs/trace.h"
#include "serving/online_predictor.h"
#include "sim/city_sim.h"
#include "util/cli.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace deepsd {
namespace {

/// Trains a small basic-mode model on the generated city, replays one
/// serving day through the OnlinePredictor minute by minute, and runs a
/// predictive closed-loop dispatch epoch — purely to exercise the
/// instrumented paths end to end. Kept deliberately tiny: 2 epochs, a
/// coarse item stride, and a single dispatch day.
void RunInstrumentedPipeline(const data::OrderDataset& dataset,
                             const sim::CityConfig& city_config) {
  const int num_days = dataset.num_days();
  if (num_days < 3) {
    std::fprintf(stderr,
                 "telemetry pipeline needs >= 3 days, have %d; skipping\n",
                 num_days);
    return;
  }
  const int train_days = std::max(2, num_days * 2 / 3);
  const int serve_day = train_days;  // first held-out day

  // --- Trainer spans ---
  std::printf("telemetry: training probe model on days [0,%d)...\n",
              train_days);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 30);
  auto eval_items = data::MakeTestItems(dataset, serve_day, serve_day + 1);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::AssemblerSource eval(&assembler, eval_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, eval);

  // --- Serving spans: replay the serve day like a live feed ---
  std::printf("telemetry: replaying day %d through OnlinePredictor...\n",
              serve_day);
  serving::OnlinePredictor predictor(&model, &assembler);
  serving::OrderStreamBuffer& buffer = predictor.buffer();
  const int t_begin = 420, t_end = 600;  // morning peak is plenty
  buffer.AdvanceTo(serve_day, t_begin - fc.window);
  for (int ts = t_begin - fc.window; ts < t_end; ++ts) {
    for (int a = 0; a < dataset.num_areas(); ++a) {
      for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
        buffer.AddOrder(o);
      }
      if (dataset.has_traffic()) {
        data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
        tr.area = a;
        tr.day = serve_day;
        tr.ts = ts;
        buffer.AddTraffic(tr);
      }
    }
    if (dataset.has_weather()) {
      data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
      w.day = serve_day;
      w.ts = ts;
      buffer.AddWeather(w);
    }
    predictor.AdvanceTo(serve_day, ts + 1);
    if ((ts + 1) % 10 == 0 && ts + 1 >= t_begin) {
      predictor.PredictAll();
      predictor.Predict(0);
    }
  }

  // --- Dispatch spans: one short predictive closed loop ---
  std::printf("telemetry: running closed-loop dispatch on day %d...\n",
              serve_day);
  dispatch::PredictiveGapPolicy policy(&model, &assembler);
  dispatch::ClosedLoopConfig clc;
  clc.day_begin = serve_day;
  clc.day_end = serve_day + 1;
  clc.t_begin = t_begin;
  clc.t_end = t_end;
  clc.drivers_per_minute = 0.4 * dataset.num_areas();
  dispatch::RunClosedLoop(city_config, &policy, clc);
}

int Main(int argc, char** argv) {
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown({"out", "areas", "days", "seed",
                                    "mean_scale", "no_weather", "no_traffic",
                                    "first_weekday", "threads", "faults",
                                    "metrics-out", "trace-out", "help"});
  if (!st.ok() || cli.GetBool("help", false)) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_simulate --out=city.bin [--areas=58] "
                 "[--days=52] [--seed=42] [--mean_scale=1.0] [--no_weather] "
                 "[--no_traffic] [--first_weekday=1] [--threads=N] "
                 "[--faults=drop_event=0.1,seed=42] "
                 "[--metrics-out=metrics.jsonl] [--trace-out=trace.json]\n",
                 st.ToString().c_str());
    return st.ok() ? 0 : 2;
  }

  const bool telemetry = cli.Has("metrics-out") || cli.Has("trace-out");
  if (telemetry) obs::SetEnabled(true);

  // Fault injection for the instrumented pipeline's serving replay (same
  // spec grammar as DEEPSD_FAULTS; see docs/robustness.md). The simulated
  // city itself is always generated clean — faults hit the feeds, not the
  // generator.
  if (cli.Has("faults")) {
    st = util::FaultInjector::Global().ConfigureFromSpec(
        cli.GetString("faults"));
    if (!st.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  // Thread count for the instrumented pipeline (0 = hardware concurrency);
  // simulation output is bit-identical regardless.
  util::ThreadPool::SetGlobalThreads(
      static_cast<int>(cli.GetInt("threads", 0)));

  std::string out = cli.GetString("out", "city.bin");
  sim::CityConfig config;
  config.num_areas = static_cast<int>(cli.GetInt("areas", 58));
  config.num_days = static_cast<int>(cli.GetInt("days", 52));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  config.mean_scale = cli.GetDouble("mean_scale", 1.0);
  config.generate_weather = !cli.GetBool("no_weather", false);
  config.generate_traffic = !cli.GetBool("no_traffic", false);
  config.first_weekday = static_cast<int>(cli.GetInt("first_weekday", 1));

  std::printf("simulating %d areas x %d days (seed %llu)...\n",
              config.num_areas, config.num_days,
              static_cast<unsigned long long>(config.seed));
  sim::SimSummary summary;
  data::OrderDataset dataset = sim::SimulateCity(config, &summary);
  std::printf(
      "generated %zu orders (%.1f%% unmet), %.1f%% of busy-hour windows "
      "balanced, max gap %d\n",
      summary.total_orders,
      100.0 * summary.invalid_orders / std::max<size_t>(summary.total_orders, 1),
      100.0 * summary.zero_gap_fraction, summary.max_gap);

  st = data::SaveDataset(dataset, out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (telemetry) {
    RunInstrumentedPipeline(dataset, config);
    if (cli.Has("metrics-out")) {
      std::string path = cli.GetString("metrics-out");
      st = obs::WriteJsonLines(obs::MetricsRegistry::Global().Snapshot(),
                               path);
      if (!st.ok()) {
        std::fprintf(stderr, "metrics dump failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
    if (cli.Has("trace-out")) {
      std::string path = cli.GetString("trace-out");
      st = obs::TraceExporter::WriteJson(path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace dump failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                  path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace deepsd

int main(int argc, char** argv) { return deepsd::Main(argc, argv); }
