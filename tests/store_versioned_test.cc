// VersionedModel (store/versioned_model.h) tests: atomic pointer-flip
// publication, the serving-compatibility gate, epoch-based reclamation
// (a retired version outlives every reader that could still see it, and
// no longer), the slot-overflow fallback, and a concurrent
// publisher-vs-readers hammer — the suite the TSAN CI leg runs to prove
// the epoch scheme race-free.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "nn/parameter.h"
#include "store/versioned_model.h"
#include "util/rng.h"
#include "gtest/gtest.h"

namespace deepsd {
namespace store {
namespace {

/// In-memory ModelVersion for tests: a tiny real model (Publish validates
/// config compatibility through model().config()) plus a destruction flag
/// so reclamation timing is observable.
class FakeVersion : public ModelVersion {
 public:
  FakeVersion(const core::DeepSDConfig& config, std::string id,
              uint64_t seed = 1, std::atomic<int>* destroyed = nullptr)
      : id_(std::move(id)), destroyed_(destroyed) {
    util::Rng rng(seed);
    model_ = std::make_unique<core::DeepSDModel>(
        config, core::DeepSDModel::Mode::kBasic, &params_, &rng);
  }
  ~FakeVersion() override {
    if (destroyed_ != nullptr) destroyed_->fetch_add(1);
  }

  const core::DeepSDModel& model() const override { return *model_; }
  const baselines::GapBaseline* baseline() const override { return nullptr; }
  std::string version_id() const override { return id_; }

 private:
  std::string id_;
  std::atomic<int>* destroyed_;
  nn::ParameterStore params_;
  std::unique_ptr<core::DeepSDModel> model_;
};

core::DeepSDConfig TinyConfig() {
  core::DeepSDConfig config;
  config.num_areas = 2;
  config.use_weather = false;
  config.use_traffic = false;
  return config;
}

TEST(VersionedModelTest, EmptyUntilFirstPublish) {
  VersionedModel versions;
  EXPECT_FALSE(versions.has_version());
  VersionedModel::Ref ref = versions.Acquire();
  EXPECT_FALSE(static_cast<bool>(ref));
  EXPECT_EQ(versions.stats().current_sequence, 0u);
}

TEST(VersionedModelTest, PublishAssignsMonotonicSequences) {
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(TinyConfig(), "v1"))
                  .ok());
  {
    VersionedModel::Ref ref = versions.Acquire();
    ASSERT_TRUE(static_cast<bool>(ref));
    EXPECT_EQ(ref.sequence(), 1u);
    EXPECT_EQ(ref.version()->version_id(), "v1");
    EXPECT_EQ(ref.pinned().sequence, 1u);
    EXPECT_EQ(ref.pinned().version, ref.version());
  }
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(TinyConfig(), "v2"))
                  .ok());
  VersionedModel::Ref ref = versions.Acquire();
  EXPECT_EQ(ref.sequence(), 2u);
  EXPECT_EQ(ref.version()->version_id(), "v2");
}

TEST(VersionedModelTest, IncompatiblePublishIsRejectedWithoutFlipping) {
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(TinyConfig(), "v1"))
                  .ok());

  core::DeepSDConfig wrong = TinyConfig();
  wrong.num_areas = 3;
  util::Status st =
      versions.Publish(std::make_shared<FakeVersion>(wrong, "bad-areas"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);

  wrong = TinyConfig();
  wrong.use_weather = true;
  st = versions.Publish(std::make_shared<FakeVersion>(wrong, "bad-weather"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);

  st = versions.Publish(nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);

  // The serving version is untouched by the rejections.
  VersionedModel::Ref ref = versions.Acquire();
  EXPECT_EQ(ref.sequence(), 1u);
  EXPECT_EQ(ref.version()->version_id(), "v1");
  EXPECT_EQ(versions.stats().published, 1u);
}

TEST(VersionedModelTest, RetiredVersionOutlivesItsPinnedReaders) {
  std::atomic<int> destroyed{0};
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(
                      TinyConfig(), "v1", 1, &destroyed))
                  .ok());

  VersionedModel::Ref pinned = versions.Acquire();
  ASSERT_EQ(pinned.version()->version_id(), "v1");

  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(
                      TinyConfig(), "v2", 2, &destroyed))
                  .ok());
  // v1 is retired but the pinned reader can still dereference it.
  EXPECT_EQ(versions.stats().retired_live, 1u);
  EXPECT_EQ(versions.TryReclaim(), 0u);
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(pinned.version()->version_id(), "v1");

  // Release → the next reclaim frees it, and only it.
  pinned.Reset();
  EXPECT_EQ(versions.TryReclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
  const VersionedModel::Stats stats = versions.stats();
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_EQ(stats.current_sequence, 2u);
}

TEST(VersionedModelTest, LateReaderNeverPinsARetiredVersion) {
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(TinyConfig(), "v1"))
                  .ok());
  VersionedModel::Ref old_ref = versions.Acquire();
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(TinyConfig(), "v2"))
                  .ok());
  // A reader arriving after the flip sees only the new version, even
  // while a straggler still pins the old one.
  VersionedModel::Ref new_ref = versions.Acquire();
  EXPECT_EQ(new_ref.version()->version_id(), "v2");
  EXPECT_EQ(old_ref.version()->version_id(), "v1");
}

TEST(VersionedModelTest, SlotOverflowFallsBackCorrectly) {
  std::atomic<int> destroyed{0};
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(
                      TinyConfig(), "v1", 1, &destroyed))
                  .ok());

  // More simultaneous pins than reader slots: the overflow Refs must be
  // served via the shared_ptr fallback, all valid, all on v1.
  std::vector<VersionedModel::Ref> refs;
  refs.reserve(VersionedModel::kReaderSlots + 8);
  for (size_t i = 0; i < VersionedModel::kReaderSlots + 8; ++i) {
    refs.push_back(versions.Acquire());
    ASSERT_TRUE(static_cast<bool>(refs.back())) << i;
    EXPECT_EQ(refs.back().sequence(), 1u);
  }
  EXPECT_GE(versions.stats().slot_overflows, 8u);

  // Retiring v1 while fallback pins exist must not free it...
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(
                      TinyConfig(), "v2", 2, &destroyed))
                  .ok());
  for (const VersionedModel::Ref& ref : refs) {
    EXPECT_EQ(ref.version()->version_id(), "v1");
  }
  EXPECT_EQ(destroyed.load(), 0);

  // ...and releasing every pin lets reclamation free exactly v1.
  refs.clear();
  versions.TryReclaim();
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(versions.stats().retired_live, 0u);
}

TEST(VersionedModelTest, ConcurrentPublishAndAcquireStaysCoherent) {
  const int kPublishes = 200;
  const int kReaders = 4;
  std::atomic<int> destroyed{0};
  VersionedModel versions;
  ASSERT_TRUE(versions
                  .Publish(std::make_shared<FakeVersion>(
                      TinyConfig(), "v1", 1, &destroyed))
                  .ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acquired{0}, torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        VersionedModel::Ref ref = versions.Acquire();
        if (!ref) continue;
        acquired.fetch_add(1, std::memory_order_relaxed);
        // Sequence parity names the version: publishes alternate v1
        // (odd) / v2 (even). A mismatch means the pin and the pointer
        // were not taken atomically — a torn acquire.
        const std::string want =
            (ref.sequence() % 2 == 1) ? "v1" : "v2";
        if (ref.version()->version_id() != want) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 2; i <= kPublishes; ++i) {
    ASSERT_TRUE(versions
                    .Publish(std::make_shared<FakeVersion>(
                        TinyConfig(), i % 2 == 1 ? "v1" : "v2",
                        static_cast<uint64_t>(i), &destroyed))
                    .ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  versions.TryReclaim();

  EXPECT_GT(acquired.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  const VersionedModel::Stats stats = versions.stats();
  EXPECT_EQ(stats.published, static_cast<uint64_t>(kPublishes));
  EXPECT_EQ(stats.current_sequence, static_cast<uint64_t>(kPublishes));
  // Every retired version is reclaimable once the readers are gone: all
  // but the current one destroyed, none leaked.
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_EQ(destroyed.load(), kPublishes - 1);
}

}  // namespace
}  // namespace store
}  // namespace deepsd
