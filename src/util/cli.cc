#include "util/cli.h"

#include <cstdlib>

namespace deepsd {
namespace util {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string CommandLine::GetString(const std::string& key,
                                   const std::string& default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

int64_t CommandLine::GetInt(const std::string& key, int64_t default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& key, double default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& key, bool default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

Status CommandLine::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("unknown flag: --" + key);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace deepsd
