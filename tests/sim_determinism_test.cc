// Determinism and stream-independence properties of the simulator — the
// contracts the closed-loop dispatch experiments (src/dispatch) rely on.

#include <gtest/gtest.h>

#include "src/sim/city_sim.h"

namespace deepsd {
namespace sim {
namespace {

CityConfig BaseConfig() {
  CityConfig config;
  config.num_areas = 3;
  config.num_days = 4;
  config.seed = 13579;
  return config;
}

TEST(SimDeterminismTest, FullDatasetBitwiseReproducible) {
  data::OrderDataset a = SimulateCity(BaseConfig());
  data::OrderDataset b = SimulateCity(BaseConfig());
  ASSERT_EQ(a.num_orders(), b.num_orders());
  for (size_t i = 0; i < a.orders().size(); i += 101) {
    const data::Order& oa = a.orders()[i];
    const data::Order& ob = b.orders()[i];
    ASSERT_EQ(oa.day, ob.day);
    ASSERT_EQ(oa.ts, ob.ts);
    ASSERT_EQ(oa.passenger_id, ob.passenger_id);
    ASSERT_EQ(oa.valid, ob.valid);
    ASSERT_EQ(oa.dest_area, ob.dest_area);
  }
  for (int d = 0; d < 4; ++d) {
    ASSERT_EQ(a.WeatherAt(d, 700).type, b.WeatherAt(d, 700).type);
    ASSERT_EQ(a.TrafficAt(1, d, 700).level_counts[0],
              b.TrafficAt(1, d, 700).level_counts[0]);
  }
}

TEST(SimDeterminismTest, RetryBehaviorIsolatedFromDemandStream) {
  // Disabling retries must not change the fresh-arrival process: the total
  // number of distinct passengers stays identical.
  CityConfig with_retries = BaseConfig();
  CityConfig without = BaseConfig();
  without.retry_prob = 0.0;
  SimSummary s1, s2;
  SimulateCity(with_retries, &s1);
  SimulateCity(without, &s2);
  EXPECT_EQ(s1.total_passenger_episodes, s2.total_passenger_episodes);
  // With retries disabled, every passenger sends exactly one order.
  EXPECT_EQ(s2.total_orders, s2.total_passenger_episodes);
  EXPECT_GT(s1.total_orders, s2.total_orders);
}

TEST(SimDeterminismTest, WeatherSharedAcrossBoostScenarios) {
  CityConfig boosted = BaseConfig();
  boosted.supply_boost = [](int, int, int) { return 2.0; };
  data::OrderDataset a = SimulateCity(BaseConfig());
  data::OrderDataset b = SimulateCity(boosted);
  for (int d = 0; d < 4; ++d) {
    for (int ts = 0; ts < data::kMinutesPerDay; ts += 97) {
      ASSERT_EQ(a.WeatherAt(d, ts).type, b.WeatherAt(d, ts).type);
    }
  }
}

TEST(SimDeterminismTest, ProfilesDependOnlyOnSeedAndCount) {
  CityConfig c1 = BaseConfig();
  CityConfig c2 = BaseConfig();
  c2.num_days = 30;          // different horizon
  c2.retry_prob = 0.1;       // different behaviour knobs
  CitySim s1(c1), s2(c2);
  ASSERT_EQ(s1.profiles().size(), s2.profiles().size());
  for (size_t i = 0; i < s1.profiles().size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.profiles()[i].scale, s2.profiles()[i].scale);
    EXPECT_EQ(s1.profiles()[i].cluster_id, s2.profiles()[i].cluster_id);
  }
}

TEST(SimDeterminismTest, MeanScaleScalesVolume) {
  CityConfig small = BaseConfig();
  small.mean_scale = 0.5;
  CityConfig large = BaseConfig();
  large.mean_scale = 2.0;
  SimSummary s_small, s_large;
  SimulateCity(small, &s_small);
  SimulateCity(large, &s_large);
  // 4x the demand intensity: comfortably more than 2x the episodes.
  EXPECT_GT(s_large.total_passenger_episodes,
            2 * s_small.total_passenger_episodes);
}

}  // namespace
}  // namespace sim
}  // namespace deepsd
