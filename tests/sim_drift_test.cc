#include <gtest/gtest.h>

#include <vector>

#include "src/data/dataset.h"
#include "src/sim/city_sim.h"

namespace deepsd {
namespace sim {
namespace {

CityConfig SmallConfig() {
  CityConfig config;
  config.num_areas = 8;
  config.num_days = 10;
  config.seed = 321;
  config.mean_scale = 0.8;
  return config;
}

int CountOrders(const data::OrderDataset& ds, int area, int day_begin,
                int day_end) {
  int n = 0;
  for (int d = day_begin; d < day_end; ++d) {
    n += ds.ValidInRange(area, d, 0, data::kMinutesPerDay) +
         ds.InvalidInRange(area, d, 0, data::kMinutesPerDay);
  }
  return n;
}

TEST(RegimeShiftTest, NoShiftsMatchesBaseline) {
  // An empty regime_shifts vector must be bit-identical to the seed city:
  // the shift machinery cannot perturb the base RNG stream.
  data::OrderDataset base = SimulateCity(SmallConfig());

  CityConfig with_empty = SmallConfig();
  with_empty.regime_shifts = {};
  data::OrderDataset again = SimulateCity(with_empty);

  ASSERT_EQ(base.num_areas(), again.num_areas());
  for (int a = 0; a < base.num_areas(); ++a) {
    EXPECT_EQ(CountOrders(base, a, 0, 10), CountOrders(again, a, 0, 10))
        << "area " << a;
  }
}

TEST(RegimeShiftTest, PreShiftDaysAreUnperturbed) {
  CityConfig shifted = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kArchetypeShift;
  shift.start_day = 6;
  shift.area_stride = 2;
  shifted.regime_shifts.push_back(shift);

  data::OrderDataset base = SimulateCity(SmallConfig());
  data::OrderDataset drifted = SimulateCity(shifted);

  // Every order before the shift day is identical.
  for (int a = 0; a < 8; ++a) {
    EXPECT_EQ(CountOrders(base, a, 0, 6), CountOrders(drifted, a, 0, 6))
        << "area " << a;
  }
}

TEST(RegimeShiftTest, ArchetypeShiftSwapsGeneratingProcess) {
  CityConfig config = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kArchetypeShift;
  shift.start_day = 5;
  shift.area_stride = 2;
  shift.to_type = AreaType::kBusiness;
  config.regime_shifts.push_back(shift);

  CitySim sim(config);
  bool any_shifted = false;
  for (int a = 0; a < config.num_areas; a += shift.area_stride) {
    const AreaProfile& before = sim.EffectiveProfile(a, 4);
    const AreaProfile& after = sim.EffectiveProfile(a, 5);
    EXPECT_EQ(before.type, sim.profiles()[a].type);
    EXPECT_EQ(after.type, AreaType::kBusiness);
    // Same scale class — the shift changes shape, not magnitude class.
    EXPECT_DOUBLE_EQ(after.scale, before.scale);
    if (before.type != after.type) any_shifted = true;
  }
  EXPECT_TRUE(any_shifted);
  // Untouched areas keep their base profile on every day.
  for (int a = 1; a < config.num_areas; a += shift.area_stride) {
    EXPECT_EQ(&sim.EffectiveProfile(a, 9), &sim.profiles()[a]);
  }
}

TEST(RegimeShiftTest, HolidayRegimeRemapsWeekIdAndIntensity) {
  CityConfig config = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kHolidayRegime;
  shift.start_day = 3;
  shift.end_day = 5;
  shift.intensity = 1.5;
  config.regime_shifts.push_back(shift);

  CitySim sim(config);
  int week_id = 0;
  EXPECT_DOUBLE_EQ(sim.HolidayAdjust(2, &week_id), 1.0);
  EXPECT_NE(week_id, 6);  // day 2 keeps its calendar weekday

  week_id = 0;
  EXPECT_DOUBLE_EQ(sim.HolidayAdjust(3, &week_id), 1.5);
  EXPECT_EQ(week_id, 6);  // holidays behave like Sundays

  week_id = 0;
  EXPECT_DOUBLE_EQ(sim.HolidayAdjust(5, &week_id), 1.0);  // past end_day
}

TEST(RegimeShiftTest, StadiumAddsEveningBumpAndCutsSupply) {
  CityConfig config = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kStadium;
  shift.start_day = 4;
  shift.stadium_area = 3;
  shift.intensity = 1.0;
  config.regime_shifts.push_back(shift);

  CitySim sim(config);
  const AreaProfile& before = sim.EffectiveProfile(3, 3);
  const AreaProfile& after = sim.EffectiveProfile(3, 4);
  EXPECT_GT(after.weekday_bumps.size(), before.weekday_bumps.size());
  EXPECT_GT(after.weekend_bumps.size(), before.weekend_bumps.size());
  EXPECT_LT(after.supply_ratio, before.supply_ratio);
  // The evening intensity visibly exceeds the base process.
  EXPECT_GT(after.DemandIntensity(1260, 2), before.DemandIntensity(1260, 2));
}

TEST(RegimeShiftTest, ShiftedCityIsDeterministic) {
  CityConfig config = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kArchetypeShift;
  shift.start_day = 5;
  config.regime_shifts.push_back(shift);

  SimSummary a, b;
  data::OrderDataset first = SimulateCity(config, &a);
  data::OrderDataset second = SimulateCity(config, &b);
  EXPECT_EQ(a.total_orders, b.total_orders);
  EXPECT_EQ(a.invalid_orders, b.invalid_orders);
  for (int area = 0; area < config.num_areas; ++area) {
    EXPECT_EQ(CountOrders(first, area, 0, config.num_days),
              CountOrders(second, area, 0, config.num_days));
  }
}

TEST(RegimeShiftTest, ShiftMovesPostShiftDistribution) {
  // The drift scenario must actually drift: post-shift order volume in the
  // shifted areas differs from the unshifted run's same days.
  CityConfig config = SmallConfig();
  RegimeShift shift;
  shift.kind = RegimeShift::Kind::kArchetypeShift;
  shift.start_day = 5;
  shift.area_stride = 1;  // every area shifts
  shift.to_type = AreaType::kEntertainment;
  config.regime_shifts.push_back(shift);

  data::OrderDataset base = SimulateCity(SmallConfig());
  data::OrderDataset drifted = SimulateCity(config);

  int diff_areas = 0;
  for (int a = 0; a < config.num_areas; ++a) {
    if (CountOrders(base, a, 5, 10) != CountOrders(drifted, a, 5, 10)) {
      ++diff_areas;
    }
  }
  EXPECT_GE(diff_areas, config.num_areas / 2);
}

}  // namespace
}  // namespace sim
}  // namespace deepsd
