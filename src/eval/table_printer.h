#ifndef DEEPSD_EVAL_TABLE_PRINTER_H_
#define DEEPSD_EVAL_TABLE_PRINTER_H_

// The table renderer moved down to util/table_printer.h so that layers
// below eval (notably obs) can use it; this header keeps the historical
// eval::TablePrinter spelling working for the bench binaries.

#include "util/table_printer.h"

namespace deepsd {
namespace eval {

using TablePrinter = ::deepsd::util::TablePrinter;

}  // namespace eval
}  // namespace deepsd

#endif  // DEEPSD_EVAL_TABLE_PRINTER_H_
