#include "sim/traffic_model.h"

#include <algorithm>
#include <cmath>

namespace deepsd {
namespace sim {

void TrafficModel::LevelFractions(double pressure, double fractions[4]) {
  pressure = std::clamp(pressure, 0.0, 1.0);
  // Level 4 = free flow, level 1 = jammed. As pressure rises, mass moves
  // smoothly from level 4 to level 1.
  double jam = pressure * pressure;              // convex: jams appear late
  double heavy = pressure * (1.0 - 0.5 * pressure);
  double light = 0.6 * (1.0 - pressure) + 0.2;
  double free_flow = (1.0 - pressure) * (1.0 - pressure) + 0.1;
  double sum = jam + heavy + light + free_flow;
  fractions[0] = jam / sum;
  fractions[1] = heavy / sum;
  fractions[2] = light / sum;
  fractions[3] = free_flow / sum;
}

data::TrafficRecord TrafficModel::Sample(const AreaProfile& profile, int area,
                                         int day, int ts, double pressure) {
  double f[4];
  LevelFractions(pressure, f);
  data::TrafficRecord rec;
  rec.area = area;
  rec.day = day;
  rec.ts = ts;
  int total = profile.road_segments;
  int assigned = 0;
  for (int level = 0; level < 3; ++level) {
    double noisy = f[level] * total + rng_.Normal(0.0, 1.5);
    int c = std::clamp(static_cast<int>(std::lround(noisy)), 0, total - assigned);
    rec.level_counts[level] = c;
    assigned += c;
  }
  rec.level_counts[3] = total - assigned;
  return rec;
}

}  // namespace sim
}  // namespace deepsd
