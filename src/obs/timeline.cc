#include "obs/timeline.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace deepsd {
namespace obs {

TimelineRecorder::TimelineRecorder(TimelineConfig config,
                                   MetricsRegistry* registry)
    : config_(config), registry_(registry), epoch_us_(internal::NowUs()) {}

TimelineRecorder::~TimelineRecorder() { Stop(); }

void TimelineRecorder::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { RunLoop(); });
}

void TimelineRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(run_mu_);
  running_ = false;
}

bool TimelineRecorder::running() const {
  std::lock_guard<std::mutex> lock(run_mu_);
  return running_;
}

void TimelineRecorder::RunLoop() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_) {
    const auto wait = std::chrono::milliseconds(
        config_.interval_ms > 0 ? config_.interval_ms : 1);
    if (stop_cv_.wait_for(lock, wait, [this] { return stop_; })) break;
    lock.unlock();
    Scrape();
    lock.lock();
  }
}

uint64_t TimelineRecorder::SampleNow() { return Scrape().seq; }

void TimelineRecorder::set_slo_monitor(SloMonitor* monitor) {
  std::lock_guard<std::mutex> lock(scrape_mu_);
  slo_ = monitor;
}

TimelineSample TimelineRecorder::Scrape() {
  std::lock_guard<std::mutex> scrape_lock(scrape_mu_);
  // Surface the trace-ring overwrite count as a gauge so dumps and the
  // report tool can warn about lossy traces (the rings are bounded; see
  // DEEPSD_TRACE_RING in obs/trace.h).
  registry_->GetGauge("obs/trace_dropped_spans")
      ->Set(static_cast<double>(TraceExporter::dropped_count()));
  registry_->GetCounter("obs/timeline_scrapes")->Inc();

  TimelineSample sample;
  sample.metrics = registry_->Snapshot();
  sample.t_us = internal::NowUs() - epoch_us_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sample.seq = next_seq_++;
    if (last_scrape_us_ >= 0) {
      sample.interval_s =
          static_cast<double>(sample.t_us - last_scrape_us_) * 1e-6;
    }
    last_scrape_us_ = sample.t_us;
    for (const MetricSnapshot& m : sample.metrics) {
      double monotone = 0;
      if (m.kind == MetricSnapshot::Kind::kCounter) {
        monotone = m.value;
      } else if (m.kind == MetricSnapshot::Kind::kHistogram) {
        monotone = static_cast<double>(m.count);
      } else {
        continue;
      }
      auto it = last_monotone_.find(m.name);
      // A monotone series can step backwards only across a ResetValues()
      // (tool phase boundaries); clamp the delta at zero so rates never go
      // negative.
      const double delta =
          it == last_monotone_.end()
              ? monotone
              : (monotone >= it->second ? monotone - it->second : 0.0);
      sample.counter_deltas[m.name] = delta;
      last_monotone_[m.name] = monotone;
    }
    samples_.push_back(sample);
    while (samples_.size() > config_.capacity && !samples_.empty()) {
      samples_.pop_front();
    }
  }
  if (slo_ != nullptr) slo_->Evaluate(sample, this);
  return sample;
}

std::vector<TimelineSample> TimelineRecorder::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TimelineSample>(samples_.begin(), samples_.end());
}

std::vector<TimelineSample> TimelineRecorder::TailSamples(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = n < samples_.size() ? n : samples_.size();
  return std::vector<TimelineSample>(samples_.end() - static_cast<long>(take),
                                     samples_.end());
}

uint64_t TimelineRecorder::scrape_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

std::string TimelineRecorder::SampleToJsonLine(const TimelineSample& sample) {
  std::string out = "{\"seq\":" + std::to_string(sample.seq);
  out += ",\"t_ms\":" + json::Number(static_cast<double>(sample.t_us) * 1e-3);
  out += ",\"interval_s\":" + json::Number(sample.interval_s);

  auto delta_of = [&sample](const std::string& name) {
    auto it = sample.counter_deltas.find(name);
    return it == sample.counter_deltas.end() ? 0.0 : it->second;
  };

  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : sample.metrics) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter: {
        if (!counters.empty()) counters += ',';
        const double delta = delta_of(m.name);
        const double rate =
            sample.interval_s > 0 ? delta / sample.interval_s : 0.0;
        counters += json::Quote(m.name) + ":{\"value\":" +
                    json::Number(m.value) + ",\"delta\":" +
                    json::Number(delta) + ",\"rate\":" + json::Number(rate) +
                    "}";
        break;
      }
      case MetricSnapshot::Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += json::Quote(m.name) + ":" + json::Number(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (!histograms.empty()) histograms += ',';
        histograms += json::Quote(m.name) + ":{\"count\":" +
                      std::to_string(m.count) + ",\"delta\":" +
                      json::Number(delta_of(m.name)) + ",\"p50\":" +
                      json::Number(m.p50) + ",\"p90\":" + json::Number(m.p90) +
                      ",\"p99\":" + json::Number(m.p99) + ",\"max\":" +
                      json::Number(m.max) + "}";
        break;
    }
  }
  out += ",\"counters\":{" + counters + "}";
  out += ",\"gauges\":{" + gauges + "}";
  out += ",\"histograms\":{" + histograms + "}";
  out += "}";
  return out;
}

util::Status TimelineRecorder::WriteJsonLines(
    const std::vector<TimelineSample>& samples, const std::string& path) {
  std::string body;
  for (const TimelineSample& s : samples) {
    body += SampleToJsonLine(s);
    body += '\n';
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open timeline output: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return util::Status::IoError("short write to timeline output: " + path);
  }
  return util::Status::OK();
}

util::Status TimelineRecorder::WriteJsonLines(const std::string& path) const {
  return WriteJsonLines(Samples(), path);
}

}  // namespace obs
}  // namespace deepsd
