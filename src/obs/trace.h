#ifndef DEEPSD_OBS_TRACE_H_
#define DEEPSD_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/status.h"

namespace deepsd {
namespace obs {

/// One completed span, timestamps in microseconds since the process trace
/// epoch. `name` must point at a string with static storage duration (the
/// DEEPSD_SPAN macro passes literals), so recording never allocates.
struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;  ///< Dense per-thread id assigned at first span.
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

namespace internal {
/// Appends to the calling thread's ring buffer (oldest events overwritten
/// once the ring is full). Only called by an enabled span's destructor.
void RecordSpan(const char* name, int64_t start_us, int64_t dur_us);
/// Microseconds since the trace epoch (first use in the process).
int64_t NowUs();

/// Per-thread ring capacity when DEEPSD_TRACE_RING is unset.
constexpr size_t kDefaultTraceRingCapacity = 1 << 14;  // 16384 spans
/// Parses a DEEPSD_TRACE_RING value: a positive decimal span count,
/// clamped to [64, 1<<22]; null/empty/malformed falls back to the
/// default. Exposed so tests can pin the parsing without mutating the
/// process environment (the real value is read once at first ring use).
size_t ParseTraceRingCapacity(const char* value);
}  // namespace internal

/// RAII span timer. When obs is disabled at construction the object does
/// nothing at all — one relaxed load and branch, no clock reads — which is
/// what keeps instrumented hot paths at seed-bench speed. When enabled it
/// records a TraceEvent on destruction and, if `latency_us` is given, also
/// observes the duration (in µs) into that histogram so traces and metric
/// quantiles come from the same measurements.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency_us = nullptr)
      : name_(Enabled() ? name : nullptr), histogram_(latency_us) {
    if (name_ != nullptr) start_us_ = internal::NowUs();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    int64_t dur = internal::NowUs() - start_us_;
    internal::RecordSpan(name_, start_us_, dur);
    if (histogram_ != nullptr) {
      histogram_->ObserveAlways(static_cast<double>(dur));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  int64_t start_us_ = 0;
};

/// Span that always measures wall time — for call sites whose callers
/// consume the duration (Trainer's EpochStats) even with telemetry off.
/// The trace event is still only recorded when obs is enabled.
class TimedSpan {
 public:
  explicit TimedSpan(const char* name)
      : name_(name), start_us_(internal::NowUs()) {}
  ~TimedSpan() { Stop(); }

  /// Ends the span (idempotent) and returns its duration in seconds.
  double Stop() {
    if (name_ != nullptr) {
      dur_us_ = internal::NowUs() - start_us_;
      if (Enabled()) internal::RecordSpan(name_, start_us_, dur_us_);
      name_ = nullptr;
    }
    return static_cast<double>(dur_us_) * 1e-6;
  }

  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;

 private:
  const char* name_;
  int64_t start_us_;
  int64_t dur_us_ = 0;
};

#define DEEPSD_OBS_CONCAT_INNER(a, b) a##b
#define DEEPSD_OBS_CONCAT(a, b) DEEPSD_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope: DEEPSD_SPAN("serving/predict");
#define DEEPSD_SPAN(...)                               \
  ::deepsd::obs::ScopedSpan DEEPSD_OBS_CONCAT(         \
      deepsd_span_, __LINE__)(__VA_ARGS__)

/// Drains the per-thread rings into chrome://tracing "trace event format"
/// JSON (complete "X" events) that chrome://tracing and Perfetto load
/// directly.
class TraceExporter {
 public:
  /// All buffered events from every thread, ordered by start time.
  static std::vector<TraceEvent> CollectAll();
  /// Writes {"traceEvents": [...]} to `path`.
  static util::Status WriteJson(const std::string& path);
  /// Serializes without touching the filesystem (tests).
  static std::string ToJson();
  /// Spans lost to ring overwrap since the last Clear().
  static uint64_t dropped_count();
  /// Empties every ring (events only; thread registrations survive).
  static void Clear();
};

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_TRACE_H_
