#ifndef DEEPSD_NN_TENSOR_H_
#define DEEPSD_NN_TENSOR_H_

#include <vector>

#include "util/logging.h"

namespace deepsd {
namespace nn {

/// Dense row-major 2-D float tensor. Everything in the network is a matrix
/// of shape [batch, features] or a parameter matrix, so 2-D is the whole
/// story; 1-D data is represented as a single row.
///
/// A tensor either owns its storage (the default) or is a read-only *view*
/// over memory owned elsewhere (Tensor::View) — the model store aliases
/// parameter matrices straight into a file mapping this way, so N serving
/// replicas share one resident copy. Views support every const accessor;
/// the mutating accessors (non-const data()/at()/row()/flat(), Fill, ...)
/// CHECK-fail on a view, because writing through one would scribble on a
/// read-only mapping.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
    DEEPSD_CHECK(rows >= 0 && cols >= 0);
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f);
  }

  /// Adopts `storage` as the backing buffer (no allocation). The buffer
  /// must already hold exactly rows*cols elements; used by TensorArena to
  /// recycle storage across graph replays.
  Tensor(int rows, int cols, std::vector<float>&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    DEEPSD_CHECK(rows >= 0 && cols >= 0);
    DEEPSD_CHECK(data_.size() ==
                 static_cast<size_t>(rows) * static_cast<size_t>(cols));
  }

  /// Single row from a vector.
  static Tensor Row(const std::vector<float>& values) {
    Tensor t(1, static_cast<int>(values.size()));
    t.data_ = values;
    return t;
  }

  /// Single row adopting the vector's storage — no copy. Used on the
  /// serving path where the feature vector is consumed by the batch.
  static Tensor Row(std::vector<float>&& values) {
    return Tensor(1, static_cast<int>(values.size()), std::move(values));
  }

  /// Read-only view over `data` (rows*cols floats owned elsewhere, which
  /// must outlive every copy of the view). Copying a view copies the
  /// pointer, not the floats.
  static Tensor View(const float* data, int rows, int cols) {
    DEEPSD_CHECK(rows >= 0 && cols >= 0);
    DEEPSD_CHECK(data != nullptr || rows * cols == 0);
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.view_ = data;
    return t;
  }

  bool is_view() const { return view_ != nullptr; }

  /// Moves the backing buffer out, leaving an empty 0x0 tensor. The
  /// arena uses this to reclaim storage when a graph is cleared.
  std::vector<float> ReleaseStorage() {
    DEEPSD_CHECK_MSG(view_ == nullptr, "cannot release a view's storage");
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const {
    return view_ != nullptr
               ? static_cast<size_t>(rows_) * static_cast<size_t>(cols_)
               : data_.size();
  }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& at(int r, int c) {
    return mutable_storage()[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    return data()[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return mutable_storage(); }
  const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  float* row(int r) {
    return mutable_storage() + static_cast<size_t>(r) * cols_;
  }
  const float* row(int r) const {
    return data() + static_cast<size_t>(r) * cols_;
  }

  void Fill(float v) {
    DEEPSD_CHECK_MSG(view_ == nullptr, "cannot write through a tensor view");
    std::fill(data_.begin(), data_.end(), v);
  }
  void Zero() { Fill(0.0f); }

  /// Frobenius-norm squared; used by gradient tests and optimizer metrics.
  double SquaredNorm() const;

  const std::vector<float>& flat() const {
    DEEPSD_CHECK_MSG(view_ == nullptr,
                     "a tensor view has no vector storage; use data()");
    return data_;
  }
  std::vector<float>& flat() {
    DEEPSD_CHECK_MSG(view_ == nullptr,
                     "a tensor view has no vector storage; use data()");
    return data_;
  }

 private:
  float* mutable_storage() {
    DEEPSD_CHECK_MSG(view_ == nullptr, "cannot write through a tensor view");
    return data_.data();
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
  /// Non-null iff this tensor is a borrowed read-only view.
  const float* view_ = nullptr;
};

/// out = a * b for a:[m,k], b:[k,n]; accumulates into `out` when
/// `accumulate` is true, otherwise overwrites. Dispatches to the kernel
/// layer (nn/kernels.h); blocked and naive modes are bitwise identical.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out,
            bool accumulate = false);

/// out += a^T * b for a:[m,k], b:[m,n] -> out:[k,n]. (Weight gradients.)
void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b^T for a:[m,k], b:[n,k] -> out:[m,n]. (Input gradients.)
void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor* out);

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_TENSOR_H_
