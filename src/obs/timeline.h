#ifndef DEEPSD_OBS_TIMELINE_H_
#define DEEPSD_OBS_TIMELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace deepsd {
namespace obs {

class SloMonitor;  // obs/slo.h

/// TimelineRecorder configuration.
struct TimelineConfig {
  /// Background scrape period. Ignored by manual SampleNow() calls.
  int64_t interval_ms = 1000;
  /// Bounded sample ring: once full, the oldest sample is evicted.
  size_t capacity = 512;
};

/// One scrape of the registry: the full metric snapshot plus the
/// per-interval increments of every monotone series (counter values and
/// histogram counts), keyed by registry name. Deltas are computed against
/// the previous scrape even after that sample aged out of the ring.
struct TimelineSample {
  uint64_t seq = 0;        ///< 1-based scrape number.
  int64_t t_us = 0;        ///< Microseconds since the recorder was created.
  double interval_s = 0;   ///< Seconds since the previous scrape (0 = first).
  std::vector<MetricSnapshot> metrics;
  std::map<std::string, double> counter_deltas;
};

/// Periodic scraper that turns the cumulative MetricsRegistry into a
/// time series: how fast counters moved in each interval, not just where
/// they ended up. A background thread (Start/Stop) scrapes every
/// `interval_ms`; SampleNow() scrapes synchronously (tests and tools mix
/// both freely). Each scrape also refreshes the `obs/trace_dropped_spans`
/// gauge from the trace rings and, when an SloMonitor is attached,
/// evaluates every SLO spec against the new sample.
///
/// Thread safety: all public methods may be called concurrently; the
/// attached SloMonitor is evaluated outside the internal lock, one scrape
/// at a time.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(
      TimelineConfig config = {},
      MetricsRegistry* registry = &MetricsRegistry::Global());
  ~TimelineRecorder();

  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  /// Starts the background scrape thread (no-op when already running).
  void Start();
  /// Stops and joins the background thread (no-op when not running).
  void Stop();
  bool running() const;

  /// Synchronous scrape; returns the new sample's seq.
  uint64_t SampleNow();

  /// SLO monitor evaluated after every scrape; may be null. Attach before
  /// Start() — the pointer is read by the scrape thread.
  void set_slo_monitor(SloMonitor* monitor);

  /// Copy of the retained samples, oldest first.
  std::vector<TimelineSample> Samples() const;
  /// Copy of the newest `n` retained samples, oldest first.
  std::vector<TimelineSample> TailSamples(size_t n) const;
  uint64_t scrape_count() const;

  /// One sample as a single JSON object (no trailing newline):
  ///   {"seq":3,"t_ms":2500.1,"interval_s":0.5,
  ///    "counters":{"serving/admitted":{"value":80,"delta":40,"rate":80}},
  ///    "gauges":{"serving/queue_depth":3},
  ///    "histograms":{"serving/predict_us":{"count":12,"delta":4,
  ///                  "p50":810,"p99":1900,"max":2100}}}
  static std::string SampleToJsonLine(const TimelineSample& sample);

  /// JSON-lines export of `samples` (one SampleToJsonLine per line).
  static util::Status WriteJsonLines(const std::vector<TimelineSample>& samples,
                                     const std::string& path);
  /// JSON-lines export of every retained sample.
  util::Status WriteJsonLines(const std::string& path) const;

 private:
  void RunLoop();
  /// Builds the next sample (locks mu_) and returns a copy for SLO
  /// evaluation, which runs without the lock.
  TimelineSample Scrape();

  const TimelineConfig config_;
  MetricsRegistry* const registry_;
  const int64_t epoch_us_;

  mutable std::mutex mu_;
  std::deque<TimelineSample> samples_;
  std::map<std::string, double> last_monotone_;  ///< name -> last value.
  uint64_t next_seq_ = 1;
  int64_t last_scrape_us_ = -1;

  /// Guards thread_ / stop_ against Start/Stop races.
  mutable std::mutex run_mu_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_ = false;
  bool running_ = false;

  SloMonitor* slo_ = nullptr;
  std::mutex scrape_mu_;  ///< Serializes Scrape + SLO evaluation.
};

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_TIMELINE_H_
