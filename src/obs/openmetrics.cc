#include "obs/openmetrics.h"

#include <cstdio>

#include "obs/json.h"

namespace deepsd {
namespace obs {

namespace {

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Sample values: integers render without a fraction, everything else via
/// the shortest-round-trip double formatting shared with the JSON dumps.
std::string SampleValue(double v) { return json::Number(v); }

void AppendFamilyHeader(std::string* out, const std::string& family,
                        const std::string& orig, const char* type) {
  *out += "# HELP " + family + " DeepSD metric " + EscapeHelp(orig) + "\n";
  *out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out = "deepsd_";
  for (char c : name) {
    out += ValidNameChar(c, /*first=*/false) ? c : '_';
  }
  return out;
}

std::string ToOpenMetrics(const std::vector<MetricSnapshot>& snapshots) {
  std::string out;
  out.reserve(snapshots.size() * 96);
  for (const MetricSnapshot& s : snapshots) {
    const std::string base = OpenMetricsName(s.name);
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter: {
        const std::string family = base + "_total";
        AppendFamilyHeader(&out, family, s.name, "counter");
        out += family + " " + SampleValue(s.value) + "\n";
        break;
      }
      case MetricSnapshot::Kind::kGauge: {
        AppendFamilyHeader(&out, base, s.name, "gauge");
        out += base + " " + SampleValue(s.value) + "\n";
        break;
      }
      case MetricSnapshot::Kind::kHistogram: {
        AppendFamilyHeader(&out, base, s.name, "histogram");
        uint64_t cumulative = 0;
        for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
          cumulative += s.bucket_counts[b];
          const std::string le = b < s.bounds.size()
                                     ? json::Number(s.bounds[b])
                                     : std::string("+Inf");
          out += base + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        // A histogram registered but never observed still exposes a
        // complete family (one +Inf bucket) so series never flap.
        if (s.bucket_counts.empty()) {
          out += base + "_bucket{le=\"+Inf\"} 0\n";
        }
        out += base + "_sum " + SampleValue(s.sum) + "\n";
        out += base + "_count " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

util::Status WriteOpenMetrics(const std::vector<MetricSnapshot>& snapshots,
                              const std::string& path) {
  const std::string body = ToOpenMetrics(snapshots);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open openmetrics output: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return util::Status::IoError("short write to openmetrics output: " + path);
  }
  return util::Status::OK();
}

}  // namespace obs
}  // namespace deepsd
