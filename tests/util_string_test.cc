#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace deepsd {
namespace util {
namespace {

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "", "z"};
  EXPECT_EQ(Join(parts, ","), "x,,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StringUtilTest, MinuteToClock) {
  EXPECT_EQ(MinuteToClock(0), "00:00");
  EXPECT_EQ(MinuteToClock(450), "07:30");
  EXPECT_EQ(MinuteToClock(1439), "23:59");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

}  // namespace
}  // namespace util
}  // namespace deepsd
