#include "baselines/binned.h"

#include <algorithm>

#include "util/logging.h"

namespace deepsd {
namespace baselines {

FeatureMatrix MakeFeatureMatrix(const std::vector<std::vector<float>>& rows) {
  FeatureMatrix m;
  if (rows.empty()) return m;
  m.rows = static_cast<int>(rows.size());
  m.cols = static_cast<int>(rows[0].size());
  m.values.reserve(static_cast<size_t>(m.rows) * m.cols);
  for (const auto& r : rows) {
    DEEPSD_CHECK(static_cast<int>(r.size()) == m.cols);
    m.values.insert(m.values.end(), r.begin(), r.end());
  }
  return m;
}

BinnedMatrix::BinnedMatrix(const FeatureMatrix& X, int max_bins)
    : rows_(X.rows), cols_(X.cols) {
  DEEPSD_CHECK(max_bins >= 2 && max_bins <= 256);
  edges_.resize(static_cast<size_t>(cols_));
  codes_.assign(static_cast<size_t>(rows_) * cols_, 0);

  // Sample rows for quantile estimation to keep construction cheap.
  int sample_stride = std::max(1, rows_ / 20000);
  std::vector<float> column;
  for (int c = 0; c < cols_; ++c) {
    column.clear();
    for (int r = 0; r < rows_; r += sample_stride) column.push_back(X.at(r, c));
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());

    std::vector<float>& edges = edges_[static_cast<size_t>(c)];
    if (static_cast<int>(column.size()) <= max_bins) {
      // Few distinct values: one bin per value, edges between them.
      for (size_t i = 0; i + 1 < column.size(); ++i) {
        edges.push_back(column[i]);
      }
    } else {
      for (int b = 1; b < max_bins; ++b) {
        size_t idx = static_cast<size_t>(
            static_cast<double>(b) / max_bins * (column.size() - 1));
        float e = column[idx];
        if (edges.empty() || e > edges.back()) edges.push_back(e);
      }
    }
    for (int r = 0; r < rows_; ++r) {
      codes_[static_cast<size_t>(r) * cols_ + c] = Quantize(c, X.at(r, c));
    }
  }
}

uint8_t BinnedMatrix::Quantize(int feature, float value) const {
  const std::vector<float>& edges = edges_[static_cast<size_t>(feature)];
  // code = number of edges strictly below value; "value <= edges[k]" ⇔
  // code <= k.
  auto it = std::lower_bound(edges.begin(), edges.end(), value);
  // lower_bound: first edge >= value → values equal to an edge fall in the
  // bin left of it (consistent with BinEdge's "<= edge" convention).
  return static_cast<uint8_t>(it - edges.begin());
}

}  // namespace baselines
}  // namespace deepsd
