#include "nn/graph.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"

namespace deepsd {
namespace nn {

Tensor Graph::AcquireValueSlot(int rows, int cols, bool zeroed) {
  const size_t count = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (live_ < nodes_.size() && count > 0 &&
      nodes_[live_].value.size() == count) {
    Tensor t(rows, cols, nodes_[live_].value.ReleaseStorage());
    if (zeroed) std::fill(t.data(), t.data() + count, 0.0f);
    return t;
  }
  if (live_ < nodes_.size()) arena_.Release(std::move(nodes_[live_].value));
  return arena_.Acquire(rows, cols, zeroed);
}

Tensor Graph::AcquireAuxSlot(int rows, int cols, bool zeroed) {
  const size_t count = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (live_ < nodes_.size() && count > 0 &&
      nodes_[live_].aux.size() == count) {
    Tensor t(rows, cols, nodes_[live_].aux.ReleaseStorage());
    if (zeroed) std::fill(t.data(), t.data() + count, 0.0f);
    return t;
  }
  if (live_ < nodes_.size()) arena_.Release(std::move(nodes_[live_].aux));
  return arena_.Acquire(rows, cols, zeroed);
}

NodeId Graph::AddNode(Op op, Tensor value) {
  if (live_ == nodes_.size()) nodes_.emplace_back();
  Node& n = nodes_[live_];
  n.op = op;
  // The slot's retained value is normally already gone (AcquireValueSlot
  // moved it into `value`); when an adopting Input bypassed that path,
  // hand the leftover to the arena instead of freeing it.
  arena_.Release(std::move(n.value));
  n.value = std::move(value);
  const size_t count = n.value.size();
  if (n.grad.size() == count && count > 0) {
    // Retained grad from the previous replay: rebind the shape and re-zero.
    Tensor g(n.value.rows(), n.value.cols(), n.grad.ReleaseStorage());
    std::fill(g.data(), g.data() + count, 0.0f);
    n.grad = std::move(g);
  } else {
    arena_.Release(std::move(n.grad));
    n.grad = arena_.Acquire(n.value.rows(), n.value.cols(), /*zeroed=*/true);
  }
  n.param = nullptr;
  n.a = n.b = n.c = -1;
  n.scalar = 0.0f;
  n.denom = 0.0;
  n.i0 = n.i1 = 0;
  n.inputs.clear();
  n.ids.clear();
  return static_cast<NodeId>(live_++);
}

NodeId Graph::Input(const Tensor& value) {
  Tensor out = AcquireValueSlot(value.rows(), value.cols(), /*zeroed=*/false);
  std::copy(value.data(), value.data() + value.size(), out.data());
  return AddNode(Op::kInput, std::move(out));
}

NodeId Graph::Input(Tensor&& value) {
  return AddNode(Op::kInput, std::move(value));
}

NodeId Graph::Param(Parameter* p) {
  DEEPSD_CHECK(p != nullptr);
  // Read through a const ref: the value may be a read-only view into a
  // model-store mapping (nn/tensor.h).
  const Tensor& value = p->value;
  Tensor out = AcquireValueSlot(value.rows(), value.cols(), /*zeroed=*/false);
  std::copy(value.data(), value.data() + value.size(), out.data());
  NodeId id = AddNode(Op::kParam, std::move(out));
  node(id).param = p;
  return id;
}

namespace {

// Calibration EWMA: first observation seeds the range, later ones blend
// in at 10% so a few outlier batches cannot blow up the static scale.
void CalibrateActivation(Parameter* wp, const Tensor& x) {
  float amax = 0.0f;
  for (float v : x.flat()) {
    const float a = std::fabs(v);
    if (a > amax) amax = a;
  }
  if (!std::isfinite(amax)) return;
  wp->act_absmax =
      wp->act_absmax == 0.0f ? amax : 0.9f * wp->act_absmax + 0.1f * amax;
}

// True when this forward multiply should take the int8 path: quant mode,
// inference (training stays fp32 bitwise), and a Parameter-backed weight
// whose cached quantized form matches the multiply's shape.
bool UseQuant(bool training, const Parameter* wp, const Tensor& xv,
              const Tensor& wv) {
  return !training && wp != nullptr &&
         kernels::kernel_mode() == kernels::KernelMode::kQuant &&
         wv.rows() == xv.cols();
}

}  // namespace

NodeId Graph::MatMul(NodeId x, NodeId w) {
  const Tensor& xv = value(x);
  const Tensor& wv = value(w);
  Parameter* wp = node(w).param;
  if (calibrating_ && wp != nullptr) CalibrateActivation(wp, xv);
  Tensor out = AcquireValueSlot(xv.rows(), wv.cols(), /*zeroed=*/false);
  if (UseQuant(training_, wp, xv, wv)) {
    kernels::GemmQuant(xv.data(), wp->Quantized(), out.data(), xv.rows(),
                       xv.cols(), wv.cols(), wp->act_absmax,
                       /*accumulate=*/false);
  } else {
    nn::MatMul(xv, wv, &out);
  }
  NodeId id = AddNode(Op::kMatMul, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.b = w;
  return id;
}

NodeId Graph::AddBias(NodeId x, NodeId b) {
  const Tensor& xv = value(x);
  const Tensor& bv = value(b);
  DEEPSD_CHECK(bv.rows() == 1 && bv.cols() == xv.cols());
  Tensor out = AcquireValueSlot(xv.rows(), xv.cols(), /*zeroed=*/false);
  for (int r = 0; r < out.rows(); ++r) {
    const float* xrow = xv.row(r);
    const float* brow = bv.row(0);
    float* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] = xrow[c] + brow[c];
  }
  NodeId id = AddNode(Op::kAddBias, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.b = b;
  return id;
}

NodeId Graph::LinearLRel(NodeId x, NodeId w, NodeId b, float alpha) {
  const Tensor& xv = value(x);
  const Tensor& wv = value(w);
  const Tensor& bv = value(b);
  DEEPSD_CHECK(xv.cols() == wv.rows());
  DEEPSD_CHECK(bv.rows() == 1 && bv.cols() == wv.cols());
  DEEPSD_CHECK_MSG(alpha > 0.0f,
                   "LinearLRel requires alpha > 0 (mask from output sign)");
  Parameter* wp = node(w).param;
  if (calibrating_ && wp != nullptr) CalibrateActivation(wp, xv);
  Tensor out = AcquireValueSlot(xv.rows(), wv.cols(), /*zeroed=*/false);
  if (UseQuant(training_, wp, xv, wv)) {
    kernels::GemmBiasLRelQuant(xv.data(), wp->Quantized(), bv.data(),
                               out.data(), xv.rows(), xv.cols(), wv.cols(),
                               alpha, wp->act_absmax);
  } else {
    kernels::GemmBiasLRel(xv.data(), wv.data(), bv.data(), out.data(),
                          xv.rows(), xv.cols(), wv.cols(), alpha);
  }
  NodeId id = AddNode(Op::kLinearLRel, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.b = w;
  n.c = b;
  n.scalar = alpha;
  return id;
}

NodeId Graph::Add(NodeId a, NodeId b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  DEEPSD_CHECK(av.SameShape(bv));
  Tensor out = AcquireValueSlot(av.rows(), av.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    out.flat()[i] = av.flat()[i] + bv.flat()[i];
  }
  NodeId id = AddNode(Op::kAdd, std::move(out));
  Node& n = node(id);
  n.a = a;
  n.b = b;
  return id;
}

NodeId Graph::Sub(NodeId a, NodeId b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  DEEPSD_CHECK(av.SameShape(bv));
  Tensor out = AcquireValueSlot(av.rows(), av.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    out.flat()[i] = av.flat()[i] - bv.flat()[i];
  }
  NodeId id = AddNode(Op::kSub, std::move(out));
  Node& n = node(id);
  n.a = a;
  n.b = b;
  return id;
}

NodeId Graph::Mul(NodeId a, NodeId b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  DEEPSD_CHECK(av.SameShape(bv));
  Tensor out = AcquireValueSlot(av.rows(), av.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    out.flat()[i] = av.flat()[i] * bv.flat()[i];
  }
  NodeId id = AddNode(Op::kMul, std::move(out));
  Node& n = node(id);
  n.a = a;
  n.b = b;
  return id;
}

NodeId Graph::Scale(NodeId a, float s) {
  const Tensor& av = value(a);
  Tensor out = AcquireValueSlot(av.rows(), av.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) out.flat()[i] = av.flat()[i] * s;
  NodeId id = AddNode(Op::kScale, std::move(out));
  Node& n = node(id);
  n.a = a;
  n.scalar = s;
  return id;
}

NodeId Graph::ConcatImpl(const NodeId* parts, size_t count) {
  DEEPSD_CHECK(count > 0);
  int rows = value(parts[0]).rows();
  int cols = 0;
  for (size_t i = 0; i < count; ++i) {
    DEEPSD_CHECK(value(parts[i]).rows() == rows);
    cols += value(parts[i]).cols();
  }
  Tensor out = AcquireValueSlot(rows, cols, /*zeroed=*/false);
  int offset = 0;
  for (size_t i = 0; i < count; ++i) {
    const Tensor& pv = value(parts[i]);
    for (int r = 0; r < rows; ++r) {
      std::copy(pv.row(r), pv.row(r) + pv.cols(), out.row(r) + offset);
    }
    offset += pv.cols();
  }
  NodeId id = AddNode(Op::kConcat, std::move(out));
  node(id).inputs.assign(parts, parts + count);
  return id;
}

NodeId Graph::Concat(const std::vector<NodeId>& parts) {
  return ConcatImpl(parts.data(), parts.size());
}

NodeId Graph::Concat(std::initializer_list<NodeId> parts) {
  return ConcatImpl(parts.begin(), parts.size());
}

NodeId Graph::SliceCols(NodeId x, int begin, int end) {
  const Tensor& xv = value(x);
  DEEPSD_CHECK(begin >= 0 && end <= xv.cols() && begin < end);
  Tensor out = AcquireValueSlot(xv.rows(), end - begin, /*zeroed=*/false);
  for (int r = 0; r < xv.rows(); ++r) {
    std::copy(xv.row(r) + begin, xv.row(r) + end, out.row(r));
  }
  NodeId id = AddNode(Op::kSliceCols, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.i0 = begin;
  return id;
}

NodeId Graph::LeakyRelu(NodeId x, float alpha) {
  const Tensor& xv = value(x);
  Tensor out = AcquireValueSlot(xv.rows(), xv.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    float v = xv.flat()[i];
    out.flat()[i] = v < 0.0f ? v * alpha : v;
  }
  NodeId id = AddNode(Op::kLeakyRelu, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.scalar = alpha;
  return id;
}

NodeId Graph::Softmax(NodeId x) {
  const Tensor& xv = value(x);
  Tensor out = AcquireValueSlot(xv.rows(), xv.cols(), /*zeroed=*/false);
  for (int r = 0; r < xv.rows(); ++r) {
    const float* in = xv.row(r);
    float* o = out.row(r);
    float mx = in[0];
    for (int c = 1; c < xv.cols(); ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (int c = 0; c < xv.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < xv.cols(); ++c) o[c] /= sum;
  }
  NodeId id = AddNode(Op::kSoftmax, std::move(out));
  node(id).a = x;
  return id;
}

NodeId Graph::Dropout(NodeId x, float p) {
  if (!training_ || p <= 0.0f) return x;
  DEEPSD_CHECK_MSG(rng_ != nullptr, "Dropout in training mode needs an Rng");
  const Tensor& xv = value(x);
  Tensor mask = AcquireAuxSlot(xv.rows(), xv.cols(), /*zeroed=*/false);
  float keep = 1.0f - p;
  float scale = 1.0f / keep;
  for (float& m : mask.flat()) {
    m = rng_->Bernoulli(keep) ? scale : 0.0f;
  }
  Tensor out = AcquireValueSlot(xv.rows(), xv.cols(), /*zeroed=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    out.flat()[i] = xv.flat()[i] * mask.flat()[i];
  }
  NodeId id = AddNode(Op::kDropout, std::move(out));
  Node& n = node(id);
  n.a = x;
  n.aux = std::move(mask);  // must outlive forward for the backward pass
  return id;
}

NodeId Graph::Embed(Parameter* table, const std::vector<int>& ids) {
  DEEPSD_CHECK(table != nullptr);
  const Tensor& value = table->value;  // may be a read-only store view
  const int vocab = value.rows();
  const int dim = value.cols();
  Tensor out =
      AcquireValueSlot(static_cast<int>(ids.size()), dim, /*zeroed=*/false);
  for (size_t b = 0; b < ids.size(); ++b) {
    DEEPSD_CHECK_MSG(ids[b] >= 0 && ids[b] < vocab,
                     "embedding id out of range: " + table->name);
    std::copy(value.row(ids[b]), value.row(ids[b]) + dim,
              out.row(static_cast<int>(b)));
  }
  NodeId id = AddNode(Op::kEmbed, std::move(out));
  Node& n = node(id);
  n.param = table;
  n.ids.assign(ids.begin(), ids.end());
  return id;
}

NodeId Graph::GroupWeightedSum(NodeId p, NodeId h, int groups) {
  const Tensor& pv = value(p);
  const Tensor& hv = value(h);
  DEEPSD_CHECK(pv.cols() == groups);
  DEEPSD_CHECK(hv.cols() % groups == 0);
  DEEPSD_CHECK(pv.rows() == hv.rows());
  const int k = hv.cols() / groups;
  Tensor out = AcquireValueSlot(pv.rows(), k, /*zeroed=*/true);
  for (int r = 0; r < pv.rows(); ++r) {
    const float* pr = pv.row(r);
    const float* hr = hv.row(r);
    float* o = out.row(r);
    for (int g = 0; g < groups; ++g) {
      float w = pr[g];
      const float* hg = hr + g * k;
      for (int c = 0; c < k; ++c) o[c] += w * hg[c];
    }
  }
  NodeId id = AddNode(Op::kGroupWeightedSum, std::move(out));
  Node& n = node(id);
  n.a = p;
  n.b = h;
  n.i0 = groups;
  n.i1 = k;
  return id;
}

NodeId Graph::MseLoss(NodeId pred, const Tensor& target) {
  return MseLoss(pred, target, static_cast<double>(value(pred).size()));
}

NodeId Graph::MseLoss(NodeId pred, const Tensor& target, double denom) {
  const Tensor& pv = value(pred);
  DEEPSD_CHECK(pv.SameShape(target));
  DEEPSD_CHECK(denom > 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < pv.size(); ++i) {
    double d = static_cast<double>(pv.flat()[i]) - target.flat()[i];
    sum += d * d;
  }
  Tensor aux = AcquireAuxSlot(target.rows(), target.cols(), /*zeroed=*/false);
  std::copy(target.data(), target.data() + target.size(), aux.data());
  Tensor out = AcquireValueSlot(1, 1, /*zeroed=*/false);
  out.at(0, 0) = static_cast<float>(sum / denom);
  NodeId id = AddNode(Op::kMseLoss, std::move(out));
  Node& n = node(id);
  n.a = pred;
  n.denom = denom;
  n.aux = std::move(aux);
  return id;
}

NodeId Graph::MaeLoss(NodeId pred, const Tensor& target) {
  const Tensor& pv = value(pred);
  DEEPSD_CHECK(pv.SameShape(target));
  double sum = 0.0;
  for (size_t i = 0; i < pv.size(); ++i) {
    sum += std::abs(static_cast<double>(pv.flat()[i]) - target.flat()[i]);
  }
  Tensor aux = AcquireAuxSlot(target.rows(), target.cols(), /*zeroed=*/false);
  std::copy(target.data(), target.data() + target.size(), aux.data());
  Tensor out = AcquireValueSlot(1, 1, /*zeroed=*/false);
  out.at(0, 0) = static_cast<float>(sum / static_cast<double>(pv.size()));
  NodeId id = AddNode(Op::kMaeLoss, std::move(out));
  Node& n = node(id);
  n.a = pred;
  n.aux = std::move(aux);
  return id;
}

void Graph::BackwardNode(Node& n) {
  switch (n.op) {
    case Op::kInput:
      break;
    case Op::kParam: {
      Tensor& dst = param_grad(n.param);
      for (size_t i = 0; i < n.grad.size(); ++i) {
        dst.flat()[i] += n.grad.flat()[i];
      }
      break;
    }
    case Op::kMatMul: {
      const Tensor& dy = n.grad;
      // dX += dY · W^T ; dW += X^T · dY
      MatMulTransposeB(dy, node(n.b).value, &node(n.a).grad);
      MatMulTransposeA(node(n.a).value, dy, &node(n.b).grad);
      break;
    }
    case Op::kAddBias: {
      const Tensor& dy = n.grad;
      Tensor& dx = node(n.a).grad;
      Tensor& db = node(n.b).grad;
      for (int r = 0; r < dy.rows(); ++r) {
        const float* dyr = dy.row(r);
        float* dxr = dx.row(r);
        float* dbr = db.row(0);
        for (int c = 0; c < dy.cols(); ++c) {
          dxr[c] += dyr[c];
          dbr[c] += dyr[c];
        }
      }
      break;
    }
    case Op::kLinearLRel: {
      const Tensor& dy = n.grad;
      // dz = dy ∘ lrel-mask(y); then the unfused trio's gradients with
      // the same per-target accumulation orders: db rows ascending,
      // dX += dz·W^T, dW += X^T·dz.
      Tensor dz = arena_.Acquire(dy.rows(), dy.cols(), /*zeroed=*/false);
      kernels::LRelMaskBackward(n.value.data(), dy.data(), dz.data(),
                                dy.size(), n.scalar);
      kernels::BiasGradAccumulate(dz.data(), node(n.c).grad.row(0), dy.rows(),
                                  dy.cols());
      MatMulTransposeB(dz, node(n.b).value, &node(n.a).grad);
      MatMulTransposeA(node(n.a).value, dz, &node(n.b).grad);
      arena_.Release(std::move(dz));
      break;
    }
    case Op::kAdd: {
      const Tensor& dy = n.grad;
      Tensor& da = node(n.a).grad;
      Tensor& db = node(n.b).grad;
      for (size_t i = 0; i < dy.size(); ++i) {
        da.flat()[i] += dy.flat()[i];
        db.flat()[i] += dy.flat()[i];
      }
      break;
    }
    case Op::kSub: {
      const Tensor& dy = n.grad;
      Tensor& da = node(n.a).grad;
      Tensor& db = node(n.b).grad;
      for (size_t i = 0; i < dy.size(); ++i) {
        da.flat()[i] += dy.flat()[i];
        db.flat()[i] -= dy.flat()[i];
      }
      break;
    }
    case Op::kMul: {
      const Tensor& dy = n.grad;
      Tensor& da = node(n.a).grad;
      Tensor& db = node(n.b).grad;
      const Tensor& av = node(n.a).value;
      const Tensor& bv = node(n.b).value;
      for (size_t i = 0; i < dy.size(); ++i) {
        da.flat()[i] += dy.flat()[i] * bv.flat()[i];
        db.flat()[i] += dy.flat()[i] * av.flat()[i];
      }
      break;
    }
    case Op::kScale: {
      const Tensor& dy = n.grad;
      Tensor& da = node(n.a).grad;
      for (size_t i = 0; i < dy.size(); ++i) {
        da.flat()[i] += dy.flat()[i] * n.scalar;
      }
      break;
    }
    case Op::kConcat: {
      const Tensor& dy = n.grad;
      int offset = 0;
      for (NodeId p : n.inputs) {
        Tensor& dp = node(p).grad;
        for (int r = 0; r < dy.rows(); ++r) {
          const float* src = dy.row(r) + offset;
          float* dst = dp.row(r);
          for (int c = 0; c < dp.cols(); ++c) dst[c] += src[c];
        }
        offset += dp.cols();
      }
      break;
    }
    case Op::kSliceCols: {
      const Tensor& dy = n.grad;
      Tensor& dx = node(n.a).grad;
      for (int r = 0; r < dy.rows(); ++r) {
        const float* src = dy.row(r);
        float* dst = dx.row(r) + n.i0;
        for (int c = 0; c < dy.cols(); ++c) dst[c] += src[c];
      }
      break;
    }
    case Op::kLeakyRelu: {
      const Tensor& dy = n.grad;
      const Tensor& xv = node(n.a).value;
      Tensor& dx = node(n.a).grad;
      for (size_t i = 0; i < dy.size(); ++i) {
        dx.flat()[i] +=
            dy.flat()[i] * (xv.flat()[i] >= 0.0f ? 1.0f : n.scalar);
      }
      break;
    }
    case Op::kSoftmax: {
      const Tensor& dy = n.grad;
      const Tensor& y = n.value;
      Tensor& dx = node(n.a).grad;
      for (int r = 0; r < dy.rows(); ++r) {
        const float* yr = y.row(r);
        const float* dyr = dy.row(r);
        float* dxr = dx.row(r);
        float dot = 0.0f;
        for (int c = 0; c < dy.cols(); ++c) dot += yr[c] * dyr[c];
        for (int c = 0; c < dy.cols(); ++c) {
          dxr[c] += yr[c] * (dyr[c] - dot);
        }
      }
      break;
    }
    case Op::kDropout: {
      const Tensor& dy = n.grad;
      const Tensor& mask = n.aux;
      Tensor& dx = node(n.a).grad;
      for (size_t i = 0; i < dy.size(); ++i) {
        dx.flat()[i] += dy.flat()[i] * mask.flat()[i];
      }
      break;
    }
    case Op::kEmbed: {
      const Tensor& dy = n.grad;
      Tensor& table_grad = param_grad(n.param);
      for (size_t b = 0; b < n.ids.size(); ++b) {
        const float* src = dy.row(static_cast<int>(b));
        float* dst = table_grad.row(n.ids[b]);
        for (int c = 0; c < dy.cols(); ++c) dst[c] += src[c];
      }
      break;
    }
    case Op::kGroupWeightedSum: {
      const Tensor& dy = n.grad;
      const Tensor& pv = node(n.a).value;
      const Tensor& hv = node(n.b).value;
      Tensor& dp = node(n.a).grad;
      Tensor& dh = node(n.b).grad;
      const int groups = n.i0;
      const int k = n.i1;
      for (int r = 0; r < dy.rows(); ++r) {
        const float* dyr = dy.row(r);
        const float* pr = pv.row(r);
        const float* hr = hv.row(r);
        float* dpr = dp.row(r);
        float* dhr = dh.row(r);
        for (int grp = 0; grp < groups; ++grp) {
          const float* hg = hr + grp * k;
          float* dhg = dhr + grp * k;
          float acc = 0.0f;
          for (int c = 0; c < k; ++c) {
            acc += dyr[c] * hg[c];
            dhg[c] += dyr[c] * pr[grp];
          }
          dpr[grp] += acc;
        }
      }
      break;
    }
    case Op::kMseLoss: {
      float dy = n.grad.at(0, 0);
      const Tensor& pv = node(n.a).value;
      Tensor& dp = node(n.a).grad;
      float scale = 2.0f / static_cast<float>(n.denom);
      for (size_t i = 0; i < pv.size(); ++i) {
        dp.flat()[i] += dy * scale * (pv.flat()[i] - n.aux.flat()[i]);
      }
      break;
    }
    case Op::kMaeLoss: {
      float dy = n.grad.at(0, 0);
      const Tensor& pv = node(n.a).value;
      Tensor& dp = node(n.a).grad;
      float scale = 1.0f / static_cast<float>(pv.size());
      for (size_t i = 0; i < pv.size(); ++i) {
        float d = pv.flat()[i] - n.aux.flat()[i];
        dp.flat()[i] +=
            dy * scale * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
      }
      break;
    }
  }
}

void Graph::Backward(NodeId loss) {
  Node& l = node(loss);
  DEEPSD_CHECK_MSG(l.value.rows() == 1 && l.value.cols() == 1,
                   "Backward expects a scalar loss");
  l.grad.at(0, 0) = 1.0f;
  for (int i = loss; i >= 0; --i) BackwardNode(node(i));
}

void Graph::Clear() {
  // Tensors stay parked in their slots so the next replay of the same
  // topology reuses them in place (AcquireValueSlot/AcquireAuxSlot and the
  // grad path in AddNode). Only the dangling parameter bindings go.
  for (size_t i = 0; i < live_; ++i) nodes_[i].param = nullptr;
  live_ = 0;
}

}  // namespace nn
}  // namespace deepsd
