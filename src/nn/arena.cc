#include "nn/arena.h"

#include <algorithm>
#include <utility>

namespace deepsd {
namespace nn {

Tensor TensorArena::Acquire(int rows, int cols, bool zeroed) {
  const size_t elements =
      static_cast<size_t>(rows) * static_cast<size_t>(cols);
  auto it = pool_.find(elements);
  if (it != pool_.end() && !it->second.empty()) {
    std::vector<float> storage = std::move(it->second.back());
    it->second.pop_back();
    ++hits_;
    if (zeroed) std::fill(storage.begin(), storage.end(), 0.0f);
    return Tensor(rows, cols, std::move(storage));
  }
  ++misses_;
  return Tensor(rows, cols);
}

void TensorArena::Release(Tensor&& t) {
  if (t.size() == 0) return;
  std::vector<float> storage = t.ReleaseStorage();
  pool_[storage.size()].push_back(std::move(storage));
}

void TensorArena::Clear() {
  pool_.clear();
  hits_ = 0;
  misses_ = 0;
}

size_t TensorArena::pooled_buffers() const {
  size_t n = 0;
  for (const auto& kv : pool_) n += kv.second.size();
  return n;
}

}  // namespace nn
}  // namespace deepsd
