#include "src/core/explain.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "tests/test_util.h"

namespace deepsd {
namespace core {
namespace {

constexpr int kL = 8;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = deepsd::testing::MakeSmallCity(4, 12, 777);
    feature::FeatureConfig fc;
    fc.window = kL;
    assembler_ = std::make_unique<feature::FeatureAssembler>(&ds_, fc, 0, 10);
    items_ = data::MakeItems(ds_, 10, 12, 500, 1300, 200);
  }

  DeepSDConfig Config() const {
    DeepSDConfig config;
    config.num_areas = ds_.num_areas();
    config.window = kL;
    return config;
  }

  data::OrderDataset ds_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
  std::vector<data::PredictionItem> items_;
};

TEST_F(ExplainTest, CoversEveryWindowedScalar) {
  nn::ParameterStore store;
  util::Rng rng(1);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  feature::ModelInput input = assembler_->AssembleAdvanced(items_[0]);
  auto sens = ExplainPrediction(model, input);
  // 3 signals × 2L + weather 2L + traffic 4L.
  EXPECT_EQ(sens.size(), 3u * 2 * kL + 2 * kL + 4 * kL);
  for (const auto& s : sens) {
    EXPECT_GE(s.lag, 1);
    EXPECT_LE(s.lag, kL);
    EXPECT_FALSE(s.group.empty());
  }
}

TEST_F(ExplainTest, BasicModeSkipsPassengerSignals) {
  nn::ParameterStore store;
  util::Rng rng(2);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  feature::ModelInput input = assembler_->AssembleBasic(items_[0]);
  auto sens = ExplainPrediction(model, input);
  EXPECT_EQ(sens.size(), 2u * kL + 2 * kL + 4 * kL);
  for (const auto& s : sens) {
    EXPECT_NE(s.group.rfind("lc_", 0), 0u);
    EXPECT_NE(s.group.rfind("wt_", 0), 0u);
  }
}

TEST_F(ExplainTest, GradientsMatchDirectProbe) {
  nn::ParameterStore store;
  util::Rng rng(3);
  DeepSDConfig config = Config();
  config.clamp_nonnegative = false;  // keep the probe in the linear region
  DeepSDModel model(config, DeepSDModel::Mode::kBasic, &store, &rng);
  feature::ModelInput input = assembler_->AssembleBasic(items_[1]);

  auto sens = ExplainPrediction(model, input, /*delta=*/1.0);
  // Re-derive one entry by hand: sd_invalid at lag 3 → v_sd[kL + 2].
  std::vector<feature::ModelInput> batch = {input};
  float base = model.Predict(batch)[0];
  feature::ModelInput perturbed = input;
  perturbed.v_sd[kL + 2] += 1.0f;
  batch[0] = perturbed;
  float up = model.Predict(batch)[0];
  for (const auto& s : sens) {
    if (s.group == "sd_invalid" && s.lag == 3) {
      EXPECT_NEAR(s.gradient, up - base, 1e-5);
      return;
    }
  }
  FAIL() << "sd_invalid lag-3 sensitivity not found";
}

TEST_F(ExplainTest, TrainedModelWeightsRecentInvalidOrders) {
  // After training, extra unanswered orders in the immediate past should
  // push the forecast up — and their summed influence should exceed the
  // influence of temperature.
  nn::ParameterStore store;
  util::Rng rng(4);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  auto train_items = data::MakeItems(ds_, 0, 10, 400, 1300, 60);
  core::AssemblerSource train(assembler_.get(), train_items, false);
  TrainConfig tc;
  tc.epochs = 6;
  tc.best_k = 0;
  Trainer(tc).Train(&model, &store, train, train);

  // Busiest test item (largest gap) for a meaningful probe.
  data::PredictionItem busiest = items_[0];
  for (const auto& item : items_) {
    if (item.gap > busiest.gap) busiest = item;
  }
  feature::ModelInput input = assembler_->AssembleBasic(busiest);
  auto sens = ExplainPrediction(model, input);

  double invalid_influence = 0, temp_influence = 0;
  double invalid_signed = 0;
  for (const auto& s : sens) {
    if (s.group == "sd_invalid") {
      invalid_influence += std::abs(s.gradient);
      invalid_signed += s.gradient;
    }
    if (s.group == "wc_temp") temp_influence += std::abs(s.gradient);
  }
  EXPECT_GT(invalid_influence, temp_influence);
  EXPECT_GT(invalid_signed, 0.0)
      << "more unanswered orders should raise the predicted gap";

  auto importance = GroupImportance(sens);
  ASSERT_FALSE(importance.empty());
  double total = 0;
  for (auto& [group, share] : importance) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(importance.front().second, importance.back().second);
}

}  // namespace
}  // namespace core
}  // namespace deepsd
