#ifndef DEEPSD_UTIL_DEADLINE_H_
#define DEEPSD_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace deepsd {
namespace util {

/// Steady-clock microseconds since an arbitrary epoch — the time base every
/// overload-protection component shares (deadlines, rate limiter refills,
/// breaker open windows). Monotonic, so wall-clock jumps never expire or
/// resurrect a request.
inline int64_t NowSteadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A point on the steady clock after which a request's answer is worthless.
///
/// The paper predicts the gap over the *next ten minutes*; an answer that
/// arrives after the dispatch epoch it was meant to inform is not late, it
/// is wrong. Deadline makes that explicit: callers attach one to each
/// request, the serving queue refuses work it cannot finish in time, and
/// the predictor checks it at cheap points between pipeline stages.
///
/// Default-constructed deadlines are infinite (never expire), so existing
/// call sites keep their semantics. Copyable, trivially small — pass by
/// value.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  /// Expires `us` microseconds from now (clamped to now for negatives).
  static Deadline After(int64_t us) {
    return Deadline(NowSteadyUs() + (us > 0 ? us : 0));
  }
  static Deadline AfterMillis(int64_t ms) { return After(ms * 1000); }
  /// Expires at an absolute NowSteadyUs() value (for tests and replay).
  static Deadline AtSteadyUs(int64_t abs_us) { return Deadline(abs_us); }

  bool infinite() const { return deadline_us_ == kInfiniteUs; }

  bool expired() const { return ExpiredAt(NowSteadyUs()); }
  bool ExpiredAt(int64_t now_us) const {
    return !infinite() && now_us >= deadline_us_;
  }

  /// Microseconds left; 0 when expired, a very large value when infinite.
  int64_t remaining_us() const { return RemainingAt(NowSteadyUs()); }
  int64_t RemainingAt(int64_t now_us) const {
    if (infinite()) return kInfiniteUs;
    return deadline_us_ > now_us ? deadline_us_ - now_us : 0;
  }

  /// The absolute expiry in NowSteadyUs() time; kInfiniteUs when infinite.
  int64_t deadline_us() const { return deadline_us_; }

  static constexpr int64_t kInfiniteUs =
      std::numeric_limits<int64_t>::max();

 private:
  explicit Deadline(int64_t deadline_us) : deadline_us_(deadline_us) {}

  int64_t deadline_us_ = kInfiniteUs;
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_DEADLINE_H_
