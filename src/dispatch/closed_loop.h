#ifndef DEEPSD_DISPATCH_CLOSED_LOOP_H_
#define DEEPSD_DISPATCH_CLOSED_LOOP_H_

#include <string>
#include <vector>

#include "dispatch/policies.h"
#include "sim/city_sim.h"

namespace deepsd {
namespace dispatch {

/// Closed-loop dispatch experiment parameters.
struct ClosedLoopConfig {
  /// Days the intervention runs on (usually the test period).
  int day_begin = 0;
  int day_end = 1;
  /// Operating window per day in which the policy acts.
  int t_begin = 420;
  int t_end = 1410;
  /// Decision cadence in minutes.
  int epoch_minutes = 10;
  /// Relocatable drivers per minute across the whole city — the budget the
  /// policy distributes each epoch.
  double drivers_per_minute = 6.0;
};

/// Outcome of one policy's closed-loop run.
struct ClosedLoopResult {
  std::string policy;
  /// Passengers whose final call went unanswered on the eval days.
  size_t baseline_unserved = 0;
  size_t intervened_unserved = 0;
  /// 100·(baseline − intervened)/baseline.
  double reduction_percent = 0;
  /// Total invalid orders for reference.
  size_t baseline_invalid_orders = 0;
  size_t intervened_invalid_orders = 0;
};

/// Unserved-passenger count over [day_begin, day_end): passengers whose
/// last order in the dataset (within those days) is invalid.
size_t CountUnservedPassengers(const data::OrderDataset& dataset,
                               int day_begin, int day_end);

/// Runs `policy` against the world defined by `city_config`:
///
///   1. simulates the no-intervention baseline;
///   2. asks the policy for per-area weights at every decision epoch of the
///      eval window (the policy sees the *baseline* world — a one-step
///      approximation that ignores the feedback of the intervention on the
///      state the policy reads, conservative for every policy equally);
///   3. re-simulates with the allocation injected as extra service
///      capacity (demand realization identical by construction);
///   4. reports unserved-passenger reduction.
ClosedLoopResult RunClosedLoop(const sim::CityConfig& city_config,
                               DispatchPolicy* policy,
                               const ClosedLoopConfig& config);

}  // namespace dispatch
}  // namespace deepsd

#endif  // DEEPSD_DISPATCH_CLOSED_LOOP_H_
