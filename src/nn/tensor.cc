#include "nn/tensor.h"

#include "nn/kernels.h"

namespace deepsd {
namespace nn {

double Tensor::SquaredNorm() const {
  double s = 0.0;
  const float* p = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(p[i]) * p[i];
  return s;
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out, bool accumulate) {
  DEEPSD_CHECK(a.cols() == b.rows());
  if (out->rows() != a.rows() || out->cols() != b.cols()) {
    *out = Tensor(a.rows(), b.cols());
    accumulate = false;
  }
  kernels::Gemm(a.data(), b.data(), out->data(), a.rows(), a.cols(), b.cols(),
                accumulate);
}

void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor* out) {
  DEEPSD_CHECK(a.rows() == b.rows());
  DEEPSD_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  kernels::GemmTransposeA(a.data(), b.data(), out->data(), a.rows(), a.cols(),
                          b.cols());
}

void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor* out) {
  DEEPSD_CHECK(a.cols() == b.cols());
  DEEPSD_CHECK(out->rows() == a.rows() && out->cols() == b.rows());
  kernels::GemmTransposeB(a.data(), b.data(), out->data(), a.rows(), a.cols(),
                          b.rows());
}

}  // namespace nn
}  // namespace deepsd
