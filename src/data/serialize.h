#ifndef DEEPSD_DATA_SERIALIZE_H_
#define DEEPSD_DATA_SERIALIZE_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace deepsd {
namespace data {

/// Writes `dataset` to `path` in a compact binary format ("DSD1"). The file
/// stores raw order / weather / traffic records; indexes are rebuilt on load
/// so the format stays independent of in-memory layout.
util::Status SaveDataset(const OrderDataset& dataset, const std::string& path);

/// Loads a dataset previously written by SaveDataset.
util::Status LoadDataset(const std::string& path, OrderDataset* out);

}  // namespace data
}  // namespace deepsd

#endif  // DEEPSD_DATA_SERIALIZE_H_
