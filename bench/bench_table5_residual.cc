// Reproduces paper Table V (effects of residual learning): Basic and
// Advanced DeepSD with inter-block residual connections vs the plain
// concatenation topology of Fig 14.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Table V: effects of residual learning");

  std::vector<float> targets = exp.TestTargets();
  struct Result {
    double mae, rmse;
  };
  auto run = [&](core::DeepSDModel::Mode mode, bool residual) {
    core::DeepSDConfig config = exp.ModelConfig();
    config.use_residual = residual;
    std::printf("training %s (%s residual)...\n",
                mode == core::DeepSDModel::Mode::kBasic ? "Basic" : "Advanced",
                residual ? "with" : "without");
    auto trained = exp.TrainDeepSD(mode, config, /*seed=*/7);
    eval::Metrics m = eval::ComputeMetrics(trained.test_predictions, targets);
    return Result{m.mae, m.rmse};
  };

  Result basic_with = run(core::DeepSDModel::Mode::kBasic, true);
  Result basic_without = run(core::DeepSDModel::Mode::kBasic, false);
  Result adv_with = run(core::DeepSDModel::Mode::kAdvanced, true);
  Result adv_without = run(core::DeepSDModel::Mode::kAdvanced, false);

  eval::TablePrinter table({"Model", "With Residual MAE", "With Residual RMSE",
                            "Without Residual MAE", "Without Residual RMSE"});
  table.AddRow("Basic DeepSD", {basic_with.mae, basic_with.rmse,
                                basic_without.mae, basic_without.rmse});
  table.AddRow("Advanced DeepSD",
               {adv_with.mae, adv_with.rmse, adv_without.mae,
                adv_without.rmse});
  std::printf("\nTable V. Effects of residual learning\n");
  table.Print();
  std::printf(
      "\nPaper shape to verify: residual learning gives lower error for both "
      "models.\n");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
