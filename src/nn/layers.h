#ifndef DEEPSD_NN_LAYERS_H_
#define DEEPSD_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/parameter.h"

namespace deepsd {
namespace nn {

/// Fully-connected layer y = f(x·W + b) (paper Sec IV-B). The activation is
/// applied by the caller so the layer composes with linear heads and with
/// the softmax of the weight-combination sub-network.
class Linear {
 public:
  /// Creates (or rebinds to, by name) the W:[in,out] and b:[1,out]
  /// parameters in `store`.
  Linear(ParameterStore* store, const std::string& name, int in, int out,
         util::Rng* rng, Init init = Init::kGlorotUniform);

  /// x:[B,in] → [B,out], no activation.
  NodeId Apply(Graph* g, NodeId x) const;

  /// x:[B,in] → lrel(x·W + b):[B,out] via the fused Graph::LinearLRel op
  /// (one kernel pass, no pre-activation node). Requires alpha > 0;
  /// bitwise identical to Apply followed by LeakyRelu.
  NodeId ApplyLRel(Graph* g, NodeId x, float alpha) const;

  int in_dim() const { return w_->value.rows(); }
  int out_dim() const { return w_->value.cols(); }
  Parameter* weight() const { return w_; }
  Parameter* bias() const { return b_; }

 private:
  Parameter* w_;
  Parameter* b_;
};

/// Embedding layer (paper Sec III-A): maps categorical ids into R^dim by
/// row lookup in a trainable [vocab, dim] table.
class Embedding {
 public:
  Embedding(ParameterStore* store, const std::string& name, int vocab, int dim,
            util::Rng* rng);

  /// ids.size()=B → [B, dim].
  NodeId Apply(Graph* g, const std::vector<int>& ids) const;

  int vocab() const { return table_->value.rows(); }
  int dim() const { return table_->value.cols(); }
  Parameter* table() const { return table_; }

  /// Embedded vector of one id (inference convenience; no graph).
  std::vector<float> Lookup(int id) const;

  /// Euclidean distance between two ids in the embedding space — the
  /// measure behind the paper's Table IV.
  double Distance(int id_a, int id_b) const;

 private:
  Parameter* table_;
};

/// One-hot "embedding" used by the representation ablation (paper Table
/// III): fixed identity mapping with no trainable weights.
class OneHot {
 public:
  explicit OneHot(int vocab) : vocab_(vocab) {}
  NodeId Apply(Graph* g, const std::vector<int>& ids) const;
  int dim() const { return vocab_; }

 private:
  int vocab_;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_LAYERS_H_
