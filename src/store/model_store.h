#ifndef DEEPSD_STORE_MODEL_STORE_H_
#define DEEPSD_STORE_MODEL_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/format.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace deepsd {
namespace store {

/// Read-only handle on one mmap'd DSAR1 artifact.
///
/// Open() is O(mmap): it maps the file and validates only the 64-byte
/// header and the section TOC (their CRCs seal the layout metadata, so a
/// corrupt offset can never send a reader out of bounds). Section payloads
/// are *lazily* verified — the first Section() call for a given section
/// CRCs its bytes once and caches the verdict — so opening a multi-MB
/// artifact costs microseconds and replicas that never touch a section
/// never page it in.
///
/// Every failure mode is a typed util::Status: NotFound (missing file),
/// IoError (unmappable / truncated), InvalidArgument (bad magic, CRC
/// mismatch, malformed TOC), FailedPrecondition (the file's min_reader
/// version is newer than this reader). Never UB, never abort — the
/// robustness contract of docs/robustness.md extended to mapped input.
///
/// Thread safety: all const methods are safe to call concurrently; lazy
/// verification is internally synchronized.
class ModelStore {
 public:
  /// Maps and validates `path`. On success `*out` owns the mapping.
  static util::Status Open(const std::string& path,
                           std::shared_ptr<const ModelStore>* out);

  ~ModelStore();

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  const std::string& path() const { return path_; }
  const FileHeader& header() const { return header_; }
  size_t file_size() const { return map_.size(); }
  size_t section_count() const { return toc_.size(); }

  /// The i-th TOC entry (layout metadata only; does not verify payload).
  const SectionEntry& entry(size_t i) const { return toc_[i]; }

  /// Index of the first section of `kind`, or -1.
  int FindSection(const std::string& kind) const;

  /// Pointer/length of a section's payload after verifying its CRC (first
  /// call only; later calls are two atomic loads). InvalidArgument on CRC
  /// mismatch — including any single flipped bit anywhere in the payload.
  util::Status Section(const std::string& kind, const char** data,
                       size_t* size) const;
  util::Status SectionAt(size_t index, const char** data, size_t* size) const;

  /// Eagerly verifies every section (deepsd_store verify).
  util::Status VerifyAll() const;

  /// Outstanding read pins (see Pin). Exposed for tests.
  int64_t pin_count() const {
    return pins_.load(std::memory_order_acquire);
  }

  /// RAII token marking the mapping as actively read. Destroying the
  /// ModelStore while pins are outstanding is a hard CHECK — unmapping
  /// memory a reader may still dereference is the one corruption this
  /// layer cannot turn into a typed error, so it refuses loudly instead.
  /// VersionedModel's epoch reclamation exists to make this impossible in
  /// normal operation (store/versioned_model.h).
  class Pin {
   public:
    Pin() = default;
    explicit Pin(const ModelStore* store) : store_(store) {
      if (store_ != nullptr) {
        store_->pins_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    ~Pin() { Reset(); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin(Pin&& other) noexcept : store_(other.store_) {
      other.store_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Reset();
        store_ = other.store_;
        other.store_ = nullptr;
      }
      return *this;
    }
    void Reset() {
      if (store_ != nullptr) {
        store_->pins_.fetch_sub(1, std::memory_order_acq_rel);
        store_ = nullptr;
      }
    }

   private:
    const ModelStore* store_ = nullptr;
  };
  Pin AcquirePin() const { return Pin(this); }

 private:
  ModelStore() = default;

  util::Status Validate();

  std::string path_;
  util::MappedFile map_;
  FileHeader header_{};
  std::vector<SectionEntry> toc_;

  /// Lazy verification state per section: 0 = unverified, 1 = ok,
  /// 2 = corrupt. Double-checked under verify_mu_ so a section is CRC'd
  /// at most once.
  mutable std::vector<std::atomic<uint8_t>> verified_;
  mutable std::mutex verify_mu_;
  mutable std::atomic<int64_t> pins_{0};
};

}  // namespace store
}  // namespace deepsd

#endif  // DEEPSD_STORE_MODEL_STORE_H_
