#include "obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/json.h"
#include "obs/metrics_io.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace deepsd {
namespace obs {

namespace {

const char* KindName(SloSpec::Kind kind) {
  switch (kind) {
    case SloSpec::Kind::kAvailability: return "availability";
    case SloSpec::Kind::kLatencyP99: return "latency_p99";
    case SloSpec::Kind::kGaugeMax: return "gauge_max";
  }
  return "unknown";
}

util::Status WriteTextFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return util::Status::IoError("short write: " + path);
  }
  return util::Status::OK();
}

double SumWindow(const std::deque<double>& values, size_t window) {
  double sum = 0;
  const size_t n = std::min(window, values.size());
  for (size_t i = values.size() - n; i < values.size(); ++i) sum += values[i];
  return sum;
}

}  // namespace

// --- AlertLog ---------------------------------------------------------------

void AlertLog::Append(const AlertEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<AlertEvent> AlertLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AlertEvent>(events_.begin(), events_.end());
}

size_t AlertLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string AlertLog::ToJsonLine(const AlertEvent& event) {
  std::string out = "{\"seq\":" + std::to_string(event.seq);
  out += ",\"t_ms\":" + json::Number(static_cast<double>(event.t_us) * 1e-3);
  out += ",\"spec\":" + json::Quote(event.spec);
  out += ",\"kind\":" + json::Quote(event.kind);
  out += ",\"value\":" + json::Number(event.value);
  out += ",\"threshold\":" + json::Number(event.threshold);
  out += ",\"message\":" + json::Quote(event.message);
  out += "}";
  return out;
}

util::Status AlertLog::WriteJsonLines(const std::string& path) const {
  std::string body;
  for (const AlertEvent& e : events()) {
    body += ToJsonLine(e);
    body += '\n';
  }
  return WriteTextFile(path, body);
}

// --- FlightRecorder ---------------------------------------------------------

util::Status FlightRecorder::Dump(const TimelineRecorder* timeline,
                                  const AlertLog* alerts,
                                  const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dumped_.load(std::memory_order_relaxed)) return util::Status::OK();

  std::error_code ec;
  std::filesystem::create_directories(config_.bundle_dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create bundle dir " +
                                 config_.bundle_dir + ": " + ec.message());
  }
  const std::string dir = config_.bundle_dir + "/";

  size_t timeline_samples = 0;
  if (timeline != nullptr) {
    std::vector<TimelineSample> tail =
        timeline->TailSamples(config_.last_samples);
    timeline_samples = tail.size();
    DEEPSD_RETURN_IF_ERROR(
        TimelineRecorder::WriteJsonLines(tail, dir + "timeline.jsonl"));
  }
  size_t alert_count = 0;
  if (alerts != nullptr) {
    alert_count = alerts->size();
    DEEPSD_RETURN_IF_ERROR(alerts->WriteJsonLines(dir + "alerts.jsonl"));
  }
  DEEPSD_RETURN_IF_ERROR(TraceExporter::WriteJson(dir + "trace.json"));
  const std::vector<MetricSnapshot> snapshot =
      MetricsRegistry::Global().Snapshot();
  DEEPSD_RETURN_IF_ERROR(WriteJsonLines(snapshot, dir + "metrics.jsonl"));
  DEEPSD_RETURN_IF_ERROR(WriteOpenMetrics(snapshot, dir + "metrics.txt"));

  std::string manifest = "{\n  \"reason\": " + json::Quote(reason) + ",\n";
  manifest += "  \"timeline_samples\": " + std::to_string(timeline_samples) +
              ",\n";
  manifest += "  \"alerts\": " + std::to_string(alert_count) + ",\n";
  manifest += "  \"dropped_spans\": " +
              std::to_string(TraceExporter::dropped_count()) + ",\n";
  manifest +=
      "  \"files\": [\"alerts.jsonl\", \"timeline.jsonl\", \"trace.json\", "
      "\"metrics.jsonl\", \"metrics.txt\"]\n}\n";
  DEEPSD_RETURN_IF_ERROR(WriteTextFile(dir + "manifest.json", manifest));

  dumped_.store(true, std::memory_order_release);
  return util::Status::OK();
}

// --- SloMonitor -------------------------------------------------------------

SloMonitor::SloMonitor(std::vector<SloSpec> specs, MetricsRegistry* registry)
    : specs_(std::move(specs)),
      registry_(registry),
      states_(specs_.size()) {}

bool SloMonitor::EvaluateSpec(const SloSpec& spec, SpecState* state,
                              const TimelineSample& sample, double* value,
                              double* threshold) {
  auto delta_of = [&sample](const std::string& name) {
    auto it = sample.counter_deltas.find(name);
    return it == sample.counter_deltas.end() ? 0.0 : it->second;
  };
  auto metric_of = [&sample](const std::string& name) -> const MetricSnapshot* {
    for (const MetricSnapshot& m : sample.metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };

  switch (spec.kind) {
    case SloSpec::Kind::kAvailability: {
      double bad = 0;
      for (const std::string& name : spec.bad_counters) bad += delta_of(name);
      state->good.push_back(delta_of(spec.good_counter));
      state->bad.push_back(bad);
      const size_t keep = static_cast<size_t>(std::max(spec.long_window, 1));
      while (state->good.size() > keep) {
        state->good.pop_front();
        state->bad.pop_front();
      }
      const double budget = std::max(1.0 - spec.objective, 1e-9);
      auto burn = [&](int window) {
        const double good = SumWindow(state->good, static_cast<size_t>(window));
        const double bad_sum =
            SumWindow(state->bad, static_cast<size_t>(window));
        const double total = good + bad_sum;
        if (total <= 0) return 0.0;
        return (bad_sum / total) / budget;
      };
      const double good_long =
          SumWindow(state->good, static_cast<size_t>(spec.long_window));
      const double bad_long =
          SumWindow(state->bad, static_cast<size_t>(spec.long_window));
      const double burn_short = burn(spec.short_window);
      const double burn_long = burn(spec.long_window);
      *value = std::min(burn_short, burn_long);
      *threshold = spec.burn_threshold;
      registry_->GetGauge("slo/" + spec.name + "_burn")->Set(*value);
      // Too little traffic in the long window proves nothing either way.
      if (good_long + bad_long < spec.min_events) return false;
      return burn_short > spec.burn_threshold &&
             burn_long > spec.burn_threshold;
    }
    case SloSpec::Kind::kLatencyP99:
    case SloSpec::Kind::kGaugeMax: {
      const MetricSnapshot* m = metric_of(spec.metric);
      double measured = 0;
      if (m != nullptr) {
        measured = spec.kind == SloSpec::Kind::kLatencyP99 ? m->p99 : m->value;
      }
      *value = measured;
      *threshold = spec.bound;
      registry_->GetGauge("slo/" + spec.name + "_value")->Set(measured);
      if (measured > spec.bound) {
        ++state->breach_streak;
      } else {
        state->breach_streak = 0;
      }
      return state->breach_streak >= std::max(spec.short_window, 1);
    }
  }
  return false;
}

void SloMonitor::Evaluate(const TimelineSample& sample,
                          const TimelineRecorder* timeline) {
  std::vector<AlertEvent> fired_now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int firing_count = 0;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const SloSpec& spec = specs_[i];
      SpecState& state = states_[i];
      double value = 0, threshold = 0;
      const bool breach = EvaluateSpec(spec, &state, sample, &value,
                                       &threshold);
      if (breach) {
        state.healthy_streak = 0;
        if (!state.firing) {
          state.firing = true;
          ++fired_;
          AlertEvent event;
          event.seq = sample.seq;
          event.t_us = sample.t_us;
          event.spec = spec.name;
          event.kind = KindName(spec.kind);
          event.value = value;
          event.threshold = threshold;
          event.message = util::StrFormat(
              "SLO %s breached: %s %.4g exceeds %.4g", spec.name.c_str(),
              event.kind.c_str(), value, threshold);
          fired_now.push_back(event);
        }
      } else if (state.firing) {
        if (++state.healthy_streak >= std::max(spec.clear_scrapes, 1)) {
          state.firing = false;
          state.healthy_streak = 0;
        }
      }
      if (state.firing) ++firing_count;
    }
    registry_->GetGauge("slo/firing")->Set(static_cast<double>(firing_count));
  }
  // Alert emission and the flight-recorder dump run outside mu_: the dump
  // re-enters the registry and the timeline ring.
  for (const AlertEvent& event : fired_now) {
    registry_->GetCounter("slo/alerts")->Inc();
    if (alerts_ != nullptr) alerts_->Append(event);
  }
  if (!fired_now.empty() && flight_ != nullptr) {
    util::Status st = flight_->Dump(timeline, alerts_,
                                    "alert: " + fired_now.front().message);
    if (!st.ok()) {
      std::fprintf(stderr, "flight recorder dump failed: %s\n",
                   st.ToString().c_str());
    }
  }
}

uint64_t SloMonitor::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool SloMonitor::firing(const std::string& spec_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == spec_name) return states_[i].firing;
  }
  return false;
}

std::vector<SloSpec> DefaultServingSlos(double availability_objective,
                                        double queue_wait_p99_us,
                                        double mae_bound) {
  std::vector<SloSpec> specs;
  if (availability_objective > 0) {
    SloSpec avail;
    avail.name = "serving-availability";
    avail.kind = SloSpec::Kind::kAvailability;
    avail.good_counter = "serving/admitted";
    avail.bad_counters = {"serving/shed_queue_full", "serving/shed_deadline",
                          "serving/shed_rate_limited", "serving/shed_breaker",
                          "serving/shed_draining"};
    avail.objective = availability_objective;
    specs.push_back(std::move(avail));
  }
  if (queue_wait_p99_us > 0) {
    SloSpec latency;
    latency.name = "serving-queue-wait-p99";
    latency.kind = SloSpec::Kind::kLatencyP99;
    latency.metric = "serving/queue_wait_us";
    latency.bound = queue_wait_p99_us;
    specs.push_back(std::move(latency));
  }
  if (mae_bound > 0) {
    SloSpec mae;
    mae.name = "accuracy-mae";
    mae.kind = SloSpec::Kind::kGaugeMax;
    mae.metric = "accuracy/mae";
    mae.bound = mae_bound;
    specs.push_back(std::move(mae));
  }
  return specs;
}

std::vector<SloSpec> DefaultLearnSlos(double watch_mae_ratio_bound,
                                      double rejected_candidates_bound) {
  std::vector<SloSpec> specs;
  if (watch_mae_ratio_bound > 0) {
    SloSpec regression;
    regression.name = "learn-post-promotion-regression";
    regression.kind = SloSpec::Kind::kGaugeMax;
    regression.metric = "learn/watch_mae_ratio";
    regression.bound = watch_mae_ratio_bound;
    // The watchdog already rolls back on the first breaching evaluation;
    // fire on the first breaching scrape too so the alert and the rollback
    // name the same incident.
    regression.short_window = 1;
    specs.push_back(std::move(regression));
  }
  if (rejected_candidates_bound > 0) {
    SloSpec rejected;
    rejected.name = "learn-candidates-rejected";
    rejected.kind = SloSpec::Kind::kGaugeMax;
    rejected.metric = "learn/candidates_rejected_total";
    rejected.bound = rejected_candidates_bound;
    rejected.short_window = 1;
    specs.push_back(std::move(rejected));
  }
  return specs;
}

}  // namespace obs
}  // namespace deepsd
