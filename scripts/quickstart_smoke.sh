#!/usr/bin/env bash
# Quickstart example smoke: run the end-to-end example with an explicit
# scratch path for the saved model — nothing may land in the repo root —
# then verify the artifact it claims to save really exists and parses.
#
# Usage: scripts/quickstart_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

MODEL="$SCRATCH/quickstart_model.bin"
"$BUILD_DIR/examples/quickstart" "$MODEL"
test -s "$MODEL"
"$BUILD_DIR/tools/deepsd_model_info" --params="$MODEL" > /dev/null
echo "quickstart smoke OK: model regenerated at $MODEL"
