#ifndef DEEPSD_BASELINES_GBDT_H_
#define DEEPSD_BASELINES_GBDT_H_

#include <memory>
#include <vector>

#include "baselines/tree.h"

namespace deepsd {
namespace baselines {

/// Gradient-boosted regression trees with squared loss (the XGBoost
/// baseline of paper Table II, reimplemented histogram-style).
struct GbdtConfig {
  int num_trees = 100;
  double learning_rate = 0.1;
  /// Row subsample per tree (stochastic gradient boosting).
  double subsample = 0.8;
  TreeConfig tree;
  uint64_t seed = 17;
};

class Gbdt {
 public:
  explicit Gbdt(const GbdtConfig& config) : config_(config) {}

  /// Fits on raw features; binning happens internally.
  void Fit(const FeatureMatrix& X, const std::vector<float>& y);

  std::vector<float> Predict(const FeatureMatrix& X) const;
  float PredictRow(const float* features) const;

  /// Training MSE after each boosting round (monotonicity is tested).
  const std::vector<double>& train_curve() const { return train_curve_; }
  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  GbdtConfig config_;
  std::unique_ptr<BinnedMatrix> binner_;
  std::vector<RegressionTree> trees_;
  float base_prediction_ = 0;
  std::vector<double> train_curve_;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_GBDT_H_
