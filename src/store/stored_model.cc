#include "store/stored_model.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "data/types.h"
#include "store/artifact.h"
#include "util/byte_io.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace deepsd {
namespace store {

namespace {

constexpr uint32_t kManifestCodecVersion = 1;
constexpr uint32_t kParamsIndexCodecVersion = 1;

util::Status Malformed(const std::string& what) {
  return util::Status::InvalidArgument("model store artifact: " + what);
}

}  // namespace

std::vector<char> EncodeManifest(const Manifest& manifest) {
  util::ByteWriter w;
  w.PutPod<uint32_t>(kManifestCodecVersion);
  w.PutString(manifest.version_id);
  w.PutPod<uint8_t>(
      manifest.mode == core::DeepSDModel::Mode::kAdvanced ? 1 : 0);
  const core::DeepSDConfig& c = manifest.config;
  w.PutPod<int32_t>(c.window);
  w.PutPod<int32_t>(c.num_areas);
  w.PutPod<int32_t>(c.area_embed_dim);
  w.PutPod<int32_t>(c.time_vocab);
  w.PutPod<int32_t>(c.time_embed_dim);
  w.PutPod<int32_t>(c.week_embed_dim);
  w.PutPod<int32_t>(c.weather_vocab);
  w.PutPod<int32_t>(c.weather_embed_dim);
  w.PutPod<int32_t>(c.hidden1);
  w.PutPod<int32_t>(c.hidden2);
  w.PutPod<int32_t>(c.proj_dim);
  w.PutPod<float>(c.dropout);
  w.PutPod<float>(c.leaky_alpha);
  w.PutPod<uint8_t>(c.use_weather ? 1 : 0);
  w.PutPod<uint8_t>(c.use_traffic ? 1 : 0);
  w.PutPod<uint8_t>(c.use_last_call ? 1 : 0);
  w.PutPod<uint8_t>(c.use_waiting_time ? 1 : 0);
  w.PutPod<uint8_t>(c.uniform_weekday_weights ? 1 : 0);
  w.PutPod<uint8_t>(c.use_residual ? 1 : 0);
  w.PutPod<uint8_t>(c.use_embedding ? 1 : 0);
  w.PutPod<uint8_t>(c.clamp_nonnegative ? 1 : 0);
  return w.TakeBytes();
}

util::Status DecodeManifest(const char* data, size_t size, Manifest* out) {
  util::ByteReader r(data, size);
  uint32_t codec = 0;
  if (!r.GetPod(&codec)) return Malformed("truncated manifest");
  if (codec != kManifestCodecVersion) {
    return Malformed(
        util::StrFormat("unknown manifest codec version %u", codec));
  }
  Manifest m;
  uint8_t mode = 0;
  if (!r.GetString(&m.version_id, /*max_len=*/4096) || !r.GetPod(&mode)) {
    return Malformed("truncated manifest");
  }
  if (mode > 1) return Malformed("manifest mode byte out of range");
  m.mode = mode == 1 ? core::DeepSDModel::Mode::kAdvanced
                     : core::DeepSDModel::Mode::kBasic;
  core::DeepSDConfig& c = m.config;
  uint8_t use_weather = 0, use_traffic = 0, use_last_call = 0;
  uint8_t use_waiting_time = 0, uniform_weekday = 0, use_residual = 0;
  uint8_t use_embedding = 0, clamp_nonnegative = 0;
  if (!r.GetPod(&c.window) || !r.GetPod(&c.num_areas) ||
      !r.GetPod(&c.area_embed_dim) || !r.GetPod(&c.time_vocab) ||
      !r.GetPod(&c.time_embed_dim) || !r.GetPod(&c.week_embed_dim) ||
      !r.GetPod(&c.weather_vocab) || !r.GetPod(&c.weather_embed_dim) ||
      !r.GetPod(&c.hidden1) || !r.GetPod(&c.hidden2) ||
      !r.GetPod(&c.proj_dim) || !r.GetPod(&c.dropout) ||
      !r.GetPod(&c.leaky_alpha) || !r.GetPod(&use_weather) ||
      !r.GetPod(&use_traffic) || !r.GetPod(&use_last_call) ||
      !r.GetPod(&use_waiting_time) || !r.GetPod(&uniform_weekday) ||
      !r.GetPod(&use_residual) || !r.GetPod(&use_embedding) ||
      !r.GetPod(&clamp_nonnegative)) {
    return Malformed("truncated manifest");
  }
  if (r.remaining() != 0) return Malformed("trailing bytes after manifest");
  if (c.window <= 0 || c.num_areas <= 0 || c.time_vocab <= 0 ||
      c.hidden1 <= 0 || c.hidden2 <= 0 || c.proj_dim <= 0) {
    return Malformed("manifest config dimensions out of range");
  }
  if (!std::isfinite(c.dropout) || !std::isfinite(c.leaky_alpha)) {
    return Malformed("manifest config has non-finite values");
  }
  c.use_weather = use_weather != 0;
  c.use_traffic = use_traffic != 0;
  c.use_last_call = use_last_call != 0;
  c.use_waiting_time = use_waiting_time != 0;
  c.uniform_weekday_weights = uniform_weekday != 0;
  c.use_residual = use_residual != 0;
  c.use_embedding = use_embedding != 0;
  c.clamp_nonnegative = clamp_nonnegative != 0;
  *out = std::move(m);
  return util::Status::OK();
}

std::vector<char> EncodeEaSection(
    const baselines::EmpiricalAverage::DenseTables& tables) {
  DEEPSD_CHECK(tables.num_areas >= 0);
  DEEPSD_CHECK(tables.area_means.size() ==
               static_cast<size_t>(tables.num_areas));
  DEEPSD_CHECK(tables.cell_means.size() ==
               static_cast<size_t>(tables.num_areas) * data::kMinutesPerDay);
  EaSectionHeader header;
  header.num_areas = static_cast<uint32_t>(tables.num_areas);
  header.slots = static_cast<uint32_t>(data::kMinutesPerDay);
  header.global_mean = tables.global_mean;
  header.flags = 0;
  std::vector<char> out;
  out.reserve(sizeof(header) +
              (tables.area_means.size() + tables.cell_means.size()) *
                  sizeof(float));
  const char* h = reinterpret_cast<const char*>(&header);
  out.insert(out.end(), h, h + sizeof(header));
  const char* a = reinterpret_cast<const char*>(tables.area_means.data());
  out.insert(out.end(), a, a + tables.area_means.size() * sizeof(float));
  const char* c = reinterpret_cast<const char*>(tables.cell_means.data());
  out.insert(out.end(), c, c + tables.cell_means.size() * sizeof(float));
  return out;
}

util::Status MappedEmpiricalAverage::Create(
    const char* data, size_t size,
    std::unique_ptr<MappedEmpiricalAverage>* out) {
  EaSectionHeader header;
  if (size < sizeof(header)) return Malformed("ea section truncated");
  std::memcpy(&header, data, sizeof(header));
  if (header.flags != 0) return Malformed("ea section has unknown flags");
  if (header.slots != static_cast<uint32_t>(data::kMinutesPerDay)) {
    return Malformed(
        util::StrFormat("ea section slot count %u != minutes per day %d",
                        header.slots, data::kMinutesPerDay));
  }
  const uint64_t floats =
      static_cast<uint64_t>(header.num_areas) +
      static_cast<uint64_t>(header.num_areas) * header.slots;
  const uint64_t expected = sizeof(header) + floats * sizeof(float);
  if (expected != size) {
    return Malformed(util::StrFormat(
        "ea section size %zu disagrees with its header (expected %llu)",
        size, static_cast<unsigned long long>(expected)));
  }
  std::unique_ptr<MappedEmpiricalAverage> ea(new MappedEmpiricalAverage());
  ea->header_ = header;
  // Sections are page-aligned in the file and the header is 16 bytes, so
  // these float pointers are aligned.
  ea->area_means_ = reinterpret_cast<const float*>(data + sizeof(header));
  ea->cell_means_ = ea->area_means_ + header.num_areas;
  *out = std::move(ea);
  return util::Status::OK();
}

float MappedEmpiricalAverage::Predict(int area, int t) const {
  // Same fallback chain as EmpiricalAverage::Predict: cell mean, then area
  // mean, then global mean, then 0. NaN marks an absent table entry.
  if (area >= 0 && area < static_cast<int>(header_.num_areas)) {
    if (t >= 0 && t < static_cast<int>(header_.slots)) {
      const float cell =
          cell_means_[static_cast<size_t>(area) * header_.slots + t];
      if (!std::isnan(cell)) return cell;
    }
    const float area_mean = area_means_[area];
    if (!std::isnan(area_mean)) return area_mean;
  }
  if (!std::isnan(header_.global_mean)) return header_.global_mean;
  return 0.0f;
}

void EncodeParamsSections(const nn::ParameterStore& params,
                          ParamEncoding encoding, std::vector<char>* idx,
                          std::vector<char>* blob) {
  idx->clear();
  blob->clear();
  util::ByteWriter w;
  w.PutPod<uint32_t>(kParamsIndexCodecVersion);
  w.PutPod<uint64_t>(params.parameters().size());
  for (const auto& p : params.parameters()) {
    const nn::Tensor& value = p->value;  // may itself be a store view
    TensorRecord rec;
    rec.rows = value.rows();
    rec.cols = value.cols();
    rec.act_absmax = p->act_absmax;
    // The DSP2 quantized policy: only calibrated GEMM weights go int8;
    // biases and embedding tables stay fp32 (see ParameterStore::Save).
    const bool int8_tensor = encoding == ParamEncoding::kQuant &&
                             value.rows() > 1 && p->act_absmax > 0.0f;
    if (int8_tensor) {
      const nn::kernels::QuantizedWeights& q = p->Quantized();
      rec.encoding = TensorEncoding::kInt8;
      rec.data_off = AppendAligned(blob, q.data.data(), q.data.size(), 64);
      rec.data_bytes = q.data.size();
      rec.scales_off = AppendAligned(blob, q.scales.data(),
                                     q.scales.size() * sizeof(float), 64);
      rec.scales_bytes = q.scales.size() * sizeof(float);
    } else if (encoding == ParamEncoding::kCompressed) {
      util::ByteWriter block;
      util::PutFloatBlock(&block, value.data(), value.size());
      rec.encoding = TensorEncoding::kCompressedF32;
      rec.data_off =
          AppendAligned(blob, block.bytes().data(), block.size(), 64);
      rec.data_bytes = block.size();
    } else {
      rec.encoding = TensorEncoding::kRawF32;
      rec.data_off = AppendAligned(blob, value.data(),
                                   value.size() * sizeof(float), 64);
      rec.data_bytes = value.size() * sizeof(float);
    }
    w.PutString(p->name);
    w.PutPod<int32_t>(rec.rows);
    w.PutPod<int32_t>(rec.cols);
    w.PutPod<float>(rec.act_absmax);
    w.PutPod<uint8_t>(static_cast<uint8_t>(rec.encoding));
    w.PutPod<uint64_t>(rec.data_off);
    w.PutPod<uint64_t>(rec.data_bytes);
    w.PutPod<uint64_t>(rec.scales_off);
    w.PutPod<uint64_t>(rec.scales_bytes);
  }
  *idx = w.TakeBytes();
}

util::Status DecodeParamsIndex(const char* data, size_t size,
                               uint64_t blob_size,
                               std::vector<TensorRecord>* out) {
  out->clear();
  util::ByteReader r(data, size);
  uint32_t codec = 0;
  uint64_t count = 0;
  if (!r.GetPod(&codec)) return Malformed("truncated params index");
  if (codec != kParamsIndexCodecVersion) {
    return Malformed(
        util::StrFormat("unknown params index codec version %u", codec));
  }
  if (!r.GetPod(&count)) return Malformed("truncated params index");
  const auto in_blob = [blob_size](uint64_t off, uint64_t bytes) {
    return bytes <= blob_size && off <= blob_size - bytes;
  };
  for (uint64_t i = 0; i < count; ++i) {
    TensorRecord rec;
    uint8_t enc = 0;
    if (!r.GetString(&rec.name, /*max_len=*/4096) || !r.GetPod(&rec.rows) ||
        !r.GetPod(&rec.cols) || !r.GetPod(&rec.act_absmax) ||
        !r.GetPod(&enc) || !r.GetPod(&rec.data_off) ||
        !r.GetPod(&rec.data_bytes) || !r.GetPod(&rec.scales_off) ||
        !r.GetPod(&rec.scales_bytes)) {
      return Malformed("truncated params index");
    }
    if (rec.rows < 0 || rec.cols < 0) {
      return Malformed("params index tensor shape out of range");
    }
    if (!std::isfinite(rec.act_absmax) || rec.act_absmax < 0.0f) {
      return Malformed("params index calibration out of range");
    }
    if (enc > static_cast<uint8_t>(TensorEncoding::kInt8)) {
      return Malformed(util::StrFormat(
          "unknown tensor encoding %u for parameter '%s'", enc,
          rec.name.c_str()));
    }
    rec.encoding = static_cast<TensorEncoding>(enc);
    if (!in_blob(rec.data_off, rec.data_bytes)) {
      return Malformed("params index tensor data out of bounds");
    }
    const uint64_t elems =
        static_cast<uint64_t>(rec.rows) * static_cast<uint64_t>(rec.cols);
    switch (rec.encoding) {
      case TensorEncoding::kRawF32:
        if (rec.data_bytes != elems * sizeof(float)) {
          return Malformed("raw tensor byte count disagrees with its shape");
        }
        if (rec.data_off % alignof(float) != 0) {
          return Malformed("raw tensor data is misaligned");
        }
        break;
      case TensorEncoding::kCompressedF32:
        break;  // self-describing block; decoded length is checked at bind
      case TensorEncoding::kInt8:
        if (rec.data_bytes != elems) {
          return Malformed("int8 tensor byte count disagrees with its shape");
        }
        if (rec.scales_bytes !=
                static_cast<uint64_t>(rec.cols) * sizeof(float) ||
            !in_blob(rec.scales_off, rec.scales_bytes) ||
            rec.scales_off % alignof(float) != 0) {
          return Malformed("int8 tensor scales out of bounds");
        }
        break;
    }
    out->push_back(std::move(rec));
  }
  if (r.remaining() != 0) {
    return Malformed("trailing bytes after params index");
  }
  return util::Status::OK();
}

util::Status StoredModel::Open(const std::string& path,
                               std::shared_ptr<const StoredModel>* out) {
  std::shared_ptr<StoredModel> sm(new StoredModel());
  DEEPSD_RETURN_IF_ERROR(ModelStore::Open(path, &sm->store_));
  sm->pin_ = sm->store_->AcquirePin();
  DEEPSD_RETURN_IF_ERROR(sm->Bind());
  *out = std::move(sm);
  return util::Status::OK();
}

util::Status StoredModel::Bind() {
  const char* bytes = nullptr;
  size_t size = 0;
  DEEPSD_RETURN_IF_ERROR(store_->Section(kSectionManifest, &bytes, &size));
  DEEPSD_RETURN_IF_ERROR(DecodeManifest(bytes, size, &manifest_));

  const char* idx_bytes = nullptr;
  size_t idx_size = 0;
  DEEPSD_RETURN_IF_ERROR(
      store_->Section(kSectionParamsIndex, &idx_bytes, &idx_size));
  const char* blob = nullptr;
  size_t blob_size = 0;
  DEEPSD_RETURN_IF_ERROR(
      store_->Section(kSectionParamsBlob, &blob, &blob_size));
  std::vector<TensorRecord> records;
  DEEPSD_RETURN_IF_ERROR(
      DecodeParamsIndex(idx_bytes, idx_size, blob_size, &records));

  // Rebuild the model structure; the init values are immediately
  // overwritten by the artifact binds below (and Bind fails loudly if any
  // parameter would survive unbound).
  params_ = std::make_unique<nn::ParameterStore>();
  util::Rng rng(1);
  model_ = std::make_unique<core::DeepSDModel>(manifest_.config,
                                               manifest_.mode, params_.get(),
                                               &rng);

  std::unordered_map<std::string, const TensorRecord*> by_name;
  by_name.reserve(records.size());
  for (const TensorRecord& rec : records) by_name[rec.name] = &rec;

  std::string missing;
  for (auto& p : params_->parameters()) {
    const auto it = by_name.find(p->name);
    if (it == by_name.end()) {
      // A stored model must never serve random initialization: collect
      // and report rather than silently keeping the fresh init.
      if (!missing.empty()) missing += ", ";
      missing += p->name;
      continue;
    }
    const TensorRecord& rec = *it->second;
    if (rec.rows != p->value.rows() || rec.cols != p->value.cols()) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "model store %s: parameter '%s' is [%d, %d] in the artifact but "
          "the manifest config builds it as [%d, %d]",
          store_->path().c_str(), p->name.c_str(), rec.rows, rec.cols,
          p->value.rows(), p->value.cols()));
    }
    const size_t elems = static_cast<size_t>(rec.rows) * rec.cols;
    switch (rec.encoding) {
      case TensorEncoding::kRawF32: {
        const float* src =
            reinterpret_cast<const float*>(blob + rec.data_off);
        for (size_t i = 0; i < elems; ++i) {
          if (!std::isfinite(src[i])) {
            return Malformed("non-finite value for parameter '" + p->name +
                             "'");
          }
        }
        p->InstallValue(nn::Tensor::View(src, rec.rows, rec.cols),
                        rec.act_absmax);
        break;
      }
      case TensorEncoding::kCompressedF32: {
        util::ByteReader r(blob + rec.data_off, rec.data_bytes);
        nn::Tensor t(rec.rows, rec.cols);
        if ((elems > 0 && !util::GetFloatBlock(&r, t.data(), elems)) ||
            r.remaining() != 0) {
          return Malformed("corrupt compressed block for parameter '" +
                           p->name + "'");
        }
        for (float v : t.flat()) {
          if (!std::isfinite(v)) {
            return Malformed("non-finite value for parameter '" + p->name +
                             "'");
          }
        }
        p->InstallValue(std::move(t), rec.act_absmax);
        break;
      }
      case TensorEncoding::kInt8: {
        nn::kernels::QuantizedWeights qw;
        qw.rows = rec.rows;
        qw.cols = rec.cols;
        qw.data.resize(elems);
        if (elems > 0) {
          std::memcpy(qw.data.data(), blob + rec.data_off, elems);
        }
        qw.scales.resize(static_cast<size_t>(rec.cols));
        if (rec.cols > 0) {
          std::memcpy(qw.scales.data(), blob + rec.scales_off,
                      rec.scales_bytes);
        }
        for (float s : qw.scales) {
          if (!std::isfinite(s) || s < 0.0f) {
            return Malformed("corrupt int8 scales for parameter '" +
                             p->name + "'");
          }
        }
        // Dequantize into fp32 exactly as the DSP2 quantized loader does,
        // so every kernel mode serves the same weights as a replica that
        // loaded the quantized parameter file.
        nn::Tensor t(rec.rows, rec.cols);
        for (int row = 0; row < rec.rows; ++row) {
          for (int col = 0; col < rec.cols; ++col) {
            const size_t i = static_cast<size_t>(row) * rec.cols + col;
            t.data()[i] = static_cast<float>(qw.data[i]) * qw.scales[col];
          }
        }
        p->InstallValue(std::move(t), rec.act_absmax);
        p->InstallQuantized(std::move(qw));
        break;
      }
    }
  }
  if (!missing.empty()) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "model store %s: artifact does not cover model parameter(s): %s",
        store_->path().c_str(), missing.c_str()));
  }

  // A stored model is immutable serving state: nothing ever trains it, so
  // the full-size gradient tensors ParameterStore::Create allocated are dead
  // weight. Releasing them makes N replicas of one raw-encoded artifact cost
  // per-replica metadata, not N private copies of the parameter footprint.
  for (auto& p : params_->parameters()) {
    p->grad = nn::Tensor();
  }

  if (store_->FindSection(kSectionEa) >= 0) {
    const char* ea_bytes = nullptr;
    size_t ea_size = 0;
    DEEPSD_RETURN_IF_ERROR(store_->Section(kSectionEa, &ea_bytes, &ea_size));
    DEEPSD_RETURN_IF_ERROR(
        MappedEmpiricalAverage::Create(ea_bytes, ea_size, &ea_));
  }
  return util::Status::OK();
}

}  // namespace store
}  // namespace deepsd
