#ifndef DEEPSD_BASELINES_TREE_H_
#define DEEPSD_BASELINES_TREE_H_

#include <vector>

#include "baselines/binned.h"
#include "util/rng.h"

namespace deepsd {
namespace baselines {

/// CART regression-tree parameters (variance-reduction splits over
/// histogram bins).
struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 20;
  double min_gain = 1e-7;
  /// Fraction of features considered at each split (RF-style column
  /// subsampling; 1.0 = all).
  double colsample = 1.0;
};

/// A single histogram-based regression tree. Fits targets (or gradients,
/// when used inside GBDT) by greedy variance-reduction splitting.
class RegressionTree {
 public:
  explicit RegressionTree(const TreeConfig& config) : config_(config) {}

  /// Fits on the rows listed in `row_indices` of the binned matrix.
  /// `targets` is indexed by absolute row id.
  void Fit(const BinnedMatrix& X, const std::vector<float>& targets,
           const std::vector<int>& row_indices, util::Rng* rng);

  /// Predicts one binned row.
  float PredictRow(const BinnedMatrix& X, int row) const;
  /// Predicts a raw (un-binned) feature row using the binner's thresholds.
  float PredictRaw(const BinnedMatrix& binner, const float* features) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;     // -1 ⇒ leaf
    uint8_t bin = 0;      // go left if code <= bin
    float threshold = 0;  // raw-value threshold for PredictRaw
    float value = 0;      // leaf prediction
    int left = -1;
    int right = -1;
  };

  int Build(const BinnedMatrix& X, const std::vector<float>& targets,
            std::vector<int>& rows, int begin, int end, int depth,
            util::Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_TREE_H_
