#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/logging.h"

namespace deepsd {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status st;
    Status::Code code;
    const char* rendered;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad"), Status::Code::kInvalidArgument,
       "InvalidArgument: bad"},
      {Status::NotFound("x"), Status::Code::kNotFound, "NotFound: x"},
      {Status::OutOfRange("y"), Status::Code::kOutOfRange, "OutOfRange: y"},
      {Status::FailedPrecondition("z"), Status::Code::kFailedPrecondition,
       "FailedPrecondition: z"},
      {Status::IoError("io"), Status::Code::kIoError, "IoError: io"},
      {Status::Internal("i"), Status::Code::kInternal, "Internal: i"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.st.ok());
    EXPECT_EQ(c.st.code(), c.code);
    EXPECT_EQ(c.st.ToString(), c.rendered);
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    DEEPSD_RETURN_IF_ERROR(fails());
    return Status::OK();  // unreachable
  };
  Status st = outer();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "inner");

  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer2 = [&]() -> Status {
    DEEPSD_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer2().message(), "reached");
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped without crashing.
  DEEPSD_LOG(Info) << "should be suppressed";
  DEEPSD_LOG(Error) << "visible";
  SetLogLevel(saved);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
