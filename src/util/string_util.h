#ifndef DEEPSD_UTIL_STRING_UTIL_H_
#define DEEPSD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepsd {
namespace util {

/// Splits `s` on `delim`, keeping empty fields (CSV-style semantics).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders minutes-since-midnight as "HH:MM" (e.g. 450 -> "07:30").
std::string MinuteToClock(int minute_of_day);

/// Fixed-width left/right padding used by the ASCII table printers.
std::string PadLeft(std::string s, size_t width);
std::string PadRight(std::string s, size_t width);

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_STRING_UTIL_H_
