#!/usr/bin/env bash
# Runs the paper's exact protocol (58 areas, 24 train + 28 test days,
# items every 5 minutes, 50 epochs, best-10 averaging, dropout 0.5).
#
# Cost on one modern CPU core (scale linearly with cores unavailable —
# the library is single-threaded):
#   * simulation + feature tables: ~2 minutes, ~1.5 GB RSS
#   * Basic DeepSD:    ~15 s/epoch  → ~15 min
#   * Advanced DeepSD: ~30 s/epoch  → ~30 min
#   * GBDT (150 trees on 394k×1055): ~30 min, ~2.5 GB RSS
#   * LASSO (one-hot, 394k×1261 dense): ~25 min, ~4 GB RSS
# Full Table II ≈ 2 hours; the whole bench suite several hours.
#
#   scripts/run_full_protocol.sh [build-dir] [bench-name ...]
set -euo pipefail
BUILD="${1:-build}"
shift || true
BENCHES=("${@:-bench_table2_comparison}")

export DEEPSD_BENCH_SCALE=full
for b in "${BENCHES[@]}"; do
  echo "### full-scale $b"
  "$BUILD/bench/$b"
done
