#ifndef DEEPSD_UTIL_MMAP_FILE_H_
#define DEEPSD_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "util/status.h"

namespace deepsd {
namespace util {

/// Read-only memory mapping of a whole file (RAII). Opening is O(mmap):
/// no bytes are read eagerly — the kernel pages them in on first touch and
/// keeps them in the shared page cache, so N mappings of the same file cost
/// one resident copy. This is the zero-copy substrate of the model store
/// (store/model_store.h).
///
/// All failures are typed util::Status, never UB or abort: a missing file
/// is NotFound, an unreadable or unmappable one IoError. An empty file maps
/// successfully with size() == 0 and data() == nullptr.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      mapped_ = other.mapped_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.mapped_ = false;
    }
    return *this;
  }

  /// Maps `path` read-only. On failure the object stays unmapped.
  Status Open(const std::string& path);

  /// Unmaps (no-op when nothing is mapped).
  void Reset();

  bool mapped() const { return mapped_; }
  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_MMAP_FILE_H_
