#include "learn/continuous_learner.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/checkpoint.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "store/pack.h"
#include "util/logging.h"

namespace deepsd {
namespace learn {

namespace {

/// The learn/* metric handles (process-lifetime registry pointers).
struct Metrics {
  obs::Gauge* stage;
  obs::Gauge* shadow_samples;
  obs::Gauge* shadow_mae_delta;
  obs::Gauge* watch_mae_ratio;
  obs::Gauge* rejected_total;
  obs::Counter* fine_tunes;
  obs::Counter* fine_tune_resumes;
  obs::Counter* candidates_packed;
  obs::Counter* candidates_rejected;
  obs::Counter* promotions;
  obs::Counter* rollbacks;
  obs::Counter* io_retries;

  static Metrics* Get() {
    static Metrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* out = new Metrics();
      out->stage = reg.GetGauge("learn/stage");
      out->shadow_samples = reg.GetGauge("learn/shadow_samples");
      out->shadow_mae_delta = reg.GetGauge("learn/shadow_mae_delta");
      out->watch_mae_ratio = reg.GetGauge("learn/watch_mae_ratio");
      out->rejected_total = reg.GetGauge("learn/candidates_rejected_total");
      out->fine_tunes = reg.GetCounter("learn/fine_tunes");
      out->fine_tune_resumes = reg.GetCounter("learn/fine_tune_resumes");
      out->candidates_packed = reg.GetCounter("learn/candidates_packed");
      out->candidates_rejected = reg.GetCounter("learn/candidates_rejected");
      out->promotions = reg.GetCounter("learn/promotions");
      out->rollbacks = reg.GetCounter("learn/rollbacks");
      out->io_retries = reg.GetCounter("learn/io_retries");
      return out;
    }();
    return m;
  }
};

}  // namespace

const char* LearnerStageName(LearnerStage stage) {
  switch (stage) {
    case LearnerStage::kIdle: return "idle";
    case LearnerStage::kFineTuning: return "fine_tuning";
    case LearnerStage::kPacking: return "packing";
    case LearnerStage::kShadowing: return "shadowing";
    case LearnerStage::kPromoting: return "promoting";
    case LearnerStage::kWatching: return "watching";
  }
  return "unknown";
}

ContinuousLearner::ContinuousLearner(const LearnerOptions& options,
                                     const feature::FeatureAssembler* history,
                                     eval::OnlineAccuracyTracker* live_tracker,
                                     PublishFn publish, PublishFn rollback)
    : options_(options),
      history_(history),
      live_tracker_(live_tracker),
      publish_(std::move(publish)),
      rollback_(rollback != nullptr ? std::move(rollback) : publish_),
      ledger_(options.state_dir + "/promotions.ledger") {
  DEEPSD_CHECK_MSG(!options_.state_dir.empty(), "learner needs state_dir");
  DEEPSD_CHECK_MSG(!options_.initial_artifact.empty(),
                   "learner needs initial_artifact");
  DEEPSD_CHECK_MSG(options_.num_areas > 0, "learner needs num_areas");
  DEEPSD_CHECK_MSG(history_ != nullptr, "learner needs the serving assembler");
  DEEPSD_CHECK_MSG(live_tracker_ != nullptr, "learner needs the live tracker");
  DEEPSD_CHECK_MSG(publish_ != nullptr, "learner needs a publish hook");
  options_.finetune.checkpoint_path = options_.state_dir + "/finetune.ck";
  options_.shadow_acc.num_areas = options_.num_areas;
  if (options_.watch_pass_samples == 0) {
    options_.watch_pass_samples = 2 * options_.watch_min_samples;
  }
}

void ContinuousLearner::SetStageGauge() {
  Metrics::Get()->stage->Set(static_cast<double>(stage_));
}

util::Status ContinuousLearner::OpenArtifact(
    const std::string& path, std::shared_ptr<const store::StoredModel>* out) {
  util::RetryPolicy retry(options_.io_retry, ledger_.state().next_seq);
  std::shared_ptr<const store::StoredModel> opened;
  util::Status st = retry.Run([&] { return store::StoredModel::Open(path, &opened); });
  if (retry.attempts() > 1) {
    for (int i = 1; i < retry.attempts(); ++i) Metrics::Get()->io_retries->Inc();
  }
  if (st.ok()) *out = std::move(opened);
  return st;
}

util::Status ContinuousLearner::Recover(
    std::shared_ptr<const store::StoredModel>* boot) {
  if (recovered_) {
    return util::Status::FailedPrecondition("Recover already ran");
  }
  DEEPSD_RETURN_IF_ERROR(ledger_.Open());
  const LedgerState state = ledger_.state();

  // The committed version: last promotion not undone by a rollback. An
  // unreadable committed artifact falls back to the initial one — serving
  // must always boot from *something* valid.
  serving_artifact_ = state.committed_artifact.empty()
                          ? options_.initial_artifact
                          : state.committed_artifact;
  util::Status open = OpenArtifact(serving_artifact_, &serving_model_);
  if (!open.ok() && serving_artifact_ != options_.initial_artifact) {
    LedgerRecord note;
    note.event = LedgerEvent::kAborted;
    note.t_abs = now_abs_;
    note.candidate_id = state.committed_version;
    note.note = "committed artifact unreadable (" + open.ToString() +
                "); serving the initial artifact";
    DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(note)));
    serving_artifact_ = options_.initial_artifact;
    open = OpenArtifact(serving_artifact_, &serving_model_);
  }
  DEEPSD_RETURN_IF_ERROR(open);

  recovered_ = true;

  // The cooldown epoch survives the crash: without this, a restart right
  // after a fine-tune would immediately start another one.
  for (const LedgerRecord& r : ledger_.records()) {
    if (r.event == LedgerEvent::kFineTuneStarted) {
      last_finetune_abs_ = std::max(last_finetune_abs_, r.t_abs);
    }
  }

  // Resolve a crash-interrupted stage.
  if (state.in_flight) {
    candidate_id_ = state.in_flight_candidate;
    candidate_artifact_ = state.in_flight_artifact;
    switch (state.last_event) {
      case LedgerEvent::kFineTuneStarted:
        // The checkpoint (if any) resumes the killed fine-tune bitwise at
        // the next Tick.
        stage_ = LearnerStage::kFineTuning;
        resume_pending_ = true;
        break;
      case LedgerEvent::kCandidatePacked:
      case LedgerEvent::kShadowStarted:
      case LedgerEvent::kShadowResult:
        // The artifact is durable; shadow accounting was in-memory and
        // died with the process — restart the shadow from scratch.
        DEEPSD_RETURN_IF_ERROR(StartShadow());
        break;
      case LedgerEvent::kPromoting:
        // Publication is an in-memory pointer flip: an open kPromoting
        // means it never happened. The gate's verdict is durable, so the
        // promotion re-runs at the next Tick.
        stage_ = LearnerStage::kPromoting;
        watch_baseline_mae_ = state.in_flight_serving_mae;
        break;
      default:
        break;
    }
  } else if (state.last_event == LedgerEvent::kRollbackStarted) {
    // Derive() already resolved the committed version to the rollback
    // target; make the ledger terminal.
    LedgerRecord done;
    done.event = LedgerEvent::kRolledBack;
    done.t_abs = now_abs_;
    done.candidate_id = ledger_.records().back().candidate_id;
    done.prior_version = state.in_flight_prior_version;
    done.artifact_path = serving_artifact_;
    done.note = "resolved on restart";
    DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(done)));
  }

  SetStageGauge();
  if (boot != nullptr) *boot = serving_model_;
  return util::Status::OK();
}

void ContinuousLearner::OnOrder(const data::Order& order) {
  if (order.start_area < 0 || order.start_area >= options_.num_areas) return;
  if (order.ts < 0 || order.ts >= data::kMinutesPerDay || order.day < 0) return;
  log_[order.day].orders.push_back(order);
  const int64_t ts_abs =
      static_cast<int64_t>(order.day) * data::kMinutesPerDay + order.ts;
  if (options_.drive_live_tracker) {
    live_tracker_->OnOrderAccepted(order, ts_abs);
  }
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow != nullptr) shadow->AddOrder(order);
}

void ContinuousLearner::OnWeather(const data::WeatherRecord& record) {
  if (record.ts < 0 || record.ts >= data::kMinutesPerDay || record.day < 0) {
    return;
  }
  log_[record.day].weather.push_back(record);
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow != nullptr) shadow->AddWeather(record);
}

void ContinuousLearner::OnTraffic(const data::TrafficRecord& record) {
  if (record.ts < 0 || record.ts >= data::kMinutesPerDay || record.day < 0 ||
      record.area < 0 || record.area >= options_.num_areas) {
    return;
  }
  log_[record.day].traffic.push_back(record);
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow != nullptr) shadow->AddTraffic(record);
}

void ContinuousLearner::OnPrediction(const std::vector<int>& area_ids,
                                     const serving::PredictResult& result,
                                     const std::vector<float>& activity,
                                     int64_t now_abs) {
  live_tracker_->OnPrediction(area_ids, result, activity, now_abs);
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow != nullptr) {
    shadow->OnPrediction(area_ids, result, activity, now_abs);
  }
}

int ContinuousLearner::CompleteSnapshotDays() const {
  int complete = 0;
  for (const auto& [d, day_log] : log_) {
    if (d < day_ && d >= day_ - options_.snapshot_days) ++complete;
  }
  return complete;
}

bool ContinuousLearner::ShouldFineTune() const {
  if (!finetune_requested_) {
    if (now_abs_ - last_finetune_abs_ <
        static_cast<int64_t>(options_.cooldown_minutes)) {
      return false;
    }
    if (options_.psi_trigger > 0 &&
        live_tracker_->InputPsi() < options_.psi_trigger) {
      return false;
    }
  }
  // An explicit request skips the cooldown and the PSI trigger, but a
  // fine-tune still needs complete days to train on.
  return CompleteSnapshotDays() >= options_.min_train_days;
}

util::Status ContinuousLearner::Tick(int day, int minute) {
  if (!recovered_) {
    return util::Status::FailedPrecondition("Tick before Recover");
  }
  const int64_t now = static_cast<int64_t>(day) * data::kMinutesPerDay + minute;
  if (now < now_abs_) return util::Status::OK();  // clock never runs back
  now_abs_ = now;
  day_ = day;
  minute_ = minute;

  if (options_.drive_live_tracker) live_tracker_->OnClockAdvance(now_abs_);
  {
    std::shared_ptr<ShadowEvaluator> shadow;
    {
      std::lock_guard<std::mutex> lock(shadow_mu_);
      shadow = shadow_;
    }
    if (shadow != nullptr) shadow->AdvanceTo(day, minute);
  }

  // Evict log days no snapshot can reach anymore.
  const int keep_from = day_ - options_.snapshot_days - 1;
  while (!log_.empty() && log_.begin()->first < keep_from) {
    log_.erase(log_.begin());
  }

  switch (stage_) {
    case LearnerStage::kIdle:
      if (ShouldFineTune()) {
        finetune_requested_ = false;
        DEEPSD_RETURN_IF_ERROR(StartFineTune());
        DEEPSD_RETURN_IF_ERROR(RunFineTune());
        if (stage_ == LearnerStage::kPacking) {
          DEEPSD_RETURN_IF_ERROR(RunPack());
        }
        if (stage_ == LearnerStage::kShadowing && shadow_ == nullptr) {
          DEEPSD_RETURN_IF_ERROR(StartShadow());
        }
      }
      break;
    case LearnerStage::kFineTuning:
      // Only reachable via crash recovery: resume (or restart) the
      // interrupted fine-tune, then continue the pipeline. The restarted
      // process replays the live stream from scratch, so hold the stage
      // until a snapshot's worth of complete days is back in the log.
      if (CompleteSnapshotDays() < options_.min_train_days) break;
      DEEPSD_RETURN_IF_ERROR(RunFineTune());
      if (stage_ == LearnerStage::kPacking) DEEPSD_RETURN_IF_ERROR(RunPack());
      if (stage_ == LearnerStage::kShadowing && shadow_ == nullptr) {
        DEEPSD_RETURN_IF_ERROR(StartShadow());
      }
      break;
    case LearnerStage::kPacking:
      DEEPSD_RETURN_IF_ERROR(RunPack());
      if (stage_ == LearnerStage::kShadowing && shadow_ == nullptr) {
        DEEPSD_RETURN_IF_ERROR(StartShadow());
      }
      break;
    case LearnerStage::kShadowing:
      DEEPSD_RETURN_IF_ERROR(EvaluateGate());
      break;
    case LearnerStage::kPromoting: {
      // Crash-recovery path: the gate's verdict is on the ledger, publish
      // never happened. Re-open the sealed artifact and re-run it.
      std::shared_ptr<const store::StoredModel> candidate;
      util::Status st = OpenArtifact(candidate_artifact_, &candidate);
      if (!st.ok()) {
        Reject("candidate artifact unreadable at promotion: " + st.ToString(),
               nullptr);
        break;
      }
      DEEPSD_RETURN_IF_ERROR(RunPromote(std::move(candidate)));
      break;
    }
    case LearnerStage::kWatching:
      DEEPSD_RETURN_IF_ERROR(CheckWatch());
      break;
  }
  SetStageGauge();
  return util::Status::OK();
}

util::Status ContinuousLearner::StartFineTune() {
  candidate_id_ = "ft-" + std::to_string(ledger_.state().next_seq);
  candidate_artifact_.clear();
  resume_pending_ = false;

  LedgerRecord started;
  started.event = LedgerEvent::kFineTuneStarted;
  started.t_abs = now_abs_;
  started.candidate_id = candidate_id_;
  started.note = "snapshot days [" +
                 std::to_string(std::max(0, day_ - options_.snapshot_days)) +
                 ", " + std::to_string(day_) + ")";
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(started)));
  last_finetune_abs_ = now_abs_;
  stage_ = LearnerStage::kFineTuning;
  return util::Status::OK();
}

util::Status ContinuousLearner::RunFineTune() {
  // Freeze the snapshot: the last snapshot_days complete days, remapped to
  // day 0..n-1 with their weekday identity preserved.
  const int day_end = day_;
  int day_begin = std::max(0, day_end - options_.snapshot_days);
  while (day_begin < day_end && log_.find(day_begin) == log_.end()) {
    ++day_begin;
  }
  const int n_days = day_end - day_begin;
  if (n_days < options_.min_train_days || n_days <= 0) {
    return Abort("snapshot too small: " + std::to_string(n_days) +
                 " complete days");
  }

  data::OrderDatasetBuilder builder(
      options_.num_areas, n_days,
      (options_.first_weekday + day_begin) % data::kDaysPerWeek);
  for (int d = day_begin; d < day_end; ++d) {
    auto it = log_.find(d);
    if (it == log_.end()) continue;
    for (data::Order order : it->second.orders) {
      order.day -= day_begin;
      builder.AddOrder(order);
    }
    for (data::WeatherRecord w : it->second.weather) {
      w.day -= day_begin;
      builder.AddWeather(w);
    }
    for (data::TrafficRecord t : it->second.traffic) {
      t.day -= day_begin;
      builder.AddTraffic(t);
    }
  }
  data::OrderDataset snapshot;
  DEEPSD_RETURN_IF_ERROR(builder.Build(&snapshot));

  feature::FeatureAssembler assembler(&snapshot, options_.features, 0, n_days);
  const int t_begin = std::max(options_.features.window, 20);
  const int t_end = data::kMinutesPerDay - data::kGapWindow;
  // More than one day: hold the most recent out for the per-epoch eval
  // (best-k selection); a single day evaluates in-sample.
  const int train_end = n_days > 1 ? n_days - 1 : n_days;
  std::vector<data::PredictionItem> train_items = data::MakeItems(
      snapshot, 0, train_end, t_begin, t_end, options_.item_stride);
  std::vector<data::PredictionItem> eval_items =
      n_days > 1 ? data::MakeItems(snapshot, train_end, n_days, t_begin, t_end,
                                   options_.item_stride)
                 : train_items;
  if (train_items.empty() || eval_items.empty()) {
    return Abort("empty snapshot item set");
  }

  const store::Manifest& manifest = serving_model_->manifest();
  const bool advanced = manifest.mode == core::DeepSDModel::Mode::kAdvanced;
  core::AssemblerSource train_src(&assembler, std::move(train_items), advanced);
  core::AssemblerSource eval_src(&assembler, std::move(eval_items), advanced);

  core::TrainConfig config = options_.finetune;
  candidate_params_ = std::make_unique<nn::ParameterStore>();
  util::Rng init_rng(config.seed);
  candidate_model_ = std::make_unique<core::DeepSDModel>(
      manifest.config, manifest.mode, candidate_params_.get(), &init_rng);

  core::Trainer trainer(config);
  core::TrainerCheckpoint resume;
  bool resumed = false;
  if (resume_pending_) {
    resume_pending_ = false;
    util::Status loaded = core::LoadCheckpoint(config.checkpoint_path, &resume);
    if (loaded.ok()) {
      loaded = core::ValidateResume(resume, config, *candidate_params_);
    }
    // An unusable checkpoint (missing, torn, config drifted) restarts the
    // fine-tune from scratch — never resume into silent divergence.
    resumed = loaded.ok();
  }
  if (resumed) {
    Metrics::Get()->fine_tune_resumes->Inc();
    trainer.Train(candidate_model_.get(), candidate_params_.get(), train_src,
                  eval_src, nullptr, &resume);
  } else {
    trainer.FineTuneFrom(candidate_model_.get(), candidate_params_.get(),
                         serving_model_->params(), train_src, eval_src);
  }
  ++fine_tunes_;
  Metrics::Get()->fine_tunes->Inc();
  stage_ = LearnerStage::kPacking;
  return util::Status::OK();
}

util::Status ContinuousLearner::RunPack() {
  if (candidate_model_ == nullptr) {
    // Crash between fine-tune and pack lands in kFineTuning via the ledger
    // (kPacking is never a recovery entry state); an in-memory miss here is
    // a programming error turned typed.
    return Abort("no in-memory candidate to pack");
  }
  candidate_artifact_ = options_.state_dir + "/" + candidate_id_ + ".dsar";

  store::PackOptions pack;
  pack.version_id = candidate_id_;
  util::RetryPolicy retry(options_.io_retry, ledger_.state().next_seq);
  util::Status st = retry.Run([&] {
    return store::PackModelArtifact(*candidate_model_, *candidate_params_,
                                    nullptr, pack, candidate_artifact_);
  });
  for (int i = 1; i < retry.attempts(); ++i) Metrics::Get()->io_retries->Inc();
  if (!st.ok()) {
    return Abort("candidate pack failed: " + st.ToString());
  }

  LedgerRecord packed;
  packed.event = LedgerEvent::kCandidatePacked;
  packed.t_abs = now_abs_;
  packed.candidate_id = candidate_id_;
  packed.artifact_path = candidate_artifact_;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(packed)));
  Metrics::Get()->candidates_packed->Inc();

  // The artifact is the candidate's durable form now; the fine-tune
  // checkpoint would only resume a finished run.
  std::remove(options_.finetune.checkpoint_path.c_str());
  candidate_model_.reset();
  candidate_params_.reset();
  stage_ = LearnerStage::kShadowing;
  return util::Status::OK();
}

util::Status ContinuousLearner::StartShadow() {
  // The corruption gate: a candidate that cannot be opened and validated
  // (CRC seal, section bounds, parameter coverage) is rejected here and
  // never reaches Publish.
  std::shared_ptr<const store::StoredModel> candidate;
  util::Status st = OpenArtifact(candidate_artifact_, &candidate);
  if (!st.ok()) {
    Reject("candidate artifact rejected: " + st.ToString(), nullptr);
    return util::Status::OK();
  }

  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_ = std::make_shared<ShadowEvaluator>(
        std::move(candidate), history_, options_.shadow_acc,
        options_.fallback);
  }

  LedgerRecord started;
  started.event = LedgerEvent::kShadowStarted;
  started.t_abs = now_abs_;
  started.candidate_id = candidate_id_;
  started.artifact_path = candidate_artifact_;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(started)));
  stage_ = LearnerStage::kShadowing;
  return util::Status::OK();
}

util::Status ContinuousLearner::EvaluateGate() {
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow == nullptr) {
    return Abort("shadow evaluator missing");
  }
  const ShadowComparison cmp = shadow->Compare();
  Metrics::Get()->shadow_samples->Set(static_cast<double>(cmp.samples));
  if (cmp.samples < options_.shadow_min_samples) return util::Status::OK();

  Metrics::Get()->shadow_mae_delta->Set(cmp.candidate.mae - cmp.serving.mae);

  LedgerRecord result;
  result.event = LedgerEvent::kShadowResult;
  result.t_abs = now_abs_;
  result.candidate_id = candidate_id_;
  result.artifact_path = candidate_artifact_;
  result.serving_mae = cmp.serving.mae;
  result.candidate_mae = cmp.candidate.mae;
  result.serving_rmse = cmp.serving.rmse;
  result.candidate_rmse = cmp.candidate.rmse;
  result.shadow_samples = cmp.samples;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(result)));

  const bool wins =
      cmp.serving.mae > 0
          ? cmp.candidate.mae <=
                options_.promote_max_mae_ratio * cmp.serving.mae
          : cmp.candidate.mae <= 0;
  if (!wins) {
    Reject("lost shadow comparison", &cmp);
    return util::Status::OK();
  }

  LedgerRecord promoting;
  promoting.event = LedgerEvent::kPromoting;
  promoting.t_abs = now_abs_;
  promoting.candidate_id = candidate_id_;
  promoting.artifact_path = candidate_artifact_;
  promoting.serving_mae = cmp.serving.mae;
  promoting.candidate_mae = cmp.candidate.mae;
  promoting.shadow_samples = cmp.samples;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(promoting)));
  watch_baseline_mae_ = cmp.serving.mae;
  stage_ = LearnerStage::kPromoting;
  return RunPromote(shadow->candidate());
}

util::Status ContinuousLearner::RunPromote(
    std::shared_ptr<const store::StoredModel> candidate) {
  util::Status st = publish_(candidate);
  if (!st.ok()) {
    // Serving-compat refusal (or a publish-path failure): the candidate
    // never went live, serving is untouched.
    Reject("publish refused: " + st.ToString(), nullptr);
    return util::Status::OK();
  }

  prior_model_ = serving_model_;
  prior_artifact_ = serving_artifact_;
  serving_model_ = std::move(candidate);
  serving_artifact_ = candidate_artifact_;

  LedgerRecord promoted;
  promoted.event = LedgerEvent::kPromoted;
  promoted.t_abs = now_abs_;
  promoted.candidate_id = candidate_id_;
  promoted.artifact_path = candidate_artifact_;
  promoted.prior_version = prior_model_->version_id();
  promoted.serving_mae = watch_baseline_mae_;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(promoted)));
  ++promotions_;
  Metrics::Get()->promotions->Inc();
  Metrics::Get()->watch_mae_ratio->Set(1.0);

  // Arm the watchdog: the prior model keeps answering in shadow, so the
  // watch compares the promoted model against its rollback target over
  // the same post-promotion slots — a counterfactual baseline that a
  // time-of-day error swing cannot fool, unlike a cumulative pre-promotion
  // average.
  live_tracker_->Mark();
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_ = std::make_shared<ShadowEvaluator>(
        prior_model_, history_, options_.shadow_acc, options_.fallback);
  }
  stage_ = LearnerStage::kWatching;
  return util::Status::OK();
}

util::Status ContinuousLearner::CheckWatch() {
  std::shared_ptr<ShadowEvaluator> shadow;
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow = shadow_;
  }
  if (shadow == nullptr) {
    return Abort("watch shadow missing");
  }
  // serving = the promoted model live; candidate = the prior model
  // re-answering the same slots in shadow.
  const ShadowComparison cmp = shadow->Compare();
  if (cmp.samples < options_.watch_min_samples) return util::Status::OK();

  double ratio;
  if (cmp.candidate.mae > 0) {
    ratio = cmp.serving.mae / cmp.candidate.mae;
  } else {
    // A zero counterfactual can't scale; any real error is a regression.
    ratio = cmp.serving.mae <= 0 ? 1.0 : options_.rollback_mae_ratio + 1.0;
  }
  Metrics::Get()->watch_mae_ratio->Set(ratio);

  if (ratio > options_.rollback_mae_ratio) {
    return Rollback(ratio, cmp);
  }
  if (cmp.samples >= options_.watch_pass_samples) {
    // Healthy through the full watch window: the promotion sticks.
    DropShadow();
    prior_model_.reset();
    prior_artifact_.clear();
    stage_ = LearnerStage::kIdle;
  }
  return util::Status::OK();
}

util::Status ContinuousLearner::Rollback(double ratio,
                                         const ShadowComparison& watched) {
  if (prior_model_ == nullptr) {
    return Abort("no prior version to roll back to");
  }
  DropShadow();

  LedgerRecord starting;
  starting.event = LedgerEvent::kRollbackStarted;
  starting.t_abs = now_abs_;
  starting.candidate_id = serving_model_->version_id();
  starting.prior_version = prior_model_->version_id();
  starting.artifact_path = prior_artifact_;
  starting.serving_mae = watched.serving.mae;
  starting.candidate_mae = watched.candidate.mae;
  starting.shadow_samples = watched.samples;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(starting)));

  DEEPSD_RETURN_IF_ERROR(rollback_(prior_model_));

  LedgerRecord done;
  done.event = LedgerEvent::kRolledBack;
  done.t_abs = now_abs_;
  done.candidate_id = serving_model_->version_id();
  done.prior_version = prior_model_->version_id();
  done.artifact_path = prior_artifact_;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(done)));

  // Exactly one rollback per incident: the regressed version is retired
  // and the stage returns to idle — the next fine-tune needs a fresh
  // trigger and a fresh cooldown window.
  const std::string regressed = serving_model_->version_id();
  serving_model_ = prior_model_;
  serving_artifact_ = prior_artifact_;
  prior_model_.reset();
  prior_artifact_.clear();
  ++rollbacks_;
  Metrics::Get()->rollbacks->Inc();
  last_finetune_abs_ = now_abs_;
  stage_ = LearnerStage::kIdle;

  if (alerts_ != nullptr) {
    obs::AlertEvent alert;
    alert.t_us = now_abs_ * 60 * 1000000;
    alert.spec = "learn-rollback";
    alert.kind = "rollback";
    alert.value = ratio;
    alert.threshold = options_.rollback_mae_ratio;
    alert.message = "rolled back " + regressed + " to " +
                    serving_model_->version_id() + ": post-promotion MAE " +
                    std::to_string(watched.serving.mae) +
                    " vs the prior model's " +
                    std::to_string(watched.candidate.mae) +
                    " on the same slots";
    alerts_->Append(alert);
  }
  if (flight_ != nullptr) {
    // Idempotent: one bundle per incident, however often this fires.
    (void)flight_->Dump(timeline_, alerts_,
                        "continuous-learning rollback of " + regressed);
  }
  return util::Status::OK();
}

void ContinuousLearner::Reject(const std::string& why,
                               const ShadowComparison* cmp) {
  LedgerRecord rejected;
  rejected.event = LedgerEvent::kRejected;
  rejected.t_abs = now_abs_;
  rejected.candidate_id = candidate_id_;
  rejected.artifact_path = candidate_artifact_;
  rejected.note = why;
  if (cmp != nullptr) {
    rejected.serving_mae = cmp->serving.mae;
    rejected.candidate_mae = cmp->candidate.mae;
    rejected.shadow_samples = cmp->samples;
  }
  // Best-effort append: rejection must land in idle even if the disk is
  // unhappy — the candidate is simply never published either way.
  (void)ledger_.Append(std::move(rejected));
  ++rejected_;
  Metrics::Get()->candidates_rejected->Inc();
  Metrics::Get()->rejected_total->Set(static_cast<double>(rejected_));
  DropShadow();
  candidate_model_.reset();
  candidate_params_.reset();
  stage_ = LearnerStage::kIdle;
}

util::Status ContinuousLearner::Abort(const std::string& why) {
  LedgerRecord aborted;
  aborted.event = LedgerEvent::kAborted;
  aborted.t_abs = now_abs_;
  aborted.candidate_id = candidate_id_;
  aborted.note = why;
  DEEPSD_RETURN_IF_ERROR(ledger_.Append(std::move(aborted)));
  DropShadow();
  candidate_model_.reset();
  candidate_params_.reset();
  stage_ = LearnerStage::kIdle;
  return util::Status::OK();
}

void ContinuousLearner::DropShadow() {
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_.reset();
}

}  // namespace learn
}  // namespace deepsd
