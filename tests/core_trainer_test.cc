#include "src/core/trainer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepsd {
namespace core {
namespace {

constexpr int kL = 6;

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = deepsd::testing::MakeSmallCity(4, 12, 4242);
    feature::FeatureConfig fc;
    fc.window = kL;
    assembler_ = std::make_unique<feature::FeatureAssembler>(&ds_, fc, 0, 10);
    train_items_ = data::MakeItems(ds_, 0, 10, 400, 1300, 60);
    test_items_ = data::MakeItems(ds_, 10, 12, 450, 1290, 120);
  }

  DeepSDConfig Config() const {
    DeepSDConfig config;
    config.num_areas = ds_.num_areas();
    config.window = kL;
    return config;
  }

  data::OrderDataset ds_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
  std::vector<data::PredictionItem> train_items_;
  std::vector<data::PredictionItem> test_items_;
};

TEST_F(TrainerTest, LossDecreasesAndBeatsConstantPredictor) {
  nn::ParameterStore store;
  util::Rng rng(1);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);

  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);

  TrainConfig tc;
  tc.epochs = 6;
  tc.best_k = 2;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, train, test);

  ASSERT_EQ(result.history.size(), 6u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);

  // Compare with predicting the training-set mean gap everywhere.
  double mean_gap = 0;
  for (const auto& it : train_items_) mean_gap += it.gap;
  mean_gap /= static_cast<double>(train_items_.size());
  double const_sq = 0;
  for (const auto& it : test_items_) {
    const_sq += (it.gap - mean_gap) * (it.gap - mean_gap);
  }
  double const_rmse = std::sqrt(const_sq / static_cast<double>(test_items_.size()));
  EXPECT_LT(result.final_eval_rmse, const_rmse);
}

TEST_F(TrainerTest, BestKAveragingNotWorseThanWorstEpoch) {
  nn::ParameterStore store;
  util::Rng rng(2);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);

  TrainConfig tc;
  tc.epochs = 5;
  tc.best_k = 3;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, train, test);

  double worst = 0;
  for (const auto& e : result.history) worst = std::max(worst, e.eval_rmse);
  EXPECT_LE(result.final_eval_rmse, worst * 1.05);
  EXPECT_GT(result.best_eval_rmse, 0.0);
  EXPECT_GT(result.seconds_per_epoch, 0.0);
}

TEST_F(TrainerTest, BestKOneRestoresExactBestEpoch) {
  // With best_k = 1 the final store must be exactly the best epoch's
  // snapshot, so re-evaluating gives exactly the best recorded RMSE.
  nn::ParameterStore store;
  util::Rng rng(11);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);
  TrainConfig tc;
  tc.epochs = 5;
  tc.best_k = 1;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, train, test);
  double min_rmse = 1e18;
  for (const auto& e : result.history) min_rmse = std::min(min_rmse, e.eval_rmse);
  EXPECT_DOUBLE_EQ(result.best_eval_rmse, min_rmse);
  EXPECT_NEAR(result.final_eval_rmse, min_rmse, 1e-9);
}

TEST_F(TrainerTest, OnEpochCallbackFires) {
  nn::ParameterStore store;
  util::Rng rng(3);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);

  TrainConfig tc;
  tc.epochs = 3;
  Trainer trainer(tc);
  int calls = 0;
  trainer.Train(&model, &store, train, test,
                [&](const EpochStats& s) {
                  EXPECT_EQ(s.epoch, calls);
                  ++calls;
                });
  EXPECT_EQ(calls, 3);
}

TEST_F(TrainerTest, OverfitsTinySubset) {
  // A capacity sanity check: the basic model memorizes 40 items.
  std::vector<feature::ModelInput> inputs;
  for (size_t i = 0; i < 40 && i < train_items_.size(); ++i) {
    inputs.push_back(assembler_->AssembleBasic(train_items_[i]));
  }
  nn::ParameterStore store;
  util::Rng rng(4);
  DeepSDConfig config = Config();
  config.dropout = 0.0f;  // memorization test wants no regularization
  DeepSDModel model(config, DeepSDModel::Mode::kBasic, &store, &rng);

  TrainConfig tc;
  tc.epochs = 120;
  tc.batch_size = 8;
  tc.best_k = 0;
  tc.learning_rate = 3e-3f;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, inputs, inputs);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss * 0.2)
      << "model failed to overfit 40 items";
}

TEST_F(TrainerTest, AdvancedModelTrains) {
  nn::ParameterStore store;
  util::Rng rng(5);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, true);
  AssemblerSource test(assembler_.get(), test_items_, true);

  TrainConfig tc;
  tc.epochs = 4;
  tc.best_k = 2;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, train, test);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST_F(TrainerTest, SgdOptimizerAlsoLearns) {
  nn::ParameterStore store;
  util::Rng rng(8);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);

  TrainConfig tc;
  tc.epochs = 5;
  tc.best_k = 0;
  tc.optimizer = TrainConfig::Optimizer::kSgdMomentum;
  tc.learning_rate = 1e-4f;
  Trainer trainer(tc);
  TrainResult result = trainer.Train(&model, &store, train, test);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST_F(TrainerTest, LrDecayKicksIn) {
  // With an aggressive decay factor the post-decay epochs must change the
  // parameters far less than the pre-decay ones.
  nn::ParameterStore store;
  util::Rng rng(9);
  DeepSDConfig config = Config();
  config.dropout = 0.0f;
  DeepSDModel model(config, DeepSDModel::Mode::kBasic, &store, &rng);
  AssemblerSource train(assembler_.get(), train_items_, false);
  AssemblerSource test(assembler_.get(), test_items_, false);

  TrainConfig tc;
  tc.epochs = 4;
  tc.best_k = 0;
  tc.shuffle = false;
  tc.lr_decay_at_fraction = 0.5;  // decay at epoch 2
  tc.lr_decay_factor = 1e-4f;

  nn::Tensor before, mid, after;
  Trainer trainer(tc);
  trainer.Train(&model, &store, train, test,
                [&](const EpochStats& s) {
                  const nn::Tensor& w = store.Find("sd.fc1.w")->value;
                  if (s.epoch == 1) mid = w;
                  if (s.epoch == 3) after = w;
                  if (s.epoch == 0) before = w;
                });
  double early_delta = 0, late_delta = 0;
  for (size_t i = 0; i < mid.size(); ++i) {
    early_delta += std::abs(mid.flat()[i] - before.flat()[i]);
    late_delta += std::abs(after.flat()[i] - mid.flat()[i]);
  }
  EXPECT_LT(late_delta, early_delta * 0.5);
}

TEST_F(TrainerTest, DeterministicGivenSeeds) {
  auto run = [&]() {
    nn::ParameterStore store;
    util::Rng rng(6);
    DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
    AssemblerSource train(assembler_.get(), train_items_, false);
    AssemblerSource test(assembler_.get(), test_items_, false);
    TrainConfig tc;
    tc.epochs = 2;
    tc.seed = 99;
    Trainer trainer(tc);
    return trainer.Train(&model, &store, train, test).final_eval_rmse;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace core
}  // namespace deepsd
