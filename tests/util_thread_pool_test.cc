#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace deepsd {
namespace util {
namespace {

TEST(ThreadPoolTest, LifecycleAndSizes) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
  // <= 0 resolves to hardware concurrency, clamped to at least 1.
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTheTask) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto f = pool.Submit([&] { ran.fetch_add(1); });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(3);
  auto f = pool.Submit([] { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1001ul}) {
      for (size_t grain : {1ul, 3ul, 16ul, 2000ul}) {
        std::vector<std::atomic<int>> hits(n);
        pool.ParallelFor(0, n, grain, [&](size_t b, size_t e) {
          ASSERT_LE(b, e);
          ASSERT_LE(e - b, grain);
          for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "index " << i << " threads=" << threads << " n=" << n
              << " grain=" << grain;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(20);
  pool.ParallelFor(5, 17, 4, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 17) ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 10, 0, [&](size_t b, size_t e) {
    EXPECT_EQ(e - b, 1u);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, RethrowsLowestIndexedChunkException) {
  ThreadPool pool(4);
  // Chunks 3 and 7 throw; the surfaced message must always be chunk 3's,
  // independent of which worker hit which chunk first.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(0, 10, 1, [&](size_t b, size_t) {
        if (b == 3 || b == 7) {
          throw std::runtime_error("chunk " + std::to_string(b));
        }
      });
      FAIL() << "expected ParallelFor to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 3");
    }
  }
}

TEST(ThreadPoolTest, ExceptionStillRunsEveryChunk) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.ParallelFor(0, 32, 1,
                                [&](size_t b, size_t e) {
                                  for (size_t i = b; i < e; ++i) {
                                    hits[i].fetch_add(1);
                                  }
                                  if (b == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  // Outer chunks each launch an inner ParallelFor on the same pool. If the
  // inner calls enqueued instead of inlining, all workers could block on
  // inner work that no thread is left to run.
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
    pool.ParallelFor(0, 16, 2, [&](size_t b, size_t e) {
      total.fetch_add(e - b);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, NestedSubmitRunsInline) {
  ThreadPool pool(2);
  std::atomic<bool> inner_ran{false};
  pool.Submit([&] {
        EXPECT_TRUE(pool.InWorkerThread());
        pool.Submit([&] { inner_ran.store(true); }).get();
      })
      .get();
  EXPECT_TRUE(inner_ran.load());
}

TEST(ThreadPoolTest, InWorkerThreadFalseOnCaller) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.InWorkerThread());
}

TEST(ThreadPoolTest, StressTenThousandTinyTasks) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 10000;
  std::vector<std::atomic<int>> hits(kTasks);
  // Many small ParallelFors back to back — exercises queue churn and the
  // wake/sleep path far more than one big loop would.
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(static_cast<size_t>(round) * 1000,
                     static_cast<size_t>(round + 1) * 1000, 1,
                     [&](size_t b, size_t e) {
                       for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
                     });
  }
  long long sum = 0;
  for (size_t i = 0; i < kTasks; ++i) sum += hits[i].load();
  EXPECT_EQ(sum, static_cast<long long>(kTasks));
}

TEST(ThreadPoolTest, SerialPoolMatchesParallelResults) {
  auto run = [](ThreadPool& pool) {
    std::vector<double> out(257, 0.0);
    pool.ParallelFor(0, out.size(), 8, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(i) * 1.5 + 1.0;
      }
    });
    return out;
  };
  ThreadPool serial(1), parallel(4);
  EXPECT_EQ(run(serial), run(parallel));
}

TEST(ThreadPoolTest, SubmitExceptionDoesNotKillTheWorker) {
  ThreadPool pool(2);  // exactly one background worker
  auto boom = pool.Submit([] { throw std::runtime_error("queued boom"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The same (sole) worker must still be alive to run the next task.
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { ran.fetch_add(1); }).get();
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, DrainWaitsForQueuedAndExecutingTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  // Two workers park on the gate; more tasks pile up behind them.
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done, opened] {
      opened.wait();
      done.fetch_add(1);
    });
  }
  EXPECT_GT(pool.pending_tasks(), 0u);
  EXPECT_EQ(done.load(), 0);
  gate.set_value();
  pool.Drain();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ThreadPoolTest, DrainOnIdlePoolReturnsImmediately) {
  ThreadPool pool(4);
  pool.Drain();
  pool.Drain();
  EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ThreadPoolTest, DestructorRunsAlreadyQueuedTasks) {
  // Tasks accepted before the destructor must run, not be dropped — same
  // accepted-work guarantee the serving queue builds on.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(3);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&ran, opened] {
        opened.wait();
        ran.fetch_add(1);
      }));
    }
    gate.set_value();
  }  // destructor joins the workers after they empty the queue
  EXPECT_EQ(ran.load(), 50);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, SetGlobalThreadsRefusedWhileGlobalPoolBusy) {
  ASSERT_TRUE(ThreadPool::SetGlobalThreads(2).ok());
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto busy = ThreadPool::Global().Submit([opened] { opened.wait(); });
  Status st = ThreadPool::SetGlobalThreads(4);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
  // The old pool is untouched: the blocked task still completes.
  gate.set_value();
  busy.get();
  ThreadPool::Global().Drain();
  EXPECT_TRUE(ThreadPool::SetGlobalThreads(1).ok());
}

TEST(ThreadPoolTest, GlobalPoolResizable) {
  int before = ThreadPool::GlobalThreads();
  EXPECT_GE(before, 1);
  EXPECT_TRUE(ThreadPool::SetGlobalThreads(2).ok());
  EXPECT_EQ(ThreadPool::GlobalThreads(), 2);
  std::atomic<int> n{0};
  ThreadPool::Global().ParallelFor(0, 5, 1,
                                   [&](size_t, size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 5);
  EXPECT_TRUE(ThreadPool::SetGlobalThreads(1).ok());
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
