#ifndef DEEPSD_CORE_BATCH_H_
#define DEEPSD_CORE_BATCH_H_

#include <vector>

#include "feature/feature_assembler.h"
#include "nn/tensor.h"

namespace deepsd {
namespace core {

/// Mini-batch of assembled features in tensor form, ready for the network.
/// Column layouts follow feature::ModelInput; `weather_types_by_lag[l][b]`
/// holds the weather-type id at lag l+1 for batch row b (one embedding
/// lookup per lag).
struct Batch {
  int size = 0;

  std::vector<int> area_ids;
  std::vector<int> time_ids;
  std::vector<int> week_ids;

  nn::Tensor v_sd;
  nn::Tensor h_sd, h_sd10;
  nn::Tensor v_lc, h_lc, h_lc10;
  nn::Tensor v_wt, h_wt, h_wt10;

  std::vector<std::vector<int>> weather_types_by_lag;
  nn::Tensor weather_reals;
  nn::Tensor v_tc;

  nn::Tensor target;  ///< [B,1] gap ground truth.

  bool has_advanced = false;
};

/// Source of model inputs for training and inference. Implementations may
/// hold materialized ModelInputs or assemble them on demand — the advanced
/// model's features are ~7 KB per item, so lazy assembly is what makes
/// paper-scale training fit in memory.
class InputSource {
 public:
  virtual ~InputSource() = default;
  virtual size_t size() const = 0;
  virtual feature::ModelInput Get(size_t index) const = 0;
  /// Target gap of item `index` (cheaper than a full Get).
  virtual float Target(size_t index) const = 0;
};

/// InputSource over a pre-materialized vector.
class VectorSource : public InputSource {
 public:
  explicit VectorSource(std::vector<feature::ModelInput> inputs)
      : inputs_(std::move(inputs)) {}

  size_t size() const override { return inputs_.size(); }
  feature::ModelInput Get(size_t index) const override {
    return inputs_[index];
  }
  float Target(size_t index) const override {
    return inputs_[index].target_gap;
  }

 private:
  std::vector<feature::ModelInput> inputs_;
};

/// InputSource that assembles features lazily from a FeatureAssembler.
class AssemblerSource : public InputSource {
 public:
  AssemblerSource(const feature::FeatureAssembler* assembler,
                  std::vector<data::PredictionItem> items, bool advanced)
      : assembler_(assembler), items_(std::move(items)), advanced_(advanced) {}

  size_t size() const override { return items_.size(); }
  feature::ModelInput Get(size_t index) const override {
    return advanced_ ? assembler_->AssembleAdvanced(items_[index])
                     : assembler_->AssembleBasic(items_[index]);
  }
  float Target(size_t index) const override { return items_[index].gap; }

  const std::vector<data::PredictionItem>& items() const { return items_; }

 private:
  const feature::FeatureAssembler* assembler_;
  std::vector<data::PredictionItem> items_;
  bool advanced_;
};

/// Packs the items at `indices` of `source` into a Batch. All chosen items
/// must have consistent shapes (same window, all basic or all advanced).
Batch MakeBatch(const InputSource& source, const std::vector<size_t>& indices);

/// Packs the index range [begin, end).
Batch MakeBatch(const InputSource& source, size_t begin, size_t end);

}  // namespace core
}  // namespace deepsd

#endif  // DEEPSD_CORE_BATCH_H_
