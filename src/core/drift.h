#ifndef DEEPSD_CORE_DRIFT_H_
#define DEEPSD_CORE_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/batch.h"

namespace deepsd {
namespace core {

/// Training-time reference distribution of one scalar input feature —
/// the anchor the serving side compares its live inputs against to score
/// input drift (PSI, docs/observability.md). Captured at checkpoint time
/// and carried inside the DSC1 checkpoint (version >= 2), so a served
/// model always travels with the distribution it was trained on.
struct ReferenceHistogram {
  /// Ascending bucket upper edges; counts has bounds.size() + 1 entries,
  /// the last being the overflow bucket.
  std::vector<float> bounds;
  std::vector<uint64_t> counts;

  bool empty() const { return counts.empty(); }
  uint64_t total() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }
  /// Index of the bucket holding `v` (first bound >= v, else overflow).
  size_t BucketOf(float v) const;
};

/// Builds the reference over the per-item input activity — the sum of each
/// item's supply-demand block (ModelInput::v_sd), i.e. how much order
/// traffic the look-back window held — sampling at most `max_items` items
/// of `source` with an even stride. Edges are `bins` sample quantiles
/// (deduplicated, so low-variance features get fewer, wider buckets).
/// Deterministic for a fixed source. Empty when the source is empty.
ReferenceHistogram BuildInputReference(const InputSource& source,
                                       int bins = 12,
                                       size_t max_items = 4096);

/// The activity scalar BuildInputReference histograms — exposed so the
/// serving side bins the exact same quantity.
float InputActivity(const feature::ModelInput& input);

/// Population Stability Index between the reference distribution and a
/// live count vector over the same buckets (live.size() must equal
/// ref.counts.size()). Empty sides score 0. Both distributions are
/// epsilon-smoothed so empty buckets don't blow up the log term.
/// Rule of thumb: < 0.1 stable, 0.1–0.25 moderate drift, > 0.25 major
/// shift.
double PopulationStabilityIndex(const ReferenceHistogram& ref,
                                const std::vector<uint64_t>& live);

}  // namespace core
}  // namespace deepsd

#endif  // DEEPSD_CORE_DRIFT_H_
