#!/usr/bin/env python3
"""Format gate for the OpenMetrics text exposition deepsd emits.

Re-parses the document the way a Prometheus scraper would and fails on:
  - a sample whose family has no preceding # HELP / # TYPE lines
  - a counter sample whose name does not end in _total
  - a histogram whose _bucket series is not cumulative (non-monotone) or
    whose +Inf bucket disagrees with _count
  - a missing `# EOF` terminator (or content after it)

Usage: check_openmetrics.py <metrics.txt>
"""

import re
import sys


SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r' (?P<value>[^ ]+)(?: [0-9.e+-]+)?$'
)


def fail(lineno, message):
    print(f"check_openmetrics: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def family_of(sample_name):
    """Strips the per-sample suffixes back to the declared family name."""
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1], encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines or lines[-1] != "# EOF":
        fail(len(lines), "document must end with '# EOF'")

    helps = {}
    types = {}
    buckets = {}   # family -> list of (le, value)
    counts = {}    # family -> _count value
    samples = 0

    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            fail(lineno, "blank line in exposition")
        if line == "# EOF":
            fail(lineno, "'# EOF' before end of document")
        if line.startswith("# HELP "):
            helps[line.split(" ", 3)[2]] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                fail(lineno, f"malformed TYPE line: {line}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            fail(lineno, f"unexpected comment: {line}")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample: {line}")
        samples += 1
        name = m.group("name")
        # Prometheus 0.0.4 declares counters as `# TYPE foo_total counter`;
        # OpenMetrics 1.0 drops the suffix from the family — accept both.
        family = family_of(name)
        if name in types:
            family = name
        if family not in types:
            fail(lineno, f"sample '{name}' has no # TYPE for '{family}'")
        if family not in helps:
            fail(lineno, f"sample '{name}' has no # HELP for '{family}'")
        try:
            value = float(m.group("value").replace("+Inf", "inf"))
        except ValueError:
            fail(lineno, f"non-numeric value in: {line}")
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                fail(lineno, f"counter sample '{name}' must end in _total")
            if value < 0:
                fail(lineno, f"negative counter: {line}")
        elif kind == "histogram":
            if name.endswith("_bucket"):
                labels = m.group("labels") or ""
                le = re.search(r'le="([^"]*)"', labels)
                if not le:
                    fail(lineno, f"bucket without le label: {line}")
                buckets.setdefault(family, []).append(
                    (lineno, le.group(1), value))
            elif name.endswith("_count"):
                counts[family] = (lineno, value)

    for family, series in buckets.items():
        prev = -1.0
        saw_inf = False
        for lineno, le, value in series:
            if value < prev:
                fail(lineno,
                     f"histogram '{family}' buckets not cumulative: "
                     f"{value} < {prev} at le={le}")
            prev = value
            if le == "+Inf":
                saw_inf = True
                if family in counts and value != counts[family][1]:
                    fail(lineno,
                         f"histogram '{family}' +Inf bucket {value} != "
                         f"_count {counts[family][1]}")
        if not saw_inf:
            fail(series[-1][0], f"histogram '{family}' missing +Inf bucket")

    if samples == 0:
        fail(0, "no samples in document")
    print(f"check_openmetrics: OK ({samples} samples, "
          f"{len(types)} families, {len(buckets)} histograms)")


if __name__ == "__main__":
    main()
