#ifndef DEEPSD_DISPATCH_POLICIES_H_
#define DEEPSD_DISPATCH_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"
#include "feature/feature_assembler.h"
#include "util/circuit_breaker.h"

namespace deepsd {
namespace dispatch {

/// A driver-repositioning policy: at each decision epoch it distributes a
/// budget of relocatable drivers over the areas. The closed-loop evaluator
/// (closed_loop.h) injects the allocation into the simulator as extra
/// service capacity — the scheduling application the paper's introduction
/// motivates ("balance the supply-demands in advance by dispatching the
/// cars").
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  virtual std::string name() const = 0;

  /// Non-negative weights (any scale; the evaluator normalizes) expressing
  /// where extra drivers should go for the epoch [t, t + epoch) of `day`.
  /// `reference` is the no-intervention world the decision is based on.
  virtual std::vector<double> Weights(const data::OrderDataset& reference,
                                      int day, int t) = 0;
};

/// Spreads the budget evenly — the no-information baseline.
class UniformPolicy : public DispatchPolicy {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<double> Weights(const data::OrderDataset& reference, int day,
                              int t) override;
};

/// Chases the most recent observed gap (the "react after the fact"
/// strategy a dispatcher without prediction uses): weight ∝ gap over
/// [t-10, t).
class ReactivePolicy : public DispatchPolicy {
 public:
  std::string name() const override { return "reactive"; }
  std::vector<double> Weights(const data::OrderDataset& reference, int day,
                              int t) override;
};

/// Allocates ∝ the gap a trained DeepSD model predicts for [t, t+10).
///
/// Optionally guarded by a CircuitBreaker (set_breaker): while the breaker
/// refuses, the policy skips the model entirely and falls back to reactive
/// weights — the answer a dispatcher computes without a predictor — so a
/// drowning or NaN-poisoned model can't stall every dispatch epoch. Each
/// fallback epoch is counted in dispatch/breaker_fallbacks; model calls
/// that produce non-finite output feed the breaker a failure.
class PredictiveGapPolicy : public DispatchPolicy {
 public:
  /// `model` and `assembler` must outlive the policy.
  PredictiveGapPolicy(const core::DeepSDModel* model,
                      const feature::FeatureAssembler* assembler);

  /// Attaches the guard. Not owned; must outlive the policy. nullptr (the
  /// default) means every epoch asks the model.
  void set_breaker(util::CircuitBreaker* breaker) { breaker_ = breaker; }

  std::string name() const override { return "deepsd"; }
  std::vector<double> Weights(const data::OrderDataset& reference, int day,
                              int t) override;

 private:
  const core::DeepSDModel* model_;
  const feature::FeatureAssembler* assembler_;
  util::CircuitBreaker* breaker_ = nullptr;
};

/// Allocates ∝ the *true* future gap — the information-theoretic upper
/// bound any predictor-driven policy can approach.
class OraclePolicy : public DispatchPolicy {
 public:
  std::string name() const override { return "oracle"; }
  std::vector<double> Weights(const data::OrderDataset& reference, int day,
                              int t) override;
};

}  // namespace dispatch
}  // namespace deepsd

#endif  // DEEPSD_DISPATCH_POLICIES_H_
