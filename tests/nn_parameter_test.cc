#include "src/nn/parameter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "util/byte_io.h"

namespace deepsd {
namespace nn {
namespace {

TEST(ParameterStoreTest, CreateFindAndReuse) {
  ParameterStore store;
  util::Rng rng(1);
  Parameter* p = store.Create("a", 2, 3, Init::kGlorotUniform, &rng);
  EXPECT_EQ(p->value.rows(), 2);
  EXPECT_EQ(p->value.cols(), 3);
  EXPECT_EQ(store.Find("a"), p);
  EXPECT_EQ(store.Find("missing"), nullptr);
  // Same name + shape → same parameter, values untouched.
  float before = p->value.at(0, 0);
  Parameter* q = store.Create("a", 2, 3, Init::kGlorotUniform, &rng);
  EXPECT_EQ(p, q);
  EXPECT_FLOAT_EQ(p->value.at(0, 0), before);
  EXPECT_EQ(store.NumWeights(), 6u);
}

TEST(ParameterStoreTest, InitializersBehave) {
  util::Rng rng(2);
  Tensor z(3, 3);
  InitTensor(&z, Init::kZero, &rng);
  EXPECT_DOUBLE_EQ(z.SquaredNorm(), 0.0);

  Tensor g(50, 50);
  InitTensor(&g, Init::kGlorotUniform, &rng);
  double limit = std::sqrt(6.0 / 100);
  for (float v : g.flat()) {
    EXPECT_LE(std::abs(v), limit + 1e-6);
  }
  EXPECT_GT(g.SquaredNorm(), 0.0);

  Tensor e(10, 10);
  InitTensor(&e, Init::kEmbedding, &rng);
  for (float v : e.flat()) EXPECT_LE(std::abs(v), 0.05f + 1e-6f);
}

TEST(ParameterStoreTest, ZeroGrads) {
  ParameterStore store;
  util::Rng rng(3);
  Parameter* p = store.Create("a", 2, 2, Init::kGlorotUniform, &rng);
  p->grad.Fill(3.0f);
  store.ZeroGrads();
  EXPECT_DOUBLE_EQ(p->grad.SquaredNorm(), 0.0);
}

TEST(ParameterStoreTest, SetFrozenByPrefix) {
  ParameterStore store;
  util::Rng rng(4);
  store.Create("weather.fc1.w", 1, 1, Init::kZero, &rng);
  store.Create("weather.fc2.w", 1, 1, Init::kZero, &rng);
  store.Create("traffic.fc1.w", 1, 1, Init::kZero, &rng);
  store.SetFrozen("weather.", true);
  EXPECT_TRUE(store.Find("weather.fc1.w")->frozen);
  EXPECT_TRUE(store.Find("weather.fc2.w")->frozen);
  EXPECT_FALSE(store.Find("traffic.fc1.w")->frozen);
}

TEST(ParameterStoreTest, SaveLoadRoundTrip) {
  auto path = (std::filesystem::temp_directory_path() /
               ("deepsd_params_" + std::to_string(::getpid()) + ".bin"))
                  .string();
  ParameterStore store;
  util::Rng rng(5);
  Parameter* a = store.Create("a", 3, 4, Init::kGlorotUniform, &rng);
  Parameter* b = store.Create("b", 1, 2, Init::kGlorotUniform, &rng);
  Tensor a_vals = a->value, b_vals = b->value;
  ASSERT_TRUE(store.Save(path).ok());

  // Perturb, then load back.
  a->value.Fill(0.0f);
  b->value.Fill(0.0f);
  int loaded = 0;
  ASSERT_TRUE(store.Load(path, &loaded).ok());
  EXPECT_EQ(loaded, 2);
  for (size_t i = 0; i < a_vals.size(); ++i) {
    EXPECT_FLOAT_EQ(a->value.flat()[i], a_vals.flat()[i]);
  }
  for (size_t i = 0; i < b_vals.size(); ++i) {
    EXPECT_FLOAT_EQ(b->value.flat()[i], b_vals.flat()[i]);
  }
  std::filesystem::remove(path);
}

TEST(ParameterStoreTest, LoadIgnoresUnknownAndMismatched) {
  auto path = (std::filesystem::temp_directory_path() /
               ("deepsd_params2_" + std::to_string(::getpid()) + ".bin"))
                  .string();
  ParameterStore writer;
  util::Rng rng(6);
  writer.Create("shared", 2, 2, Init::kGlorotUniform, &rng);
  writer.Create("only_in_file", 1, 1, Init::kGlorotUniform, &rng);
  ASSERT_TRUE(writer.Save(path).ok());

  ParameterStore reader;
  reader.Create("shared", 2, 2, Init::kZero, &rng);
  reader.Create("wrong_shape", 3, 3, Init::kZero, &rng);
  int loaded = 0;
  ASSERT_TRUE(reader.Load(path, &loaded).ok());
  EXPECT_EQ(loaded, 1);
  std::filesystem::remove(path);
}

TEST(ParameterStoreTest, CloneIsDeepCopy) {
  ParameterStore store;
  util::Rng rng(7);
  Parameter* p = store.Create("a", 1, 1, Init::kGlorotUniform, &rng);
  p->value.at(0, 0) = 42.0f;
  auto clone = store.Clone();
  clone->Find("a")->value.at(0, 0) = 0.0f;
  EXPECT_FLOAT_EQ(p->value.at(0, 0), 42.0f);
}

TEST(ParameterStoreTest, CopyFromMatchesByNameAndShape) {
  util::Rng rng(8);
  ParameterStore src, dst;
  src.Create("a", 1, 2, Init::kGlorotUniform, &rng)->value.Fill(7.0f);
  src.Create("b", 2, 2, Init::kGlorotUniform, &rng);
  dst.Create("a", 1, 2, Init::kZero, &rng);
  dst.Create("b", 3, 3, Init::kZero, &rng);  // shape mismatch
  dst.Create("c", 1, 1, Init::kZero, &rng);  // absent in src
  EXPECT_EQ(dst.CopyFrom(src), 1);
  EXPECT_FLOAT_EQ(dst.Find("a")->value.at(0, 1), 7.0f);
}

TEST(ParameterStoreTest, AverageFrom) {
  util::Rng rng(9);
  ParameterStore base;
  base.Create("w", 1, 2, Init::kZero, &rng);
  auto s1 = base.Clone();
  auto s2 = base.Clone();
  s1->Find("w")->value.at(0, 0) = 2.0f;
  s1->Find("w")->value.at(0, 1) = 4.0f;
  s2->Find("w")->value.at(0, 0) = 6.0f;
  s2->Find("w")->value.at(0, 1) = 0.0f;
  base.AverageFrom({s1.get(), s2.get()});
  EXPECT_FLOAT_EQ(base.Find("w")->value.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(base.Find("w")->value.at(0, 1), 2.0f);
}

// --- DSP1 / DSP2 save formats ---------------------------------------------

std::string TempPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("deepsd_params_") + tag + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

// A store shaped like a real model slice: a calibrated GEMM weight, an
// uncalibrated embedding table, and a bias row.
void MakeModelishStore(ParameterStore* store, util::Rng* rng) {
  Parameter* w = store->Create("fc.w", 24, 16, Init::kGlorotUniform, rng);
  w->act_absmax = 3.5f;
  store->Create("embed.table", 50, 8, Init::kEmbedding, rng);
  store->Create("fc.b", 1, 16, Init::kGlorotUniform, rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(ParameterFormatTest, CompressedRoundTripsBitExactWithCalibration) {
  const std::string path = TempPath("dsp2");
  ParameterStore store;
  util::Rng rng(11);
  MakeModelishStore(&store, &rng);
  Tensor w = store.Find("fc.w")->value;
  ASSERT_TRUE(store.Save(path, ParameterStore::SaveFormat::kCompressed).ok());

  ParameterStore loaded;
  util::Rng rng2(12);  // different init: values must come from the file
  MakeModelishStore(&loaded, &rng2);
  loaded.Find("fc.w")->act_absmax = 0.0f;
  int n = 0;
  ASSERT_TRUE(loaded.Load(path, &n).ok());
  EXPECT_EQ(n, 3);
  EXPECT_TRUE(BitEqual(loaded.Find("fc.w")->value, w));
  EXPECT_TRUE(
      BitEqual(loaded.Find("embed.table")->value, store.Find("embed.table")->value));
  EXPECT_FLOAT_EQ(loaded.Find("fc.w")->act_absmax, 3.5f);  // calibration travels
  std::filesystem::remove(path);
}

TEST(ParameterFormatTest, LegacyRawFormatStillRoundTrips) {
  const std::string path = TempPath("dsp1");
  ParameterStore store;
  util::Rng rng(13);
  MakeModelishStore(&store, &rng);
  ASSERT_TRUE(store.Save(path, ParameterStore::SaveFormat::kRaw).ok());
  // DSP1 has no calibration section: magic must be the legacy one and the
  // values must still load bit-exactly.
  std::vector<char> bytes;
  ASSERT_TRUE(util::ReadFileBytes(path, &bytes).ok());
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(std::string(bytes.data(), 4), "DSP1");

  ParameterStore loaded;
  util::Rng rng2(14);
  MakeModelishStore(&loaded, &rng2);
  int n = 0;
  ASSERT_TRUE(loaded.Load(path, &n).ok());
  EXPECT_EQ(n, 3);
  EXPECT_TRUE(BitEqual(loaded.Find("fc.w")->value, store.Find("fc.w")->value));
  std::filesystem::remove(path);
}

TEST(ParameterFormatTest, QuantizedOnlyCoversCalibratedGemmWeights) {
  const std::string path = TempPath("quant");
  ParameterStore store;
  util::Rng rng(15);
  MakeModelishStore(&store, &rng);
  ASSERT_TRUE(store.Save(path, ParameterStore::SaveFormat::kQuantized).ok());

  std::string format;
  std::vector<ParameterFileEntry> entries;
  ASSERT_TRUE(ReadParameterFileSummary(path, &format, &entries).ok());
  ASSERT_EQ(entries.size(), 3u);
  for (const ParameterFileEntry& e : entries) {
    if (e.name == "fc.w") {
      EXPECT_TRUE(e.quantized);  // calibrated GEMM weight → int8
      EXPECT_FLOAT_EQ(e.act_absmax, 3.5f);
    } else {
      // Embedding tables (fp32 lookups) and bias rows stay lossless.
      EXPECT_FALSE(e.quantized) << e.name;
    }
  }
  std::filesystem::remove(path);
}

TEST(ParameterFormatTest, QuantizedLoadInstallsExactSavedCodes) {
  const std::string path = TempPath("quant_cache");
  ParameterStore store;
  util::Rng rng(16);
  MakeModelishStore(&store, &rng);
  const kernels::QuantizedWeights saved = store.Find("fc.w")->Quantized();
  ASSERT_TRUE(store.Save(path, ParameterStore::SaveFormat::kQuantized).ok());

  ParameterStore loaded;
  util::Rng rng2(17);
  MakeModelishStore(&loaded, &rng2);
  ASSERT_TRUE(loaded.Load(path, nullptr).ok());
  // The loader installed the file's int8 codes directly — identical to
  // what the saver quantized, with no fp32 round-trip in between.
  const kernels::QuantizedWeights& q = loaded.Find("fc.w")->Quantized();
  EXPECT_EQ(q.data, saved.data);
  EXPECT_EQ(q.scales, saved.scales);
  // Lossless tensors are untouched by the quantized format.
  EXPECT_TRUE(BitEqual(loaded.Find("embed.table")->value,
                       store.Find("embed.table")->value));
  EXPECT_TRUE(BitEqual(loaded.Find("fc.b")->value, store.Find("fc.b")->value));
  std::filesystem::remove(path);
}

TEST(ParameterFormatTest, CorruptDsp2Rejected) {
  const std::string path = TempPath("corrupt");
  ParameterStore store;
  util::Rng rng(18);
  MakeModelishStore(&store, &rng);
  ASSERT_TRUE(store.Save(path, ParameterStore::SaveFormat::kCompressed).ok());
  std::vector<char> bytes;
  ASSERT_TRUE(util::ReadFileBytes(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x10;  // payload bit flip → CRC mismatch
  ASSERT_TRUE(util::AtomicWriteFile(path, bytes).ok());
  ParameterStore victim;
  util::Rng rng2(19);
  MakeModelishStore(&victim, &rng2);
  EXPECT_FALSE(victim.Load(path, nullptr).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace nn
}  // namespace deepsd
