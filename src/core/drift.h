#ifndef DEEPSD_CORE_DRIFT_H_
#define DEEPSD_CORE_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/batch.h"
#include "util/status.h"

namespace deepsd {
namespace core {

/// Training-time reference distribution of one scalar input feature —
/// the anchor the serving side compares its live inputs against to score
/// input drift (PSI, docs/observability.md). Captured at checkpoint time
/// and carried inside the DSC1 checkpoint (version >= 2), so a served
/// model always travels with the distribution it was trained on.
struct ReferenceHistogram {
  /// Ascending bucket upper edges; counts has bounds.size() + 1 entries,
  /// the last being the overflow bucket.
  std::vector<float> bounds;
  std::vector<uint64_t> counts;

  bool empty() const { return counts.empty(); }
  uint64_t total() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }
  /// Index of the bucket holding `v` (first bound >= v, else overflow).
  size_t BucketOf(float v) const;

  /// Structural validity: a non-empty histogram must have
  /// counts.size() == bounds.size() + 1 and strictly ascending, finite
  /// bounds. A reference that fails this (e.g. rebuilt from a corrupted
  /// checkpoint) would mis-bucket live values in BucketOf's binary search
  /// and score garbage, so drift consumers check before trusting it.
  /// An empty histogram (no counts, no bounds) is valid — it just scores 0.
  util::Status Validate() const;
};

/// Builds the reference over the per-item input activity — the sum of each
/// item's supply-demand block (ModelInput::v_sd), i.e. how much order
/// traffic the look-back window held — sampling at most `max_items` items
/// of `source` with an even stride. Edges are `bins` sample quantiles
/// (deduplicated, so low-variance features get fewer, wider buckets).
/// Deterministic for a fixed source. Empty when the source is empty.
ReferenceHistogram BuildInputReference(const InputSource& source,
                                       int bins = 12,
                                       size_t max_items = 4096);

/// The activity scalar BuildInputReference histograms — exposed so the
/// serving side bins the exact same quantity.
float InputActivity(const feature::ModelInput& input);

/// Population Stability Index between the reference distribution and a
/// live count vector over the same buckets, with typed edge handling:
///
///   * empty reference, empty live, or zero totals → *psi = 0 (no
///     evidence is not drift);
///   * degenerate single-bucket reference (every sample tied at one
///     value, so quantile dedup collapsed the edges) → *psi = 0: with all
///     mass in the only bin on both sides, p == q == 1 exactly;
///   * malformed reference (count/bound size mismatch, non-finite or
///     non-ascending bounds) → InvalidArgument;
///   * live.size() != ref.counts.size() → InvalidArgument.
///
/// Both distributions are epsilon-smoothed so empty buckets contribute a
/// large but finite term, never inf/NaN. Rule of thumb: < 0.1 stable,
/// 0.1–0.25 moderate drift, > 0.25 major shift.
util::Status PopulationStabilityIndex(const ReferenceHistogram& ref,
                                      const std::vector<uint64_t>& live,
                                      double* psi);

/// Legacy non-erroring form: malformed inputs score 0 (callers that can
/// surface a typed error should prefer the Status overload).
double PopulationStabilityIndex(const ReferenceHistogram& ref,
                                const std::vector<uint64_t>& live);

}  // namespace core
}  // namespace deepsd

#endif  // DEEPSD_CORE_DRIFT_H_
