#ifndef DEEPSD_OBS_OPENMETRICS_H_
#define DEEPSD_OBS_OPENMETRICS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace deepsd {
namespace obs {

/// Prometheus/OpenMetrics text exposition of a metrics snapshot.
///
/// Registry names ("serving/predict_us") are sanitized into the metric-name
/// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*) and prefixed with "deepsd_", counters
/// get the conventional "_total" suffix, and histograms expand into the
/// cumulative `_bucket{le="..."}` series plus `_sum` / `_count`. Every
/// family carries `# HELP` / `# TYPE` lines and the document ends with
/// `# EOF`, so the output is accepted both by a Prometheus scrape
/// (text/plain; version=0.0.4) and by OpenMetrics parsers. The CI format
/// gate re-parses it line by line.

/// Sanitized exposition name for a registry name (no kind suffix), e.g.
/// "serving/predict_us" -> "deepsd_serving_predict_us".
std::string OpenMetricsName(const std::string& name);

/// Renders the full exposition document (terminated by "# EOF\n").
std::string ToOpenMetrics(const std::vector<MetricSnapshot>& snapshots);

/// Writes ToOpenMetrics(snapshots) to `path`.
util::Status WriteOpenMetrics(const std::vector<MetricSnapshot>& snapshots,
                              const std::string& path);

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_OPENMETRICS_H_
