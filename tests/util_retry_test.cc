#include "src/util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepsd {
namespace util {
namespace {

RetryOptions NoJitter() {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_us = 1000;
  options.multiplier = 2.0;
  options.jitter = 0;
  return options;
}

TEST(RetryPolicyTest, FirstTrySuccessSleepsNever) {
  RetryPolicy policy(NoJitter(), 7);
  std::vector<int64_t> sleeps;
  policy.set_sleep_fn([&](int64_t us) { sleeps.push_back(us); });
  Status st = policy.Run([] { return Status::OK(); });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(policy.attempts(), 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, TransientIoErrorRetriesUntilSuccess) {
  RetryPolicy policy(NoJitter(), 7);
  std::vector<int64_t> sleeps;
  policy.set_sleep_fn([&](int64_t us) { sleeps.push_back(us); });
  int calls = 0;
  Status st = policy.Run([&] {
    ++calls;
    return calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(policy.attempts(), 3);
  // Without jitter the schedule is the pure exponential.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 1000);
  EXPECT_EQ(sleeps[1], 2000);
}

TEST(RetryPolicyTest, ExhaustsBudgetAndReturnsLastError) {
  RetryPolicy policy(NoJitter(), 7);
  std::vector<int64_t> sleeps;
  policy.set_sleep_fn([&](int64_t us) { sleeps.push_back(us); });
  int calls = 0;
  Status st = policy.Run([&] {
    ++calls;
    return Status::IoError("always");
  });
  EXPECT_EQ(st.code(), Status::Code::kIoError);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(policy.attempts(), 4);
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(sleeps[2], 4000);
}

TEST(RetryPolicyTest, PermanentErrorsSurfaceImmediately) {
  for (Status permanent :
       {Status::InvalidArgument("corrupt"), Status::FailedPrecondition("shape"),
        Status::NotFound("gone")}) {
    RetryPolicy policy(NoJitter(), 7);
    int calls = 0;
    Status st = policy.Run([&] {
      ++calls;
      return permanent;
    });
    EXPECT_EQ(st.code(), permanent.code());
    EXPECT_EQ(calls, 1) << permanent.ToString();
  }
}

TEST(RetryPolicyTest, CustomRetryablePredicate) {
  RetryPolicy policy(NoJitter(), 7);
  policy.set_sleep_fn([](int64_t) {});
  policy.set_retryable_fn(
      [](const Status& st) { return st.code() == Status::Code::kInternal; });
  int calls = 0;
  Status st = policy.Run([&] {
    ++calls;
    return calls < 2 ? Status::Internal("blip") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);

  // IoError is no longer retryable under the custom predicate.
  calls = 0;
  st = policy.Run([&] {
    ++calls;
    return Status::IoError("io");
  });
  EXPECT_EQ(st.code(), Status::Code::kIoError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryOptions options = NoJitter();
  options.jitter = 0.2;
  options.max_attempts = 6;

  auto schedule = [&](uint64_t seed) {
    RetryPolicy policy(options, seed);
    std::vector<int64_t> sleeps;
    for (int attempt = 1; attempt < options.max_attempts; ++attempt) {
      sleeps.push_back(policy.NextBackoffUs(attempt));
    }
    return sleeps;
  };

  EXPECT_EQ(schedule(11), schedule(11));
  EXPECT_NE(schedule(11), schedule(12));

  // Jitter stays inside [1 - j, 1 + j] of the pure exponential.
  std::vector<int64_t> jittered = schedule(11);
  int64_t pure = options.initial_backoff_us;
  for (int64_t us : jittered) {
    EXPECT_GE(us, static_cast<int64_t>(pure * 0.8) - 1);
    EXPECT_LE(us, static_cast<int64_t>(pure * 1.2) + 1);
    pure = static_cast<int64_t>(pure * options.multiplier);
  }
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryOptions options = NoJitter();
  options.max_attempts = 20;
  options.max_backoff_us = 5000;
  RetryPolicy policy(options, 7);
  for (int attempt = 1; attempt < 20; ++attempt) {
    EXPECT_LE(policy.NextBackoffUs(attempt), 5000);
  }
}

TEST(RetryPolicyTest, RunMatchesNextBackoffSchedule) {
  RetryOptions options = NoJitter();
  options.jitter = 0.3;
  std::vector<int64_t> expected;
  {
    RetryPolicy oracle(options, 99);
    for (int attempt = 1; attempt < options.max_attempts; ++attempt) {
      expected.push_back(oracle.NextBackoffUs(attempt));
    }
  }
  RetryPolicy policy(options, 99);
  std::vector<int64_t> observed;
  policy.set_sleep_fn([&](int64_t us) { observed.push_back(us); });
  (void)policy.Run([] { return Status::IoError("always"); });
  EXPECT_EQ(observed, expected);
}

TEST(RetryPolicyTest, SingleAttemptDisablesRetry) {
  RetryOptions options = NoJitter();
  options.max_attempts = 1;
  RetryPolicy policy(options, 7);
  int calls = 0;
  Status st = policy.Run([&] {
    ++calls;
    return Status::IoError("io");
  });
  EXPECT_EQ(st.code(), Status::Code::kIoError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
