#include "util/fault_injector.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace util {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* spec = std::getenv("DEEPSD_FAULTS");
        spec != nullptr && spec[0] != '\0') {
      Status st = injector->ConfigureFromSpec(spec);
      if (!st.ok()) {
        DEEPSD_LOG(Error) << "ignoring DEEPSD_FAULTS: " << st.ToString();
      } else {
        DEEPSD_LOG(Warning) << "fault injection enabled from DEEPSD_FAULTS=\""
                            << spec << "\"";
      }
    }
    return injector;
  }();
  return *instance;
}

void FaultInjector::Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rng_ = Rng(config.seed);
  dropped_ = delayed_ = corrupted_ = 0;
  truncated_reads_ = bit_flipped_reads_ = failed_opens_ = 0;
  const bool any = config.drop_event > 0 || config.delay_event > 0 ||
                   config.corrupt_event > 0 || config.truncate_read > 0 ||
                   config.bit_flip_read > 0 || config.fail_open > 0;
  enabled_.store(any, std::memory_order_relaxed);
}

Status FaultInjector::ConfigureFromSpec(const std::string& spec) {
  Config config;
  for (const std::string& field : Split(spec, ',')) {
    std::string entry = Trim(field);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry missing '=': " + entry);
    }
    std::string key = Trim(entry.substr(0, eq));
    std::string value = Trim(entry.substr(eq + 1));
    char* end = nullptr;
    double num = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad fault spec value: " + entry);
    }

    double* prob = nullptr;
    if (key == "drop_event") prob = &config.drop_event;
    else if (key == "delay_event") prob = &config.delay_event;
    else if (key == "corrupt_event") prob = &config.corrupt_event;
    else if (key == "truncate_read") prob = &config.truncate_read;
    else if (key == "bit_flip_read") prob = &config.bit_flip_read;
    else if (key == "fail_open") prob = &config.fail_open;

    if (prob != nullptr) {
      if (num < 0.0 || num > 1.0) {
        return Status::InvalidArgument("fault probability outside [0,1]: " +
                                       entry);
      }
      *prob = num;
    } else if (key == "max_delay_minutes") {
      if (num < 1.0) {
        return Status::InvalidArgument("max_delay_minutes must be >= 1");
      }
      config.max_delay_minutes = static_cast<int>(num);
    } else if (key == "seed") {
      config.seed = static_cast<uint64_t>(num);
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
  }
  Configure(config);
  return Status::OK();
}

void FaultInjector::Disable() { Configure(Config{}); }

FaultInjector::Config FaultInjector::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

FaultInjector::Counts FaultInjector::counts() const {
  Counts c;
  c.dropped_events = dropped_.load(std::memory_order_relaxed);
  c.delayed_events = delayed_.load(std::memory_order_relaxed);
  c.corrupted_events = corrupted_.load(std::memory_order_relaxed);
  c.truncated_reads = truncated_reads_.load(std::memory_order_relaxed);
  c.bit_flipped_reads = bit_flipped_reads_.load(std::memory_order_relaxed);
  c.failed_opens = failed_opens_.load(std::memory_order_relaxed);
  return c;
}

bool FaultInjector::DropEvent() {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.drop_event <= 0.0 || rng_.Uniform() >= config_.drop_event) {
    return false;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int FaultInjector::DelayEventMinutes() {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.delay_event <= 0.0 || rng_.Uniform() >= config_.delay_event) {
    return 0;
  }
  delayed_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(
      rng_.UniformInt(int64_t{1}, config_.max_delay_minutes));
}

bool FaultInjector::CorruptEvent(void* data, size_t size) {
  if (!enabled() || size == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.corrupt_event <= 0.0 ||
      rng_.Uniform() >= config_.corrupt_event) {
    return false;
  }
  auto* bytes = static_cast<unsigned char*>(data);
  uint64_t bit = rng_.UniformInt(static_cast<uint64_t>(size) * 8);
  bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  corrupted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::FailOpen() {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.fail_open <= 0.0 || rng_.Uniform() >= config_.fail_open) {
    return false;
  }
  failed_opens_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::CorruptRead(std::vector<char>* bytes) {
  if (!enabled() || bytes->empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.truncate_read > 0.0 && rng_.Uniform() < config_.truncate_read) {
    bytes->resize(static_cast<size_t>(rng_.UniformInt(bytes->size())));
    truncated_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!bytes->empty() && config_.bit_flip_read > 0.0 &&
      rng_.Uniform() < config_.bit_flip_read) {
    // A localized burst of flips, the shape real media corruption takes.
    int flips = static_cast<int>(rng_.UniformInt(int64_t{1}, int64_t{8}));
    for (int i = 0; i < flips; ++i) {
      uint64_t bit = rng_.UniformInt(static_cast<uint64_t>(bytes->size()) * 8);
      (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    bit_flipped_reads_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace util
}  // namespace deepsd
