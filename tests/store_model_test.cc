// ModelStore / StoredModel failure-path and binding tests
// (docs/model_store.md): a DSAR1 artifact that is missing, truncated, or
// corrupted in any single bit must come back as a typed util::Status —
// never UB, never an abort — and a v1 reader must reject artifacts whose
// min_reader is from the future. The one deliberate abort — unmapping a
// store while a reader holds a pin — is pinned as a death test.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/empirical_average.h"
#include "core/checkpoint.h"
#include "core/model.h"
#include "data/types.h"
#include "nn/parameter.h"
#include "store/format.h"
#include "store/model_store.h"
#include "store/pack.h"
#include "store/stored_model.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "gtest/gtest.h"

namespace deepsd {
namespace store {
namespace {

core::DeepSDConfig TinyConfig() {
  core::DeepSDConfig config;
  config.num_areas = 4;
  config.use_weather = false;
  config.use_traffic = false;
  return config;
}

/// Builds a tiny basic model and packs it to `path`. Returns the packed
/// parameter values (by name) for bit-exactness checks.
std::vector<nn::NamedTensor> PackTinyArtifact(
    const std::string& path, ParamEncoding encoding = ParamEncoding::kRaw,
    const baselines::EmpiricalAverage* ea = nullptr) {
  nn::ParameterStore params;
  util::Rng rng(29);
  core::DeepSDModel model(TinyConfig(), core::DeepSDModel::Mode::kBasic,
                          &params, &rng);
  if (encoding == ParamEncoding::kQuant) {
    for (auto& p : params.parameters()) {
      if (p->value.rows() > 1) p->act_absmax = 1.0f;
    }
  }
  PackOptions options;
  options.version_id = "test-v1";
  options.encoding = encoding;
  const util::Status st =
      PackModelArtifact(model, params, ea, options, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::vector<nn::NamedTensor> values;
  for (const auto& p : params.parameters()) {
    nn::NamedTensor nt;
    nt.name = p->name;
    nt.value = p->value;
    values.push_back(std::move(nt));
  }
  return values;
}

std::vector<char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Rewrites the header with `mutate` applied and its CRC recomputed, so
/// the test reaches the check *behind* the CRC seal.
void MutateHeader(const std::string& path,
                  const std::function<void(FileHeader*)>& mutate) {
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), sizeof(FileHeader));
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  mutate(&header);
  header.header_crc = util::Crc32(&header, kHeaderCrcBytes);
  std::memcpy(bytes.data(), &header, sizeof(header));
  WriteAll(path, bytes);
}

bool IsTyped(const util::Status& st) {
  return !st.ok() && (st.code() == util::Status::Code::kInvalidArgument ||
                      st.code() == util::Status::Code::kIoError ||
                      st.code() == util::Status::Code::kNotFound ||
                      st.code() == util::Status::Code::kFailedPrecondition);
}

TEST(ModelStoreTest, MissingFileIsNotFound) {
  std::shared_ptr<const ModelStore> s;
  const util::Status st =
      ModelStore::Open(::testing::TempDir() + "/does_not_exist.dsar", &s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kNotFound);
}

TEST(ModelStoreTest, TruncationAtAnyLayerIsATypedError) {
  const std::string path = ::testing::TempDir() + "/trunc.dsar";
  PackTinyArtifact(path);
  const std::vector<char> bytes = ReadAll(path);
  // Cut inside the header, inside the TOC, at a page boundary, and one
  // byte short of complete — each must be a typed refusal at Open.
  for (size_t cut :
       {size_t{0}, size_t{32}, sizeof(FileHeader) + 10, size_t{kPageSize},
        bytes.size() - 1}) {
    const std::string cut_path = ::testing::TempDir() + "/trunc_cut.dsar";
    WriteAll(cut_path,
             std::vector<char>(bytes.begin(), bytes.begin() + cut));
    std::shared_ptr<const ModelStore> s;
    const util::Status st = ModelStore::Open(cut_path, &s);
    EXPECT_TRUE(IsTyped(st)) << "cut at " << cut << ": " << st.ToString();
  }
}

TEST(ModelStoreTest, BadMagicIsATypedError) {
  const std::string path = ::testing::TempDir() + "/magic.dsar";
  PackTinyArtifact(path);
  MutateHeader(path, [](FileHeader* h) { h->magic[0] = 'X'; });
  std::shared_ptr<const ModelStore> s;
  const util::Status st = ModelStore::Open(path, &s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);
  EXPECT_NE(st.ToString().find("magic"), std::string::npos);
}

TEST(ModelStoreTest, FutureMinReaderIsRejectedWithAClearError) {
  const std::string path = ::testing::TempDir() + "/future.dsar";
  PackTinyArtifact(path);
  MutateHeader(path, [](FileHeader* h) {
    h->version = kFormatVersion + 1;
    h->min_reader = kFormatVersion + 1;
  });
  std::shared_ptr<const ModelStore> s;
  const util::Status st = ModelStore::Open(path, &s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kFailedPrecondition);
  // The message must name both versions so the operator knows it is an
  // upgrade problem, not corruption.
  EXPECT_NE(st.ToString().find("reader"), std::string::npos);
}

TEST(ModelStoreTest, HeaderAndTocBitFlipsAreCaughtAtOpen) {
  const std::string path = ::testing::TempDir() + "/seal.dsar";
  PackTinyArtifact(path);
  const std::vector<char> good = ReadAll(path);
  FileHeader header;
  std::memcpy(&header, good.data(), sizeof(header));

  // One flipped bit inside the sealed header region...
  std::vector<char> bad = good;
  bad[9] = static_cast<char>(bad[9] ^ 0x10);
  WriteAll(path, bad);
  std::shared_ptr<const ModelStore> s;
  util::Status st = ModelStore::Open(path, &s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);

  // ...and one inside the TOC.
  bad = good;
  bad[header.toc_offset + 4] =
      static_cast<char>(bad[header.toc_offset + 4] ^ 0x01);
  WriteAll(path, bad);
  st = ModelStore::Open(path, &s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);
}

TEST(ModelStoreTest, AnySingleBitFlipInAnySectionIsCaught) {
  const std::string path = ::testing::TempDir() + "/flip.dsar";
  PackTinyArtifact(path);
  const std::vector<char> good = ReadAll(path);

  std::shared_ptr<const ModelStore> clean;
  ASSERT_TRUE(ModelStore::Open(path, &clean).ok());
  ASSERT_TRUE(clean->VerifyAll().ok());

  const std::string flip_path = ::testing::TempDir() + "/flip_bit.dsar";
  for (size_t i = 0; i < clean->section_count(); ++i) {
    const SectionEntry entry = clean->entry(i);
    // First, middle, and last byte of the payload, a different bit each —
    // the CRC must catch a flip anywhere, including the final byte.
    const size_t offsets[] = {entry.offset,
                              entry.offset + entry.length / 2,
                              entry.offset + entry.length - 1};
    const uint8_t masks[] = {0x01, 0x08, 0x80};
    for (int v = 0; v < 3; ++v) {
      std::vector<char> bad = good;
      bad[offsets[v]] = static_cast<char>(bad[offsets[v]] ^ masks[v]);
      WriteAll(flip_path, bad);
      std::shared_ptr<const ModelStore> s;
      ASSERT_TRUE(ModelStore::Open(flip_path, &s).ok())
          << "payload corruption must not break the (lazy) open";
      const char* data = nullptr;
      size_t size = 0;
      const util::Status st = s->SectionAt(i, &data, &size);
      ASSERT_FALSE(st.ok())
          << "section " << SectionKindToString(entry.kind) << " variant "
          << v << " served corrupt bytes";
      EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);
      // Sibling sections are untouched and must still verify.
      for (size_t j = 0; j < s->section_count(); ++j) {
        if (j == i) continue;
        EXPECT_TRUE(s->SectionAt(j, &data, &size).ok());
      }
    }
  }
}

TEST(ModelStoreDeathTest, UnmapWhilePinnedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/pinned.dsar";
  PackTinyArtifact(path);
  EXPECT_DEATH(
      {
        std::shared_ptr<const ModelStore> s;
        if (ModelStore::Open(path, &s).ok()) {
          ModelStore::Pin pin = s->AcquirePin();
          s.reset();  // destroys the mapping under an outstanding pin
        }
      },
      "outstanding read pins");
}

TEST(StoredModelTest, RawArtifactBindsZeroCopyAndBitExact) {
  const std::string path = ::testing::TempDir() + "/stored_raw.dsar";
  const std::vector<nn::NamedTensor> want = PackTinyArtifact(path);

  std::shared_ptr<const StoredModel> stored;
  ASSERT_TRUE(StoredModel::Open(path, &stored).ok());
  EXPECT_EQ(stored->version_id(), "test-v1");
  EXPECT_EQ(stored->manifest().config.num_areas, 4);

  ASSERT_EQ(stored->params().parameters().size(), want.size());
  for (const nn::NamedTensor& nt : want) {
    const nn::Parameter* p = stored->params().Find(nt.name);
    ASSERT_NE(p, nullptr) << nt.name;
    const nn::Tensor& value = p->value;
    ASSERT_EQ(value.rows(), nt.value.rows());
    ASSERT_EQ(value.cols(), nt.value.cols());
    EXPECT_EQ(std::memcmp(value.data(), nt.value.data(),
                          sizeof(float) * static_cast<size_t>(value.size())),
              0)
        << nt.name;
    // Raw tensors are served as views into the mapping (zero copy), and a
    // serving-only model carries no gradient storage.
    EXPECT_TRUE(value.is_view()) << nt.name;
    EXPECT_EQ(p->grad.size(), 0) << nt.name;
  }
}

TEST(StoredModelTest, QuantArtifactOpensAndCoversEveryParameter) {
  const std::string path = ::testing::TempDir() + "/stored_quant.dsar";
  const std::vector<nn::NamedTensor> want =
      PackTinyArtifact(path, ParamEncoding::kQuant);
  std::shared_ptr<const StoredModel> stored;
  ASSERT_TRUE(StoredModel::Open(path, &stored).ok());
  EXPECT_EQ(stored->params().parameters().size(), want.size());
}

TEST(StoredModelTest, EaSectionServesTheFittedBaseline) {
  std::vector<data::PredictionItem> items;
  for (int area = 0; area < 4; ++area) {
    data::PredictionItem item;
    item.area = area;
    item.t = 480;
    item.gap = 2.0f * static_cast<float>(area) + 1.0f;
    items.push_back(item);
  }
  baselines::EmpiricalAverage ea;
  ea.Fit(items);

  const std::string path = ::testing::TempDir() + "/stored_ea.dsar";
  PackTinyArtifact(path, ParamEncoding::kRaw, &ea);
  std::shared_ptr<const StoredModel> stored;
  ASSERT_TRUE(StoredModel::Open(path, &stored).ok());
  ASSERT_NE(stored->baseline(), nullptr);
  for (int area = 0; area < 4; ++area) {
    for (int t : {0, 480, 1439}) {
      EXPECT_EQ(stored->baseline()->Predict(area, t), ea.Predict(area, t))
          << "area " << area << " t " << t;
    }
  }
}

TEST(StoredModelTest, CheckpointMissingAParameterIsFailedPrecondition) {
  // A checkpoint captured from a no-weather model cannot cover the
  // parameters of a weather-enabled rebuild: pack must refuse by name
  // rather than serve silent random initialization.
  nn::ParameterStore params;
  util::Rng rng(31);
  core::DeepSDModel model(TinyConfig(), core::DeepSDModel::Mode::kBasic,
                          &params, &rng);
  core::TrainerCheckpoint ck;
  for (const auto& p : params.parameters()) {
    nn::NamedTensor nt;
    nt.name = p->name;
    nt.value = p->value;
    ck.params.push_back(std::move(nt));
  }

  core::DeepSDConfig wants_weather = TinyConfig();
  wants_weather.use_weather = true;
  PackOptions options;
  const util::Status st = PackCheckpointArtifact(
      ck, wants_weather, core::DeepSDModel::Mode::kBasic, nullptr, options,
      ::testing::TempDir() + "/stored_missing.dsar");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace store
}  // namespace deepsd
