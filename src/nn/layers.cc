#include "nn/layers.h"

#include <cmath>

namespace deepsd {
namespace nn {

Linear::Linear(ParameterStore* store, const std::string& name, int in, int out,
               util::Rng* rng, Init init) {
  w_ = store->Create(name + ".w", in, out, init, rng);
  b_ = store->Create(name + ".b", 1, out, Init::kZero, rng);
}

NodeId Linear::Apply(Graph* g, NodeId x) const {
  NodeId w = g->Param(w_);
  NodeId b = g->Param(b_);
  return g->AddBias(g->MatMul(x, w), b);
}

NodeId Linear::ApplyLRel(Graph* g, NodeId x, float alpha) const {
  NodeId w = g->Param(w_);
  NodeId b = g->Param(b_);
  return g->LinearLRel(x, w, b, alpha);
}

Embedding::Embedding(ParameterStore* store, const std::string& name, int vocab,
                     int dim, util::Rng* rng) {
  table_ = store->Create(name + ".embed", vocab, dim, Init::kEmbedding, rng);
}

NodeId Embedding::Apply(Graph* g, const std::vector<int>& ids) const {
  return g->Embed(table_, ids);
}

std::vector<float> Embedding::Lookup(int id) const {
  const nn::Tensor& value = table_->value;  // may be a read-only store view
  DEEPSD_CHECK(id >= 0 && id < value.rows());
  const float* row = value.row(id);
  return std::vector<float>(row, row + value.cols());
}

double Embedding::Distance(int id_a, int id_b) const {
  std::vector<float> a = Lookup(id_a);
  std::vector<float> b = Lookup(id_b);
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

NodeId OneHot::Apply(Graph* g, const std::vector<int>& ids) const {
  // Reused scratch: moving a freshly allocated tensor into the graph each
  // step would park one more buffer in the arena pool per replay. The
  // copy-Input below lands on recycled arena storage instead.
  static thread_local Tensor scratch;
  const int rows = static_cast<int>(ids.size());
  if (scratch.rows() != rows || scratch.cols() != vocab_) {
    scratch = Tensor(rows, vocab_);
  } else {
    scratch.Zero();
  }
  for (size_t b = 0; b < ids.size(); ++b) {
    DEEPSD_CHECK(ids[b] >= 0 && ids[b] < vocab_);
    scratch.at(static_cast<int>(b), ids[b]) = 1.0f;
  }
  return g->Input(scratch);
}

}  // namespace nn
}  // namespace deepsd
