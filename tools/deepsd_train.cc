// deepsd_train: train a DeepSD model on a saved dataset and write the
// parameters.
//
//   deepsd_train --data=city.bin --model=model.bin --mode=advanced
//                --train_days=24 [--epochs=50] [--batch=64] [--lr=1e-3]
//                [--best_k=10] [--stride=5] [--no_weather] [--no_traffic]
//                [--no_residual] [--onehot] [--finetune_from=prev.bin]
//                [--checkpoint=ck.bin] [--checkpoint_every=100]
//                [--resume=ck.bin] [--model_format=raw|compressed|quant]
//                [--metrics-out=metrics.jsonl] [--trace-out=trace.json]
//
// --metrics-out / --trace-out turn telemetry on and, after training, write
// the metric registry as JSON lines and the span timeline as
// chrome://tracing JSON (see docs/observability.md).
//
// --checkpoint enables fault tolerance: training state is written
// atomically at every epoch end and (with --checkpoint_every=N) every N
// optimizer steps. A run killed at any point can be continued with
// --resume=<checkpoint> plus the same data and flags, and produces a
// final model bitwise identical to the uninterrupted run at any
// --threads setting (docs/robustness.md).

#include <cstdio>

#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/serialize.h"
#include "obs/metrics_io.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace deepsd;
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown(
      {"data", "model", "mode", "train_days", "eval_days", "epochs", "batch",
       "lr", "best_k", "stride", "no_weather", "no_traffic", "no_residual",
       "onehot", "finetune_from", "checkpoint", "checkpoint_every", "resume",
       "seed", "threads", "verbose", "model_format", "metrics-out",
       "trace-out", "help"});
  if (!st.ok() || cli.GetBool("help", false) || !cli.Has("data")) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_train --data=city.bin --model=model.bin "
                 "--mode=basic|advanced --train_days=N [--epochs=50] "
                 "[--batch=64] [--lr=1e-3] [--best_k=10] [--stride=5] "
                 "[--no_weather] [--no_traffic] [--no_residual] [--onehot] "
                 "[--finetune_from=prev.bin] [--checkpoint=ck.bin] "
                 "[--checkpoint_every=N] [--resume=ck.bin] [--seed=7] "
                 "[--threads=N] [--verbose] "
                 "[--model_format=raw|compressed|quant] "
                 "[--metrics-out=metrics.jsonl] [--trace-out=trace.json]\n",
                 st.ToString().c_str());
    return st.ok() ? 2 : 2;
  }

  const bool telemetry = cli.Has("metrics-out") || cli.Has("trace-out");
  if (telemetry) obs::SetEnabled(true);

  // 0 = hardware concurrency. Results are bit-identical for every value
  // (docs/parallelism.md); --threads only changes speed.
  st = util::ThreadPool::SetGlobalThreads(
      static_cast<int>(cli.GetInt("threads", 0)));
  if (!st.ok()) {
    std::fprintf(stderr, "--threads: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("threads: %d\n", util::ThreadPool::GlobalThreads());

  data::OrderDataset dataset;
  st = data::LoadDataset(cli.GetString("data"), &dataset);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  int train_days = static_cast<int>(
      cli.GetInt("train_days", dataset.num_days() * 2 / 3));
  int eval_days = static_cast<int>(
      cli.GetInt("eval_days", dataset.num_days() - train_days));
  std::printf("dataset: %d areas, %d days, %zu orders; training on days "
              "[0,%d), evaluating on [%d,%d)\n",
              dataset.num_areas(), dataset.num_days(), dataset.num_orders(),
              train_days, train_days, train_days + eval_days);

  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  int stride = static_cast<int>(cli.GetInt("stride", 5));
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, stride);
  auto eval_items =
      data::MakeTestItems(dataset, train_days, train_days + eval_days);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = !cli.GetBool("no_weather", false) && dataset.has_weather();
  config.use_traffic = !cli.GetBool("no_traffic", false) && dataset.has_traffic();
  config.use_residual = !cli.GetBool("no_residual", false);
  config.use_embedding = !cli.GetBool("onehot", false);

  bool advanced = cli.GetString("mode", "advanced") == "advanced";
  nn::ParameterStore params;
  util::Rng rng(static_cast<uint64_t>(cli.GetInt("seed", 7)));
  core::DeepSDModel model(config,
                          advanced ? core::DeepSDModel::Mode::kAdvanced
                                   : core::DeepSDModel::Mode::kBasic,
                          &params, &rng);
  std::printf("%s model: %zu parameters in %zu tensors\n",
              advanced ? "advanced" : "basic", params.NumWeights(),
              params.parameters().size());

  if (cli.Has("finetune_from")) {
    int loaded = 0;
    st = params.Load(cli.GetString("finetune_from"), &loaded);
    if (!st.ok()) {
      std::fprintf(stderr, "finetune load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fine-tuning: %d tensors loaded from %s\n", loaded,
                cli.GetString("finetune_from").c_str());
  }

  core::TrainConfig tc;
  tc.epochs = static_cast<int>(cli.GetInt("epochs", 50));
  tc.batch_size = static_cast<int>(cli.GetInt("batch", 64));
  tc.learning_rate = static_cast<float>(cli.GetDouble("lr", 1e-3));
  tc.best_k = static_cast<int>(cli.GetInt("best_k", 10));
  tc.seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  tc.verbose = cli.GetBool("verbose", true);
  tc.checkpoint_path = cli.GetString("checkpoint", "");
  tc.checkpoint_every_steps =
      static_cast<uint64_t>(cli.GetInt("checkpoint_every", 0));

  core::TrainerCheckpoint checkpoint;
  const core::TrainerCheckpoint* resume = nullptr;
  if (cli.Has("resume")) {
    std::string path = cli.GetString("resume");
    st = core::LoadCheckpoint(path, &checkpoint);
    if (st.ok()) st = core::ValidateResume(checkpoint, tc, params);
    if (!st.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", st.ToString().c_str());
      return 1;
    }
    resume = &checkpoint;
    std::printf("resuming from %s: epoch %d, step %llu\n", path.c_str(),
                checkpoint.epoch,
                static_cast<unsigned long long>(checkpoint.step));
  }

  core::AssemblerSource train(&assembler, train_items, advanced);
  core::AssemblerSource eval(&assembler, eval_items, advanced);
  core::Trainer trainer(tc);
  core::TrainResult result =
      trainer.Train(&model, &params, train, eval, nullptr, resume);
  std::printf("final: MAE=%.3f RMSE=%.3f (best epoch RMSE %.3f, %.1fs/epoch)\n",
              result.final_eval_mae, result.final_eval_rmse,
              result.best_eval_rmse, result.seconds_per_epoch);

  // --model_format picks the on-disk encoding (docs/performance.md):
  // raw = legacy DSP1, compressed = lossless DSP2 (default), quant = int8
  // DSP2 so serving replicas load ready-to-run quantized weights.
  std::string format = cli.GetString("model_format", "compressed");
  nn::ParameterStore::SaveFormat save_format =
      nn::ParameterStore::SaveFormat::kCompressed;
  if (format == "raw") {
    save_format = nn::ParameterStore::SaveFormat::kRaw;
  } else if (format == "quant") {
    save_format = nn::ParameterStore::SaveFormat::kQuantized;
  } else if (format != "compressed") {
    std::fprintf(stderr,
                 "--model_format: unknown value '%s' "
                 "(expected raw|compressed|quant)\n",
                 format.c_str());
    return 2;
  }
  std::string out = cli.GetString("model", "model.bin");
  st = params.Save(out, save_format);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (cli.Has("metrics-out")) {
    std::string path = cli.GetString("metrics-out");
    st = obs::WriteJsonLines(obs::MetricsRegistry::Global().Snapshot(), path);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics dump failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (cli.Has("trace-out")) {
    std::string path = cli.GetString("trace-out");
    st = obs::TraceExporter::WriteJson(path);
    if (!st.ok()) {
      std::fprintf(stderr, "trace dump failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                path.c_str());
  }
  return 0;
}
