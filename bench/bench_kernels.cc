// Kernel-layer and arena-reuse benchmarks (docs/performance.md), with the
// determinism contract measured rather than assumed:
//
//   1. GEMM chain (4 chained matmuls) at 64x64 and 128x128 — naive vs
//      blocked vs int8-quantized kernels, ns/op and GF/s. CI fails if
//      blocked is slower than naive (the quant row is informational here;
//      bench_quant owns the quant gates).
//   2. Fused LinearLRel vs the unfused MatMul→AddBias→LeakyRelu trio,
//      full forward+backward step on a reused graph.
//   3. End-to-end DeepSD advanced train step (forward, backward, Adam)
//      over a prebuilt batch on a long-lived graph: ns/step, steady-state
//      heap allocations per step (own operator-new counter; batch
//      assembly is excluded by construction) and arena traffic.
//   4. Parity: K train steps under naive and blocked kernels from
//      identical seeds must produce bit-identical losses and parameters.
//
//   bench_kernels [--reps=400] [--steps=30] [--json=BENCH_kernels.json]
//
// Exit status is 0 only if parity holds and blocked is not slower than
// naive on every GEMM-chain size.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "nn/adam.h"
#include "nn/kernels.h"
#include "sim/city_sim.h"
#include "util/cli.h"
#include "util/string_util.h"

namespace {

// Binary-wide allocation counter; off unless a measurement window is open.
std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};

void* CountedAlloc(size_t size) {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace deepsd {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-3 timing of `reps` calls to `body`; returns seconds per call.
template <typename Fn>
double TimePerCall(int reps, Fn&& body) {
  double best = 1e30;
  for (int block = 0; block < 3; ++block) {
    double t0 = NowSeconds();
    for (int r = 0; r < reps; ++r) body();
    double dt = NowSeconds() - t0;
    if (dt < best) best = dt;
  }
  return best / reps;
}

struct ChainResult {
  int n = 0;
  double naive_ns = 0;
  double blocked_ns = 0;
  double quant_ns = 0;
  double naive_gflops = 0;
  double blocked_gflops = 0;
  double quant_gflops = 0;
  double speedup = 0;
};

/// Four chained n×n matmuls through nn::MatMul under each kernel mode,
/// plus the same chain through the int8 GEMM (weights pre-quantized as a
/// serving replica holds them; per-row activation quantization is part of
/// the measured call, as in real inference).
ChainResult BenchGemmChain(int n, int reps) {
  util::Rng rng(17);
  nn::Tensor a(n, n), w1(n, n), w2(n, n), w3(n, n), w4(n, n);
  for (nn::Tensor* t : {&a, &w1, &w2, &w3, &w4}) {
    for (float& v : t->flat()) v = rng.Uniform(-1.0f, 1.0f);
  }
  nn::Tensor t1, t2, t3, t4;
  auto chain = [&] {
    nn::MatMul(a, w1, &t1);
    nn::MatMul(t1, w2, &t2);
    nn::MatMul(t2, w3, &t3);
    nn::MatMul(t3, w4, &t4);
  };
  const double flops = 4.0 * 2.0 * n * static_cast<double>(n) * n;

  ChainResult r;
  r.n = n;
  nn::kernels::SetKernelMode(nn::kernels::KernelMode::kNaive);
  for (int i = 0; i < 10; ++i) chain();  // warm-up
  double naive_s = TimePerCall(reps, chain);
  nn::kernels::SetKernelMode(nn::kernels::KernelMode::kBlocked);
  for (int i = 0; i < 10; ++i) chain();
  double blocked_s = TimePerCall(reps, chain);

  nn::kernels::QuantizedWeights q1, q2, q3, q4;
  nn::kernels::QuantizeWeights(w1.data(), n, n, &q1);
  nn::kernels::QuantizeWeights(w2.data(), n, n, &q2);
  nn::kernels::QuantizeWeights(w3.data(), n, n, &q3);
  nn::kernels::QuantizeWeights(w4.data(), n, n, &q4);
  nn::Tensor u1(n, n), u2(n, n), u3(n, n), u4(n, n);
  auto quant_chain = [&] {
    nn::kernels::GemmQuant(a.data(), q1, u1.data(), n, n, n, 0.0f, false);
    nn::kernels::GemmQuant(u1.data(), q2, u2.data(), n, n, n, 0.0f, false);
    nn::kernels::GemmQuant(u2.data(), q3, u3.data(), n, n, n, 0.0f, false);
    nn::kernels::GemmQuant(u3.data(), q4, u4.data(), n, n, n, 0.0f, false);
  };
  for (int i = 0; i < 10; ++i) quant_chain();
  double quant_s = TimePerCall(reps, quant_chain);

  r.naive_ns = naive_s * 1e9;
  r.blocked_ns = blocked_s * 1e9;
  r.quant_ns = quant_s * 1e9;
  r.naive_gflops = flops / naive_s / 1e9;
  r.blocked_gflops = flops / blocked_s / 1e9;
  r.quant_gflops = flops / quant_s / 1e9;
  r.speedup = naive_s / blocked_s;
  return r;
}

struct FusedResult {
  double unfused_ns = 0;
  double fused_ns = 0;
  double speedup = 0;
};

/// Forward+backward of one FC→LReL layer (batch 64, 140→64) on a reused
/// graph, fused against the three-op composition. Blocked kernels.
FusedResult BenchFusedLinearLRel(int reps) {
  nn::kernels::SetKernelMode(nn::kernels::KernelMode::kBlocked);
  nn::ParameterStore store;
  util::Rng rng(29);
  nn::Linear fc(&store, "fc", 140, 64, &rng);
  nn::Tensor x(64, 140), target(64, 64);
  for (float& v : x.flat()) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : target.flat()) v = rng.Uniform(0.0f, 1.0f);

  nn::Graph unfused_g, fused_g;
  auto unfused = [&] {
    unfused_g.Clear();
    unfused_g.set_training(true);
    nn::NodeId h = unfused_g.LeakyRelu(fc.Apply(&unfused_g, unfused_g.Input(x)),
                                       0.001f);
    store.ZeroGrads();
    unfused_g.Backward(unfused_g.MseLoss(h, target));
  };
  auto fused = [&] {
    fused_g.Clear();
    fused_g.set_training(true);
    nn::NodeId h = fc.ApplyLRel(&fused_g, fused_g.Input(x), 0.001f);
    store.ZeroGrads();
    fused_g.Backward(fused_g.MseLoss(h, target));
  };
  for (int i = 0; i < 10; ++i) {
    unfused();
    fused();
  }
  FusedResult r;
  r.unfused_ns = TimePerCall(reps, unfused) * 1e9;
  r.fused_ns = TimePerCall(reps, fused) * 1e9;
  r.speedup = r.unfused_ns / r.fused_ns;
  return r;
}

struct TrainStepResult {
  double ns_per_step = 0;
  double allocs_per_step = 0;
  size_t arena_hits = 0;
  size_t arena_misses = 0;
  bool parity_ok = false;
  int parity_steps = 0;
};

struct StepOutput {
  std::vector<float> losses;
  std::vector<std::vector<float>> params;
};

/// `steps` advanced-model train steps (forward, MSE, backward, Adam) over
/// `batch` on one long-lived graph. Fresh model per call so naive and
/// blocked runs start from identical parameters.
StepOutput RunTrainSteps(const core::Batch& batch, int num_areas, int steps) {
  core::DeepSDConfig config;
  config.num_areas = num_areas;
  nn::ParameterStore store;
  util::Rng rng(11);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced, &store,
                          &rng);
  util::Rng dropout_rng(55);
  nn::Graph g(&dropout_rng);
  nn::Adam adam;
  StepOutput out;
  for (int s = 0; s < steps; ++s) {
    g.Clear();
    g.set_training(true);
    nn::NodeId loss = g.MseLoss(model.Forward(&g, batch), batch.target);
    store.ZeroGrads();
    g.Backward(loss);
    adam.Step(&store);
    out.losses.push_back(g.value(loss).at(0, 0));
  }
  for (const auto& p : store.parameters()) out.params.push_back(p->value.flat());
  return out;
}

TrainStepResult BenchTrainStep(int steps) {
  sim::CityConfig city;
  city.num_areas = 6;
  city.num_days = 12;
  city.seed = 9;
  data::OrderDataset dataset = sim::SimulateCity(city);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, 10);
  auto items = data::MakeItems(dataset, 10, 12, 450, 1410, 30);
  std::vector<feature::ModelInput> inputs;
  for (size_t i = 0; i < 64; ++i) {
    inputs.push_back(assembler.AssembleAdvanced(items[i % items.size()]));
  }
  core::Batch batch =
      core::MakeBatch(core::VectorSource(inputs), 0, inputs.size());

  TrainStepResult r;
  r.parity_steps = steps;

  // Parity: identical seeds, both kernel modes, bitwise-compared losses
  // and final parameters.
  nn::kernels::SetKernelMode(nn::kernels::KernelMode::kNaive);
  StepOutput naive = RunTrainSteps(batch, dataset.num_areas(), steps);
  nn::kernels::SetKernelMode(nn::kernels::KernelMode::kBlocked);
  StepOutput blocked = RunTrainSteps(batch, dataset.num_areas(), steps);
  r.parity_ok =
      naive.losses.size() == blocked.losses.size() &&
      std::memcmp(naive.losses.data(), blocked.losses.data(),
                  naive.losses.size() * sizeof(float)) == 0 &&
      naive.params.size() == blocked.params.size();
  if (r.parity_ok) {
    for (size_t i = 0; i < naive.params.size(); ++i) {
      if (naive.params[i].size() != blocked.params[i].size() ||
          std::memcmp(naive.params[i].data(), blocked.params[i].data(),
                      naive.params[i].size() * sizeof(float)) != 0) {
        r.parity_ok = false;
        break;
      }
    }
  }

  // Timing + steady-state allocations on a warm long-lived graph.
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  nn::ParameterStore store;
  util::Rng rng(11);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced, &store,
                          &rng);
  util::Rng dropout_rng(55);
  nn::Graph g(&dropout_rng);
  nn::Adam adam;
  float sink = 0.0f;
  auto step = [&] {
    g.Clear();
    g.set_training(true);
    nn::NodeId loss = g.MseLoss(model.Forward(&g, batch), batch.target);
    store.ZeroGrads();
    g.Backward(loss);
    adam.Step(&store);
    sink += g.value(loss).at(0, 0);
  };
  for (int i = 0; i < 5; ++i) step();  // warm-up: arena + slots populated

  const size_t hits0 = g.arena().hits();
  const size_t misses0 = g.arena().misses();
  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  double t0 = NowSeconds();
  for (int s = 0; s < steps; ++s) step();
  double dt = NowSeconds() - t0;
  g_alloc_counting.store(false);

  r.ns_per_step = dt / steps * 1e9;
  r.allocs_per_step =
      static_cast<double>(g_alloc_count.load()) / static_cast<double>(steps);
  r.arena_hits = g.arena().hits() - hits0;
  r.arena_misses = g.arena().misses() - misses0;
  if (sink == 12345.0f) std::printf("sink\n");  // defeat dead-code elim
  return r;
}

int Main(int argc, char** argv) {
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown({"reps", "steps", "json", "help"});
  if (!st.ok() || cli.GetBool("help", false)) {
    std::fprintf(stderr,
                 "%s\nusage: bench_kernels [--reps=400] [--steps=30] "
                 "[--json=BENCH_kernels.json]\n",
                 st.ToString().c_str());
    return st.ok() ? 0 : 2;
  }
  const int reps = static_cast<int>(cli.GetInt("reps", 400));
  const int steps = static_cast<int>(cli.GetInt("steps", 30));
  const std::string json_path =
      cli.Has("json") ? cli.GetString("json") : "BENCH_kernels.json";

  std::printf("gemm chains (%d reps each)...\n", reps);
  std::vector<ChainResult> chains;
  chains.push_back(BenchGemmChain(64, reps));
  chains.push_back(BenchGemmChain(128, reps / 4 > 0 ? reps / 4 : 1));
  std::printf("fused linear+lrel...\n");
  FusedResult fused = BenchFusedLinearLRel(reps);
  std::printf("end-to-end train step (%d steps)...\n", steps);
  TrainStepResult ts = BenchTrainStep(steps);

  bool blocked_not_slower = true;
  std::string json = "{\n  \"gemm_chain\": [\n";
  for (size_t i = 0; i < chains.size(); ++i) {
    const ChainResult& c = chains[i];
    blocked_not_slower = blocked_not_slower && c.speedup >= 1.0;
    json += util::StrFormat(
        "    {\"n\": %d, \"naive_ns\": %.0f, \"blocked_ns\": %.0f, "
        "\"quant_ns\": %.0f, \"naive_gflops\": %.2f, "
        "\"blocked_gflops\": %.2f, \"quant_gflops\": %.2f, "
        "\"speedup\": %.2f}%s\n",
        c.n, c.naive_ns, c.blocked_ns, c.quant_ns, c.naive_gflops,
        c.blocked_gflops, c.quant_gflops, c.speedup,
        i + 1 < chains.size() ? "," : "");
  }
  json += util::StrFormat(
      "  ],\n  \"fused_linear_lrel\": {\"unfused_ns\": %.0f, "
      "\"fused_ns\": %.0f, \"speedup\": %.2f},\n",
      fused.unfused_ns, fused.fused_ns, fused.speedup);
  json += util::StrFormat(
      "  \"train_step\": {\"ns_per_step\": %.0f, \"allocs_per_step\": %.2f, "
      "\"arena_hits\": %zu, \"arena_misses\": %zu},\n",
      ts.ns_per_step, ts.allocs_per_step, ts.arena_hits, ts.arena_misses);
  json += util::StrFormat(
      "  \"parity\": {\"steps\": %d, \"bit_identical\": %s},\n",
      ts.parity_steps, ts.parity_ok ? "true" : "false");
  json += util::StrFormat("  \"blocked_not_slower\": %s\n}\n",
                          blocked_not_slower ? "true" : "false");

  std::printf("\n%s", json.c_str());
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!ts.parity_ok) {
    std::fprintf(stderr, "FAIL: naive/blocked train steps not bit-identical\n");
    return 1;
  }
  if (!blocked_not_slower) {
    std::fprintf(stderr, "FAIL: blocked kernels slower than naive\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace deepsd

int main(int argc, char** argv) { return deepsd::Main(argc, argv); }
