#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "core/batch.h"
#include "core/checkpoint.h"
#include "nn/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace deepsd {
namespace core {

namespace {

/// SplitMix64 step — mixes a word into a seed stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Dropout seed of one gradient shard: a pure function of (training seed,
/// global step, shard index), so the mask stream a shard draws is the same
/// no matter which worker runs it or how many threads exist.
uint64_t ShardSeed(uint64_t seed, uint64_t step, uint64_t shard) {
  return Mix64(Mix64(seed ^ (step * 0x9E3779B97F4A7C15ULL)) ^
               (shard + 0xD1B54A32D192ED03ULL));
}

/// Pairwise tree sum over `values` — the scalar-loss twin of the gradient
/// reduction, with the same fixed, thread-count-independent order.
double TreeSum(std::vector<double> values) {
  if (values.empty()) return 0.0;
  for (size_t stride = 1; stride < values.size(); stride *= 2) {
    for (size_t i = 0; i + stride < values.size(); i += 2 * stride) {
      values[i] += values[i + stride];
    }
  }
  return values[0];
}

/// Snapshots every parameter's value in checkpoint (name-addressed) form.
std::vector<nn::NamedTensor> ExportParams(const nn::ParameterStore& store) {
  std::vector<nn::NamedTensor> out;
  out.reserve(store.parameters().size());
  for (const auto& p : store.parameters()) {
    out.push_back({p->name, p->value});
  }
  return out;
}

}  // namespace

std::pair<double, double> EvaluateMaeRmse(const DeepSDModel& model,
                                          const InputSource& source) {
  if (source.size() == 0) return {0.0, 0.0};
  std::vector<float> preds = model.Predict(source);
  double abs_sum = 0.0, sq_sum = 0.0;
  for (size_t i = 0; i < source.size(); ++i) {
    double d = static_cast<double>(preds[i]) - source.Target(i);
    abs_sum += std::abs(d);
    sq_sum += d * d;
  }
  double n = static_cast<double>(source.size());
  return {abs_sum / n, std::sqrt(sq_sum / n)};
}

void CalibrateActivations(const DeepSDModel& model, const InputSource& source,
                          size_t max_samples, int batch_size) {
  // Quant mode would calibrate against already-quantized activations;
  // ranges must come from the fp32 forward.
  std::optional<nn::kernels::ScopedKernelMode> fp32_guard;
  if (nn::kernels::kernel_mode() == nn::kernels::KernelMode::kQuant) {
    fp32_guard.emplace(nn::kernels::KernelMode::kBlocked);
  }
  const size_t limit = std::min(source.size(), max_samples);
  const size_t span = static_cast<size_t>(std::max(batch_size, 1));
  nn::Graph g;
  g.set_training(false);
  g.set_calibrating(true);
  for (size_t begin = 0; begin < limit; begin += span) {
    const size_t end = std::min(begin + span, limit);
    Batch batch = MakeBatch(source, begin, end);
    g.Clear();
    model.Forward(&g, batch);
  }
}

TrainResult Trainer::Train(
    DeepSDModel* model, nn::ParameterStore* store,
    const std::vector<feature::ModelInput>& train_inputs,
    const std::vector<feature::ModelInput>& eval_inputs,
    const std::function<void(const EpochStats&)>& on_epoch,
    const TrainerCheckpoint* resume) {
  return Train(model, store, VectorSource(train_inputs),
               VectorSource(eval_inputs), on_epoch, resume);
}

TrainResult Trainer::FineTuneFrom(
    DeepSDModel* model, nn::ParameterStore* store,
    const nn::ParameterStore& source, const InputSource& train_source,
    const InputSource& eval_source,
    const std::function<void(const EpochStats&)>& on_epoch,
    const TrainerCheckpoint* resume) {
  if (resume == nullptr) store->CopyFrom(source);
  return Train(model, store, train_source, eval_source, on_epoch, resume);
}

TrainResult Trainer::Train(
    DeepSDModel* model, nn::ParameterStore* store,
    const InputSource& train_source, const InputSource& eval_source,
    const std::function<void(const EpochStats&)>& on_epoch,
    const TrainerCheckpoint* resume) {
  DEEPSD_CHECK(train_source.size() > 0);
  // Training is fp32 by contract: under DEEPSD_KERNEL=quant the whole
  // Train() call — forward, backward, and the epoch evals that drive
  // best-k selection — runs on the blocked kernels, bitwise identical to
  // DEEPSD_KERNEL=blocked. The mode is restored on return, so serving the
  // trained model still picks up the int8 path.
  std::optional<nn::kernels::ScopedKernelMode> fp32_guard;
  if (nn::kernels::kernel_mode() == nn::kernels::KernelMode::kQuant) {
    fp32_guard.emplace(nn::kernels::KernelMode::kBlocked);
  }
  TrainResult result;

  util::Rng rng(config_.seed);
  nn::Adam adam({.learning_rate = config_.learning_rate});
  nn::Sgd sgd({.learning_rate = config_.learning_rate});
  const bool use_adam = config_.optimizer == TrainConfig::Optimizer::kAdam;
  auto optimizer_step = [&](nn::ParameterStore* s) {
    return use_adam ? adam.Step(s) : sgd.Step(s);
  };
  auto set_lr = [&](float lr) {
    if (use_adam) {
      adam.set_learning_rate(lr);
    } else {
      sgd.set_learning_rate(lr);
    }
  };

  std::vector<size_t> order(train_source.size());
  std::iota(order.begin(), order.end(), 0);

  // Snapshots of the best epochs, kept sorted by eval RMSE (ascending).
  struct Snapshot {
    double rmse;
    std::unique_ptr<nn::ParameterStore> store;
  };
  std::vector<Snapshot> best;

  const int decay_epoch = static_cast<int>(
      config_.lr_decay_at_fraction * config_.epochs);

  // Resume: put every piece of trainer state back exactly where the
  // checkpoint recorded it. Dropout needs no restoration — shard mask
  // streams are pure functions of (seed, step, shard) — so the shuffle RNG
  // and the in-flight permutation are the only stochastic state.
  int start_epoch = 0;
  uint64_t resume_sample = 0;  // batch offset within the resumed epoch
  uint64_t step = 0;  // global batch counter, seeds shard dropout streams
  double resume_loss_sum = 0.0;
  uint64_t resume_batches = 0;
  if (resume != nullptr) {
    util::Status st = ValidateResume(*resume, config_, *store);
    if (!st.ok()) {
      DEEPSD_LOG(Error) << "cannot resume: " << st.ToString();
    }
    DEEPSD_CHECK(st.ok());
    DEEPSD_CHECK(resume->order.size() == train_source.size());
    // Parameter values + int8 calibration. Calibration is harmless for
    // resume determinism: act_absmax never enters fp32 math, and the
    // trainer recalibrates at the end of the run anyway.
    ApplyCheckpointParams(*resume, store);
    if (use_adam) {
      adam.set_timestep(resume->adam_t);
      adam.ImportState(*store, resume->adam_m, resume->adam_v);
    } else {
      sgd.ImportState(*store, resume->sgd_velocity);
    }
    rng.SetState(resume->rng_state);
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<size_t>(resume->order[i]);
    }
    result.history = resume->history;
    for (const TrainerCheckpoint::BestEntry& e : resume->best) {
      Snapshot snap{e.rmse, store->Clone()};
      ApplyNamedTensors(e.params, snap.store.get());
      best.push_back(std::move(snap));
    }
    start_epoch = resume->epoch;
    resume_sample = resume->next_sample;
    step = resume->step;
    resume_loss_sum = resume->partial_loss_sum;
    resume_batches = resume->partial_batches;
    // Epochs at or before the decay point re-apply the decay inside the
    // loop (set_lr writes an absolute rate, so that is idempotent); only a
    // resume landing past the decay epoch must catch up here.
    if (config_.lr_decay_factor != 1.0f && decay_epoch > 0 &&
        start_epoch > decay_epoch) {
      set_lr(config_.learning_rate * config_.lr_decay_factor);
    }
  }

  // Telemetry: spans feed both the chrome-trace export and the latency
  // histograms; the TimedSpans below additionally supply EpochStats even
  // when obs is disabled.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_counter = registry.GetCounter("trainer/epochs");
  obs::Counter* batches_counter = registry.GetCounter("trainer/batches");
  obs::Counter* shards_counter = registry.GetCounter("trainer/shards");
  obs::Histogram* batch_us = registry.GetHistogram("trainer/batch_us");
  obs::Histogram* shard_us = registry.GetHistogram("trainer/shard_us");
  obs::Gauge* last_rmse = registry.GetGauge("trainer/last_eval_rmse");
  obs::Counter* checkpoints_counter = registry.GetCounter("trainer/checkpoints");

  // Data-parallel machinery. A minibatch is cut into fixed-size shards
  // (shard grain never depends on the thread count); each shard runs
  // forward/backward on its own graph, accumulating into a reusable
  // shard-local GradBuffer, and the buffers are reduced pairwise over
  // shard index. Thread count only decides which worker executes a shard,
  // so training is bit-identical from --threads 1 to --threads N.
  util::ThreadPool& pool = util::ThreadPool::Global();
  const size_t shard_grain =
      static_cast<size_t>(std::max(config_.shard_size, 1));
  const size_t batch_span = static_cast<size_t>(config_.batch_size);
  const size_t max_shards = (batch_span + shard_grain - 1) / shard_grain;
  std::vector<nn::GradBuffer> shard_grads;
  shard_grads.reserve(max_shards);
  for (size_t s = 0; s < max_shards; ++s) shard_grads.emplace_back(*store);
  // One long-lived graph per shard slot: each batch replays the same
  // topology into the slot's arena-recycled tensor storage, so the
  // steady-state forward/backward performs no heap allocations. Shard s
  // always uses shard_graphs[s] no matter which worker runs it, keeping
  // the bit-identity-for-any-thread-count contract.
  std::vector<nn::Graph> shard_graphs(max_shards);
  const auto& params = store->parameters();

  // Serializes the full trainer state (docs/robustness.md). Called after an
  // optimizer step (mid-epoch, next_sample = offset of the next batch) or
  // after an epoch fully completes (next_sample = 0, epoch = the next one).
  const bool checkpointing = !config_.checkpoint_path.empty();
  // Input-reference histogram for serving-side drift scoring (core/drift.h):
  // sampled from the training source once — the distribution is a property
  // of the run, not of the step — and attached to every checkpoint written.
  ReferenceHistogram input_reference;
  bool input_reference_built = false;
  auto write_checkpoint = [&](int ck_epoch, uint64_t next_sample,
                              double loss_sum, uint64_t batches) {
    if (!input_reference_built) {
      input_reference = BuildInputReference(train_source);
      input_reference_built = true;
    }
    TrainerCheckpoint ck;
    ck.config = config_;
    ck.epoch = ck_epoch;
    ck.next_sample = next_sample;
    ck.step = step;
    ck.rng_state = rng.State();
    ck.order.assign(order.begin(), order.end());
    ck.partial_loss_sum = loss_sum;
    ck.partial_batches = batches;
    ck.history = result.history;
    ck.params = ExportParams(*store);
    if (use_adam) {
      ck.adam_t = adam.timestep();
      adam.ExportState(*store, &ck.adam_m, &ck.adam_v);
    } else {
      sgd.ExportState(*store, &ck.sgd_velocity);
    }
    ck.best.reserve(best.size());
    for (const Snapshot& s : best) {
      ck.best.push_back({s.rmse, ExportParams(*s.store)});
    }
    ck.input_reference = input_reference;
    ck.calibration.reserve(store->parameters().size());
    for (const auto& p : store->parameters()) {
      if (p->act_absmax > 0.0f) {
        ck.calibration.push_back({p->name, p->act_absmax});
      }
    }
    util::Status st = SaveCheckpoint(ck, config_.checkpoint_path);
    if (st.ok()) {
      checkpoints_counter->Inc();
    } else {
      // Training carries on: a failed checkpoint write costs resumability,
      // not correctness.
      DEEPSD_LOG(Error) << "checkpoint write failed: " << st.ToString();
    }
  };

  obs::TimedSpan train_span("trainer/train");
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    obs::TimedSpan epoch_span("trainer/epoch");
    if (config_.lr_decay_factor != 1.0f && epoch == decay_epoch && epoch > 0) {
      set_lr(config_.learning_rate * config_.lr_decay_factor);
    }
    // A mid-epoch resume re-enters an epoch whose shuffle already happened;
    // `order` and the RNG hold the post-shuffle state, so re-shuffling here
    // would tear the run away from the uninterrupted trajectory.
    const bool resumed_mid_epoch = epoch == start_epoch && resume_sample > 0;
    if (config_.shuffle && !resumed_mid_epoch) {
      for (size_t i = order.size(); i > 1; --i) {
        size_t j = rng.UniformInt(i);
        std::swap(order[i - 1], order[j]);
      }
    }

    double loss_sum = resumed_mid_epoch ? resume_loss_sum : 0.0;
    size_t batches =
        resumed_mid_epoch ? static_cast<size_t>(resume_batches) : 0;
    const size_t first_sample =
        resumed_mid_epoch ? static_cast<size_t>(resume_sample) : 0;
    obs::TimedSpan batch_phase("trainer/epoch_batches");
    for (size_t begin = first_sample; begin < order.size();
         begin += batch_span) {
      DEEPSD_SPAN("trainer/batch", batch_us);
      const size_t end = std::min(order.size(), begin + batch_span);
      const size_t batch_size = end - begin;
      const size_t num_shards = (batch_size + shard_grain - 1) / shard_grain;
      std::vector<double> shard_loss(num_shards, 0.0);

      pool.ParallelFor(0, num_shards, 1, [&](size_t s0, size_t s1) {
        for (size_t s = s0; s < s1; ++s) {
          DEEPSD_SPAN("trainer/shard", shard_us);
          const size_t sb = begin + s * shard_grain;
          const size_t se = std::min(end, sb + shard_grain);
          std::vector<size_t> idx(order.begin() + static_cast<long>(sb),
                                  order.begin() + static_cast<long>(se));
          Batch batch = MakeBatch(train_source, idx);

          util::Rng dropout_rng(ShardSeed(config_.seed, step, s));
          nn::GradBuffer& grads = shard_grads[s];
          grads.Zero();
          nn::Graph& g = shard_graphs[s];
          g.Clear();
          g.set_rng(&dropout_rng);
          g.set_training(true);
          g.set_grad_buffer(&grads);
          nn::NodeId pred = model->Forward(&g, batch);
          // Shard losses are squared error over the shard divided by the
          // full batch size, so per-sample gradients match the unsharded
          // mean and the shard losses sum to the batch loss.
          nn::NodeId loss = g.MseLoss(pred, batch.target,
                                      static_cast<double>(batch_size));
          g.Backward(loss);
          shard_loss[s] = static_cast<double>(g.value(loss).at(0, 0));
          // dropout_rng and grads are loop-local; drop the references so
          // the persistent graph never dangles between batches.
          g.set_rng(nullptr);
          g.set_grad_buffer(nullptr);
        }
      });
      shards_counter->Inc(num_shards);

      // Deterministic reduction: pairwise tree over shard index, written
      // into the store's gradients; one parameter per work item.
      pool.ParallelFor(0, params.size(), 8, [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; ++p) {
          for (size_t stride = 1; stride < num_shards; stride *= 2) {
            for (size_t i = 0; i + stride < num_shards; i += 2 * stride) {
              nn::Tensor& dst = shard_grads[i].at(p);
              const nn::Tensor& src = shard_grads[i + stride].at(p);
              for (size_t k = 0; k < dst.size(); ++k) {
                dst.flat()[k] += src.flat()[k];
              }
            }
          }
          params[p]->grad = shard_grads[0].at(p);
        }
      });

      optimizer_step(store);
      loss_sum += TreeSum(std::move(shard_loss));
      ++batches;
      ++step;
      batches_counter->Inc();
      if (checkpointing && config_.checkpoint_every_steps > 0 &&
          step % config_.checkpoint_every_steps == 0) {
        write_checkpoint(epoch, end, loss_sum, batches);
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    stats.batch_seconds = batch_phase.Stop();
    obs::TimedSpan eval_phase("trainer/epoch_eval");
    auto [mae, rmse] = EvaluateMaeRmse(*model, eval_source);
    stats.eval_seconds = eval_phase.Stop();
    stats.seconds = stats.batch_seconds + stats.eval_seconds;
    stats.eval_mae = mae;
    stats.eval_rmse = rmse;
    result.history.push_back(stats);
    epochs_counter->Inc();
    last_rmse->Set(rmse);

    if (config_.verbose) {
      DEEPSD_LOG(Info) << util::StrFormat(
          "epoch %3d  train_mse=%.3f  eval_mae=%.3f  eval_rmse=%.3f  "
          "(%.1fs batches + %.1fs eval)",
          epoch, stats.train_loss, stats.eval_mae, stats.eval_rmse,
          stats.batch_seconds, stats.eval_seconds);
    }
    if (on_epoch) on_epoch(stats);

    if (config_.best_k > 0 && eval_source.size() > 0) {
      Snapshot snap{rmse, store->Clone()};
      auto pos = std::lower_bound(
          best.begin(), best.end(), snap.rmse,
          [](const Snapshot& s, double v) { return s.rmse < v; });
      best.insert(pos, std::move(snap));
      if (static_cast<int>(best.size()) > config_.best_k) best.pop_back();
    }

    // Epoch-end checkpoint, written only after the best-k ring absorbed
    // this epoch so a resume can rebuild the final averaged model exactly.
    if (checkpointing) write_checkpoint(epoch + 1, 0, 0.0, 0);
  }
  result.total_seconds = train_span.Stop();
  result.seconds_per_epoch =
      config_.epochs > 0 ? result.total_seconds / config_.epochs : 0.0;

  if (!best.empty()) {
    result.best_eval_rmse = best.front().rmse;
    std::vector<const nn::ParameterStore*> stores;
    stores.reserve(best.size());
    for (const Snapshot& s : best) stores.push_back(s.store.get());
    store->AverageFrom(stores);
  } else if (!result.history.empty()) {
    result.best_eval_rmse = result.history.back().eval_rmse;
  }

  auto [mae, rmse] = EvaluateMaeRmse(*model, eval_source);
  result.final_eval_mae = mae;
  result.final_eval_rmse = rmse;

  // Int8 calibration pass over (a bounded prefix of) the training data:
  // one single-threaded run of the final averaged model with the graph in
  // calibration mode fills every weight's activation-range EWMA
  // (Parameter::act_absmax), which Save() and the v3 checkpoint persist so
  // serving replicas run the static quantization scales. Values are
  // untouched; this costs one small forward sweep.
  CalibrateActivations(*model, train_source);
  return result;
}

}  // namespace core
}  // namespace deepsd
