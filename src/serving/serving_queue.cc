#include "serving/serving_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace deepsd {
namespace serving {

ServingQueue::ServingQueue(const OnlinePredictor* predictor,
                           ServingQueueConfig config)
    : predictor_(predictor), config_(std::move(config)) {
  DEEPSD_CHECK_MSG(predictor_ != nullptr, "ServingQueue needs a predictor");
  config_.capacity = std::max<size_t>(config_.capacity, 1);
  config_.num_workers = std::max(config_.num_workers, 1);
  config_.service_ewma_alpha =
      std::min(std::max(config_.service_ewma_alpha, 0.01), 1.0);

  if (config_.metric_prefix.empty()) config_.metric_prefix = "serving";
  const std::string& p = config_.metric_prefix;
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  admitted_counter_ = r.GetCounter(p + "/admitted");
  shed_counters_[0] = r.GetCounter(p + "/shed_queue_full");
  shed_counters_[1] = r.GetCounter(p + "/shed_deadline");
  shed_counters_[2] = r.GetCounter(p + "/shed_rate_limited");
  shed_counters_[3] = r.GetCounter(p + "/shed_breaker");
  shed_counters_[4] = r.GetCounter(p + "/shed_draining");
  deadline_miss_counter_ = r.GetCounter(p + "/deadline_miss");
  queue_wait_hist_ = r.GetHistogram(p + "/queue_wait_us");
  depth_gauge_ = r.GetGauge(p + "/queue_depth");
  wedged_counter_ = r.GetCounter(p + "/watchdog_wedged");

  worker_states_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (config_.watchdog_stuck_us > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

ServingQueue::~ServingQueue() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

std::future<ServingResponse> ServingQueue::Submit(
    std::vector<int> area_ids) {
  util::Deadline deadline = config_.default_deadline_us > 0
                                ? util::Deadline::After(
                                      config_.default_deadline_us)
                                : util::Deadline::Infinite();
  return Submit(std::move(area_ids), deadline);
}

std::future<ServingResponse> ServingQueue::ShedNow(AdmitVerdict verdict) {
  const int idx = static_cast<int>(verdict) - 1;
  shed_counters_[idx]->Inc();
  std::promise<ServingResponse> promise;
  ServingResponse response;
  response.verdict = verdict;
  std::future<ServingResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

std::future<ServingResponse> ServingQueue::Submit(std::vector<int> area_ids,
                                                  util::Deadline deadline) {
  return Submit(std::move(area_ids), deadline, {});
}

std::future<ServingResponse> ServingQueue::Submit(std::vector<int> area_ids,
                                                  util::Deadline deadline,
                                                  store::PinnedModel pinned) {
  const int64_t now_us = util::NowSteadyUs();
  // Shed decisions happen on the caller's thread, in cheapest-first order;
  // each tallies exactly one verdict so admitted + shed == offered.
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.offered;
  if (draining_) {
    ++stats_.shed_draining;
    lock.unlock();
    return ShedNow(AdmitVerdict::kShedDraining);
  }
  if (config_.breaker != nullptr && !config_.breaker->AllowAt(now_us)) {
    ++stats_.shed_breaker;
    lock.unlock();
    return ShedNow(AdmitVerdict::kShedBreaker);
  }
  if (config_.rate_limiter != nullptr &&
      !config_.rate_limiter->TryAcquireAt(now_us)) {
    ++stats_.shed_rate_limited;
    // The breaker handed out a probe slot above the request never used.
    if (config_.breaker != nullptr) config_.breaker->CancelProbe();
    lock.unlock();
    return ShedNow(AdmitVerdict::kShedRateLimited);
  }
  if (queue_.size() >= config_.capacity) {
    ++stats_.shed_queue_full;
    if (config_.breaker != nullptr) config_.breaker->CancelProbe();
    lock.unlock();
    return ShedNow(AdmitVerdict::kShedQueueFull);
  }
  // Deadline feasibility: with EWMA(service) ≈ s and d requests ahead
  // (queued + executing), this request starts in ~s·d and finishes in
  // ~s·(d+1). If that already exceeds the remaining budget, admitting it
  // only manufactures a deadline miss — reject now, while the caller can
  // still do something else with the time.
  if (!deadline.infinite()) {
    const int64_t remaining = deadline.RemainingAt(now_us);
    const double est_finish_us =
        ewma_service_us_ *
        static_cast<double>(queue_.size() + in_flight_ + 1);
    if (remaining <= 0 ||
        (ewma_service_us_ > 0.0 &&
         est_finish_us > static_cast<double>(remaining))) {
      ++stats_.shed_deadline;
      if (config_.breaker != nullptr) config_.breaker->CancelProbe();
      lock.unlock();
      return ShedNow(AdmitVerdict::kShedDeadline);
    }
  }

  ++stats_.admitted;
  Request request;
  request.area_ids = std::move(area_ids);
  request.deadline = deadline;
  request.pinned = pinned;
  request.enqueue_us = now_us;
  std::future<ServingResponse> future = request.promise.get_future();
  queue_.push_back(std::move(request));
  depth_gauge_->Set(static_cast<double>(queue_.size()));
  lock.unlock();
  admitted_counter_->Inc();
  work_cv_.notify_one();
  return future;
}

void ServingQueue::WorkerLoop(int worker_index) {
  WorkerState& state = *worker_states_[static_cast<size_t>(worker_index)];
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ is set only after Drain(), so an empty queue here means
        // every accepted request has already resolved.
        return;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }

    const int64_t start_us = util::NowSteadyUs();
    state.flagged.store(false, std::memory_order_relaxed);
    state.busy_since_us.store(start_us, std::memory_order_relaxed);

    ServingResponse response;
    response.verdict = AdmitVerdict::kAdmitted;
    response.queue_wait_us = start_us - request.enqueue_us;
    queue_wait_hist_->Observe(
        static_cast<double>(response.queue_wait_us));
    response.result = predictor_->PredictBatch(
        request.area_ids, request.deadline, request.pinned);
    const int64_t end_us = util::NowSteadyUs();
    response.total_us = end_us - request.enqueue_us;
    response.deadline_missed = response.result.deadline_expired ||
                               request.deadline.ExpiredAt(end_us);
    if (response.deadline_missed) deadline_miss_counter_->Inc();

    // Feed the breaker: a miss or a bottom-of-ladder answer is a failure
    // signal (the caller could have produced that answer itself).
    if (config_.breaker != nullptr) {
      if (response.deadline_missed ||
          response.result.tier == FallbackTier::kBaseline) {
        config_.breaker->RecordFailureAt(end_us);
      } else {
        config_.breaker->RecordSuccessAt(end_us);
      }
    }

    state.busy_since_us.store(0, std::memory_order_relaxed);
    const double service_us = static_cast<double>(end_us - start_us);
    // Publish the request's accounting BEFORE resolving its future: a
    // caller whose future.get() has returned must already find its own
    // request in stats() (the sharded gather reads per-shard
    // deadline_misses right after the merge completes).
    {
      std::lock_guard<std::mutex> lock(mu_);
      ewma_service_us_ = ewma_service_us_ <= 0.0
                             ? service_us
                             : (1.0 - config_.service_ewma_alpha) *
                                       ewma_service_us_ +
                                   config_.service_ewma_alpha * service_us;
      ++stats_.completed;
      if (response.deadline_missed) ++stats_.deadline_misses;
    }
    // ...and resolve the future BEFORE dropping in_flight_: Drain()
    // returns the moment queue-empty && in_flight==0 holds
    // (condition_variable waits may wake spuriously), and its guarantee is
    // that every accepted future is already resolved by then.
    request.promise.set_value(std::move(response));
    bool quiescent = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      quiescent = queue_.empty() && in_flight_ == 0;
    }
    if (quiescent) drain_cv_.notify_all();
  }
}

void ServingQueue::WatchdogLoop() {
  const auto poll = std::chrono::microseconds(
      std::max<int64_t>(config_.watchdog_stuck_us / 4, 1000));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    watchdog_cv_.wait_for(lock, poll);
    if (stop_) return;
    const int64_t now_us = util::NowSteadyUs();
    for (size_t i = 0; i < worker_states_.size(); ++i) {
      WorkerState& state = *worker_states_[i];
      const int64_t busy_since =
          state.busy_since_us.load(std::memory_order_relaxed);
      if (busy_since == 0) continue;
      if (now_us - busy_since < config_.watchdog_stuck_us) continue;
      if (state.flagged.exchange(true, std::memory_order_relaxed)) continue;
      wedged_counter_->Inc();
      DEEPSD_LOG(Warning)
          << "serving worker " << i << " wedged: one request running for "
          << (now_us - busy_since) / 1000 << " ms (threshold "
          << config_.watchdog_stuck_us / 1000 << " ms)";
    }
  }
}

void ServingQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ServingQueue::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ServingQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

ServingQueueStats ServingQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double ServingQueue::estimated_service_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_service_us_;
}

const char* ServingQueue::VerdictName(AdmitVerdict v) {
  switch (v) {
    case AdmitVerdict::kAdmitted: return "admitted";
    case AdmitVerdict::kShedQueueFull: return "shed_queue_full";
    case AdmitVerdict::kShedDeadline: return "shed_deadline";
    case AdmitVerdict::kShedRateLimited: return "shed_rate_limited";
    case AdmitVerdict::kShedBreaker: return "shed_breaker";
    case AdmitVerdict::kShedDraining: return "shed_draining";
  }
  return "unknown";
}

}  // namespace serving
}  // namespace deepsd
