#include "eval/online_accuracy.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepsd {
namespace eval {
namespace {

constexpr int kNumTiers = 4;

const char* const kTierSuffix[kNumTiers] = {"fresh", "zoh", "empirical",
                                            "baseline"};

}  // namespace

/// The accuracy/* metric handles, resolved once per process (registry
/// pointers are process-lifetime, so one tracker instance after another —
/// e.g. per test — reuses the same metrics).
struct OnlineAccuracyTracker::Published {
  obs::Gauge* mae;
  obs::Gauge* rmse;
  obs::Gauge* er;
  obs::Gauge* tier_mae[kNumTiers];
  obs::Gauge* tier_rmse[kNumTiers];
  obs::Gauge* tier_er[kNumTiers];
  obs::Gauge* tier_count[kNumTiers];
  obs::Gauge* worst_area_mae;
  obs::Gauge* worst_area_id;
  obs::Gauge* prediction_drift;
  obs::Gauge* residual_drift;
  obs::Gauge* input_psi;
  obs::Gauge* pending;
  obs::Counter* joined;
  obs::Counter* dropped_pending;

  static const Published* Get() {
    static const Published* p = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* out = new Published();
      out->mae = reg.GetGauge("accuracy/mae");
      out->rmse = reg.GetGauge("accuracy/rmse");
      out->er = reg.GetGauge("accuracy/er");
      for (int t = 0; t < kNumTiers; ++t) {
        const std::string suffix = kTierSuffix[t];
        out->tier_mae[t] = reg.GetGauge("accuracy/mae_" + suffix);
        out->tier_rmse[t] = reg.GetGauge("accuracy/rmse_" + suffix);
        out->tier_er[t] = reg.GetGauge("accuracy/er_" + suffix);
        out->tier_count[t] = reg.GetGauge("accuracy/window_" + suffix);
      }
      out->worst_area_mae = reg.GetGauge("accuracy/worst_area_mae");
      out->worst_area_id = reg.GetGauge("accuracy/worst_area_id");
      out->prediction_drift = reg.GetGauge("accuracy/prediction_drift");
      out->residual_drift = reg.GetGauge("accuracy/residual_drift");
      out->input_psi = reg.GetGauge("accuracy/input_psi");
      out->pending = reg.GetGauge("accuracy/pending");
      out->joined = reg.GetCounter("accuracy/joined");
      out->dropped_pending = reg.GetCounter("accuracy/pending_dropped");
      return out;
    }();
    return p;
  }
};

OnlineAccuracyTracker::OnlineAccuracyTracker(const OnlineAccuracyConfig& config)
    : config_(config), pub_(Published::Get()) {
  DEEPSD_CHECK_MSG(config_.num_areas > 0,
                   "OnlineAccuracyTracker needs num_areas");
  DEEPSD_CHECK_MSG(config_.horizon > 0,
                   "OnlineAccuracyTracker needs horizon > 0");
  pending_.resize(static_cast<size_t>(config_.num_areas));
  per_area_.resize(static_cast<size_t>(config_.num_areas));
}

util::Status OnlineAccuracyTracker::SetInputReference(
    const core::ReferenceHistogram& reference) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Status valid = reference.Validate();
  if (!valid.ok()) {
    // A corrupt reference must not silently mis-bucket live activity:
    // detach PSI scoring entirely and surface the typed error.
    reference_ = core::ReferenceHistogram{};
    live_counts_.clear();
    live_window_.clear();
    return valid;
  }
  reference_ = reference;
  live_counts_.assign(reference_.counts.size(), 0);
  live_window_.clear();
  return util::Status::OK();
}

void OnlineAccuracyTracker::OnPrediction(const std::vector<int>& area_ids,
                                         const serving::PredictResult& result,
                                         const std::vector<float>& activity,
                                         int64_t now_abs) {
  std::lock_guard<std::mutex> lock(mu_);
  const int8_t tier = static_cast<int8_t>(result.tier);
  for (size_t i = 0; i < area_ids.size(); ++i) {
    const int area = area_ids[i];
    if (area < 0 || area >= config_.num_areas) continue;
    if (i >= result.gaps.size()) break;
    auto& q = pending_[static_cast<size_t>(area)];
    q.push_back(PendingPrediction{now_abs, result.gaps[i], tier, 0.0f});
    if (q.size() > config_.max_pending_per_area) {
      q.pop_front();
      ++dropped_pending_;
      if (config_.publish_metrics) pub_->dropped_pending->Inc();
    }
  }
  if (!reference_.empty()) {
    for (size_t i = 0; i < activity.size() && i < area_ids.size(); ++i) {
      const size_t bucket = reference_.BucketOf(activity[i]);
      ++live_counts_[bucket];
      live_window_.push_back(static_cast<uint16_t>(bucket));
      if (live_window_.size() > config_.window_samples) {
        --live_counts_[live_window_.front()];
        live_window_.pop_front();
      }
    }
  }
}

void OnlineAccuracyTracker::OnOrderAccepted(const data::Order& order,
                                            int64_t ts_abs) {
  // The paper's target counts *invalid* orders in [t, t+10); valid orders
  // carry no gap signal.
  if (order.valid) return;
  if (order.start_area < 0 || order.start_area >= config_.num_areas) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (PendingPrediction& p : pending_[static_cast<size_t>(order.start_area)]) {
    if (ts_abs >= p.start_abs && ts_abs < p.start_abs + config_.horizon) {
      p.truth += 1.0f;
    }
  }
}

void OnlineAccuracyTracker::OnClockAdvance(int64_t now_abs) {
  std::lock_guard<std::mutex> lock(mu_);
  CloseMaturedLocked(now_abs);
}

void OnlineAccuracyTracker::CloseMaturedLocked(int64_t now_abs) {
  bool closed_any = false;
  for (int area = 0; area < config_.num_areas; ++area) {
    auto& q = pending_[static_cast<size_t>(area)];
    // Pending predictions are in issue order, but slots may interleave when
    // a deadline-expired retry lands late; scan rather than assume sorted.
    for (size_t i = 0; i < q.size();) {
      if (q[i].start_abs + config_.horizon <= now_abs) {
        AddJoinLocked(Joined{area, q[i].tier, q[i].predicted, q[i].truth});
        q.erase(q.begin() + static_cast<ptrdiff_t>(i));
        closed_any = true;
      } else {
        ++i;
      }
    }
  }
  if (closed_any) PublishLocked();
}

void OnlineAccuracyTracker::AddJoinLocked(const Joined& join) {
  const double err = static_cast<double>(join.predicted) - join.truth;
  auto add = [&](RollingSums& s) {
    s.abs_err += std::abs(err);
    s.sq_err += err * err;
    s.truth += static_cast<double>(join.truth);
    ++s.n;
  };
  // Evict the oldest join once the window is full, subtracting its exact
  // contribution from every rolling aggregate it entered.
  if (window_.size() >= config_.window_samples && !window_.empty()) {
    const Joined& old = window_.front();
    const double old_err =
        static_cast<double>(old.predicted) - static_cast<double>(old.truth);
    auto sub = [&](RollingSums& s) {
      s.abs_err -= std::abs(old_err);
      s.sq_err -= old_err * old_err;
      s.truth -= static_cast<double>(old.truth);
      --s.n;
    };
    sub(overall_);
    sub(per_tier_[std::clamp<int>(old.tier, 0, kNumTiers - 1)]);
    sub(per_area_[static_cast<size_t>(old.area)]);
    window_.pop_front();
  }
  window_.push_back(join);
  add(overall_);
  add(per_tier_[std::clamp<int>(join.tier, 0, kNumTiers - 1)]);
  add(per_area_[static_cast<size_t>(join.area)]);
  add(since_mark_);

  ++joined_total_;
  if (config_.publish_metrics) pub_->joined->Inc();

  const double pred = static_cast<double>(join.predicted);
  if (!ewma_seeded_) {
    pred_fast_ = pred_slow_ = pred;
    resid_fast_ = resid_slow_ = err;
    ewma_seeded_ = true;
  } else {
    const double fa = config_.drift_fast_alpha;
    const double sa = config_.drift_slow_alpha;
    pred_fast_ += fa * (pred - pred_fast_);
    pred_slow_ += sa * (pred - pred_slow_);
    resid_fast_ += fa * (err - resid_fast_);
    resid_slow_ += sa * (err - resid_slow_);
  }
}

TierAccuracy OnlineAccuracyTracker::FromSums(const RollingSums& sums) {
  TierAccuracy acc;
  acc.count = sums.n;
  if (sums.n == 0) return acc;
  acc.mae = sums.abs_err / static_cast<double>(sums.n);
  acc.rmse = std::sqrt(std::max(0.0, sums.sq_err / static_cast<double>(sums.n)));
  acc.er = sums.truth > 0 ? sums.abs_err / sums.truth : 0.0;
  return acc;
}

void OnlineAccuracyTracker::PublishLocked() {
  if (!config_.publish_metrics) return;
  const TierAccuracy overall = FromSums(overall_);
  pub_->mae->Set(overall.mae);
  pub_->rmse->Set(overall.rmse);
  pub_->er->Set(overall.er);
  for (int t = 0; t < kNumTiers; ++t) {
    const TierAccuracy acc = FromSums(per_tier_[t]);
    pub_->tier_mae[t]->Set(acc.mae);
    pub_->tier_rmse[t]->Set(acc.rmse);
    pub_->tier_er[t]->Set(acc.er);
    pub_->tier_count[t]->Set(static_cast<double>(acc.count));
  }

  int worst_area = -1;
  double worst_mae = -1;
  for (int a = 0; a < config_.num_areas; ++a) {
    const RollingSums& s = per_area_[static_cast<size_t>(a)];
    if (s.n == 0) continue;
    const double mae = s.abs_err / static_cast<double>(s.n);
    if (mae > worst_mae) {
      worst_mae = mae;
      worst_area = a;
    }
  }
  if (worst_area >= 0) {
    pub_->worst_area_mae->Set(worst_mae);
    pub_->worst_area_id->Set(worst_area);
  }

  if (ewma_seeded_) {
    pub_->prediction_drift->Set(std::abs(pred_fast_ - pred_slow_));
    pub_->residual_drift->Set(std::abs(resid_fast_ - resid_slow_));
  }
  if (!reference_.empty()) {
    pub_->input_psi->Set(
        core::PopulationStabilityIndex(reference_, live_counts_));
  }
  uint64_t pending_count = 0;
  for (const auto& q : pending_) pending_count += q.size();
  pub_->pending->Set(static_cast<double>(pending_count));
}

TierAccuracy OnlineAccuracyTracker::Overall() const {
  std::lock_guard<std::mutex> lock(mu_);
  return FromSums(overall_);
}

TierAccuracy OnlineAccuracyTracker::ForTier(serving::FallbackTier tier) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FromSums(per_tier_[std::clamp(static_cast<int>(tier), 0, 3)]);
}

TierAccuracy OnlineAccuracyTracker::ForArea(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (area < 0 || area >= config_.num_areas) return TierAccuracy{};
  return FromSums(per_area_[static_cast<size_t>(area)]);
}

void OnlineAccuracyTracker::Mark() {
  std::lock_guard<std::mutex> lock(mu_);
  since_mark_ = RollingSums{};
}

TierAccuracy OnlineAccuracyTracker::SinceMark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return FromSums(since_mark_);
}

double OnlineAccuracyTracker::PredictionDrift() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_seeded_ ? std::abs(pred_fast_ - pred_slow_) : 0.0;
}

double OnlineAccuracyTracker::ResidualDrift() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_seeded_ ? std::abs(resid_fast_ - resid_slow_) : 0.0;
}

double OnlineAccuracyTracker::InputPsi() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (reference_.empty()) return 0.0;
  return core::PopulationStabilityIndex(reference_, live_counts_);
}

uint64_t OnlineAccuracyTracker::joined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return joined_total_;
}

uint64_t OnlineAccuracyTracker::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& q : pending_) n += q.size();
  return n;
}

uint64_t OnlineAccuracyTracker::dropped_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_pending_;
}

}  // namespace eval
}  // namespace deepsd
