// deepsd_simulate: generate a synthetic car-hailing city and save it as a
// binary OrderDataset for the other tools.
//
//   deepsd_simulate --out=city.bin --areas=58 --days=52 --seed=42 \
//                   [--mean_scale=1.0] [--no_weather] [--no_traffic]

#include <cstdio>

#include "data/serialize.h"
#include "sim/city_sim.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace deepsd;
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown({"out", "areas", "days", "seed",
                                    "mean_scale", "no_weather", "no_traffic",
                                    "first_weekday", "help"});
  if (!st.ok() || cli.GetBool("help", false)) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_simulate --out=city.bin [--areas=58] "
                 "[--days=52] [--seed=42] [--mean_scale=1.0] [--no_weather] "
                 "[--no_traffic] [--first_weekday=1]\n",
                 st.ToString().c_str());
    return st.ok() ? 0 : 2;
  }

  std::string out = cli.GetString("out", "city.bin");
  sim::CityConfig config;
  config.num_areas = static_cast<int>(cli.GetInt("areas", 58));
  config.num_days = static_cast<int>(cli.GetInt("days", 52));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  config.mean_scale = cli.GetDouble("mean_scale", 1.0);
  config.generate_weather = !cli.GetBool("no_weather", false);
  config.generate_traffic = !cli.GetBool("no_traffic", false);
  config.first_weekday = static_cast<int>(cli.GetInt("first_weekday", 1));

  std::printf("simulating %d areas x %d days (seed %llu)...\n",
              config.num_areas, config.num_days,
              static_cast<unsigned long long>(config.seed));
  sim::SimSummary summary;
  data::OrderDataset dataset = sim::SimulateCity(config, &summary);
  std::printf(
      "generated %zu orders (%.1f%% unmet), %.1f%% of busy-hour windows "
      "balanced, max gap %d\n",
      summary.total_orders,
      100.0 * summary.invalid_orders / std::max<size_t>(summary.total_orders, 1),
      100.0 * summary.zero_gap_fraction, summary.max_gap);

  st = data::SaveDataset(dataset, out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
