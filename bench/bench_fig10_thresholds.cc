// Reproduces paper Fig 10 (accuracy under different thresholds): MAE and
// RMSE of GBDT, Basic DeepSD and Advanced DeepSD evaluated on the subsets
// of test items whose true gap is below each threshold.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Fig 10: accuracy under thresholds");

  std::vector<float> targets = exp.TestTargets();

  std::printf("training GBDT...\n");
  std::vector<float> gbdt = bench::RunGbdt(exp);
  std::printf("training Basic DeepSD...\n");
  auto basic = exp.TrainDeepSD(core::DeepSDModel::Mode::kBasic,
                               exp.ModelConfig(), 7);
  std::printf("training Advanced DeepSD...\n");
  auto advanced = exp.TrainDeepSD(core::DeepSDModel::Mode::kAdvanced,
                                  exp.ModelConfig(), 7);

  const double thresholds[] = {5, 10, 20, 50, 100, 200, 1e18};
  eval::TablePrinter mae_table(
      {"Threshold", "Items", "GBDT MAE", "Basic MAE", "Advanced MAE"});
  eval::TablePrinter rmse_table(
      {"Threshold", "Items", "GBDT RMSE", "Basic RMSE", "Advanced RMSE"});
  for (double th : thresholds) {
    eval::Metrics g = eval::ComputeMetricsThresholded(gbdt, targets, th);
    eval::Metrics b =
        eval::ComputeMetricsThresholded(basic.test_predictions, targets, th);
    eval::Metrics a = eval::ComputeMetricsThresholded(
        advanced.test_predictions, targets, th);
    std::string label =
        th > 1e17 ? "all" : util::StrFormat("%.0f", th);
    mae_table.AddRow({label, util::StrFormat("%zu", g.count),
                      util::StrFormat("%.2f", g.mae),
                      util::StrFormat("%.2f", b.mae),
                      util::StrFormat("%.2f", a.mae)});
    rmse_table.AddRow({label, util::StrFormat("%zu", g.count),
                       util::StrFormat("%.2f", g.rmse),
                       util::StrFormat("%.2f", b.rmse),
                       util::StrFormat("%.2f", a.rmse)});
  }
  std::printf("\nFig 10(a): MAE under thresholds\n");
  mae_table.Print();
  std::printf("\nFig 10(b): RMSE under thresholds\n");
  rmse_table.Print();
  std::printf(
      "\nPaper shape to verify: Advanced DeepSD best at every threshold; "
      "Basic DeepSD clearly better than GBDT on MAE, comparable on RMSE.\n");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
