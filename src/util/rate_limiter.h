#ifndef DEEPSD_UTIL_RATE_LIMITER_H_
#define DEEPSD_UTIL_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>

#include "util/deadline.h"

namespace deepsd {
namespace util {

/// Token-bucket rate limiter: `rate_per_second` tokens refill continuously
/// into a bucket capped at `burst`, and a request proceeds only if it can
/// take its tokens now — the classic admission primitive for protecting a
/// shared backend from a caller that suddenly offers 10× its usual load.
///
/// TryAcquire never blocks; a denied caller sheds (or retries later) rather
/// than queueing, which is the behavior the serving queue wants: by the
/// time a blocked request would reach the model its deadline is gone.
///
/// Thread-safe (one mutex; the critical section is a few arithmetic ops).
/// The *At variants take an explicit NowSteadyUs() timestamp so tests can
/// drive a virtual clock deterministically.
class RateLimiter {
 public:
  /// `rate_per_second` <= 0 disables limiting (every TryAcquire succeeds).
  /// `burst` is the bucket capacity; values below 1 are clamped to 1 so a
  /// configured limiter can always pass at least one request.
  RateLimiter(double rate_per_second, double burst);

  bool TryAcquire(double tokens = 1.0) {
    return TryAcquireAt(NowSteadyUs(), tokens);
  }
  bool TryAcquireAt(int64_t now_us, double tokens = 1.0);

  /// Tokens currently available (after refilling to `now_us`).
  double AvailableAt(int64_t now_us) const;

  /// Refills the bucket to full and restarts the refill clock at `now_us`.
  void ResetAt(int64_t now_us);

  double rate_per_second() const { return rate_per_second_; }
  double burst() const { return burst_; }
  bool unlimited() const { return rate_per_second_ <= 0; }

 private:
  void RefillLocked(int64_t now_us) const;

  double rate_per_second_;
  double burst_;

  mutable std::mutex mu_;
  mutable double tokens_;
  mutable int64_t last_refill_us_;
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_RATE_LIMITER_H_
