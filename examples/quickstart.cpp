// Quickstart: the minimal end-to-end use of the DeepSD library.
//
//   1. Simulate a small city (or load your own OrderDataset).
//   2. Build prediction items and a FeatureAssembler.
//   3. Train Basic DeepSD.
//   4. Predict supply-demand gaps for unseen days and report MAE/RMSE.
//
// Runs in well under a minute on a laptop.

#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "sim/city_sim.h"

int main(int argc, char** argv) {
  using namespace deepsd;

  // Where to save the trained parameters. Pass a path (e.g. a temp dir) to
  // keep the artifact out of your working tree; the default lands in the
  // current directory.
  const char* model_path = argc > 1 ? argv[1] : "quickstart_model.bin";

  // 1. A small city: 10 areas, 3 weeks. Replace with data::LoadDataset(...)
  //    to use a previously saved real dataset.
  sim::CityConfig city;
  city.num_areas = 10;
  city.num_days = 21;
  city.seed = 7;
  sim::SimSummary summary;
  data::OrderDataset dataset = sim::SimulateCity(city, &summary);
  std::printf("simulated %zu orders over %d areas x %d days (%.1f%% unmet)\n",
              summary.total_orders, dataset.num_areas(), dataset.num_days(),
              100.0 * summary.invalid_orders / summary.total_orders);

  // 2. Train on the first 2 weeks, test on the last one. Features follow the
  //    paper's protocol: one item per area every few minutes, look-back
  //    window L = 20 minutes.
  const int train_end = 14;
  feature::FeatureConfig feature_config;
  feature::FeatureAssembler assembler(&dataset, feature_config, 0, train_end);
  auto train_items = data::MakeItems(dataset, 0, train_end, 20, 1430, 15);
  auto test_items = data::MakeTestItems(dataset, train_end, 21);
  std::printf("%zu train items, %zu test items\n", train_items.size(),
              test_items.size());

  // 3. Basic DeepSD: embeddings + supply-demand block + environment blocks.
  core::DeepSDConfig model_config;
  model_config.num_areas = dataset.num_areas();
  nn::ParameterStore params;
  util::Rng rng(42);
  core::DeepSDModel model(model_config, core::DeepSDModel::Mode::kBasic,
                          &params, &rng);

  core::AssemblerSource train_source(&assembler, train_items, false);
  core::AssemblerSource test_source(&assembler, test_items, false);
  core::TrainConfig train_config;
  train_config.epochs = 5;
  train_config.best_k = 2;
  train_config.verbose = true;
  core::Trainer trainer(train_config);
  core::TrainResult result =
      trainer.Train(&model, &params, train_source, test_source);

  // 4. Evaluate.
  std::vector<float> predictions = model.Predict(test_source);
  std::vector<float> targets;
  for (const auto& item : test_items) targets.push_back(item.gap);
  eval::Metrics metrics = eval::ComputeMetrics(predictions, targets);
  std::printf("\ntest MAE  = %.3f\ntest RMSE = %.3f (best epoch %.3f)\n",
              metrics.mae, metrics.rmse, result.best_eval_rmse);

  // Show a few predictions next to the ground truth.
  std::printf("\n%6s %6s %8s %8s\n", "area", "time", "true", "pred");
  for (size_t i = 0; i < test_items.size(); i += test_items.size() / 10) {
    std::printf("%6d %6s %8.1f %8.1f\n", test_items[i].area,
                util::MinuteToClock(test_items[i].t).c_str(),
                test_items[i].gap, predictions[i]);
  }

  // Persist the trained model for later fine-tuning (see
  // extend_with_traffic.cpp).
  util::Status st = params.Save(model_path);
  std::printf("\nsaved parameters to %s: %s\n", model_path,
              st.ToString().c_str());
  return st.ok() ? 0 : 1;
}
