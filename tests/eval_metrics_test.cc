#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/table_printer.h"

namespace deepsd {
namespace eval {
namespace {

TEST(MetricsTest, KnownValues) {
  Metrics m = ComputeMetrics({1.0f, 2.0f, 3.0f}, {0.0f, 2.0f, 1.0f});
  EXPECT_EQ(m.count, 3u);
  EXPECT_NEAR(m.mae, (1 + 0 + 2) / 3.0, 1e-9);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 0 + 4) / 3.0), 1e-9);
}

TEST(MetricsTest, PerfectPrediction) {
  Metrics m = ComputeMetrics({5.0f, 7.0f}, {5.0f, 7.0f});
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
}

TEST(MetricsTest, EmptyInput) {
  Metrics m = ComputeMetrics({}, {});
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.mae, 0.0);
}

TEST(MetricsTest, RmseAtLeastMae) {
  Metrics m = ComputeMetrics({1.0f, 10.0f, 2.0f}, {0.0f, 0.0f, 0.0f});
  EXPECT_GE(m.rmse, m.mae);
}

TEST(MetricsTest, ThresholdedRestrictsByTarget) {
  std::vector<float> pred = {1.0f, 100.0f, 3.0f};
  std::vector<float> target = {0.0f, 50.0f, 5.0f};
  Metrics all = ComputeMetricsThresholded(pred, target, 1e9);
  EXPECT_EQ(all.count, 3u);
  Metrics small = ComputeMetricsThresholded(pred, target, 10.0);
  EXPECT_EQ(small.count, 2u);
  EXPECT_NEAR(small.mae, (1.0 + 2.0) / 2, 1e-9);
}

TEST(MetricsTest, ImprovementPercent) {
  EXPECT_NEAR(ImprovementPercent(13.99, 15.88), 11.9, 0.05);  // the paper's claim
  EXPECT_EQ(ImprovementPercent(1.0, 0.0), 0.0);
  EXPECT_LT(ImprovementPercent(2.0, 1.0), 0.0);  // regression is negative
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Model", "MAE", "RMSE"});
  table.AddRow("GBDT", {3.72, 15.88});
  table.AddRow(std::vector<std::string>{"Advanced DeepSD", "3.30", "13.99"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Model"), std::string::npos);
  EXPECT_NE(out.find("3.72"), std::string::npos);
  EXPECT_NE(out.find("Advanced DeepSD"), std::string::npos);
  // All lines equal width.
  size_t first_nl = out.find('\n');
  std::string first_line = out.substr(0, first_nl);
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_line.size());
    pos = nl + 1;
  }
}

}  // namespace
}  // namespace eval
}  // namespace deepsd
