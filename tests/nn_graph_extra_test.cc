// Additional autograd coverage: exact forward values for every arithmetic
// op, analytic softmax Jacobian on known inputs, multi-part concat
// gradients, graph reuse via Clear(), and gradient flow through the exact
// composite the extended block uses.

#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/graph.h"

namespace deepsd {
namespace nn {
namespace {

TEST(GraphExtraTest, ScaleSubMulValues) {
  Graph g;
  NodeId a = g.Input(Tensor::Row({2.0f, -3.0f}));
  NodeId b = g.Input(Tensor::Row({5.0f, 4.0f}));
  EXPECT_FLOAT_EQ(g.value(g.Scale(a, -2.0f)).at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(g.value(g.Sub(a, b)).at(0, 0), -3.0f);
  EXPECT_FLOAT_EQ(g.value(g.Mul(a, b)).at(0, 1), -12.0f);
}

TEST(GraphExtraTest, SoftmaxMatchesAnalyticValues) {
  Graph g;
  NodeId y = g.Softmax(g.Input(Tensor::Row({0.0f, std::log(3.0f)})));
  EXPECT_NEAR(g.value(y).at(0, 0), 0.25f, 1e-6);
  EXPECT_NEAR(g.value(y).at(0, 1), 0.75f, 1e-6);
}

TEST(GraphExtraTest, SoftmaxGradientMatchesJacobian) {
  // d softmax_i / d x_j = y_i(δ_ij − y_j). Pick loss = y_0 (via slice and
  // a weighted MSE trick): use MseLoss with a target making dL/dy simple.
  ParameterStore store;
  util::Rng rng(1);
  Parameter* x = store.Create("x", 1, 3, Init::kZero, &rng);
  x->value.at(0, 0) = 0.2f;
  x->value.at(0, 1) = -0.4f;
  x->value.at(0, 2) = 0.9f;

  Graph g;
  NodeId y = g.Softmax(g.Param(x));
  // loss = mean((y - 0)^2) → dL/dy_i = 2 y_i / 3.
  Tensor target(1, 3);
  NodeId loss = g.MseLoss(y, target);
  store.ZeroGrads();
  g.Backward(loss);

  const Tensor& yv = g.value(y);
  for (int j = 0; j < 3; ++j) {
    double expected = 0;
    for (int i = 0; i < 3; ++i) {
      double dli = 2.0 * yv.at(0, i) / 3.0;
      double jac = yv.at(0, i) * ((i == j ? 1.0 : 0.0) - yv.at(0, j));
      expected += dli * jac;
    }
    EXPECT_NEAR(x->grad.at(0, j), expected, 1e-6) << "j=" << j;
  }
}

TEST(GraphExtraTest, ConcatThreePartsRoutesGradients) {
  ParameterStore store;
  util::Rng rng(2);
  Parameter* a = store.Create("a", 2, 1, Init::kZero, &rng);
  Parameter* b = store.Create("b", 2, 2, Init::kZero, &rng);
  Parameter* c = store.Create("c", 2, 3, Init::kZero, &rng);
  Graph g;
  NodeId cat = g.Concat({g.Param(a), g.Param(b), g.Param(c)});
  ASSERT_EQ(g.value(cat).cols(), 6);
  Tensor target(2, 6);
  target.Fill(1.0f);  // pred-target = -1 everywhere
  NodeId loss = g.MseLoss(cat, target);
  store.ZeroGrads();
  g.Backward(loss);
  // dL/dx = 2(x−t)/12 = −1/6 for every element of every part.
  for (Parameter* p : {a, b, c}) {
    for (float v : p->grad.flat()) EXPECT_NEAR(v, -1.0f / 6, 1e-6);
  }
}

TEST(GraphExtraTest, ClearAllowsReuse) {
  Graph g;
  NodeId a = g.Input(Tensor::Row({1.0f}));
  EXPECT_EQ(g.num_nodes(), 1u);
  g.Clear();
  EXPECT_EQ(g.num_nodes(), 0u);
  NodeId b = g.Input(Tensor::Row({2.0f, 3.0f}));
  EXPECT_EQ(b, 0);  // ids restart
  EXPECT_EQ(g.value(b).cols(), 2);
  (void)a;
}

TEST(GraphExtraTest, ParamValueSnapshotTakenAtBind) {
  // Param nodes copy the value at bind time; later mutation of the
  // parameter does not change an already-built graph.
  ParameterStore store;
  util::Rng rng(3);
  Parameter* w = store.Create("w", 1, 1, Init::kZero, &rng);
  w->value.at(0, 0) = 1.0f;
  Graph g;
  NodeId n = g.Param(w);
  w->value.at(0, 0) = 99.0f;
  EXPECT_FLOAT_EQ(g.value(n).at(0, 0), 1.0f);
}

TEST(GraphExtraTest, DeviationCompositeGradients) {
  // The extended block's est = pe10 + (pv − pe): gradient of a downstream
  // loss must flow +1 to pe10, +1 to pv and −1 to pe.
  ParameterStore store;
  util::Rng rng(4);
  Parameter* pv = store.Create("pv", 1, 2, Init::kZero, &rng);
  Parameter* pe = store.Create("pe", 1, 2, Init::kZero, &rng);
  Parameter* pe10 = store.Create("pe10", 1, 2, Init::kZero, &rng);
  pv->value.at(0, 0) = 1.0f;
  pe->value.at(0, 0) = 2.0f;
  pe10->value.at(0, 0) = 3.0f;

  Graph g;
  NodeId est = g.Add(g.Param(pe10), g.Sub(g.Param(pv), g.Param(pe)));
  EXPECT_FLOAT_EQ(g.value(est).at(0, 0), 2.0f);
  Tensor target(1, 2);
  NodeId loss = g.MseLoss(est, target);  // dL/dest = 2·est/2 = est
  store.ZeroGrads();
  g.Backward(loss);
  EXPECT_FLOAT_EQ(pe10->grad.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(pv->grad.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(pe->grad.at(0, 0), -2.0f);
}

TEST(GraphExtraTest, GroupWeightedSumBatchRows) {
  // Batch of two rows with different weights: rows are independent.
  Graph g;
  Tensor p(2, 2), h(2, 4);
  p.at(0, 0) = 1.0f;  // row 0 picks group 0
  p.at(1, 1) = 1.0f;  // row 1 picks group 1
  for (int c = 0; c < 4; ++c) {
    h.at(0, c) = static_cast<float>(c);
    h.at(1, c) = static_cast<float>(10 + c);
  }
  NodeId e = g.GroupWeightedSum(g.Input(p), g.Input(h), 2);
  EXPECT_FLOAT_EQ(g.value(e).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.value(e).at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(g.value(e).at(1, 0), 12.0f);
  EXPECT_FLOAT_EQ(g.value(e).at(1, 1), 13.0f);
}

TEST(GraphExtraTest, MseGradientSign) {
  ParameterStore store;
  util::Rng rng(5);
  Parameter* w = store.Create("w", 1, 1, Init::kZero, &rng);
  w->value.at(0, 0) = 2.0f;
  Graph g;
  Tensor target(1, 1);
  target.at(0, 0) = 5.0f;
  NodeId loss = g.MseLoss(g.Param(w), target);
  store.ZeroGrads();
  g.Backward(loss);
  // Under-prediction → negative gradient pushes w up under gradient descent.
  EXPECT_LT(w->grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 2.0f * (2.0f - 5.0f));
}

}  // namespace
}  // namespace nn
}  // namespace deepsd
