// Sharded scatter-gather serving under load (docs/sharding.md): a
// 1/2/4/8-shard sweep of PredictCity throughput over the same synthetic
// city, each level gated on the shard-equivalence contract (bitwise
// identical to the direct predictor under an infinite deadline) and the
// scatter-gather accounting invariant (admitted + shed == offered, per
// shard and merged), followed by a skewed-hotspot scenario: one shard's
// queue is drowned by background load while citywide calls run under a
// finite budget. The hotspot gate is the whole point of sharding — the
// merged p99 stays bounded because the hot shard sheds and degrades its
// own slice instead of dragging every district's latency with it.
// Exits nonzero when any gate breaks.
//
// On the 1-core CI container the sweep's throughput is flat-to-noisy
// (shard workers multiplex one core — same caveat as
// bench_parallel_scaling); the JSON still records it per shard count so
// multi-core machines show the scaling curve, and the correctness gates
// bind everywhere.
//
//   bench_sharded_serving [--areas=64] [--days=6] [--requests=30]
//                         [--hotspot_requests=25]
//                         [--json=BENCH_sharded.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "feature/feature_assembler.h"
#include "serving/online_predictor.h"
#include "serving/sharded_predictor.h"
#include "sim/city_sim.h"
#include "util/cli.h"
#include "util/deadline.h"
#include "util/string_util.h"

namespace deepsd {
namespace {

double PercentileUs(std::vector<int64_t> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return static_cast<double>(v[std::min(idx, v.size() - 1)]);
}

/// Replays a fresh feature window for minute `t_now` of `serve_day` into
/// any sink with the AddOrder/AddWeather/AddTraffic/AdvanceTo surface.
template <typename Sink>
void ReplayFeeds(const data::OrderDataset& dataset, int serve_day, int t_now,
                 int window, Sink& sink) {
  sink.AdvanceTo(serve_day, t_now - window);
  for (int ts = t_now - window; ts < t_now; ++ts) {
    for (int a = 0; a < dataset.num_areas(); ++a) {
      for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
        sink.AddOrder(o);
      }
      if (dataset.has_traffic()) {
        data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
        tr.area = a;
        tr.day = serve_day;
        tr.ts = ts;
        sink.AddTraffic(tr);
      }
    }
    if (dataset.has_weather()) {
      data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
      w.day = serve_day;
      w.ts = ts;
      sink.AddWeather(w);
    }
  }
  sink.AdvanceTo(serve_day, t_now);
}

struct SweepResult {
  int shards = 0;
  double throughput_areas_per_s = 0;
  double p50_us = 0, p99_us = 0;  // per-PredictCity latency
  int ring_max_load = 0, ring_min_load = 0;
  bool equivalent = false;   // bitwise vs the direct predictor
  bool accounting_ok = false;  // admitted + shed == offered, everywhere
};

struct HotspotResult {
  int shards = 0;
  int hot_shard = -1;
  uint64_t hot_shed = 0, hot_misses = 0;
  uint64_t sibling_shed = 0, sibling_misses = 0;
  double p50_us = 0, p99_us = 0;  // merged PredictCity latency under fire
  double p99_bound_us = 0;
  size_t incomplete_calls = 0;
  bool fresh_siblings = true;  // every sibling slice stayed tier kNone
  bool bounded = false;
};

int Main(int argc, char** argv) {
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown(
      {"areas", "days", "requests", "hotspot_requests", "json", "help"});
  if (!st.ok() || cli.GetBool("help", false)) {
    std::fprintf(stderr,
                 "%s\nusage: bench_sharded_serving [--areas=64] [--days=6] "
                 "[--requests=30] [--hotspot_requests=25] "
                 "[--json=BENCH_sharded.json]\n",
                 st.ToString().c_str());
    return st.ok() ? 0 : 2;
  }

  sim::CityConfig city;
  city.num_areas = static_cast<int>(cli.GetInt("areas", 64));
  city.num_days = static_cast<int>(cli.GetInt("days", 6));
  city.seed = 42;
  // Keep generation cheap at large --areas: the bench measures serving,
  // not the generator.
  if (city.num_areas > 200) city.mean_scale = 0.2;
  const int requests = static_cast<int>(cli.GetInt("requests", 30));
  const int hotspot_requests =
      static_cast<int>(cli.GetInt("hotspot_requests", 25));
  const int train_days = std::max(2, city.num_days * 2 / 3);
  const int serve_day = train_days;

  std::printf("simulating %d areas x %d days, training probe model...\n",
              city.num_areas, city.num_days);
  data::OrderDataset dataset = sim::SimulateCity(city);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 60);
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, train);

  const int t_now = 480;
  serving::OnlinePredictor direct(&model, &assembler);
  ReplayFeeds(dataset, serve_day, t_now, fc.window, direct.buffer());

  std::vector<int> all_areas(static_cast<size_t>(dataset.num_areas()));
  for (int a = 0; a < dataset.num_areas(); ++a) {
    all_areas[static_cast<size_t>(a)] = a;
  }
  const std::vector<float> want = direct.PredictBatch(all_areas);

  // Calibrate one citywide call for the hotspot budget.
  const int64_t calib_start = util::NowSteadyUs();
  for (int i = 0; i < 4; ++i) {
    direct.PredictBatch(all_areas, util::Deadline::Infinite());
  }
  const double city_service_us = std::max(
      static_cast<double>(util::NowSteadyUs() - calib_start) / 4.0, 100.0);
  std::printf("calibrated citywide service %.0f us/call\n", city_service_us);

  bool ok = true;

  // ------------------------------------------------ shard-count sweep
  std::vector<SweepResult> sweep;
  for (int shards : {1, 2, 4, 8}) {
    serving::ShardedPredictorConfig sc;
    sc.ring.num_shards = shards;
    sc.queue.num_workers = 1;
    sc.queue.capacity = 64;
    sc.queue.watchdog_stuck_us = 0;
    serving::ShardedPredictor sharded(&model, &assembler, sc);
    ReplayFeeds(dataset, serve_day, t_now, fc.window, sharded);

    SweepResult r;
    r.shards = shards;
    const std::vector<int> loads =
        sharded.ring().LoadHistogram(dataset.num_areas());
    r.ring_max_load = *std::max_element(loads.begin(), loads.end());
    r.ring_min_load = *std::min_element(loads.begin(), loads.end());

    // Equivalence gate: the merged answer is bitwise the direct one.
    serving::CityPredictResult first =
        sharded.PredictCity(all_areas, util::Deadline::Infinite());
    r.equivalent = first.gaps.size() == want.size() &&
                   first.tier == serving::FallbackTier::kNone &&
                   first.fully_served;
    if (r.equivalent) {
      for (size_t i = 0; i < want.size(); ++i) {
        if (first.gaps[i] != want[i]) {
          r.equivalent = false;
          break;
        }
      }
    }
    if (!r.equivalent) {
      std::fprintf(stderr,
                   "FAIL %d shards: PredictCity != direct predictor — the "
                   "equivalence contract is broken\n",
                   shards);
      ok = false;
    }

    // Timed loop: back-to-back citywide scatter-gathers.
    std::vector<int64_t> call_us;
    call_us.reserve(static_cast<size_t>(requests));
    const int64_t sweep_start = util::NowSteadyUs();
    for (int i = 0; i < requests; ++i) {
      const int64_t t0 = util::NowSteadyUs();
      serving::CityPredictResult c =
          sharded.PredictCity(all_areas, util::Deadline::Infinite());
      call_us.push_back(util::NowSteadyUs() - t0);
      if (c.gaps.size() != all_areas.size()) {
        std::fprintf(stderr, "FAIL %d shards: truncated answer\n", shards);
        ok = false;
      }
    }
    const double elapsed_s =
        static_cast<double>(util::NowSteadyUs() - sweep_start) / 1e6;
    r.throughput_areas_per_s =
        static_cast<double>(all_areas.size()) *
        static_cast<double>(requests) / std::max(elapsed_s, 1e-9);
    r.p50_us = PercentileUs(call_us, 0.50);
    r.p99_us = PercentileUs(call_us, 0.99);

    sharded.Drain();
    serving::ShardedStats stats = sharded.stats();
    r.accounting_ok = true;
    for (size_t s = 0; s < stats.per_shard.size(); ++s) {
      const serving::ServingQueueStats& q = stats.per_shard[s];
      if (q.offered != q.admitted + q.shed_total() ||
          q.completed != q.admitted) {
        std::fprintf(stderr, "FAIL %d shards: shard %zu accounting broke\n",
                     shards, s);
        r.accounting_ok = false;
      }
    }
    const serving::ServingQueueStats merged = stats.merged();
    if (merged.offered != merged.admitted + merged.shed_total()) {
      std::fprintf(stderr, "FAIL %d shards: merged accounting broke\n",
                   shards);
      r.accounting_ok = false;
    }
    if (!r.accounting_ok) ok = false;

    std::printf(
        "%d shard(s): %8.0f areas/s  p50 %6.0f us  p99 %6.0f us  "
        "ring %d..%d areas/shard  %s\n",
        shards, r.throughput_areas_per_s, r.p50_us, r.p99_us,
        r.ring_min_load, r.ring_max_load,
        r.equivalent && r.accounting_ok ? "OK" : "FAIL");
    sweep.push_back(r);
  }

  // ------------------------------------------------ skewed hotspot
  // One shard's queue is drowned by a background blocker loop; citywide
  // calls run under a finite per-call budget. The gate: the merged p99
  // stays bounded (the hot shard sheds or misses and answers its slice
  // from the cheap path) and sibling slices stay fresh — the surge never
  // leaves its district.
  HotspotResult hot;
  {
    const int shards = 4;
    serving::ShardedPredictorConfig sc;
    sc.ring.num_shards = shards;
    sc.queue.num_workers = 1;
    sc.queue.capacity = 4;
    sc.queue.watchdog_stuck_us = 0;
    serving::ShardedPredictor sharded(&model, &assembler, sc);
    ReplayFeeds(dataset, serve_day, t_now, fc.window, sharded);

    hot.shards = shards;
    hot.hot_shard = sharded.ShardOf(all_areas[0]);
    // The per-call budget: a healthy citywide call fits comfortably; a
    // call stuck behind the blocker's multi-x batches does not.
    const int64_t budget_us =
        std::max<int64_t>(static_cast<int64_t>(city_service_us * 3), 2000);
    hot.p99_bound_us = static_cast<double>(budget_us) * 4.0;

    // Background fire on the hot shard only: repeated large direct
    // submissions that keep its single worker saturated.
    std::vector<int> hot_areas;
    for (int a : all_areas) {
      if (sharded.ShardOf(a) == hot.hot_shard) hot_areas.push_back(a);
    }
    std::vector<int> blocker;
    for (int i = 0; i < 6; ++i) {
      blocker.insert(blocker.end(), hot_areas.begin(), hot_areas.end());
    }
    std::atomic<bool> stop{false};
    std::thread arsonist([&] {
      // Keep more submissions outstanding than the queue holds (capacity
      // 4 + 1 in flight), so the hot queue is persistently overfull: the
      // excess sheds kShedQueueFull and any citywide slice racing in
      // finds a saturated queue. Waiting only on the oldest future paces
      // the loop at the worker's service rate.
      std::deque<std::future<serving::ServingResponse>> inflight;
      while (!stop.load(std::memory_order_acquire)) {
        inflight.push_back(sharded.shard_queue(hot.hot_shard)
                               .Submit(blocker, util::Deadline::Infinite()));
        if (inflight.size() >= 7) {
          inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });

    std::vector<int64_t> call_us;
    for (int i = 0; i < hotspot_requests; ++i) {
      const int64_t t0 = util::NowSteadyUs();
      serving::CityPredictResult c =
          sharded.PredictCity(all_areas, util::Deadline::After(budget_us));
      call_us.push_back(util::NowSteadyUs() - t0);
      if (c.gaps.size() != all_areas.size()) ++hot.incomplete_calls;
      for (const serving::ShardOutcome& o : c.shards) {
        if (o.shard == hot.hot_shard) continue;
        if (o.tier != serving::FallbackTier::kNone ||
            o.verdict != serving::AdmitVerdict::kAdmitted) {
          hot.fresh_siblings = false;
        }
      }
    }
    stop.store(true, std::memory_order_release);
    arsonist.join();
    sharded.Drain();

    serving::ShardedStats stats = sharded.stats();
    for (int s = 0; s < shards; ++s) {
      const serving::ServingQueueStats& q =
          stats.per_shard[static_cast<size_t>(s)];
      if (s == hot.hot_shard) {
        hot.hot_shed = q.shed_total();
        hot.hot_misses = q.deadline_misses;
      } else {
        hot.sibling_shed += q.shed_total();
        hot.sibling_misses += q.deadline_misses;
      }
    }
    hot.p50_us = PercentileUs(call_us, 0.50);
    hot.p99_us = PercentileUs(call_us, 0.99);
    hot.bounded = hot.p99_us <= hot.p99_bound_us;

    std::printf(
        "hotspot (%d shards, hot=%d): p50 %.0f us p99 %.0f us "
        "(bound %.0f us)  hot shed %llu miss %llu  sibling shed %llu "
        "miss %llu  %s\n",
        shards, hot.hot_shard, hot.p50_us, hot.p99_us, hot.p99_bound_us,
        static_cast<unsigned long long>(hot.hot_shed),
        static_cast<unsigned long long>(hot.hot_misses),
        static_cast<unsigned long long>(hot.sibling_shed),
        static_cast<unsigned long long>(hot.sibling_misses),
        hot.bounded ? "OK" : "FAIL");

    if (!hot.bounded) {
      std::fprintf(stderr,
                   "FAIL hotspot: merged p99 %.0f us exceeds %.0f us — a "
                   "drowned shard is stalling citywide calls\n",
                   hot.p99_us, hot.p99_bound_us);
      ok = false;
    }
    if (hot.incomplete_calls != 0) {
      std::fprintf(stderr, "FAIL hotspot: %zu truncated answer(s)\n",
                   hot.incomplete_calls);
      ok = false;
    }
    if (!hot.fresh_siblings) {
      std::fprintf(stderr,
                   "FAIL hotspot: a sibling shard degraded — the hot "
                   "district's surge leaked\n");
      ok = false;
    }
    if (hot.hot_shed + hot.hot_misses == 0) {
      std::fprintf(stderr,
                   "FAIL hotspot: the hot shard never shed or missed — the "
                   "scenario applied no pressure\n");
      ok = false;
    }
  }

  // ------------------------------------------------ JSON
  std::string json = util::StrFormat(
      "{\n  \"areas\": %d,\n  \"requests_per_level\": %d,\n"
      "  \"city_service_us\": %.1f,\n  \"sweep\": [\n",
      dataset.num_areas(), requests, city_service_us);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    json += util::StrFormat(
        "    {\"shards\": %d, \"areas_per_s\": %.0f, \"p50_us\": %.0f, "
        "\"p99_us\": %.0f, \"ring_min_load\": %d, \"ring_max_load\": %d, "
        "\"equivalent\": %s, \"accounting_ok\": %s}%s\n",
        r.shards, r.throughput_areas_per_s, r.p50_us, r.p99_us,
        r.ring_min_load, r.ring_max_load, r.equivalent ? "true" : "false",
        r.accounting_ok ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  json += util::StrFormat(
      "  ],\n  \"hotspot\": {\"shards\": %d, \"hot_shard\": %d, "
      "\"p50_us\": %.0f, \"p99_us\": %.0f, \"p99_bound_us\": %.0f, "
      "\"hot_shed\": %llu, \"hot_deadline_misses\": %llu, "
      "\"sibling_shed\": %llu, \"sibling_deadline_misses\": %llu, "
      "\"fresh_siblings\": %s, \"bounded\": %s},\n",
      hot.shards, hot.hot_shard, hot.p50_us, hot.p99_us, hot.p99_bound_us,
      static_cast<unsigned long long>(hot.hot_shed),
      static_cast<unsigned long long>(hot.hot_misses),
      static_cast<unsigned long long>(hot.sibling_shed),
      static_cast<unsigned long long>(hot.sibling_misses),
      hot.fresh_siblings ? "true" : "false", hot.bounded ? "true" : "false");
  json += "  \"invariants_ok\": ";
  json += ok ? "true" : "false";
  json += "\n}\n";

  std::printf("\n%s", json.c_str());
  if (cli.Has("json")) {
    std::string path = cli.GetString("json");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace deepsd

int main(int argc, char** argv) { return deepsd::Main(argc, argv); }
