#include "serving/online_predictor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepsd {
namespace serving {

OnlinePredictor::OnlinePredictor(const core::DeepSDModel* model,
                                 const feature::FeatureAssembler* history)
    : model_(model),
      history_(history),
      buffer_(history->dataset().num_areas(), history->config().window) {
  DEEPSD_CHECK(model != nullptr);
  DEEPSD_CHECK_MSG(model->config().window == history->config().window,
                   "model and assembler window mismatch");
}

feature::ModelInput OnlinePredictor::AssembleLive(int area) const {
  const bool advanced =
      model_->mode() == core::DeepSDModel::Mode::kAdvanced;
  const int t = buffer_.minute();
  const int t10 = t + data::kGapWindow;

  feature::ModelInput in;
  in.area_id = area;
  in.time_id = t;
  in.week_id = history_->dataset().WeekId(buffer_.day());

  in.v_sd = history_->NormalizeCounts(buffer_.SupplyDemandVector(area));
  if (advanced) {
    in.h_sd = history_->NormalizeCounts(
        history_->HistoricalVectors(0, area, t));
    in.h_sd10 = history_->NormalizeCounts(
        history_->HistoricalVectors(0, area, t10));
    in.v_lc = history_->NormalizeCounts(buffer_.LastCallVector(area));
    in.h_lc = history_->NormalizeCounts(
        history_->HistoricalVectors(1, area, t));
    in.h_lc10 = history_->NormalizeCounts(
        history_->HistoricalVectors(1, area, t10));
    in.v_wt = history_->NormalizeCounts(buffer_.WaitingTimeVector(area));
    in.h_wt = history_->NormalizeCounts(
        history_->HistoricalVectors(2, area, t));
    in.h_wt10 = history_->NormalizeCounts(
        history_->HistoricalVectors(2, area, t10));
  }

  in.weather_types = buffer_.WeatherTypes();
  in.weather_reals = buffer_.WeatherReals();
  const int L = history_->config().window;
  for (int i = 0; i < L; ++i) {
    in.weather_reals[static_cast<size_t>(i)] =
        history_->NormTemp(in.weather_reals[static_cast<size_t>(i)]);
    in.weather_reals[static_cast<size_t>(L + i)] =
        history_->NormPm(in.weather_reals[static_cast<size_t>(L + i)]);
  }
  in.v_tc = buffer_.TrafficVector(area);
  for (size_t i = 0; i < in.v_tc.size(); ++i) {
    in.v_tc[i] = history_->NormTraffic(
        static_cast<int>(i % data::kCongestionLevels), in.v_tc[i]);
  }
  return in;
}

float OnlinePredictor::Predict(int area) const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_us");
  DEEPSD_SPAN("serving/predict", latency_us);
  std::vector<feature::ModelInput> inputs = {AssembleLive(area)};
  return model_->Predict(inputs)[0];
}

std::vector<float> OnlinePredictor::PredictAll() const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_all_us");
  DEEPSD_SPAN("serving/predict_all", latency_us);
  std::vector<int> area_ids(static_cast<size_t>(buffer_.num_areas()));
  for (int a = 0; a < buffer_.num_areas(); ++a) {
    area_ids[static_cast<size_t>(a)] = a;
  }
  return AssembleAndPredict(area_ids);
}

std::vector<float> OnlinePredictor::PredictBatch(
    const std::vector<int>& area_ids) const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_batch_us");
  DEEPSD_SPAN("serving/predict_batch", latency_us);
  return AssembleAndPredict(area_ids);
}

std::vector<float> OnlinePredictor::AssembleAndPredict(
    const std::vector<int>& area_ids) const {
  if (area_ids.empty()) return {};
  // Assembly parallelizes over areas (each writes its own slot; the stream
  // buffer's accessors are mutex-guarded snapshots); the forward pass then
  // parallelizes internally over row chunks. A chunk of 16 areas keeps
  // per-task graphs small enough to overlap across workers. Each worker's
  // graph is long-lived and arena-backed (see docs/performance.md), so a
  // steady request stream replays prebuilt topologies into recycled tensor
  // storage instead of reallocating per request.
  std::vector<feature::ModelInput> inputs(area_ids.size());
  util::ThreadPool::Global().ParallelFor(
      0, area_ids.size(), 4, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
          inputs[i] = AssembleLive(area_ids[i]);
        }
      });
  return model_->Predict(inputs, /*batch_size=*/16);
}

}  // namespace serving
}  // namespace deepsd
