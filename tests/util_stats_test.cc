#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepsd {
namespace util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(Stddev({5.0}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, PearsonCorrelationPerfect) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> ny = {-2, -4, -6, -8, -10};
  EXPECT_NEAR(PearsonCorrelation(x, ny), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerate) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_EQ(Percentile(xs, 0), 1.0);
  EXPECT_EQ(Percentile(xs, 100), 5.0);
  EXPECT_NEAR(Percentile(xs, 50), 3.0, 1e-12);
  EXPECT_NEAR(Percentile(xs, 25), 2.0, 1e-12);
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, LogLogSlopeOfExactPowerLaw) {
  // counts = value^-2 → slope -2.
  std::vector<double> values, counts;
  for (int v = 1; v <= 50; ++v) {
    values.push_back(v);
    counts.push_back(std::pow(v, -2.0));
  }
  EXPECT_NEAR(LogLogSlope(values, counts), -2.0, 1e-9);
}

TEST(StatsTest, LogLogSlopeIgnoresNonPositive) {
  EXPECT_EQ(LogLogSlope({0.0, -1.0}, {1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
