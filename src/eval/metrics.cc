#include "eval/metrics.h"

#include <cmath>

#include "util/logging.h"

namespace deepsd {
namespace eval {

Metrics ComputeMetrics(const std::vector<float>& predictions,
                       const std::vector<float>& targets) {
  DEEPSD_CHECK(predictions.size() == targets.size());
  Metrics m;
  if (predictions.empty()) return m;
  double abs_sum = 0.0, sq_sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = static_cast<double>(predictions[i]) - targets[i];
    abs_sum += std::abs(d);
    sq_sum += d * d;
  }
  m.count = predictions.size();
  m.mae = abs_sum / static_cast<double>(m.count);
  m.rmse = std::sqrt(sq_sum / static_cast<double>(m.count));
  return m;
}

Metrics ComputeMetricsThresholded(const std::vector<float>& predictions,
                                  const std::vector<float>& targets,
                                  double threshold) {
  DEEPSD_CHECK(predictions.size() == targets.size());
  std::vector<float> p, t;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] <= threshold) {
      p.push_back(predictions[i]);
      t.push_back(targets[i]);
    }
  }
  return ComputeMetrics(p, t);
}

double ImprovementPercent(double a, double b) {
  if (b == 0.0) return 0.0;
  return 100.0 * (b - a) / b;
}

}  // namespace eval
}  // namespace deepsd
