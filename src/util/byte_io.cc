#include "util/byte_io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/fault_injector.h"

namespace deepsd {
namespace util {

namespace {

enum FloatBlockMode : uint8_t {
  kFloatRaw = 0,       // raw little-endian IEEE bits
  kFloatSelfXor = 1,   // chunked bit-packed XOR with the previous element
  kFloatRefXor = 2,    // chunked bit-packed XOR with a caller-supplied ref
};

// XOR deltas are packed in chunks of this many values, each chunk at the
// width of its own widest delta. A single outlier (one weight crossing an
// exponent boundary against the reference) then costs 8 wide bytes once
// instead of widening the whole tensor.
constexpr size_t kFloatChunk = 512;

// XOR-delta stream for one mode.
void XorDeltas(const float* data, size_t n, const float* ref, bool self,
               std::vector<uint64_t>* out) {
  out->resize(n);
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    uint32_t base = 0;
    if (self) {
      base = prev;
      prev = bits;
    } else if (ref != nullptr) {
      std::memcpy(&base, &ref[i], sizeof(base));
    }
    (*out)[i] = bits ^ base;
  }
}

// Encoded size of `deltas` under per-chunk widths: u8 width + packed
// payload per chunk.
size_t ChunkedBytes(const std::vector<uint64_t>& deltas) {
  size_t total = 0;
  for (size_t begin = 0; begin < deltas.size(); begin += kFloatChunk) {
    const size_t len = std::min(kFloatChunk, deltas.size() - begin);
    uint64_t max = 0;
    for (size_t i = begin; i < begin + len; ++i) {
      max = std::max(max, deltas[i]);
    }
    total += 1 + BitPackedBytes(len, BitWidth64(max));
  }
  return total;
}

void PutChunked(ByteWriter* w, const std::vector<uint64_t>& deltas) {
  for (size_t begin = 0; begin < deltas.size(); begin += kFloatChunk) {
    const size_t len = std::min(kFloatChunk, deltas.size() - begin);
    uint64_t max = 0;
    for (size_t i = begin; i < begin + len; ++i) {
      max = std::max(max, deltas[i]);
    }
    const int bits = BitWidth64(max);
    w->PutPod<uint8_t>(static_cast<uint8_t>(bits));
    w->PutBitPacked(deltas.data() + begin, len, bits);
  }
}

bool GetChunked(ByteReader* r, size_t n, std::vector<uint64_t>* deltas) {
  deltas->resize(n);
  for (size_t begin = 0; begin < n; begin += kFloatChunk) {
    const size_t len = std::min(kFloatChunk, n - begin);
    uint8_t bits = 0;
    if (!r->GetPod(&bits) || bits > 32) return false;
    if (!r->GetBitPacked(deltas->data() + begin, len, bits)) return false;
  }
  return true;
}

}  // namespace

void PutFloatBlock(ByteWriter* w, const float* data, size_t n,
                   const float* ref) {
  std::vector<uint64_t> self_deltas;
  XorDeltas(data, n, nullptr, /*self=*/true, &self_deltas);
  size_t best_size = n * sizeof(float);
  uint8_t best_mode = kFloatRaw;
  if (ChunkedBytes(self_deltas) < best_size) {
    best_size = ChunkedBytes(self_deltas);
    best_mode = kFloatSelfXor;
  }
  std::vector<uint64_t> ref_deltas;
  if (ref != nullptr) {
    XorDeltas(data, n, ref, /*self=*/false, &ref_deltas);
    if (ChunkedBytes(ref_deltas) < best_size) {
      best_mode = kFloatRefXor;
    }
  }
  w->PutPod<uint8_t>(best_mode);
  switch (best_mode) {
    case kFloatRaw:
      w->PutRaw(data, n * sizeof(float));
      break;
    case kFloatSelfXor:
      PutChunked(w, self_deltas);
      break;
    case kFloatRefXor:
      PutChunked(w, ref_deltas);
      break;
  }
}

bool GetFloatBlock(ByteReader* r, float* out, size_t n, const float* ref) {
  uint8_t mode = 0;
  if (!r->GetPod(&mode)) return false;
  if (mode == kFloatRaw) return r->GetRaw(out, n * sizeof(float));
  if (mode != kFloatSelfXor && mode != kFloatRefXor) return false;
  if (mode == kFloatRefXor && ref == nullptr) return false;
  std::vector<uint64_t> deltas;
  if (!GetChunked(r, n, &deltas)) return false;
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t base = prev;
    if (mode == kFloatRefXor) std::memcpy(&base, &ref[i], sizeof(base));
    const uint32_t v = static_cast<uint32_t>(deltas[i]) ^ base;
    if (mode == kFloatSelfXor) prev = v;
    std::memcpy(&out[i], &v, sizeof(float));
  }
  return true;
}

Status ReadFileBytes(const std::string& path, std::vector<char>* out) {
  if (FaultInjector::Global().FailOpen()) {
    return Status::IoError("injected open failure for " + path);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  if (size < 0) return Status::IoError("cannot stat " + path);
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 && !in.read(out->data(), size)) {
    return Status::IoError("short read from " + path);
  }
  FaultInjector::Global().CorruptRead(out);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open " + tmp);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    out.flush();
    if (!out) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path,
                       const std::vector<char>& bytes) {
  return AtomicWriteFile(path, bytes.data(), bytes.size());
}

}  // namespace util
}  // namespace deepsd
