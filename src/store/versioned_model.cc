#include "store/versioned_model.h"

#include <cstdint>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace store {

namespace {

/// Spreads concurrent readers across the slot array so they don't all
/// CAS-contend on slot 0. Nested pins on one thread (e.g. CurrentTier
/// inside a pinned request) probe forward from the preferred slot.
size_t PreferredSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t preferred =
      next.fetch_add(1, std::memory_order_relaxed) %
      VersionedModel::kReaderSlots;
  return preferred;
}

}  // namespace

VersionedModel::VersionedModel() = default;

VersionedModel::~VersionedModel() {
  DEEPSD_CHECK_MSG(
      MinPinnedEpoch() == std::numeric_limits<uint64_t>::max(),
      "destroying a VersionedModel while readers are still pinned — their "
      "model versions would be freed out from under them");
  std::lock_guard<std::mutex> lock(mu_);
  for (Node* node : retired_) delete node;
  retired_.clear();
  delete current_.load(std::memory_order_acquire);
}

util::Status VersionedModel::Publish(
    std::shared_ptr<const ModelVersion> version) {
  if (version == nullptr) {
    return util::Status::InvalidArgument("cannot publish a null version");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Node* old = current_.load(std::memory_order_acquire);
  if (old != nullptr) {
    // Serving compatibility gate: the live feature assembler and stream
    // buffers were sized for the current version's shape; an incompatible
    // swap must be a typed rejection, not a corrupted request.
    const core::DeepSDConfig& have = old->version->model().config();
    const core::DeepSDConfig& next = version->model().config();
    const auto mismatch = [&](const char* what) {
      return util::Status::InvalidArgument(util::StrFormat(
          "cannot swap to version '%s': %s differs from the serving "
          "version's",
          version->version_id().c_str(), what));
    };
    if (next.window != have.window) return mismatch("window");
    if (next.num_areas != have.num_areas) return mismatch("num_areas");
    if (version->model().mode() != old->version->model().mode()) {
      return mismatch("model mode");
    }
    if (next.use_weather != have.use_weather) return mismatch("use_weather");
    if (next.use_traffic != have.use_traffic) return mismatch("use_traffic");
    if (next.use_last_call != have.use_last_call) {
      return mismatch("use_last_call");
    }
    if (next.use_waiting_time != have.use_waiting_time) {
      return mismatch("use_waiting_time");
    }
  }

  Node* node = new Node();
  node->version = std::move(version);
  node->sequence = ++published_;
  current_.store(node, std::memory_order_seq_cst);
  if (old != nullptr) {
    // Retire at the pre-bump epoch: any reader that could still hold the
    // old node is stamped at or below it, and the bump makes every later
    // pin distinguishable.
    old->retire_epoch = epoch_.load(std::memory_order_seq_cst);
    retired_.push_back(old);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
  }
  ReclaimLocked();
  return util::Status::OK();
}

VersionedModel::Ref& VersionedModel::Ref::operator=(Ref&& other) noexcept {
  if (this != &other) {
    Reset();
    owner_ = other.owner_;
    version_ = other.version_;
    sequence_ = other.sequence_;
    slot_ = other.slot_;
    fallback_ = std::move(other.fallback_);
    other.owner_ = nullptr;
    other.version_ = nullptr;
    other.sequence_ = 0;
    other.slot_ = -1;
  }
  return *this;
}

void VersionedModel::Ref::Reset() {
  if (owner_ != nullptr && slot_ >= 0) {
    owner_->ReleaseSlot(slot_);
  }
  owner_ = nullptr;
  version_ = nullptr;
  sequence_ = 0;
  slot_ = -1;
  fallback_.reset();
}

VersionedModel::Ref VersionedModel::Acquire() const {
  Ref ref;
  if (current_.load(std::memory_order_acquire) == nullptr) return ref;

  // Claim a free slot, probing forward from this thread's preferred one.
  const size_t start = PreferredSlot();
  int slot = -1;
  uint64_t e = epoch_.load(std::memory_order_seq_cst);
  for (size_t i = 0; i < kReaderSlots; ++i) {
    Slot& s = slots_[(start + i) % kReaderSlots];
    uint64_t expected = 0;
    if (s.epoch.compare_exchange_strong(expected, e,
                                        std::memory_order_seq_cst)) {
      slot = static_cast<int>((start + i) % kReaderSlots);
      break;
    }
  }

  if (slot < 0) {
    // Every slot busy: fall back to a plain shared_ptr copy under the
    // publish lock — unbounded concurrency, just slower than the
    // lock-free path.
    slot_overflows_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    Node* node = current_.load(std::memory_order_acquire);
    if (node == nullptr) return ref;
    ref.owner_ = this;
    ref.version_ = node->version.get();
    ref.sequence_ = node->sequence;
    ref.fallback_ = node->version;
    return ref;
  }

  // Stamp-validate loop: the stamp must be in place *before* the version
  // pointer is read, and the epoch must not have moved in between —
  // otherwise a concurrent publish could retire (and reclaim) the node
  // between our load and our stamp.
  Node* node = nullptr;
  while (true) {
    node = current_.load(std::memory_order_seq_cst);
    const uint64_t now = epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
    slots_[static_cast<size_t>(slot)].epoch.store(e,
                                                  std::memory_order_seq_cst);
  }
  if (node == nullptr) {
    ReleaseSlot(slot);
    return ref;
  }
  ref.owner_ = this;
  ref.version_ = node->version.get();
  ref.sequence_ = node->sequence;
  ref.slot_ = slot;
  return ref;
}

uint64_t VersionedModel::MinPinnedEpoch() const {
  uint64_t min_epoch = std::numeric_limits<uint64_t>::max();
  for (const Slot& s : slots_) {
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

size_t VersionedModel::ReclaimLocked() {
  const uint64_t min_pinned = MinPinnedEpoch();
  size_t freed = 0;
  size_t kept = 0;
  for (Node* node : retired_) {
    // A retired node is observable only by readers stamped at or below
    // its retirement epoch; once the minimum pinned stamp is past it, no
    // reader can still hold it. The fallback path needs no epoch: its
    // Refs co-own the version via shared_ptr, so deleting the node then
    // is safe regardless.
    if (min_pinned > node->retire_epoch) {
      delete node;
      ++freed;
    } else {
      retired_[kept++] = node;
    }
  }
  retired_.resize(kept);
  reclaimed_ += freed;
  return freed;
}

size_t VersionedModel::TryReclaim() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReclaimLocked();
}

VersionedModel::Stats VersionedModel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.published = published_;
  stats.reclaimed = reclaimed_;
  stats.retired_live = retired_.size();
  Node* node = current_.load(std::memory_order_acquire);
  stats.current_sequence = node != nullptr ? node->sequence : 0;
  stats.slot_overflows = slot_overflows_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace store
}  // namespace deepsd
