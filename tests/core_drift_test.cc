#include "src/core/drift.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace deepsd {
namespace core {
namespace {

ReferenceHistogram MakeRef(std::vector<float> bounds,
                           std::vector<uint64_t> counts) {
  ReferenceHistogram ref;
  ref.bounds = std::move(bounds);
  ref.counts = std::move(counts);
  return ref;
}

TEST(DriftEdgeTest, EmptyReferenceScoresZero) {
  double psi = 99;
  util::Status st = PopulationStabilityIndex(ReferenceHistogram{}, {}, &psi);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(psi, 0);
}

TEST(DriftEdgeTest, ZeroTotalsScoreZero) {
  ReferenceHistogram ref = MakeRef({1.0f}, {0, 0});
  double psi = 99;
  // Zero reference mass.
  EXPECT_TRUE(PopulationStabilityIndex(ref, {5, 5}, &psi).ok());
  EXPECT_EQ(psi, 0);
  // Zero live mass.
  ref = MakeRef({1.0f}, {10, 10});
  psi = 99;
  EXPECT_TRUE(PopulationStabilityIndex(ref, {0, 0}, &psi).ok());
  EXPECT_EQ(psi, 0);
}

TEST(DriftEdgeTest, DegenerateSingleBucketScoresZero) {
  // Quantile dedup collapsed every edge: one bucket, all mass in it on
  // both sides — p == q == 1 exactly, not inf.
  ReferenceHistogram ref = MakeRef({}, {42});
  double psi = 99;
  util::Status st = PopulationStabilityIndex(ref, {7}, &psi);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(psi, 0);
}

TEST(DriftEdgeTest, AllMassInOneBinIsFinite) {
  ReferenceHistogram ref = MakeRef({1.0f, 2.0f}, {100, 0, 0});
  double psi = 0;
  util::Status st = PopulationStabilityIndex(ref, {0, 0, 100}, &psi);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(std::isfinite(psi));
  EXPECT_GT(psi, 0.25);  // a total shift is still a major drift signal
}

TEST(DriftEdgeTest, SizeMismatchIsTypedError) {
  ReferenceHistogram ref = MakeRef({1.0f}, {10, 10});
  double psi = 99;
  util::Status st = PopulationStabilityIndex(ref, {1, 2, 3}, &psi);
  EXPECT_EQ(st.code(), util::Status::Code::kInvalidArgument);
}

TEST(DriftEdgeTest, MalformedReferenceIsTypedError) {
  double psi = 99;
  // counts/bounds size mismatch.
  ReferenceHistogram bad = MakeRef({1.0f, 2.0f}, {1, 2});
  EXPECT_EQ(PopulationStabilityIndex(bad, {1, 2}, &psi).code(),
            util::Status::Code::kInvalidArgument);
  // Non-ascending bounds.
  bad = MakeRef({2.0f, 1.0f}, {1, 2, 3});
  EXPECT_EQ(PopulationStabilityIndex(bad, {1, 2, 3}, &psi).code(),
            util::Status::Code::kInvalidArgument);
  // Non-finite bound.
  bad = MakeRef({1.0f, std::numeric_limits<float>::quiet_NaN()}, {1, 2, 3});
  EXPECT_EQ(PopulationStabilityIndex(bad, {1, 2, 3}, &psi).code(),
            util::Status::Code::kInvalidArgument);
}

TEST(DriftEdgeTest, LegacyOverloadNeverReturnsNonFinite) {
  // The non-erroring form maps every edge case to 0 — it must never leak
  // inf/NaN into a gauge.
  EXPECT_EQ(PopulationStabilityIndex(ReferenceHistogram{}, {}), 0.0);
  EXPECT_EQ(PopulationStabilityIndex(MakeRef({2.0f, 1.0f}, {1, 2, 3}), {1, 2, 3}),
            0.0);
  EXPECT_EQ(PopulationStabilityIndex(MakeRef({1.0f}, {10, 10}), {1, 2, 3}), 0.0);
  double ok = PopulationStabilityIndex(MakeRef({1.0f}, {100, 0}), {0, 100});
  EXPECT_TRUE(std::isfinite(ok));
  EXPECT_GT(ok, 0);
}

TEST(DriftEdgeTest, ValidateAcceptsEmptyAndWellFormed) {
  EXPECT_TRUE(ReferenceHistogram{}.Validate().ok());
  EXPECT_TRUE(MakeRef({1.0f, 2.0f}, {1, 2, 3}).Validate().ok());
  EXPECT_FALSE(MakeRef({1.0f, 1.0f}, {1, 2, 3}).Validate().ok());  // ties
  EXPECT_FALSE(MakeRef({1.0f}, {1}).Validate().ok());  // missing overflow
}

TEST(DriftEdgeTest, IdenticalDistributionsScoreNearZero) {
  ReferenceHistogram ref = MakeRef({1.0f, 2.0f, 3.0f}, {25, 25, 25, 25});
  double psi = 99;
  EXPECT_TRUE(PopulationStabilityIndex(ref, {250, 250, 250, 250}, &psi).ok());
  EXPECT_NEAR(psi, 0, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace deepsd
