// End-to-end pipeline integration: simulate → persist → reload → train →
// persist model → reload → identical predictions → extend and fine-tune.
// This is the exact workflow the CLI tools wire together.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/trainer.h"
#include "src/data/serialize.h"
#include "src/sim/city_sim.h"

namespace deepsd {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("deepsd_pipeline_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(PipelineTest, FullWorkflowRoundTrips) {
  // 1. Simulate and persist the city.
  sim::CityConfig city;
  city.num_areas = 4;
  city.num_days = 10;
  city.seed = 20260707;
  city.mean_scale = 0.6;
  data::OrderDataset original = sim::SimulateCity(city);
  ASSERT_TRUE(data::SaveDataset(original, Path("city.bin")).ok());

  // 2. Reload — feature tables must be identical to the original's.
  data::OrderDataset dataset;
  ASSERT_TRUE(data::LoadDataset(Path("city.bin"), &dataset).ok());
  feature::FeatureConfig fc;
  fc.window = 8;
  feature::FeatureAssembler assembler(&dataset, fc, 0, 8);
  feature::FeatureAssembler original_assembler(&original, fc, 0, 8);
  std::vector<float> h1 = assembler.HistoricalSd(1, 2, 600);
  std::vector<float> h2 = original_assembler.HistoricalSd(1, 2, 600);
  EXPECT_EQ(h1, h2);

  // 3. Train a small advanced model.
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.window = 8;
  nn::ParameterStore store;
  util::Rng rng(5);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced, &store,
                          &rng);
  auto train_items = data::MakeItems(dataset, 0, 8, 500, 1300, 120);
  auto test_items = data::MakeTestItems(dataset, 8, 10);
  core::AssemblerSource train(&assembler, train_items, true);
  core::AssemblerSource test(&assembler, test_items, true);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.best_k = 0;
  core::Trainer(tc).Train(&model, &store, train, test);
  std::vector<float> preds = model.Predict(test);
  ASSERT_TRUE(store.Save(Path("model.bin")).ok());

  // 4. Reload the model into a fresh store: identical predictions.
  nn::ParameterStore store2;
  util::Rng rng2(999);
  core::DeepSDModel model2(config, core::DeepSDModel::Mode::kAdvanced,
                           &store2, &rng2);
  int loaded = 0;
  ASSERT_TRUE(store2.Load(Path("model.bin"), &loaded).ok());
  EXPECT_EQ(static_cast<size_t>(loaded), store2.parameters().size());
  std::vector<float> preds2 = model2.Predict(test);
  ASSERT_EQ(preds.size(), preds2.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    ASSERT_FLOAT_EQ(preds[i], preds2[i]) << i;
  }

  // 5. Extend the reloaded model with a wider config? Here: drop traffic
  // at train time, then re-add it — the fine-tuning path.
  core::DeepSDConfig no_tc = config;
  no_tc.use_traffic = false;
  nn::ParameterStore store3;
  util::Rng rng3(5);
  core::DeepSDModel small(no_tc, core::DeepSDModel::Mode::kAdvanced, &store3,
                          &rng3);
  core::Trainer(tc).Train(&small, &store3, train, test);
  std::vector<float> small_preds = small.Predict(test);

  core::DeepSDModel extended(config, core::DeepSDModel::Mode::kAdvanced,
                             &store3, &rng3);
  std::vector<float> extended_preds = extended.Predict(test);
  // Zero-initialized residual branch ⇒ the extension starts as an identity.
  for (size_t i = 0; i < small_preds.size(); ++i) {
    ASSERT_FLOAT_EQ(small_preds[i], extended_preds[i]);
  }
  // And it keeps training from there.
  core::TrainResult ft = core::Trainer(tc).Train(&extended, &store3, train, test);
  EXPECT_GT(ft.history.size(), 0u);
}

TEST_F(PipelineTest, BaselinesShareTheSameFeatureContract) {
  // The flat features the tree baselines consume must follow the same
  // dataset through save/load.
  sim::CityConfig city;
  city.num_areas = 3;
  city.num_days = 6;
  city.seed = 8;
  city.mean_scale = 0.6;
  data::OrderDataset dataset = sim::SimulateCity(city);
  ASSERT_TRUE(data::SaveDataset(dataset, Path("c2.bin")).ok());
  data::OrderDataset reloaded;
  ASSERT_TRUE(data::LoadDataset(Path("c2.bin"), &reloaded).ok());

  feature::FeatureConfig fc;
  feature::FeatureAssembler a1(&dataset, fc, 0, 5);
  feature::FeatureAssembler a2(&reloaded, fc, 0, 5);
  data::PredictionItem item;
  item.area = 1;
  item.day = 5;
  item.t = 700;
  item.week_id = dataset.WeekId(5);
  EXPECT_EQ(a1.AssembleFlat(item, false), a2.AssembleFlat(item, false));
  EXPECT_EQ(a1.AssembleFlat(item, true), a2.AssembleFlat(item, true));
}

}  // namespace
}  // namespace deepsd
