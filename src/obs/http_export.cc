#include "obs/http_export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/openmetrics.h"

namespace deepsd {
namespace obs {

namespace {

/// Writes the whole buffer, riding out short writes; false on error.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

util::Status MetricsHttpServer::Start(int port) {
  if (listen_fd_.load(std::memory_order_acquire) >= 0) {
    return util::Status::FailedPrecondition("metrics server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("bind 127.0.0.1:" + std::to_string(port) +
                                 ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }

  stopping_.store(false, std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void MetricsHttpServer::Stop() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocked accept(); close() then releases the fd.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or broken beyond retry
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // One read is enough for the GETs we serve; a slow client that splits
  // its request line across packets gets retried until the header
  // terminator or 4 KiB, whichever first.
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string method, path;
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    method = line.substr(0, sp1);
    path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  if (method != "GET") {
    response = HttpResponse("405 Method Not Allowed", "text/plain",
                            "method not allowed\n");
  } else if (path == "/metrics") {
    response = HttpResponse("200 OK", "text/plain; version=0.0.4",
                            ToOpenMetrics(registry_->Snapshot()));
  } else if (path == "/healthz") {
    response = HttpResponse("200 OK", "text/plain", "ok\n");
  } else {
    response = HttpResponse("404 Not Found", "text/plain", "not found\n");
  }
  WriteAll(fd, response);
}

util::Status MetricsHttpServer::Get(int port, const std::string& path,
                                    std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                                 ": " + err);
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return util::Status::IoError("request write failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.1 200", 0) != 0 &&
      response.rfind("HTTP/1.0 200", 0) != 0) {
    const size_t eol = response.find("\r\n");
    return util::Status::Internal(
        "non-200 response: " +
        (eol == std::string::npos ? response : response.substr(0, eol)));
  }
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return util::Status::Internal("malformed HTTP response");
  }
  if (body != nullptr) *body = response.substr(header_end + 4);
  return util::Status::OK();
}

}  // namespace obs
}  // namespace deepsd
