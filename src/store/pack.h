#ifndef DEEPSD_STORE_PACK_H_
#define DEEPSD_STORE_PACK_H_

#include <string>

#include "baselines/empirical_average.h"
#include "core/checkpoint.h"
#include "core/model.h"
#include "nn/parameter.h"
#include "store/stored_model.h"
#include "util/status.h"

namespace deepsd {
namespace store {

struct PackOptions {
  /// Manifest version tag; surfaces as ModelVersion::version_id() and in
  /// deepsd_store inspect/diff output.
  std::string version_id = "unversioned";
  ParamEncoding encoding = ParamEncoding::kRaw;
};

/// Packs a live model into a DSAR1 artifact at `path` (atomic write).
/// `ea` is optional: when non-null its fitted tables ship as the "ea"
/// section and the stored model serves tier-3 from the mapping.
/// Deterministic: same model state and options yield identical bytes.
util::Status PackModelArtifact(const core::DeepSDModel& model,
                               const nn::ParameterStore& params,
                               const baselines::EmpiricalAverage* ea,
                               const PackOptions& options,
                               const std::string& path);

/// Packs a trainer checkpoint without a live training process: rebuilds
/// the model structure from `config` + `mode` (which the checkpoint's
/// TrainConfig does not carry), applies the checkpointed parameter values
/// and calibration, and packs. The checkpoint must cover the rebuilt
/// model's parameters exactly (FailedPrecondition otherwise).
util::Status PackCheckpointArtifact(const core::TrainerCheckpoint& ck,
                                    const core::DeepSDConfig& config,
                                    core::DeepSDModel::Mode mode,
                                    const baselines::EmpiricalAverage* ea,
                                    const PackOptions& options,
                                    const std::string& path);

}  // namespace store
}  // namespace deepsd

#endif  // DEEPSD_STORE_PACK_H_
