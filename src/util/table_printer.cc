#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace deepsd {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values) {
  std::vector<std::string> row = {label};
  for (double v : values) row.push_back(util::StrFormat("%.2f", v));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < cols; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += " ";
      line += util::PadRight(cell, width[c]);
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < cols; ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render(header_) + sep;
  for (const auto& r : rows_) out += render(r);
  out += sep;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace util
}  // namespace deepsd
