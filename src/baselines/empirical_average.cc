#include "baselines/empirical_average.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/crc32.h"

namespace deepsd {
namespace baselines {

namespace {

constexpr char kMagic[4] = {'D', 'E', 'A', '1'};
constexpr uint8_t kVersion = 1;

util::Status Corrupt(const char* what) {
  return util::Status::InvalidArgument(
      std::string("empirical-average file: ") + what);
}

// A table of (key, sum, count) rows in key order. Keys are written as a
// zigzag base followed by strictly-positive deltas (sorted, unique), counts
// as varints, and sums — which are sums of integer gap counts, hence
// integral in every real fit — as zigzag varints behind a per-table flag;
// any non-integral or out-of-range sum drops the whole table back to raw
// doubles so the round-trip stays bit-exact.
struct TableRow {
  int64_t key = 0;
  double sum = 0;
  int64_t count = 0;
};

bool IntegralSum(double sum, int64_t* out) {
  // Exact-integer doubles up to 2^53 survive the int64 round-trip bitwise.
  if (!(std::fabs(sum) <= 9007199254740992.0)) return false;
  const int64_t i = static_cast<int64_t>(sum);
  if (static_cast<double>(i) != sum) return false;
  *out = i;
  return true;
}

void WriteTable(util::ByteWriter* w, std::vector<TableRow> rows,
                EmpiricalAverage::Encoding encoding) {
  std::sort(rows.begin(), rows.end(),
            [](const TableRow& a, const TableRow& b) { return a.key < b.key; });
  w->PutVarint64(rows.size());
  if (encoding == EmpiricalAverage::Encoding::kRaw) {
    for (const TableRow& r : rows) {
      w->PutPod<int64_t>(r.key);
      w->PutPod<double>(r.sum);
      w->PutPod<int64_t>(r.count);
    }
    return;
  }
  int64_t scratch = 0;
  uint8_t sums_integral = 1;
  for (const TableRow& r : rows) {
    if (!IntegralSum(r.sum, &scratch)) {
      sums_integral = 0;
      break;
    }
  }
  w->PutPod<uint8_t>(sums_integral);
  int64_t prev = 0;
  bool first = true;
  for (const TableRow& r : rows) {
    if (first) {
      w->PutZigzag64(r.key);
      first = false;
    } else {
      w->PutVarint64(static_cast<uint64_t>(r.key - prev));
    }
    prev = r.key;
  }
  for (const TableRow& r : rows) w->PutVarint64(static_cast<uint64_t>(r.count));
  for (const TableRow& r : rows) {
    if (sums_integral) {
      IntegralSum(r.sum, &scratch);
      w->PutZigzag64(scratch);
    } else {
      w->PutPod<double>(r.sum);
    }
  }
}

bool ReadTable(util::ByteReader* r, EmpiricalAverage::Encoding encoding,
               std::vector<TableRow>* rows) {
  uint64_t n = 0;
  if (!r->GetVarint64(&n)) return false;
  // Each row costs at least 3 bytes compressed (key delta + count + sum)
  // and 24 raw; reject corrupt counts before allocating.
  if (n > r->remaining() / 3) return false;
  rows->assign(static_cast<size_t>(n), TableRow{});
  if (encoding == EmpiricalAverage::Encoding::kRaw) {
    for (TableRow& row : *rows) {
      if (!r->GetPod(&row.key) || !r->GetPod(&row.sum) ||
          !r->GetPod(&row.count)) {
        return false;
      }
      if (!std::isfinite(row.sum) || row.count < 0) return false;
    }
    return true;
  }
  uint8_t sums_integral = 0;
  if (!r->GetPod(&sums_integral) || sums_integral > 1) return false;
  int64_t prev = 0;
  for (size_t i = 0; i < rows->size(); ++i) {
    int64_t key = 0;
    if (i == 0) {
      if (!r->GetZigzag64(&key)) return false;
    } else {
      uint64_t delta = 0;
      if (!r->GetVarint64(&delta)) return false;
      if (delta == 0 ||
          delta > static_cast<uint64_t>(
                      std::numeric_limits<int64_t>::max() - prev)) {
        return false;  // keys must be strictly increasing, no overflow
      }
      key = prev + static_cast<int64_t>(delta);
    }
    (*rows)[i].key = key;
    prev = key;
  }
  for (TableRow& row : *rows) {
    uint64_t count = 0;
    if (!r->GetVarint64(&count)) return false;
    if (count > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return false;
    }
    row.count = static_cast<int64_t>(count);
  }
  for (TableRow& row : *rows) {
    if (sums_integral) {
      int64_t sum = 0;
      if (!r->GetZigzag64(&sum)) return false;
      row.sum = static_cast<double>(sum);
    } else {
      if (!r->GetPod(&row.sum) || !std::isfinite(row.sum)) return false;
    }
  }
  return true;
}

}  // namespace

void EmpiricalAverage::Fit(const std::vector<data::PredictionItem>& train_items) {
  by_area_t_.clear();
  by_area_.clear();
  global_ = Accumulator{};
  for (const data::PredictionItem& item : train_items) {
    Accumulator& a = by_area_t_[Key(item.area, item.t)];
    a.sum += item.gap;
    ++a.count;
    Accumulator& b = by_area_[item.area];
    b.sum += item.gap;
    ++b.count;
    global_.sum += item.gap;
    ++global_.count;
  }
}

float EmpiricalAverage::Predict(int area, int t) const {
  auto it = by_area_t_.find(Key(area, t));
  if (it != by_area_t_.end() && it->second.count > 0) {
    return static_cast<float>(it->second.sum / it->second.count);
  }
  auto it2 = by_area_.find(area);
  if (it2 != by_area_.end() && it2->second.count > 0) {
    return static_cast<float>(it2->second.sum / it2->second.count);
  }
  return global_.count > 0
             ? static_cast<float>(global_.sum / global_.count)
             : 0.0f;
}

EmpiricalAverage::DenseTables EmpiricalAverage::ToDense(int num_areas) const {
  if (num_areas < 0) {
    int64_t max_area = -1;
    for (const auto& [key, acc] : by_area_t_) {
      max_area = std::max(max_area, key / data::kMinutesPerDay);
    }
    for (const auto& [area, acc] : by_area_) {
      max_area = std::max(max_area, static_cast<int64_t>(area));
    }
    num_areas = static_cast<int>(max_area + 1);
  }
  DenseTables dense;
  dense.num_areas = num_areas;
  const float kAbsent = std::numeric_limits<float>::quiet_NaN();
  dense.cell_means.assign(
      static_cast<size_t>(num_areas) * data::kMinutesPerDay, kAbsent);
  dense.area_means.assign(static_cast<size_t>(num_areas), kAbsent);
  // Means are materialized with the exact expression Predict() evaluates,
  // so dense lookups reproduce the hash-table answers bit for bit.
  for (const auto& [key, acc] : by_area_t_) {
    const int64_t area = key / data::kMinutesPerDay;
    if (key < 0 || area >= num_areas || acc.count <= 0) continue;
    dense.cell_means[static_cast<size_t>(key)] =
        static_cast<float>(acc.sum / acc.count);
  }
  for (const auto& [area, acc] : by_area_) {
    if (area < 0 || area >= num_areas || acc.count <= 0) continue;
    dense.area_means[static_cast<size_t>(area)] =
        static_cast<float>(acc.sum / acc.count);
  }
  dense.global_mean = global_.count > 0
                          ? static_cast<float>(global_.sum / global_.count)
                          : kAbsent;
  return dense;
}

std::vector<float> EmpiricalAverage::Predict(
    const std::vector<data::PredictionItem>& items) const {
  std::vector<float> out;
  out.reserve(items.size());
  for (const data::PredictionItem& item : items) {
    out.push_back(Predict(item.area, item.t));
  }
  return out;
}

void EmpiricalAverage::EncodeTo(util::ByteWriter* w,
                                Encoding encoding) const {
  w->PutPod<uint8_t>(static_cast<uint8_t>(encoding));
  w->PutPod<double>(global_.sum);
  w->PutPod<int64_t>(global_.count);
  std::vector<TableRow> rows;
  rows.reserve(by_area_.size());
  for (const auto& kv : by_area_) {
    rows.push_back({kv.first, kv.second.sum, kv.second.count});
  }
  WriteTable(w, std::move(rows), encoding);
  rows.clear();
  rows.reserve(by_area_t_.size());
  for (const auto& kv : by_area_t_) {
    rows.push_back({kv.first, kv.second.sum, kv.second.count});
  }
  WriteTable(w, std::move(rows), encoding);
}

util::Status EmpiricalAverage::DecodeFrom(util::ByteReader* r) {
  uint8_t enc_byte = 0;
  if (!r->GetPod(&enc_byte) || enc_byte > 1) {
    return Corrupt("unknown encoding");
  }
  const Encoding encoding = static_cast<Encoding>(enc_byte);
  Accumulator global;
  if (!r->GetPod(&global.sum)) return Corrupt("truncated header");
  int64_t global_count = 0;
  if (!r->GetPod(&global_count) || global_count < 0 ||
      !std::isfinite(global.sum)) {
    return Corrupt("bad global accumulator");
  }
  global.count = static_cast<int>(
      std::min<int64_t>(global_count, std::numeric_limits<int>::max()));
  std::vector<TableRow> area_rows, area_t_rows;
  if (!ReadTable(r, encoding, &area_rows)) return Corrupt("bad area table");
  if (!ReadTable(r, encoding, &area_t_rows)) {
    return Corrupt("bad (area, t) table");
  }
  for (const TableRow& row : area_rows) {
    if (row.key < std::numeric_limits<int>::min() ||
        row.key > std::numeric_limits<int>::max()) {
      return Corrupt("area key out of range");
    }
  }
  // Parse fully validated — only now touch the live tables.
  global_ = global;
  by_area_.clear();
  by_area_.reserve(area_rows.size());
  for (const TableRow& row : area_rows) {
    by_area_[static_cast<int>(row.key)] = {row.sum,
                                           static_cast<int>(row.count)};
  }
  by_area_t_.clear();
  by_area_t_.reserve(area_t_rows.size());
  for (const TableRow& row : area_t_rows) {
    by_area_t_[row.key] = {row.sum, static_cast<int>(row.count)};
  }
  return util::Status::OK();
}

util::Status EmpiricalAverage::Save(const std::string& path,
                                    Encoding encoding) const {
  util::ByteWriter payload;
  EncodeTo(&payload, encoding);
  util::ByteWriter file;
  file.PutRaw(kMagic, sizeof(kMagic));
  file.PutPod<uint8_t>(kVersion);
  file.PutPod<uint8_t>(0);  // reserved
  file.PutPod<uint64_t>(payload.size());
  file.PutRaw(payload.bytes().data(), payload.size());
  file.PutPod<uint32_t>(util::Crc32(payload.bytes().data(), payload.size()));
  return util::AtomicWriteFile(path, file.bytes());
}

util::Status EmpiricalAverage::Load(const std::string& path) {
  std::vector<char> bytes;
  util::Status st = util::ReadFileBytes(path, &bytes);
  if (!st.ok()) return st;
  util::ByteReader r(bytes.data(), bytes.size());
  char magic[4] = {};
  if (!r.GetRaw(magic, sizeof(magic))) {
    return util::Status::IoError("empirical-average file truncated: " + path);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  uint8_t version = 0, reserved = 0;
  uint64_t payload_len = 0;
  if (!r.GetPod(&version) || !r.GetPod(&reserved) || !r.GetPod(&payload_len)) {
    return util::Status::IoError("empirical-average file truncated: " + path);
  }
  if (version != kVersion) return Corrupt("unsupported version");
  if (payload_len + sizeof(uint32_t) > r.remaining()) {
    return util::Status::IoError("empirical-average file truncated: " + path);
  }
  const char* payload = bytes.data() + (bytes.size() - r.remaining());
  util::ByteReader pr(payload, static_cast<size_t>(payload_len));
  r.Skip(static_cast<size_t>(payload_len));
  uint32_t crc = 0;
  if (!r.GetPod(&crc) || r.remaining() != 0) {
    return Corrupt("trailing bytes or missing checksum");
  }
  if (crc != util::Crc32(payload, static_cast<size_t>(payload_len))) {
    return Corrupt("checksum mismatch");
  }
  util::Status ds = DecodeFrom(&pr);
  if (!ds.ok()) return ds;
  if (pr.remaining() != 0) return Corrupt("payload length mismatch");
  return util::Status::OK();
}

}  // namespace baselines
}  // namespace deepsd
