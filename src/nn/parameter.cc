#include "nn/parameter.h"

#include <cmath>
#include <cstring>

#include "util/byte_io.h"
#include "util/crc32.h"

namespace deepsd {
namespace nn {

const kernels::QuantizedWeights& Parameter::Quantized() const {
  const uint64_t v = version();
  if (quant_version_.load(std::memory_order_acquire) != v) {
    std::lock_guard<std::mutex> lock(quant_mu_);
    if (quant_version_.load(std::memory_order_relaxed) != v) {
      kernels::QuantizeWeights(value.data(), value.rows(), value.cols(),
                               &quant_);
      quant_version_.store(v, std::memory_order_release);
    }
  }
  return quant_;
}

void Parameter::InstallQuantized(kernels::QuantizedWeights qw) {
  std::lock_guard<std::mutex> lock(quant_mu_);
  quant_ = std::move(qw);
  quant_version_.store(version(), std::memory_order_release);
}

void InitTensor(Tensor* t, Init init, util::Rng* rng) {
  switch (init) {
    case Init::kZero:
      t->Zero();
      return;
    case Init::kGlorotUniform: {
      double limit = std::sqrt(6.0 / (t->rows() + t->cols()));
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kHeUniform: {
      double limit = std::sqrt(6.0 / t->rows());
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kEmbedding:
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-0.05, 0.05));
      }
      return;
  }
}

Parameter* ParameterStore::Create(const std::string& name, int rows, int cols,
                                  Init init, util::Rng* rng) {
  if (Parameter* existing = Find(name)) {
    DEEPSD_CHECK_MSG(existing->value.rows() == rows &&
                         existing->value.cols() == cols,
                     "parameter re-created with different shape: " + name);
    return existing;
  }
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->value = Tensor(rows, cols);
  p->grad = Tensor(rows, cols);
  InitTensor(&p->value, init, rng);
  Parameter* raw = p.get();
  params_.push_back(std::move(p));
  return raw;
}

Parameter* ParameterStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

const Parameter* ParameterStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

size_t ParameterStore::NumWeights() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) p->grad.Zero();
}

void ParameterStore::SetFrozen(const std::string& prefix, bool frozen) {
  for (auto& p : params_) {
    if (p->name.rfind(prefix, 0) == 0) p->frozen = frozen;
  }
}

namespace {

// One tensor parsed out of a parameter file, independent of the store.
struct ParsedTensor {
  std::string name;
  Tensor value;
  float act_absmax = 0.0f;
  // Filled for int8-encoded tensors: Load installs these into the quant
  // cache so a quantized file serves its exact saved integer weights.
  kernels::QuantizedWeights quant;
  bool quantized = false;
  size_t stored_bytes = 0;  // value-payload bytes (summary reporting)
};

constexpr uint8_t kDsp2Version = 1;
// Per-tensor value encodings inside a DSP2 payload.
constexpr uint8_t kTensorFloat = 0;
constexpr uint8_t kTensorInt8 = 1;

util::Status ParseDsp1(util::ByteReader* in, const std::string& path,
                       std::vector<ParsedTensor>* out) {
  uint64_t n = 0;
  if (!in->GetPod(&n)) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  for (uint64_t i = 0; i < n; ++i) {
    ParsedTensor t;
    int32_t rows = 0, cols = 0;
    if (!in->GetString(&t.name, /*max_len=*/4096) || !in->GetPod(&rows) ||
        !in->GetPod(&cols)) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    if (rows < 0 || cols < 0) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    const uint64_t count_floats =
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
    // The reader refuses any tensor larger than the remaining bytes, so a
    // corrupt header can never trigger a runaway allocation.
    if (count_floats > in->remaining() / sizeof(float)) {
      return util::Status::IoError("truncated parameter file " + path);
    }
    t.value = Tensor(rows, cols);
    t.stored_bytes = static_cast<size_t>(count_floats) * sizeof(float);
    if (count_floats > 0 && !in->GetRaw(t.value.data(), t.stored_bytes)) {
      return util::Status::IoError("truncated parameter file " + path);
    }
    out->push_back(std::move(t));
  }
  return util::Status::OK();
}

util::Status ParseDsp2(util::ByteReader* in, const std::string& path,
                       std::vector<ParsedTensor>* out, bool* quantized_file) {
  uint8_t version = 0, encoding = 0;
  uint64_t payload_len = 0;
  if (!in->GetPod(&version) || !in->GetPod(&encoding) ||
      !in->GetPod(&payload_len)) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  if (version != kDsp2Version) {
    return util::Status::InvalidArgument(
        "unsupported DSP2 version in " + path);
  }
  if (payload_len + sizeof(uint32_t) > in->remaining()) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  // Verify the CRC seal before parsing a byte of the payload.
  std::vector<char> payload_bytes(payload_len);
  if (payload_len > 0 && !in->GetRaw(payload_bytes.data(), payload_len)) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  uint32_t crc = 0;
  if (!in->GetPod(&crc)) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  if (crc != util::Crc32(payload_bytes.data(), payload_bytes.size())) {
    return util::Status::InvalidArgument(
        "checksum mismatch in parameter file " + path);
  }
  util::ByteReader r(payload_bytes);
  uint64_t n = 0;
  if (!r.GetPod(&n)) {
    return util::Status::IoError("corrupt parameter file " + path);
  }
  if (quantized_file != nullptr) *quantized_file = encoding == 1;
  for (uint64_t i = 0; i < n; ++i) {
    ParsedTensor t;
    int32_t rows = 0, cols = 0;
    uint8_t tmode = 0;
    if (!r.GetString(&t.name, /*max_len=*/4096) || !r.GetPod(&rows) ||
        !r.GetPod(&cols) || !r.GetPod(&t.act_absmax) || !r.GetPod(&tmode)) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    if (rows < 0 || cols < 0 || !std::isfinite(t.act_absmax) ||
        t.act_absmax < 0.0f) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    const uint64_t count =
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
    // Compressed tensors can be smaller than their element count, but not
    // absurdly so — this bounds the allocation a corrupt-but-CRC-passing
    // header could request.
    if (count / 64 > r.remaining()) {
      return util::Status::IoError("truncated parameter file " + path);
    }
    t.value = Tensor(rows, cols);
    const size_t before = r.position();
    if (tmode == kTensorFloat) {
      if (count > 0 &&
          !util::GetFloatBlock(&r, t.value.data(), static_cast<size_t>(count))) {
        return util::Status::IoError("truncated parameter file " + path);
      }
    } else if (tmode == kTensorInt8) {
      t.quantized = true;
      t.quant.rows = rows;
      t.quant.cols = cols;
      if (!r.GetPodVec(&t.quant.scales) ||
          t.quant.scales.size() != static_cast<size_t>(cols)) {
        return util::Status::IoError("corrupt parameter file " + path);
      }
      for (float s : t.quant.scales) {
        if (!std::isfinite(s) || s < 0.0f) {
          return util::Status::IoError("corrupt parameter file " + path);
        }
      }
      if (count > r.remaining()) {
        return util::Status::IoError("truncated parameter file " + path);
      }
      t.quant.data.resize(static_cast<size_t>(count));
      if (count > 0 && !r.GetRaw(t.quant.data.data(),
                                 static_cast<size_t>(count))) {
        return util::Status::IoError("truncated parameter file " + path);
      }
      // Dequantize into the fp32 view so non-quant kernel modes (and any
      // later fine-tuning) see the same weights the int8 path serves.
      for (int p = 0; p < rows; ++p) {
        for (int j = 0; j < cols; ++j) {
          const size_t idx = static_cast<size_t>(p) * cols + j;
          t.value.data()[idx] =
              static_cast<float>(t.quant.data[idx]) * t.quant.scales[j];
        }
      }
    } else {
      return util::Status::InvalidArgument(
          "unknown tensor encoding in parameter file " + path);
    }
    t.stored_bytes = r.position() - before;
    out->push_back(std::move(t));
  }
  if (r.remaining() != 0) {
    return util::Status::IoError("corrupt parameter file " + path);
  }
  return util::Status::OK();
}

// Shared front half of Load and ReadParameterFileSummary: reads `path`,
// dispatches on the magic, and returns fully-validated tensors.
util::Status ParseParameterFile(const std::string& path,
                                std::vector<ParsedTensor>* out,
                                std::string* format) {
  // ReadFileBytes routes through util::FaultInjector, so injected
  // truncation/bit-flips exercise every rejection branch below.
  std::vector<char> bytes;
  if (util::Status s = util::ReadFileBytes(path, &bytes); !s.ok()) return s;

  util::ByteReader in(bytes);
  char magic[4];
  if (!in.GetRaw(magic, 4)) {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  util::Status st = util::Status::OK();
  bool quantized_file = false;
  if (std::memcmp(magic, "DSP1", 4) == 0) {
    if (format != nullptr) *format = "DSP1";
    st = ParseDsp1(&in, path, out);
  } else if (std::memcmp(magic, "DSP2", 4) == 0) {
    st = ParseDsp2(&in, path, out, &quantized_file);
    if (format != nullptr) *format = quantized_file ? "DSP2/quant" : "DSP2/full";
  } else {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  if (!st.ok()) return st;
  // Weights must be finite: a bit-flip that survives parsing would
  // otherwise silently poison every downstream prediction. (DSP2 is also
  // CRC-sealed; this catches DSP1 and defense-in-depth for both.)
  for (const ParsedTensor& t : *out) {
    for (float v : t.value.flat()) {
      if (!std::isfinite(v)) {
        return util::Status::InvalidArgument(
            "non-finite value for parameter '" + t.name + "' in " + path);
      }
    }
  }
  return util::Status::OK();
}

}  // namespace

util::Status ParameterStore::Save(const std::string& path,
                                  SaveFormat format) const {
  util::ByteWriter out;
  if (format == SaveFormat::kRaw) {
    out.PutRaw("DSP1", 4);
    out.PutPod<uint64_t>(params_.size());
    for (const auto& p : params_) {
      const Tensor& value = p->value;  // may be a read-only store view
      out.PutString(p->name);
      out.PutPod<int32_t>(value.rows());
      out.PutPod<int32_t>(value.cols());
      out.PutRaw(value.data(), value.size() * sizeof(float));
    }
  } else {
    util::ByteWriter payload;
    payload.PutPod<uint64_t>(params_.size());
    for (const auto& p : params_) {
      const Tensor& value = p->value;  // may be a read-only store view
      payload.PutString(p->name);
      payload.PutPod<int32_t>(value.rows());
      payload.PutPod<int32_t>(value.cols());
      payload.PutPod<float>(p->act_absmax);
      // Only calibrated GEMM weights (act_absmax > 0) go int8. Bias rows
      // ([1, n]) are a rounding-error-sized fraction of the bytes and the
      // quant kernels add them in fp32; embedding tables are consumed as
      // fp32 lookups, never through a quant GEMM, so quantizing them would
      // make a loaded quant file diverge from in-memory quant serving.
      const bool int8_tensor = format == SaveFormat::kQuantized &&
                               value.rows() > 1 && p->act_absmax > 0.0f;
      if (int8_tensor) {
        const kernels::QuantizedWeights& q = p->Quantized();
        payload.PutPod<uint8_t>(kTensorInt8);
        payload.PutPodVec(q.scales);
        payload.PutRaw(q.data.data(), q.data.size());
      } else {
        payload.PutPod<uint8_t>(kTensorFloat);
        util::PutFloatBlock(&payload, value.data(), value.size());
      }
    }
    out.PutRaw("DSP2", 4);
    out.PutPod<uint8_t>(kDsp2Version);
    out.PutPod<uint8_t>(format == SaveFormat::kQuantized ? 1 : 0);
    out.PutPod<uint64_t>(payload.size());
    out.PutRaw(payload.bytes().data(), payload.size());
    out.PutPod<uint32_t>(
        util::Crc32(payload.bytes().data(), payload.size()));
  }
  // Atomic replace: a crash mid-save leaves the previous model intact
  // instead of a torn file.
  return util::AtomicWriteFile(path, out.bytes());
}

util::Status ParameterStore::Load(const std::string& path, int* loaded) {
  // Parse everything before touching the store: a file that turns out to
  // be torn halfway through must not leave the model half-loaded.
  std::vector<ParsedTensor> tensors;
  if (util::Status s = ParseParameterFile(path, &tensors, nullptr); !s.ok()) {
    return s;
  }
  int count = 0;
  for (ParsedTensor& t : tensors) {
    Parameter* p = Find(t.name);
    if (p != nullptr && p->value.SameShape(t.value)) {
      p->value = std::move(t.value);
      p->act_absmax = t.act_absmax;
      p->BumpVersion();
      if (t.quantized) p->InstallQuantized(std::move(t.quant));
      ++count;
    }
  }
  if (loaded != nullptr) *loaded = count;
  return util::Status::OK();
}

util::Status ReadParameterFileSummary(const std::string& path,
                                      std::string* format,
                                      std::vector<ParameterFileEntry>* out) {
  std::vector<ParsedTensor> tensors;
  if (util::Status s = ParseParameterFile(path, &tensors, format); !s.ok()) {
    return s;
  }
  out->clear();
  for (const ParsedTensor& t : tensors) {
    ParameterFileEntry e;
    e.name = t.name;
    e.rows = t.value.rows();
    e.cols = t.value.cols();
    e.quantized = t.quantized;
    e.stored_bytes = t.stored_bytes;
    e.act_absmax = t.act_absmax;
    double norm = 0.0;
    for (float v : t.value.flat()) norm += static_cast<double>(v) * v;
    e.norm = std::sqrt(norm);
    out->push_back(std::move(e));
  }
  return util::Status::OK();
}

int ParameterStore::CopyFrom(const ParameterStore& other) {
  int count = 0;
  for (auto& p : params_) {
    const Parameter* src = other.Find(p->name);
    if (src != nullptr && src->value.SameShape(p->value)) {
      if (src->value.is_view()) {
        // Copy-assigning a view aliases its pointer; a deep copy must
        // materialize the floats so the destination stays writable (the
        // fine-tune warm start copies from an mmap'd StoredModel).
        Tensor copy(src->value.rows(), src->value.cols());
        std::memcpy(copy.data(), src->value.data(),
                    copy.size() * sizeof(float));
        p->value = std::move(copy);
      } else {
        p->value = src->value;
      }
      p->act_absmax = src->act_absmax;
      p->BumpVersion();
      ++count;
    }
  }
  return count;
}

void ParameterStore::AverageFrom(
    const std::vector<const ParameterStore*>& stores) {
  DEEPSD_CHECK(!stores.empty());
  for (auto& p : params_) {
    Tensor sum(p->value.rows(), p->value.cols());
    for (const ParameterStore* s : stores) {
      const Parameter* src = s->Find(p->name);
      DEEPSD_CHECK_MSG(src != nullptr && src->value.SameShape(p->value),
                       "AverageFrom structure mismatch: " + p->name);
      for (size_t i = 0; i < sum.size(); ++i) {
        sum.flat()[i] += src->value.flat()[i];
      }
    }
    float inv = 1.0f / static_cast<float>(stores.size());
    for (size_t i = 0; i < sum.size(); ++i) {
      p->value.flat()[i] = sum.flat()[i] * inv;
    }
    p->BumpVersion();
  }
}

GradBuffer::GradBuffer(const ParameterStore& store) {
  const auto& params = store.parameters();
  grads_.reserve(params.size());
  index_.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    grads_.emplace_back(params[i]->value.rows(), params[i]->value.cols());
    index_.emplace(params[i].get(), i);
  }
}

Tensor& GradBuffer::grad(const Parameter* p) {
  auto it = index_.find(p);
  DEEPSD_CHECK_MSG(it != index_.end(),
                   "GradBuffer used with a foreign parameter: " + p->name);
  return grads_[it->second];
}

void GradBuffer::Zero() {
  for (Tensor& g : grads_) g.Zero();
}

std::unique_ptr<ParameterStore> ParameterStore::Clone() const {
  auto out = std::make_unique<ParameterStore>();
  for (const auto& p : params_) {
    auto q = std::make_unique<Parameter>();
    q->name = p->name;
    q->value = p->value;
    q->grad = Tensor(p->value.rows(), p->value.cols());
    q->frozen = p->frozen;
    q->act_absmax = p->act_absmax;
    out->params_.push_back(std::move(q));
  }
  return out;
}

}  // namespace nn
}  // namespace deepsd
