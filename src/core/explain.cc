#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace deepsd {
namespace core {

namespace {

float PredictOne(const DeepSDModel& model, const feature::ModelInput& input) {
  std::vector<feature::ModelInput> batch = {input};
  return model.Predict(batch)[0];
}

/// Probes every entry of `field`, attributing the first half to
/// `group_a` (lags 1..L) and the second half to `group_b`.
void ProbeSplitVector(const DeepSDModel& model, feature::ModelInput* input,
                      std::vector<float> feature::ModelInput::* field,
                      const std::string& group_a, const std::string& group_b,
                      double delta, float base,
                      std::vector<FeatureSensitivity>* out) {
  std::vector<float>& v = (*input).*field;
  const size_t half = v.size() / 2;
  for (size_t i = 0; i < v.size(); ++i) {
    float saved = v[i];
    v[i] = saved + static_cast<float>(delta);
    float perturbed = PredictOne(model, *input);
    v[i] = saved;
    FeatureSensitivity s;
    s.group = i < half ? group_a : group_b;
    s.lag = static_cast<int>(i < half ? i + 1 : i - half + 1);
    s.gradient = (perturbed - base) / delta;
    out->push_back(s);
  }
}

}  // namespace

std::vector<FeatureSensitivity> ExplainPrediction(
    const DeepSDModel& model, const feature::ModelInput& input, double delta) {
  DEEPSD_CHECK(delta != 0.0);
  feature::ModelInput probe = input;
  const float base = PredictOne(model, probe);
  std::vector<FeatureSensitivity> out;

  ProbeSplitVector(model, &probe, &feature::ModelInput::v_sd, "sd_valid",
                   "sd_invalid", delta, base, &out);
  if (model.mode() == DeepSDModel::Mode::kAdvanced) {
    ProbeSplitVector(model, &probe, &feature::ModelInput::v_lc, "lc_valid",
                     "lc_invalid", delta, base, &out);
    ProbeSplitVector(model, &probe, &feature::ModelInput::v_wt, "wt_served",
                     "wt_unserved", delta, base, &out);
  }

  // Weather reals: first half temperatures, second half PM2.5.
  ProbeSplitVector(model, &probe, &feature::ModelInput::weather_reals,
                   "wc_temp", "wc_pm25", delta, base, &out);

  // Traffic: 4 congestion levels per lag, lag-major.
  {
    std::vector<float>& v = probe.v_tc;
    for (size_t i = 0; i < v.size(); ++i) {
      float saved = v[i];
      v[i] = saved + static_cast<float>(delta);
      float perturbed = PredictOne(model, probe);
      v[i] = saved;
      FeatureSensitivity s;
      s.group = "tc_level" + std::to_string(i % data::kCongestionLevels + 1);
      s.lag = static_cast<int>(i / data::kCongestionLevels) + 1;
      s.gradient = (perturbed - base) / delta;
      out.push_back(s);
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> GroupImportance(
    const std::vector<FeatureSensitivity>& sensitivities) {
  std::map<std::string, double> totals;
  double sum = 0;
  for (const FeatureSensitivity& s : sensitivities) {
    totals[s.group] += std::abs(s.gradient);
    sum += std::abs(s.gradient);
  }
  std::vector<std::pair<std::string, double>> out(totals.begin(), totals.end());
  if (sum > 0) {
    for (auto& [group, total] : out) total /= sum;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace core
}  // namespace deepsd
