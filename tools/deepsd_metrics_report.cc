// deepsd_metrics_report: pretty-print a metrics dump produced by
// deepsd_train / deepsd_simulate --metrics-out.
//
//   deepsd_metrics_report --in=metrics.jsonl [--filter=serving/] [--overload]
//
// Renders the counters/gauges table and the histogram quantile table
// (count / mean / p50 / p90 / p99 / max, microseconds for latency
// histograms). --filter keeps only metrics whose name contains the given
// substring. --overload appends an admission-control summary (offered /
// admitted / shed-by-reason / deadline misses / queue-wait quantiles)
// derived from the serving/* metrics of docs/robustness.md.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics_io.h"
#include "util/cli.h"

namespace {

/// Overload-protection digest: turns the raw serving/* metrics into the
/// one accounting identity an operator checks first — offered == admitted
/// + shed — plus where the sheds went and how long admitted work waited.
void PrintOverloadSummary(
    const std::vector<deepsd::obs::MetricSnapshot>& snapshots) {
  auto counter = [&](const char* name) -> double {
    for (const auto& s : snapshots) {
      if (s.name == name) return s.value;
    }
    return 0.0;
  };
  const deepsd::obs::MetricSnapshot* wait = nullptr;
  for (const auto& s : snapshots) {
    if (s.name == "serving/queue_wait_us" &&
        s.kind == deepsd::obs::MetricSnapshot::Kind::kHistogram) {
      wait = &s;
    }
  }
  const double admitted = counter("serving/admitted");
  const double shed_full = counter("serving/shed_queue_full");
  const double shed_deadline = counter("serving/shed_deadline");
  const double shed_rate = counter("serving/shed_rate_limited");
  const double shed_breaker = counter("serving/shed_breaker");
  const double shed_draining = counter("serving/shed_draining");
  const double shed =
      shed_full + shed_deadline + shed_rate + shed_breaker + shed_draining;
  const double offered = admitted + shed;
  std::printf("\noverload summary\n");
  std::printf("  offered          %12.0f\n", offered);
  std::printf("  admitted         %12.0f (%.1f%%)\n", admitted,
              offered > 0 ? 100.0 * admitted / offered : 0.0);
  std::printf("  shed             %12.0f (%.1f%%)\n", shed,
              offered > 0 ? 100.0 * shed / offered : 0.0);
  std::printf("    queue full     %12.0f\n", shed_full);
  std::printf("    deadline       %12.0f\n", shed_deadline);
  std::printf("    rate limited   %12.0f\n", shed_rate);
  std::printf("    breaker        %12.0f\n", shed_breaker);
  std::printf("    draining       %12.0f\n", shed_draining);
  std::printf("  deadline misses  %12.0f (admitted but late)\n",
              counter("serving/deadline_miss"));
  std::printf("  predict expired  %12.0f (abandoned mid-pipeline)\n",
              counter("serving/predict_deadline_expired"));
  std::printf("  watchdog wedged  %12.0f\n",
              counter("serving/watchdog_wedged"));
  if (wait != nullptr && wait->count > 0) {
    std::printf("  queue wait us    p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
                wait->p50, wait->p90, wait->p99, wait->max);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepsd;
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown({"in", "filter", "overload", "help"});
  if (!st.ok() || cli.GetBool("help", false) || !cli.Has("in")) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_metrics_report --in=metrics.jsonl "
                 "[--filter=substring] [--overload]\n",
                 st.ToString().c_str());
    return st.ok() ? 2 : 2;
  }

  std::vector<obs::MetricSnapshot> snapshots;
  st = obs::LoadJsonLines(cli.GetString("in"), &snapshots);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  if (cli.Has("filter")) {
    std::string needle = cli.GetString("filter");
    std::vector<obs::MetricSnapshot> kept;
    for (auto& s : snapshots) {
      if (s.name.find(needle) != std::string::npos) {
        kept.push_back(std::move(s));
      }
    }
    snapshots = std::move(kept);
  }

  std::fputs(obs::RenderTable(snapshots).c_str(), stdout);
  if (cli.GetBool("overload", false)) PrintOverloadSummary(snapshots);
  return 0;
}
