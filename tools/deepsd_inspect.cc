// deepsd_inspect: summarize a saved dataset — volumes, gap distribution,
// per-area activity, weather mix — or a saved parameter file.
//
//   deepsd_inspect --data=city.bin
//   deepsd_inspect --params=model.bin

#include <algorithm>
#include <cstdio>
#include <map>

#include "data/serialize.h"
#include "nn/parameter.h"
#include "util/cli.h"
#include "util/stats.h"
#include <vector>

namespace {

int InspectData(const std::string& path) {
  using namespace deepsd;
  data::OrderDataset ds;
  util::Status st = data::LoadDataset(path, &ds);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("dataset %s\n", path.c_str());
  std::printf("  areas: %d  days: %d (day 0 weekday %d)  orders: %zu  "
              "passengers: %d\n",
              ds.num_areas(), ds.num_days(), ds.first_weekday(),
              ds.num_orders(), ds.num_passengers());
  std::printf("  weather: %s  traffic: %s\n",
              ds.has_weather() ? "yes" : "no", ds.has_traffic() ? "yes" : "no");

  size_t invalid = 0;
  for (const data::Order& o : ds.orders()) invalid += !o.valid;
  std::printf("  unmet requests: %zu (%.1f%%)\n", invalid,
              100.0 * invalid / std::max<size_t>(ds.num_orders(), 1));

  // Gap distribution over a busy-hours grid.
  util::RunningStats gap_stats;
  std::map<int, int> gap_hist;
  size_t zero = 0, count = 0;
  for (int a = 0; a < ds.num_areas(); ++a) {
    for (int d = 0; d < ds.num_days(); ++d) {
      for (int t = 450; t <= 1410; t += 30) {
        int g = ds.Gap(a, d, t);
        gap_stats.Add(g);
        ++gap_hist[std::min(g / 10 * 10, 100)];
        zero += (g == 0);
        ++count;
      }
    }
  }
  std::printf("  gaps (07:30-23:30 grid): mean %.2f, sd %.2f, max %.0f, "
              "zero %.1f%%\n",
              gap_stats.mean(), gap_stats.stddev(), gap_stats.max(),
              100.0 * zero / std::max<size_t>(count, 1));
  std::printf("  gap histogram (bucketed by 10):\n");
  for (auto [bucket, n] : gap_hist) {
    std::printf("    %3d%s %8d  %s\n", bucket, bucket == 100 ? "+" : " ", n,
                std::string(static_cast<size_t>(
                                60.0 * n / std::max<size_t>(count, 1)),
                            '#')
                    .c_str());
  }

  // Per-area volumes (top 10).
  std::vector<std::pair<int, int>> volume;  // (orders, area)
  for (int a = 0; a < ds.num_areas(); ++a) {
    int v = 0;
    for (int d = 0; d < ds.num_days(); ++d) {
      v += ds.ValidInRange(a, d, 0, data::kMinutesPerDay) +
           ds.InvalidInRange(a, d, 0, data::kMinutesPerDay);
    }
    volume.push_back({v, a});
  }
  std::sort(volume.rbegin(), volume.rend());
  std::printf("  busiest areas:");
  for (size_t i = 0; i < volume.size() && i < 10; ++i) {
    std::printf(" %d(%dk)", volume[i].second, volume[i].first / 1000);
  }
  std::printf("\n");
  return 0;
}

int InspectParams(const std::string& path) {
  using namespace deepsd;
  std::string format;
  std::vector<nn::ParameterFileEntry> entries;
  util::Status st = nn::ReadParameterFileSummary(path, &format, &entries);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("parameter file %s (%s): %zu tensors\n", path.c_str(),
              format.c_str(), entries.size());
  size_t total = 0;
  for (const nn::ParameterFileEntry& e : entries) {
    std::printf("  %-24s [%5d x %-5d]  ||w|| = %.4f%s\n", e.name.c_str(),
                e.rows, e.cols, e.norm, e.quantized ? "  (int8)" : "");
    total += static_cast<size_t>(e.rows) * static_cast<size_t>(e.cols);
  }
  std::printf("total weights: %zu\n", total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  deepsd::util::CommandLine cli(argc, argv);
  deepsd::util::Status st = cli.CheckKnown({"data", "params", "help"});
  if (!st.ok() || cli.GetBool("help", false) ||
      (!cli.Has("data") && !cli.Has("params"))) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_inspect --data=city.bin | "
                 "--params=model.bin\n",
                 st.ToString().c_str());
    return 2;
  }
  if (cli.Has("data")) return InspectData(cli.GetString("data"));
  return InspectParams(cli.GetString("params"));
}
