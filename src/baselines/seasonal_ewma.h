#ifndef DEEPSD_BASELINES_SEASONAL_EWMA_H_
#define DEEPSD_BASELINES_SEASONAL_EWMA_H_

#include <cstddef>
#include <vector>

#include "data/types.h"

namespace deepsd {
namespace baselines {

/// Seasonal exponentially-weighted moving average, the spirit of the
/// time-series baselines the paper's related work uses (Poisson / ARMA per
/// location, Moreira-Matias et al.): one EWMA state per
/// (area, day-of-week bucket, time-of-day bin), updated in day order, so
/// recent same-season history dominates the forecast.
struct SeasonalEwmaConfig {
  /// Smoothing factor: state ← (1-alpha)·state + alpha·observation.
  double alpha = 0.3;
  /// Width of a time-of-day bin in minutes.
  int time_bin_minutes = 30;
  /// true → 7 weekday buckets; false → 2 (weekday / weekend), the coarser
  /// split most prior work uses (paper Sec V-A discussion).
  bool per_weekday = true;
};

class SeasonalEwma {
 public:
  explicit SeasonalEwma(const SeasonalEwmaConfig& config = {})
      : config_(config) {}

  /// Consumes training items (any order; internally replayed by day).
  void Fit(const std::vector<data::PredictionItem>& train_items);

  /// Forecast for (area, week_id, t).
  float Predict(int area, int week_id, int t) const;
  std::vector<float> Predict(
      const std::vector<data::PredictionItem>& items) const;

 private:
  struct Cell {
    double value = 0;
    bool seen = false;
  };

  int DayBucket(int week_id) const {
    return config_.per_weekday ? week_id : (week_id >= 5 ? 1 : 0);
  }
  int TimeBin(int t) const { return t / config_.time_bin_minutes; }
  size_t CellIndex(int area, int day_bucket, int time_bin) const;

  SeasonalEwmaConfig config_;
  int num_areas_ = 0;
  int num_day_buckets_ = 0;
  int num_time_bins_ = 0;
  std::vector<Cell> cells_;
  double global_mean_ = 0;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_SEASONAL_EWMA_H_
