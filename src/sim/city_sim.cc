#include "sim/city_sim.h"

#include <algorithm>
#include <cmath>

#include "sim/traffic_model.h"
#include "sim/weather_model.h"
#include "util/logging.h"

namespace deepsd {
namespace sim {

namespace {

/// A passenger scheduled to re-send a failed request.
struct PendingRetry {
  int32_t passenger_id;
  int32_t first_call_ts;
  int8_t attempts;  // how many requests this passenger already sent
};

/// One in-progress demand surge.
struct Event {
  int center;
  double width;
  double boost;  // multiplier − 1 at the peak
};

/// Order-independent per-(stream, area, day) seed so that demand, supply
/// and passenger-behaviour draws come from separate RNG streams: a supply
/// intervention must not perturb the demand realization.
uint64_t SubSeed(uint64_t seed, uint64_t stream, int area, int day) {
  uint64_t h = seed;
  h ^= 0x9E3779B97F4A7C15ULL * (stream + 1);
  h ^= 0xBF58476D1CE4E5B9ULL * (static_cast<uint64_t>(area) + 1);
  h ^= 0x94D049BB133111EBULL * (static_cast<uint64_t>(day) + 3);
  return h;
}

}  // namespace

namespace {
constexpr int kNoShift = 1 << 30;
}  // namespace

CitySim::CitySim(const CityConfig& config) : config_(config) {
  DEEPSD_CHECK(config.num_areas > 0);
  DEEPSD_CHECK(config.num_days > 0);
  util::Rng rng(config.seed);
  profiles_ = MakeAreaProfiles(config.num_areas, config.mean_scale, &rng);

  // Synthesize post-shift profiles from their own RNG stream so adding a
  // regime shift never perturbs the base city: a run with shifts shares
  // the pre-shift realization with the unshifted run bit for bit.
  shifted_profiles_ = profiles_;
  shift_start_day_.assign(static_cast<size_t>(config.num_areas), kNoShift);
  util::Rng shift_rng(config.seed ^ 0x5D1F7C0DD417EDULL);
  for (const RegimeShift& shift : config_.regime_shifts) {
    switch (shift.kind) {
      case RegimeShift::Kind::kArchetypeShift: {
        const int stride = std::max(shift.area_stride, 1);
        for (int area = 0; area < config.num_areas; area += stride) {
          AreaProfile next = MakeProfileOfType(
              shift.to_type, config.mean_scale * shift.intensity, &shift_rng);
          // Keep the area's own volume class: a quiet suburb that turns
          // into a business district inherits business *shape*, not a
          // random new magnitude.
          next.scale = profiles_[static_cast<size_t>(area)].scale *
                       shift.intensity;
          shifted_profiles_[static_cast<size_t>(area)] = std::move(next);
          shift_start_day_[static_cast<size_t>(area)] = shift.start_day;
        }
        break;
      }
      case RegimeShift::Kind::kStadium: {
        int area = shift.stadium_area;
        if (area < 0) {
          for (int a = 0; a < config.num_areas; ++a) {
            if (profiles_[static_cast<size_t>(a)].type ==
                AreaType::kSuburban) {
              area = a;
              break;
            }
          }
          if (area < 0) area = 0;
        }
        if (area >= config.num_areas) area = config.num_areas - 1;
        AreaProfile next = profiles_[static_cast<size_t>(area)];
        // Event-night surge: a big 21:00 bump every day (stadia program
        // weeknights too) and thinner supply headroom — the venue outgrew
        // the local driver pool.
        const DemandBump surge{1260, 60, 2.5 * shift.intensity};
        next.weekday_bumps.push_back(surge);
        next.weekend_bumps.push_back(surge);
        next.supply_ratio *= 0.9;
        shifted_profiles_[static_cast<size_t>(area)] = std::move(next);
        shift_start_day_[static_cast<size_t>(area)] = shift.start_day;
        break;
      }
      case RegimeShift::Kind::kHolidayRegime:
        // Day-level, handled by HolidayAdjust — no per-area profile.
        break;
    }
  }
}

const AreaProfile& CitySim::EffectiveProfile(int area, int day) const {
  const size_t a = static_cast<size_t>(area);
  if (day >= shift_start_day_[a]) return shifted_profiles_[a];
  return profiles_[a];
}

double CitySim::HolidayAdjust(int day, int* week_id) const {
  double mult = 1.0;
  for (const RegimeShift& shift : config_.regime_shifts) {
    if (shift.kind != RegimeShift::Kind::kHolidayRegime) continue;
    if (day >= shift.start_day && day < shift.end_day) {
      *week_id = 6;  // Sunday shape: nobody commutes on a holiday.
      mult *= shift.intensity;
    }
  }
  return mult;
}

util::Status CitySim::Generate(data::OrderDataset* out, SimSummary* summary) {
  util::Rng master(config_.seed ^ 0xC0FFEE123456789AULL);
  data::OrderDatasetBuilder builder(config_.num_areas, config_.num_days,
                                    config_.first_weekday);

  // Weather first: it is shared by all areas and modulates both sides.
  std::vector<data::WeatherRecord> weather;
  if (config_.generate_weather) {
    WeatherModel wm(master.Fork(1));
    weather = wm.Generate(config_.num_days);
    for (const auto& w : weather) builder.AddWeather(w);
  }
  auto weather_at = [&](int day, int ts) -> WeatherType {
    if (weather.empty()) return WeatherType::kSunny;
    return static_cast<WeatherType>(
        weather[static_cast<size_t>(day) * data::kMinutesPerDay + ts].type);
  };

  TrafficModel traffic_model(master.Fork(2));

  int32_t next_passenger = 0;
  size_t total_orders = 0, invalid_orders = 0, episodes = 0;

  for (int area = 0; area < config_.num_areas; ++area) {
    for (int day = 0; day < config_.num_days; ++day) {
      const AreaProfile& profile = EffectiveProfile(area, day);
      int week_id = (day + config_.first_weekday) % data::kDaysPerWeek;
      double holiday_mult = HolidayAdjust(day, &week_id);
      // Independent streams: demand draws never depend on supply draws.
      util::Rng demand_rng(SubSeed(config_.seed, 11, area, day));
      util::Rng supply_rng(SubSeed(config_.seed, 22, area, day));
      util::Rng behavior_rng(SubSeed(config_.seed, 33, area, day));

      double day_noise =
          std::exp(demand_rng.Normal(0.0, config_.day_noise_sigma));

      // Surprise events: short-lived demand surges, mostly in the evening.
      std::vector<Event> events;
      if (demand_rng.Bernoulli(config_.event_prob)) {
        Event e;
        e.center = static_cast<int>(demand_rng.UniformInt(600, 1350));
        e.width = demand_rng.Uniform(25.0, 60.0);
        e.boost = demand_rng.Uniform(1.0, 3.0);
        events.push_back(e);
      }

      std::vector<std::vector<PendingRetry>> retries(data::kMinutesPerDay);
      // Idle-driver pool: drivers freeing up roll over for a few minutes, so
      // Poisson noise alone doesn't create gaps — only sustained demand
      // above supply does. This is what produces the paper's "~48% of
      // windows are balanced" shape.
      double driver_pool = 0.0;
      for (int ts = 0; ts < data::kMinutesPerDay; ++ts) {
        WeatherType wt = weather_at(day, ts);
        double demand_rate = profile.DemandIntensity(ts, week_id) * day_noise *
                             holiday_mult * WeatherDemandMultiplier(wt);
        for (const Event& e : events) {
          double d = (ts - e.center) / e.width;
          demand_rate *= 1.0 + e.boost * std::exp(-0.5 * d * d);
        }
        double supply_rate = profile.SupplyIntensity(ts, week_id) *
                             WeatherSupplyMultiplier(wt);

        // New passengers arriving this minute.
        int arrivals = demand_rng.Poisson(demand_rate);
        episodes += static_cast<size_t>(arrivals);

        // Service capacity this minute: fresh drivers plus the rolled-over
        // idle pool (capped at ~8 minutes of supply), plus any dispatch
        // intervention (deterministic — dispatched drivers are known).
        double boost = config_.supply_boost
                           ? std::max(config_.supply_boost(area, day, ts), 0.0)
                           : 0.0;
        driver_pool += supply_rng.Poisson(supply_rate) + boost;
        double pool_cap = std::max(4.0, 8.0 * (supply_rate + boost));
        if (driver_pool > pool_cap) driver_pool = pool_cap;
        int capacity = static_cast<int>(driver_pool);

        // Requests this minute = scheduled retries + fresh arrivals.
        // Retries go first: those passengers are already waiting.
        struct Request {
          int32_t pid;
          int32_t first_ts;
          int8_t attempts;
        };
        std::vector<Request> requests;
        requests.reserve(retries[static_cast<size_t>(ts)].size() +
                         static_cast<size_t>(arrivals));
        for (const PendingRetry& r : retries[static_cast<size_t>(ts)]) {
          requests.push_back({r.passenger_id, r.first_call_ts, r.attempts});
        }
        for (int i = 0; i < arrivals; ++i) {
          requests.push_back({next_passenger++, ts, 0});
        }

        int served = 0;
        for (size_t i = 0; i < requests.size(); ++i) {
          const Request& req = requests[i];
          bool valid = static_cast<int>(i) < capacity;
          served += valid;
          data::Order o;
          o.day = day;
          o.ts = ts;
          o.passenger_id = req.pid;
          o.start_area = area;
          // Destination: usually another area; loosely biased by commute
          // direction (residential ships people out in the morning, business
          // in the evening), otherwise uniform.
          int dest = static_cast<int>(behavior_rng.UniformInt(
              static_cast<uint64_t>(config_.num_areas)));
          if (dest == area && config_.num_areas > 1) {
            dest = (dest + 1) % config_.num_areas;
          }
          o.dest_area = dest;
          o.valid = valid;
          builder.AddOrder(o);
          ++total_orders;
          if (!valid) {
            ++invalid_orders;
            int total_attempts = req.attempts + 1;
            if (total_attempts <= config_.max_retries &&
                behavior_rng.Bernoulli(config_.retry_prob)) {
              int delay = 1 + behavior_rng.Poisson(1.2);
              int when = ts + delay;
              if (when < data::kMinutesPerDay) {
                retries[static_cast<size_t>(when)].push_back(
                    {req.pid, req.first_ts,
                     static_cast<int8_t>(total_attempts)});
              }
            }
          }
        }

        driver_pool -= served;

        if (config_.generate_traffic) {
          // Congestion pressure: demand utilisation vs supply, shaped so
          // rush hours and weather shortfalls read as congestion.
          double util = demand_rate / std::max(supply_rate, 1e-6);
          double pressure = std::clamp(0.75 * (util - 0.45), 0.0, 1.0);
          builder.AddTraffic(
              traffic_model.Sample(profile, area, day, ts, pressure));
        }
      }
    }
  }

  DEEPSD_RETURN_IF_ERROR(builder.Build(out));

  if (summary != nullptr) {
    summary->total_orders = total_orders;
    summary->invalid_orders = invalid_orders;
    summary->total_passenger_episodes = episodes;
    // Zero-gap fraction over the paper's test-style grid.
    size_t zero = 0, count = 0;
    int max_gap = 0;
    for (int a = 0; a < out->num_areas(); ++a) {
      for (int d = 0; d < out->num_days(); ++d) {
        for (int t = 450; t <= 1410; t += 120) {
          int g = out->Gap(a, d, t);
          max_gap = std::max(max_gap, g);
          zero += (g == 0);
          ++count;
        }
      }
    }
    summary->zero_gap_fraction =
        count ? static_cast<double>(zero) / static_cast<double>(count) : 0.0;
    summary->max_gap = max_gap;
  }
  return util::Status::OK();
}

data::OrderDataset SimulateCity(const CityConfig& config, SimSummary* summary) {
  CitySim sim(config);
  data::OrderDataset dataset;
  util::Status st = sim.Generate(&dataset, summary);
  DEEPSD_CHECK_MSG(st.ok(), st.ToString());
  return dataset;
}

}  // namespace sim
}  // namespace deepsd
