#ifndef DEEPSD_NN_GRAPH_H_
#define DEEPSD_NN_GRAPH_H_

#include <functional>
#include <vector>

#include "nn/parameter.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepsd {
namespace nn {

/// Handle to a node in a Graph. Valid only for the graph that produced it
/// and only until Clear().
using NodeId = int;

/// Define-by-run autodiff tape over 2-D tensors.
///
/// Every op evaluates its value eagerly and records a backward closure;
/// Backward(loss) replays the tape in reverse, accumulating gradients into
/// node grads and — for Param leaves — into Parameter::grad. A fresh graph
/// (or Clear()) is used per mini-batch; parameters persist outside in a
/// ParameterStore.
///
/// This is deliberately the smallest op set that expresses DeepSD: dense
/// matmul + bias, concatenation, slicing, element-wise arithmetic, LReL,
/// row softmax, dropout, embedding lookup, a grouped weighted sum (for
/// E = Σ_w p(w)·H(w)) and MSE/MAE losses.
class Graph {
 public:
  explicit Graph(util::Rng* rng = nullptr) : rng_(rng) {}

  /// True while training: dropout is active. Toggle per pass.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Redirects parameter-gradient accumulation (Param leaves and embedding
  /// tables) into `buffer` instead of Parameter::grad. Data-parallel
  /// training points each shard's graph at its own buffer so concurrent
  /// backward passes never write shared state; nullptr (the default)
  /// restores direct accumulation. The buffer must outlive Backward().
  void set_grad_buffer(GradBuffer* buffer) { grad_buffer_ = buffer; }

  /// Constant input (no gradient).
  NodeId Input(Tensor value);
  /// Leaf bound to a trainable parameter; backward accumulates into
  /// `p->grad` (even when frozen — the optimizer decides what to apply).
  NodeId Param(Parameter* p);

  /// x:[B,M] · w:[M,N] → [B,N].
  NodeId MatMul(NodeId x, NodeId w);
  /// x:[B,N] + broadcast row b:[1,N].
  NodeId AddBias(NodeId x, NodeId b);
  /// Element-wise; shapes must match.
  NodeId Add(NodeId a, NodeId b);
  NodeId Sub(NodeId a, NodeId b);
  NodeId Mul(NodeId a, NodeId b);
  NodeId Scale(NodeId a, float s);
  /// Column-wise concatenation of nodes with equal batch size.
  NodeId Concat(const std::vector<NodeId>& parts);
  /// Columns [begin, end) of x.
  NodeId SliceCols(NodeId x, int begin, int end);
  /// Leaky rectified linear: max(alpha*x, x). Paper uses alpha = 0.001.
  NodeId LeakyRelu(NodeId x, float alpha = 0.001f);
  /// Row-wise softmax.
  NodeId Softmax(NodeId x);
  /// Inverted dropout with keep prob 1-p; identity when not training.
  NodeId Dropout(NodeId x, float p);
  /// Gathers `table` rows by id: ids.size()=B → [B, table.cols()].
  NodeId Embed(Parameter* table, const std::vector<int>& ids);
  /// Grouped weighted sum: p:[B,G], h:[B,G*K] → out:[B,K],
  /// out[b,k] = Σ_g p[b,g]·h[b,g*K+k]. Computes E from stacked H vectors.
  NodeId GroupWeightedSum(NodeId p, NodeId h, int groups);

  /// Mean squared error against a constant target [B,1] → scalar [1,1].
  NodeId MseLoss(NodeId pred, const Tensor& target);
  /// Squared error summed over this graph's rows but divided by an
  /// explicit `denom` — the full minibatch size when the batch is split
  /// into data-parallel shards. Per-sample gradients are then
  /// 2·(pred−target)/denom exactly as in the unsharded mean, and the shard
  /// losses sum to the batch loss.
  NodeId MseLoss(NodeId pred, const Tensor& target, double denom);
  /// Mean absolute error (for evaluation; gradient is sign-based).
  NodeId MaeLoss(NodeId pred, const Tensor& target);

  const Tensor& value(NodeId id) const { return nodes_[static_cast<size_t>(id)].value; }
  const Tensor& grad(NodeId id) const { return nodes_[static_cast<size_t>(id)].grad; }

  /// Runs reverse-mode accumulation from `loss` (seeds d(loss)=1).
  void Backward(NodeId loss);

  /// Drops all nodes; parameters are untouched.
  void Clear();

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    Parameter* param = nullptr;  // for Param leaves
    std::function<void(Graph*)> backward;
  };

  NodeId AddNode(Tensor value);
  Node& node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  /// Destination for `p`'s gradient: the shard-local buffer when one is
  /// set, the shared Parameter::grad otherwise.
  Tensor& param_grad(Parameter* p) {
    return grad_buffer_ != nullptr ? grad_buffer_->grad(p) : p->grad;
  }

  std::vector<Node> nodes_;
  util::Rng* rng_;
  GradBuffer* grad_buffer_ = nullptr;
  bool training_ = false;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_GRAPH_H_
