#include "src/data/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tests/test_util.h"

namespace deepsd {
namespace data {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("deepsd_ds_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  OrderDataset original = deepsd::testing::MakeMicroDataset();
  ASSERT_TRUE(SaveDataset(original, path_).ok());

  OrderDataset loaded;
  ASSERT_TRUE(LoadDataset(path_, &loaded).ok());

  EXPECT_EQ(loaded.num_areas(), original.num_areas());
  EXPECT_EQ(loaded.num_days(), original.num_days());
  EXPECT_EQ(loaded.num_orders(), original.num_orders());
  EXPECT_EQ(loaded.first_weekday(), original.first_weekday());

  for (int a = 0; a < original.num_areas(); ++a) {
    for (int d = 0; d < original.num_days(); ++d) {
      for (int ts = 0; ts < kMinutesPerDay; ts += 7) {
        ASSERT_EQ(loaded.ValidCount(a, d, ts), original.ValidCount(a, d, ts));
        ASSERT_EQ(loaded.InvalidCount(a, d, ts),
                  original.InvalidCount(a, d, ts));
        ASSERT_EQ(loaded.Gap(a, d, ts), original.Gap(a, d, ts));
      }
    }
  }
  EXPECT_EQ(loaded.WeatherAt(0, 100).type, original.WeatherAt(0, 100).type);
  EXPECT_EQ(loaded.TrafficAt(1, 1, 700).level_counts[2],
            original.TrafficAt(1, 1, 700).level_counts[2]);
}

TEST_F(SerializeTest, RoundTripOfSimulatedCity) {
  OrderDataset original = deepsd::testing::MakeSmallCity(3, 3, 77);
  ASSERT_TRUE(SaveDataset(original, path_).ok());
  OrderDataset loaded;
  ASSERT_TRUE(LoadDataset(path_, &loaded).ok());
  EXPECT_EQ(loaded.num_orders(), original.num_orders());
  EXPECT_EQ(loaded.Gap(2, 1, 500), original.Gap(2, 1, 500));
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::ofstream(path_) << "not a dataset file at all";
  OrderDataset ds;
  EXPECT_FALSE(LoadDataset(path_, &ds).ok());
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  OrderDataset original = deepsd::testing::MakeMicroDataset();
  ASSERT_TRUE(SaveDataset(original, path_).ok());
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  OrderDataset ds;
  EXPECT_FALSE(LoadDataset(path_, &ds).ok());
}

TEST_F(SerializeTest, MissingFileIsError) {
  OrderDataset ds;
  EXPECT_FALSE(LoadDataset("/no/such/file.bin", &ds).ok());
}

}  // namespace
}  // namespace data
}  // namespace deepsd
