// Reproduces paper Table II (performance comparison of Empirical Average,
// LASSO, GBDT, Random Forest, Basic DeepSD, Advanced DeepSD on MAE/RMSE)
// plus the Table I embedding-settings echo and the headline "RMSE x% lower
// than the best existing method" number.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

void PrintTable1(const core::DeepSDConfig& config) {
  eval::TablePrinter t({"Embedding Layer", "Setting", "Occurred Parts"});
  t.AddRow({"AreaID",
            util::StrFormat("R^%d -> R^%d", config.num_areas,
                            config.area_embed_dim),
            "Identity Part, Extended Order Part"});
  t.AddRow({"TimeID",
            util::StrFormat("R^%d -> R^%d", config.time_vocab,
                            config.time_embed_dim),
            "Identity Part"});
  t.AddRow({"WeekID",
            util::StrFormat("R^7 -> R^%d", config.week_embed_dim),
            "Identity Part, Extended Order Part"});
  t.AddRow({"wc.type",
            util::StrFormat("R^%d -> R^%d", config.weather_vocab,
                            config.weather_embed_dim),
            "Environment Part"});
  std::printf("\nTable I. Embedding settings\n");
  t.Print();
}

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Table II: performance comparison");
  PrintTable1(exp.ModelConfig());

  std::vector<float> targets = exp.TestTargets();
  eval::TablePrinter table({"Model", "MAE", "RMSE"});

  auto add = [&](const std::string& name, const std::vector<float>& preds) {
    eval::Metrics m = eval::ComputeMetrics(preds, targets);
    table.AddRow(name, {m.mae, m.rmse});
    std::printf("  %-16s MAE=%.3f RMSE=%.3f\n", name.c_str(), m.mae, m.rmse);
    return m;
  };

  std::printf("\nrunning baselines...\n");
  add("Average", bench::RunEmpiricalAverage(exp));
  add("Seasonal EWMA", bench::RunSeasonalEwma(exp));
  add("LASSO", bench::RunLasso(exp));
  eval::Metrics gbdt = add("GBDT", bench::RunGbdt(exp));
  add("RF", bench::RunRandomForest(exp));

  std::printf("training Basic DeepSD...\n");
  auto basic = exp.TrainDeepSD(core::DeepSDModel::Mode::kBasic,
                               exp.ModelConfig(), /*seed=*/7);
  add("Basic DeepSD", basic.test_predictions);

  std::printf("training Advanced DeepSD...\n");
  auto advanced = exp.TrainDeepSD(core::DeepSDModel::Mode::kAdvanced,
                                  exp.ModelConfig(), /*seed=*/7);
  eval::Metrics adv = add("Advanced DeepSD", advanced.test_predictions);

  std::printf("\nTable II. Performance comparison\n");
  table.Print();
  std::printf(
      "\nAdvanced DeepSD RMSE is %.1f%% lower than GBDT (paper: 11.9%% lower "
      "than the best existing method).\n",
      eval::ImprovementPercent(adv.rmse, gbdt.rmse));
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
