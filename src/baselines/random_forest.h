#ifndef DEEPSD_BASELINES_RANDOM_FOREST_H_
#define DEEPSD_BASELINES_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "baselines/tree.h"

namespace deepsd {
namespace baselines {

/// Bagged random forest regressor (the scikit-learn RF baseline of paper
/// Table II): bootstrap rows per tree, subsampled features per split,
/// averaged deep trees.
struct RandomForestConfig {
  int num_trees = 30;
  /// Features considered per split; 0.33 ≈ the classic p/3 heuristic.
  double colsample = 0.33;
  int max_depth = 14;
  int min_samples_leaf = 5;
  uint64_t seed = 29;
};

class RandomForest {
 public:
  explicit RandomForest(const RandomForestConfig& config) : config_(config) {}

  void Fit(const FeatureMatrix& X, const std::vector<float>& y);
  std::vector<float> Predict(const FeatureMatrix& X) const;
  float PredictRow(const float* features) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  RandomForestConfig config_;
  std::unique_ptr<BinnedMatrix> binner_;
  std::vector<RegressionTree> trees_;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_RANDOM_FOREST_H_
