#ifndef DEEPSD_OBS_METRICS_IO_H_
#define DEEPSD_OBS_METRICS_IO_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace deepsd {
namespace obs {

/// One metric snapshot as a single JSON object (no trailing newline), e.g.
///   {"type":"histogram","name":"serving/predict_us","count":12,...}
std::string ToJsonLine(const MetricSnapshot& snapshot);

/// JSON-lines dump: one object per line, independently parseable (the CI
/// gate pipes each line through `python3 -m json.tool`).
util::Status WriteJsonLines(const std::vector<MetricSnapshot>& snapshots,
                            const std::string& path);

/// Re-reads a WriteJsonLines dump (blank lines ignored).
util::Status LoadJsonLines(const std::string& path,
                           std::vector<MetricSnapshot>* out);

/// Human rendering via util::TablePrinter: a counters/gauges table followed
/// by a histogram table with count / mean / p50 / p90 / p99 / max columns.
std::string RenderTable(const std::vector<MetricSnapshot>& snapshots);

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_METRICS_IO_H_
