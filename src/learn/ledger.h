#ifndef DEEPSD_LEARN_LEDGER_H_
#define DEEPSD_LEARN_LEDGER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepsd {
namespace learn {

/// Lifecycle events of one continuous-learning candidate, in the order the
/// loop emits them (docs/continuous_learning.md). Every stage writes its
/// event *after* the durable work of the stage completed, so replaying the
/// ledger after a crash tells exactly which on-disk state can be trusted.
enum class LedgerEvent : uint8_t {
  kFineTuneStarted = 1,   ///< Snapshot frozen, fine-tune (re)started.
  kCandidatePacked = 2,   ///< Candidate artifact sealed at artifact_path.
  kShadowStarted = 3,     ///< Shadow replay against live traffic began.
  kShadowResult = 4,      ///< Shadow deltas measured (metrics fields set).
  kPromoting = 5,         ///< Gate passed; publish is about to happen.
  kPromoted = 6,          ///< Candidate is live; prior_version records what
                          ///< it replaced (the rollback target).
  kRejected = 7,          ///< Gate refused the candidate (lost the shadow
                          ///< comparison, or the artifact failed to open).
  kRollbackStarted = 8,   ///< Watchdog tripped; reverting to prior_version.
  kRolledBack = 9,        ///< Prior version is live again.
  kAborted = 10,          ///< Stage abandoned (note says why).
};

const char* LedgerEventName(LedgerEvent event);

/// One append-only ledger record. Fields beyond (seq, event, t_abs) are
/// filled per event kind; unset fields stay zero/empty.
struct LedgerRecord {
  uint64_t seq = 0;          ///< Assigned by Append, dense from 1.
  LedgerEvent event = LedgerEvent::kAborted;
  int64_t t_abs = 0;         ///< Learner clock (absolute minutes).
  std::string candidate_id;  ///< e.g. "ft-3".
  std::string artifact_path;
  std::string prior_version;  ///< kPromoted/kRollback*: the fallback id.
  double serving_mae = 0, candidate_mae = 0;
  double serving_rmse = 0, candidate_rmse = 0;
  uint64_t shadow_samples = 0;
  std::string note;
};

/// What a ledger replay resolves to — the well-defined state a restarted
/// learner continues from.
struct LedgerState {
  uint64_t next_seq = 1;
  /// version_id currently committed to serving ("" = the initial model).
  std::string committed_version;
  /// Artifact path of committed_version ("" = the initial artifact).
  std::string committed_artifact;
  /// An open, non-terminal stage (crash interrupted it). last_event tells
  /// which stage; the in_flight_* fields identify the candidate.
  bool in_flight = false;
  LedgerEvent last_event = LedgerEvent::kAborted;
  std::string in_flight_candidate;
  std::string in_flight_artifact;
  /// kPromoting crash only: the shadow-measured serving MAE, so a resumed
  /// promotion keeps its watchdog baseline.
  double in_flight_serving_mae = 0;
  std::string in_flight_prior_version;  ///< kRollbackStarted crash only.
};

/// Crash-safe promotion ledger: an append-only frame log (u32 payload
/// length, u32 CRC-32, payload) behind an 8-byte magic. Appends are
/// write+flush of one frame; a crash mid-append leaves a torn tail that
/// replay detects (short frame or CRC mismatch) and discards — a record is
/// either fully durable or it never happened. Open() replays existing
/// records, truncates any torn tail (atomically, via rewrite+rename), and
/// positions for appending.
///
/// Single-writer by design: the learner is the only appender. Replay() is
/// the read-only path tools use.
class PromotionLedger {
 public:
  explicit PromotionLedger(std::string path) : path_(std::move(path)) {}
  ~PromotionLedger();

  PromotionLedger(const PromotionLedger&) = delete;
  PromotionLedger& operator=(const PromotionLedger&) = delete;

  /// Creates or replays the ledger file. Torn tails are dropped and
  /// counted (learn/ledger_torn_tail); a file with a bad magic is
  /// IoError — a ledger is never silently reinitialized over foreign data.
  util::Status Open();

  /// Assigns record.seq, appends one framed record and flushes it.
  util::Status Append(LedgerRecord record);

  const std::vector<LedgerRecord>& records() const { return records_; }
  uint64_t torn_bytes() const { return torn_bytes_; }
  const std::string& path() const { return path_; }

  /// The recovery state the record sequence resolves to. Resolution rules
  /// (docs/continuous_learning.md): kPromoted moves the committed version;
  /// kRolledBack moves it back to the record's prior_version; an open
  /// kPromoting without kPromoted means NOT promoted (publication is an
  /// in-memory pointer flip — the crash lost it); an open kRollbackStarted
  /// resolves as rolled back (the incident stands).
  static LedgerState Derive(const std::vector<LedgerRecord>& records);
  LedgerState state() const { return Derive(records_); }

  /// Read-only replay for tools: fills `*out` with every intact record,
  /// `*torn_bytes` (optional) with the discarded tail length.
  static util::Status Replay(const std::string& path,
                             std::vector<LedgerRecord>* out,
                             uint64_t* torn_bytes = nullptr);

 private:
  util::Status AppendFrame(const std::vector<char>& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<LedgerRecord> records_;
  uint64_t next_seq_ = 1;
  uint64_t torn_bytes_ = 0;
};

}  // namespace learn
}  // namespace deepsd

#endif  // DEEPSD_LEARN_LEDGER_H_
