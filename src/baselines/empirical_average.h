#ifndef DEEPSD_BASELINES_EMPIRICAL_AVERAGE_H_
#define DEEPSD_BASELINES_EMPIRICAL_AVERAGE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/types.h"
#include "util/byte_io.h"
#include "util/status.h"

namespace deepsd {
namespace baselines {

/// Minimal interface of a per-(area, minute) gap baseline — what serving's
/// fallback ladder (serving::OnlinePredictor tier 3) actually consumes.
/// Implemented by the fitted EmpiricalAverage below and by the model
/// store's zero-copy MappedEmpiricalAverage (store/stored_model.h), so a
/// predictor can answer from either without caring where the tables live.
class GapBaseline {
 public:
  virtual ~GapBaseline() = default;
  /// Predicted gap for (area, minute-of-day t). Must be thread-safe.
  virtual float Predict(int area, int t) const = 0;
};

/// The paper's "Empirical Average" baseline (Sec VI-C): for a query
/// (area, t) predict the mean gap of the same (area, t) over the training
/// days. Falls back to the area mean, then the global mean, for unseen
/// timeslots.
class EmpiricalAverage : public GapBaseline {
 public:
  /// On-disk/wire encodings of the fitted tables ("DEA1" format,
  /// docs/performance.md). Both round-trip bit-exactly.
  enum class Encoding : uint8_t {
    /// Raw key/sum/count triples, fixed width.
    kRaw = 0,
    /// Keys sorted + delta-varint, counts varint, sums zigzag-varint when
    /// every sum is integral (gap sums are sums of integer counts, so
    /// normally all of them) with a raw-double fallback per table.
    kCompressed = 1,
  };

  void Fit(const std::vector<data::PredictionItem>& train_items);

  float Predict(int area, int t) const override;
  std::vector<float> Predict(const std::vector<data::PredictionItem>& items) const;

  /// Dense snapshot of the fitted tables for the model store's flat,
  /// mmap-able "ea" section. Means are precomputed exactly as Predict
  /// computes them — static_cast<float>(sum / count) — and absent slots
  /// are NaN, so a lookup over the dense form walks the same
  /// cell → area → global fallback chain bit for bit.
  struct DenseTables {
    int num_areas = 0;
    /// Row-major [num_areas * kMinutesPerDay]; NaN = no training sample.
    std::vector<float> cell_means;
    /// [num_areas]; NaN = area never seen.
    std::vector<float> area_means;
    /// NaN when nothing was fitted (Predict then answers 0).
    float global_mean = 0.0f;
  };
  /// `num_areas` < 0 derives the area count from the largest fitted key.
  /// Fitted keys at or past a caller-provided `num_areas` are dropped.
  DenseTables ToDense(int num_areas = -1) const;

  /// Serializes the fitted tables (encoding byte + payload, no framing).
  /// Deterministic: equal fitted state yields equal bytes.
  void EncodeTo(util::ByteWriter* w, Encoding encoding) const;
  /// Inverse of EncodeTo; typed InvalidArgument on malformed bytes.
  util::Status DecodeFrom(util::ByteReader* r);

  /// Atomic, CRC-sealed file round-trip:
  /// "DEA1" | u8 version | u8 reserved | u64 payload_len | payload | crc32.
  /// Load detects truncation (IoError) and corruption (InvalidArgument)
  /// before touching the tables.
  util::Status Save(const std::string& path,
                    Encoding encoding = Encoding::kCompressed) const;
  util::Status Load(const std::string& path);

 private:
  struct Accumulator {
    double sum = 0;
    int count = 0;
  };

  static int64_t Key(int area, int t) {
    return static_cast<int64_t>(area) * data::kMinutesPerDay + t;
  }

  std::unordered_map<int64_t, Accumulator> by_area_t_;
  std::unordered_map<int, Accumulator> by_area_;
  Accumulator global_;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_EMPIRICAL_AVERAGE_H_
