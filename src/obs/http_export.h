#ifndef DEEPSD_OBS_HTTP_EXPORT_H_
#define DEEPSD_OBS_HTTP_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace deepsd {
namespace obs {

/// Minimal blocking HTTP exporter for the Prometheus pull model: one
/// loopback listener, one accept thread, GET /metrics answered with the
/// OpenMetrics rendering of the registry (obs/openmetrics.h). GET /healthz
/// answers "ok" for liveness probes; everything else is 404. Deliberately
/// not a web server — no keep-alive, no TLS, one request per connection —
/// just enough for `curl` and a Prometheus scrape during a simulate run.
class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(
      MetricsRegistry* registry = &MetricsRegistry::Global());
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread.
  util::Status Start(int port);
  /// Closes the listener and joins the accept thread (idempotent).
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Tiny loopback HTTP client: GET `path` from 127.0.0.1:`port`, filling
  /// `*body` with the response body on a 200. Used by tests and by
  /// deepsd_simulate's --serve-metrics self-check, so the endpoint is
  /// exercised without an external curl.
  static util::Status Get(int port, const std::string& path,
                          std::string* body);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  MetricsRegistry* const registry_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_HTTP_EXPORT_H_
