#include "dispatch/closed_loop.h"

#include <map>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace deepsd {
namespace dispatch {

size_t CountUnservedPassengers(const data::OrderDataset& dataset,
                               int day_begin, int day_end) {
  // Last call per passenger within the day range; a passenger is unserved
  // if that call is invalid.
  struct Last {
    int64_t ts_abs;
    bool valid;
  };
  std::map<int32_t, Last> last;
  for (const data::Order& o : dataset.orders()) {
    if (o.day < day_begin || o.day >= day_end) continue;
    int64_t ts_abs = static_cast<int64_t>(o.day) * data::kMinutesPerDay + o.ts;
    auto [it, inserted] = last.emplace(o.passenger_id, Last{ts_abs, o.valid});
    if (!inserted && ts_abs >= it->second.ts_abs) {
      it->second = Last{ts_abs, o.valid};
    }
  }
  size_t unserved = 0;
  for (const auto& [pid, l] : last) unserved += !l.valid;
  return unserved;
}

namespace {

size_t CountInvalid(const data::OrderDataset& dataset, int day_begin,
                    int day_end) {
  size_t invalid = 0;
  for (const data::Order& o : dataset.orders()) {
    if (o.day >= day_begin && o.day < day_end) invalid += !o.valid;
  }
  return invalid;
}

}  // namespace

ClosedLoopResult RunClosedLoop(const sim::CityConfig& city_config,
                               DispatchPolicy* policy,
                               const ClosedLoopConfig& config) {
  DEEPSD_CHECK(policy != nullptr);
  DEEPSD_CHECK(config.epoch_minutes > 0);
  DEEPSD_CHECK(!city_config.supply_boost);

  static obs::Histogram* weights_us =
      obs::MetricsRegistry::Global().GetHistogram("dispatch/policy_weights_us");
  static obs::Counter* decision_epochs =
      obs::MetricsRegistry::Global().GetCounter("dispatch/decision_epochs");
  DEEPSD_SPAN("dispatch/closed_loop");

  // 1. Baseline world.
  data::OrderDataset baseline = [&] {
    DEEPSD_SPAN("dispatch/baseline_sim");
    return sim::SimulateCity(city_config);
  }();

  // 2. Policy decisions on the baseline world, normalized per epoch to the
  // driver budget. Allocation table indexed by (day, epoch, area).
  const int num_areas = baseline.num_areas();
  const int epochs_per_day =
      (config.t_end - config.t_begin) / config.epoch_minutes + 1;
  std::vector<double> allocation(
      static_cast<size_t>(config.day_end - config.day_begin) *
          epochs_per_day * num_areas,
      0.0);
  for (int day = config.day_begin; day < config.day_end; ++day) {
    for (int e = 0; e < epochs_per_day; ++e) {
      int t = config.t_begin + e * config.epoch_minutes;
      decision_epochs->Inc();
      std::vector<double> w;
      {
        DEEPSD_SPAN("dispatch/policy_weights", weights_us);
        w = policy->Weights(baseline, day, t);
      }
      DEEPSD_CHECK(static_cast<int>(w.size()) == num_areas);
      double sum = 0;
      for (double v : w) {
        DEEPSD_CHECK_MSG(v >= 0.0, "policy weights must be non-negative");
        sum += v;
      }
      size_t base = (static_cast<size_t>(day - config.day_begin) *
                         epochs_per_day +
                     static_cast<size_t>(e)) *
                    num_areas;
      if (sum <= 0) continue;  // nothing to chase this epoch
      for (int a = 0; a < num_areas; ++a) {
        allocation[base + static_cast<size_t>(a)] =
            config.drivers_per_minute * w[static_cast<size_t>(a)] / sum;
      }
    }
  }

  // 3. Intervened world: same seed, extra capacity per the allocation.
  sim::CityConfig intervened_config = city_config;
  intervened_config.supply_boost = [&config, &allocation, epochs_per_day,
                                    num_areas](int area, int day, int minute) {
    if (day < config.day_begin || day >= config.day_end) return 0.0;
    if (minute < config.t_begin || minute > config.t_end) return 0.0;
    int e = (minute - config.t_begin) / config.epoch_minutes;
    if (e >= epochs_per_day) return 0.0;
    size_t idx = (static_cast<size_t>(day - config.day_begin) *
                      epochs_per_day +
                  static_cast<size_t>(e)) *
                     num_areas +
                 static_cast<size_t>(area);
    return allocation[idx];
  };
  data::OrderDataset intervened = [&] {
    DEEPSD_SPAN("dispatch/intervened_sim");
    return sim::SimulateCity(intervened_config);
  }();

  // 4. Score.
  ClosedLoopResult result;
  result.policy = policy->name();
  result.baseline_unserved =
      CountUnservedPassengers(baseline, config.day_begin, config.day_end);
  result.intervened_unserved =
      CountUnservedPassengers(intervened, config.day_begin, config.day_end);
  result.baseline_invalid_orders =
      CountInvalid(baseline, config.day_begin, config.day_end);
  result.intervened_invalid_orders =
      CountInvalid(intervened, config.day_begin, config.day_end);
  result.reduction_percent =
      result.baseline_unserved
          ? 100.0 *
                (static_cast<double>(result.baseline_unserved) -
                 static_cast<double>(result.intervened_unserved)) /
                static_cast<double>(result.baseline_unserved)
          : 0.0;
  return result;
}

}  // namespace dispatch
}  // namespace deepsd
