#include "src/core/batch.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepsd {
namespace core {
namespace {

feature::ModelInput MakeInput(int area, float seed) {
  feature::ModelInput in;
  in.area_id = area;
  in.time_id = 100 + area;
  in.week_id = area % 7;
  in.v_sd = {seed, seed + 1, seed + 2, seed + 3};
  in.weather_types = {area, area + 1};
  in.weather_reals = {seed, seed, seed, seed};
  in.v_tc = {seed, 0, 0, 0, 0, 0, 0, seed};
  in.target_gap = seed * 10;
  return in;
}

TEST(BatchTest, PacksRowsInIndexOrder) {
  std::vector<feature::ModelInput> inputs = {MakeInput(0, 1.0f),
                                             MakeInput(1, 2.0f),
                                             MakeInput(2, 3.0f)};
  VectorSource source(inputs);
  Batch batch = MakeBatch(source, {2, 0});
  ASSERT_EQ(batch.size, 2);
  EXPECT_EQ(batch.area_ids, (std::vector<int>{2, 0}));
  EXPECT_EQ(batch.time_ids, (std::vector<int>{102, 100}));
  EXPECT_FLOAT_EQ(batch.v_sd.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(batch.v_sd.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(batch.target.at(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(batch.target.at(1, 0), 10.0f);
  EXPECT_FALSE(batch.has_advanced);
}

TEST(BatchTest, WeatherTypesTransposedByLag) {
  std::vector<feature::ModelInput> inputs = {MakeInput(3, 1.0f),
                                             MakeInput(5, 2.0f)};
  Batch batch = MakeBatch(VectorSource(inputs), 0, 2);
  ASSERT_EQ(batch.weather_types_by_lag.size(), 2u);  // L = 2 lags
  EXPECT_EQ(batch.weather_types_by_lag[0], (std::vector<int>{3, 5}));
  EXPECT_EQ(batch.weather_types_by_lag[1], (std::vector<int>{4, 6}));
}

TEST(BatchTest, AdvancedFieldsDetected) {
  feature::ModelInput in = MakeInput(0, 1.0f);
  in.h_sd = {1, 2};
  in.h_sd10 = {3, 4};
  in.v_lc = {0, 0};
  in.h_lc = {0, 0};
  in.h_lc10 = {0, 0};
  in.v_wt = {0, 0};
  in.h_wt = {0, 0};
  in.h_wt10 = {5, 6};
  Batch batch = MakeBatch(VectorSource({in}), 0, 1);
  EXPECT_TRUE(batch.has_advanced);
  EXPECT_FLOAT_EQ(batch.h_sd.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(batch.h_wt10.at(0, 1), 6.0f);
}

TEST(BatchTest, RangeOverloadCoversAll) {
  std::vector<feature::ModelInput> inputs = {MakeInput(0, 1.0f),
                                             MakeInput(1, 2.0f),
                                             MakeInput(2, 3.0f)};
  Batch batch = MakeBatch(VectorSource(inputs), 1, 3);
  ASSERT_EQ(batch.size, 2);
  EXPECT_EQ(batch.area_ids[0], 1);
  EXPECT_EQ(batch.area_ids[1], 2);
}

TEST(SourceTest, AssemblerSourceLazyAssembly) {
  data::OrderDataset ds = deepsd::testing::MakeSmallCity(3, 5, 42);
  feature::FeatureConfig fc;
  fc.window = 4;
  feature::FeatureAssembler assembler(&ds, fc, 0, 4);
  auto items = data::MakeItems(ds, 4, 5, 600, 900, 100);
  AssemblerSource basic(&assembler, items, false);
  AssemblerSource advanced(&assembler, items, true);
  ASSERT_EQ(basic.size(), items.size());
  EXPECT_FLOAT_EQ(basic.Target(0), items[0].gap);
  EXPECT_TRUE(basic.Get(0).h_sd.empty());
  EXPECT_FALSE(advanced.Get(0).h_sd.empty());
  // Lazy source agrees with direct assembly.
  feature::ModelInput direct = assembler.AssembleBasic(items[1]);
  feature::ModelInput lazy = basic.Get(1);
  EXPECT_EQ(direct.v_sd, lazy.v_sd);
  EXPECT_EQ(direct.weather_types, lazy.weather_types);
}

}  // namespace
}  // namespace core
}  // namespace deepsd
