// Reproduces paper Fig 13 (effects of the environment part): Case A uses
// only the (extended) order part, Case B adds the weather block, Case C
// adds weather and traffic. Run for both Basic and Advanced DeepSD.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Fig 13: effects of environment data");

  std::vector<float> targets = exp.TestTargets();
  eval::TablePrinter table({"Model", "Case", "Blocks", "MAE", "RMSE"});

  struct CaseSpec {
    const char* label;
    const char* blocks;
    bool weather;
    bool traffic;
  };
  const CaseSpec cases[] = {
      {"A", "order only", false, false},
      {"B", "order + weather", true, false},
      {"C", "order + weather + traffic", true, true},
  };
  for (auto mode :
       {core::DeepSDModel::Mode::kBasic, core::DeepSDModel::Mode::kAdvanced}) {
    const char* model_name =
        mode == core::DeepSDModel::Mode::kBasic ? "Basic" : "Advanced";
    for (const CaseSpec& c : cases) {
      core::DeepSDConfig config = exp.ModelConfig();
      config.use_weather = c.weather;
      config.use_traffic = c.traffic;
      std::printf("training %s case %s...\n", model_name, c.label);
      auto trained = exp.TrainDeepSD(mode, config, /*seed=*/7);
      eval::Metrics m =
          eval::ComputeMetrics(trained.test_predictions, targets);
      table.AddRow({model_name, c.label, c.blocks,
                    util::StrFormat("%.2f", m.mae),
                    util::StrFormat("%.2f", m.rmse)});
    }
  }

  std::printf("\nFig 13. Effects of the environment part\n");
  table.Print();
  std::printf(
      "\nPaper shape to verify: error decreases A → B → C for both models. "
      "Note: the paper's own deltas here are small (a few percent); at the "
      "CPU-budget epoch counts of the smaller scales they can sit within "
      "seed noise — compare MAE across cases and prefer the full scale for "
      "this figure.\n");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
