#include "src/nn/graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/grad_check.h"

namespace deepsd {
namespace nn {
namespace {

Tensor RandomTensor(int rows, int cols, util::Rng* rng, double scale = 1.0) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) {
    v = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

// ---------- forward-value tests ----------

TEST(GraphForwardTest, MatMulAndBias) {
  Graph g;
  Tensor x(1, 2);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  Tensor w(2, 2);
  w.at(0, 0) = 1;
  w.at(0, 1) = 2;
  w.at(1, 0) = 3;
  w.at(1, 1) = 4;
  Tensor b(1, 2);
  b.at(0, 0) = 10;
  b.at(0, 1) = 20;
  NodeId y = g.AddBias(g.MatMul(g.Input(x), g.Input(w)), g.Input(b));
  EXPECT_FLOAT_EQ(g.value(y).at(0, 0), 17);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 1), 30);
}

TEST(GraphForwardTest, ConcatAndSlice) {
  Graph g;
  NodeId a = g.Input(Tensor::Row({1, 2}));
  NodeId b = g.Input(Tensor::Row({3}));
  NodeId c = g.Concat({a, b});
  ASSERT_EQ(g.value(c).cols(), 3);
  EXPECT_FLOAT_EQ(g.value(c).at(0, 2), 3);
  NodeId s = g.SliceCols(c, 1, 3);
  EXPECT_FLOAT_EQ(g.value(s).at(0, 0), 2);
  EXPECT_FLOAT_EQ(g.value(s).at(0, 1), 3);
}

TEST(GraphForwardTest, LeakyReluValues) {
  Graph g;
  NodeId y = g.LeakyRelu(g.Input(Tensor::Row({-2.0f, 0.0f, 3.0f})), 0.001f);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 0), -0.002f);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(g.value(y).at(0, 2), 3.0f);
}

TEST(GraphForwardTest, SoftmaxRowsSumToOne) {
  Graph g;
  util::Rng rng(3);
  NodeId y = g.Softmax(g.Input(RandomTensor(4, 7, &rng, 3.0)));
  const Tensor& v = g.value(y);
  for (int r = 0; r < v.rows(); ++r) {
    float sum = 0;
    for (int c = 0; c < v.cols(); ++c) {
      EXPECT_GT(v.at(r, c), 0.0f);
      sum += v.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(GraphForwardTest, SoftmaxStableForLargeInputs) {
  Graph g;
  NodeId y = g.Softmax(g.Input(Tensor::Row({1000.0f, 1001.0f})));
  EXPECT_FALSE(std::isnan(g.value(y).at(0, 0)));
  EXPECT_NEAR(g.value(y).at(0, 0) + g.value(y).at(0, 1), 1.0f, 1e-5);
}

TEST(GraphForwardTest, GroupWeightedSumValues) {
  Graph g;
  // p = [0.25, 0.75], h = [g0: (1,2), g1: (3,4)] → E = (2.5, 3.5).
  NodeId p = g.Input(Tensor::Row({0.25f, 0.75f}));
  NodeId h = g.Input(Tensor::Row({1, 2, 3, 4}));
  NodeId e = g.GroupWeightedSum(p, h, 2);
  EXPECT_FLOAT_EQ(g.value(e).at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(g.value(e).at(0, 1), 3.5f);
}

TEST(GraphForwardTest, DropoutIdentityInEval) {
  util::Rng rng(1);
  Graph g(&rng);
  g.set_training(false);
  NodeId x = g.Input(Tensor::Row({1, 2, 3}));
  NodeId y = g.Dropout(x, 0.5f);
  EXPECT_EQ(x, y);  // pass-through node
}

TEST(GraphForwardTest, DropoutZeroesAndRescales) {
  util::Rng rng(5);
  Graph g(&rng);
  g.set_training(true);
  Tensor big(1, 10000);
  big.Fill(1.0f);
  NodeId y = g.Dropout(g.Input(big), 0.5f);
  const Tensor& v = g.value(y);
  int zeros = 0;
  double sum = 0;
  for (float x : v.flat()) {
    EXPECT_TRUE(x == 0.0f || std::abs(x - 2.0f) < 1e-6);
    zeros += (x == 0.0f);
    sum += x;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.06);  // inverted dropout keeps E[x]
}

TEST(GraphForwardTest, LossValues) {
  Graph g;
  NodeId pred = g.Input(Tensor::Row({1.0f, 3.0f}));
  Tensor target = Tensor::Row({0.0f, 1.0f});
  // Row tensors: shape [1,2]; mean over 2 entries.
  EXPECT_FLOAT_EQ(g.value(g.MseLoss(pred, target)).at(0, 0), (1.0f + 4.0f) / 2);
  EXPECT_FLOAT_EQ(g.value(g.MaeLoss(pred, target)).at(0, 0), (1.0f + 2.0f) / 2);
}

TEST(GraphForwardTest, EmbedGathersRows) {
  ParameterStore store;
  util::Rng rng(7);
  Parameter* table = store.Create("t", 5, 3, Init::kEmbedding, &rng);
  Graph g;
  NodeId e = g.Embed(table, {4, 0, 4});
  EXPECT_EQ(g.value(e).rows(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(g.value(e).at(0, c), table->value.at(4, c));
    EXPECT_FLOAT_EQ(g.value(e).at(1, c), table->value.at(0, c));
    EXPECT_FLOAT_EQ(g.value(e).at(2, c), table->value.at(4, c));
  }
}

// ---------- gradient checks (property-style, per op) ----------

// Each case builds a scalar loss from a single parameter through one op and
// verifies analytic vs numeric gradients.
using LossBuilder = double (*)(ParameterStore*, util::Rng*);

struct OpCase {
  const char* name;
  LossBuilder build;
};

double MatMulLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* w = store->Find("w");
  if (!w) w = store->Create("w", 4, 3, Init::kGlorotUniform, rng);
  Graph g;
  util::Rng data_rng(11);
  Tensor x = RandomTensor(5, 4, &data_rng);
  Tensor target(5, 3);
  NodeId loss = g.MseLoss(g.MatMul(g.Input(x), g.Param(w)), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double BiasLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* b = store->Find("b");
  if (!b) b = store->Create("b", 1, 4, Init::kGlorotUniform, rng);
  Graph g;
  util::Rng data_rng(13);
  Tensor x = RandomTensor(3, 4, &data_rng);
  Tensor target(3, 4);
  NodeId loss = g.MseLoss(g.AddBias(g.Input(x), g.Param(b)), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double LeakyReluLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* w = store->Find("w");
  if (!w) w = store->Create("w", 1, 6, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(1, 6);
  target.Fill(0.3f);
  NodeId loss = g.MseLoss(g.LeakyRelu(g.Param(w), 0.001f), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double SoftmaxLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* w = store->Find("w");
  if (!w) w = store->Create("w", 2, 5, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(2, 5);
  target.Fill(0.2f);
  NodeId loss = g.MseLoss(g.Softmax(g.Param(w)), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double ConcatSliceLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* a = store->Find("a");
  Parameter* b = store->Find("b");
  if (!a) a = store->Create("a", 2, 3, Init::kGlorotUniform, rng);
  if (!b) b = store->Create("b", 2, 2, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(2, 4);
  NodeId cat = g.Concat({g.Param(a), g.Param(b)});
  NodeId sliced = g.SliceCols(cat, 1, 5);
  NodeId loss = g.MseLoss(sliced, target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double ArithmeticLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* a = store->Find("a");
  Parameter* b = store->Find("b");
  if (!a) a = store->Create("a", 2, 3, Init::kGlorotUniform, rng);
  if (!b) b = store->Create("b", 2, 3, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(2, 3);
  NodeId expr = g.Scale(
      g.Mul(g.Add(g.Param(a), g.Param(b)), g.Sub(g.Param(a), g.Param(b))),
      0.7f);
  NodeId loss = g.MseLoss(expr, target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double EmbedLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* table = store->Find("t");
  if (!table) table = store->Create("t", 6, 4, Init::kEmbedding, rng);
  Graph g;
  Tensor target(3, 4);
  target.Fill(0.1f);
  NodeId e = g.Embed(table, {2, 5, 2});  // repeated id → grad accumulation
  NodeId loss = g.MseLoss(e, target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double GroupWeightedSumLoss(ParameterStore* store, util::Rng* rng) {
  Parameter* p = store->Find("p");
  Parameter* h = store->Find("h");
  if (!p) p = store->Create("p", 3, 4, Init::kGlorotUniform, rng);
  if (!h) h = store->Create("h", 3, 8, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(3, 2);
  NodeId loss = g.MseLoss(g.GroupWeightedSum(g.Param(p), g.Param(h), 4), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

double MaeHead(ParameterStore* store, util::Rng* rng) {
  Parameter* w = store->Find("w");
  if (!w) w = store->Create("w", 1, 5, Init::kGlorotUniform, rng);
  Graph g;
  Tensor target(1, 5);
  target.Fill(10.0f);  // keep pred − target far from the kink at 0
  NodeId loss = g.MaeLoss(g.Param(w), target);
  g.Backward(loss);
  return g.value(loss).at(0, 0);
}

class OpGradientTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradientTest, AnalyticMatchesNumeric) {
  ParameterStore store;
  util::Rng rng(2025);
  const OpCase& op = GetParam();
  auto loss_fn = [&]() { return op.build(&store, &rng); };
  loss_fn();  // create parameters
  GradCheckResult result = CheckGradients(&store, loss_fn, 1e-2, 12);
  EXPECT_GT(result.checked, 0u);
  EXPECT_LT(result.max_rel_error, 5e-2)
      << op.name << " worst param: " << result.worst_param
      << " abs err: " << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradientTest,
    ::testing::Values(OpCase{"matmul", &MatMulLoss},
                      OpCase{"bias", &BiasLoss},
                      OpCase{"leaky_relu", &LeakyReluLoss},
                      OpCase{"softmax", &SoftmaxLoss},
                      OpCase{"concat_slice", &ConcatSliceLoss},
                      OpCase{"arithmetic", &ArithmeticLoss},
                      OpCase{"embed", &EmbedLoss},
                      OpCase{"group_weighted_sum", &GroupWeightedSumLoss},
                      OpCase{"mae", &MaeHead}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(GraphBackwardTest, GradAccumulatesAcrossUses) {
  // y = w + w → dy/dw = 2.
  ParameterStore store;
  util::Rng rng(1);
  Parameter* w = store.Create("w", 1, 1, Init::kGlorotUniform, &rng);
  w->value.at(0, 0) = 1.5f;
  Graph g;
  NodeId n = g.Param(w);
  Tensor target(1, 1);
  NodeId loss = g.MseLoss(g.Add(n, n), target);
  store.ZeroGrads();
  g.Backward(loss);
  // loss = (2w)² → d/dw = 8w = 12.
  EXPECT_NEAR(w->grad.at(0, 0), 12.0f, 1e-4);
}

}  // namespace
}  // namespace nn
}  // namespace deepsd
