#include "src/baselines/tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/util/rng.h"

namespace deepsd {
namespace baselines {
namespace {

FeatureMatrix MakeMatrix(int rows, int cols,
                         const std::function<float(int, int)>& f) {
  FeatureMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.values.resize(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.values[static_cast<size_t>(r) * cols + c] = f(r, c);
    }
  }
  return m;
}

std::vector<int> AllRows(int n) {
  std::vector<int> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(BinnedMatrixTest, QuantizeIsConsistentWithCodes) {
  util::Rng rng(1);
  FeatureMatrix X = MakeMatrix(500, 3, [&](int, int) {
    return static_cast<float>(rng.Uniform(-10, 10));
  });
  BinnedMatrix binned(X, 32);
  for (int r = 0; r < X.rows; r += 17) {
    for (int c = 0; c < X.cols; ++c) {
      EXPECT_EQ(binned.code(r, c), binned.Quantize(c, X.at(r, c)));
    }
  }
}

TEST(BinnedMatrixTest, FewDistinctValuesGetExactBins) {
  FeatureMatrix X = MakeMatrix(100, 1, [&](int r, int) {
    return static_cast<float>(r % 3);  // values 0, 1, 2
  });
  BinnedMatrix binned(X, 64);
  EXPECT_EQ(binned.num_bins(0), 3);
  EXPECT_EQ(binned.Quantize(0, 0.0f), 0);
  EXPECT_EQ(binned.Quantize(0, 1.0f), 1);
  EXPECT_EQ(binned.Quantize(0, 2.0f), 2);
  // Threshold semantics: value <= BinEdge(0) ⇔ code 0.
  EXPECT_FLOAT_EQ(binned.BinEdge(0, 0), 0.0f);
}

TEST(BinnedMatrixTest, RespectsMaxBins) {
  util::Rng rng(2);
  FeatureMatrix X = MakeMatrix(5000, 1, [&](int, int) {
    return static_cast<float>(rng.Normal());
  });
  BinnedMatrix binned(X, 16);
  EXPECT_LE(binned.num_bins(0), 16);
  EXPECT_GE(binned.num_bins(0), 8);
}

TEST(TreeTest, FitsPiecewiseConstantExactly) {
  // y = 5 if x < 0 else -2: one split suffices.
  util::Rng rng(3);
  FeatureMatrix X = MakeMatrix(400, 1, [&](int, int) {
    return static_cast<float>(rng.Uniform(-1, 1));
  });
  std::vector<float> y(400);
  for (int r = 0; r < 400; ++r) {
    y[static_cast<size_t>(r)] = X.at(r, 0) < 0 ? 5.0f : -2.0f;
  }
  BinnedMatrix binned(X, 64);
  RegressionTree tree({.max_depth = 3, .min_samples_leaf = 5});
  tree.Fit(binned, y, AllRows(400), &rng);
  for (int r = 0; r < 400; r += 13) {
    EXPECT_NEAR(tree.PredictRow(binned, r), y[static_cast<size_t>(r)], 0.2);
    EXPECT_NEAR(tree.PredictRaw(binned, X.row(r)), y[static_cast<size_t>(r)],
                0.2);
  }
}

TEST(TreeTest, DepthZeroIsMeanPredictor) {
  util::Rng rng(4);
  FeatureMatrix X = MakeMatrix(100, 2, [&](int, int) {
    return static_cast<float>(rng.Uniform(-1, 1));
  });
  std::vector<float> y(100);
  double mean = 0;
  for (int r = 0; r < 100; ++r) {
    y[static_cast<size_t>(r)] = static_cast<float>(r);
    mean += r;
  }
  mean /= 100;
  BinnedMatrix binned(X, 32);
  RegressionTree tree({.max_depth = 0});
  tree.Fit(binned, y, AllRows(100), &rng);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_NEAR(tree.PredictRow(binned, 0), mean, 1e-3);
}

TEST(TreeTest, RespectsMinSamplesLeaf) {
  util::Rng rng(5);
  FeatureMatrix X = MakeMatrix(60, 1, [&](int r, int) {
    return static_cast<float>(r);
  });
  std::vector<float> y(60);
  for (int r = 0; r < 60; ++r) y[static_cast<size_t>(r)] = static_cast<float>(r);
  BinnedMatrix binned(X, 64);
  RegressionTree tree({.max_depth = 20, .min_samples_leaf = 25});
  tree.Fit(binned, y, AllRows(60), &rng);
  // With 60 rows and min-leaf 25, only the root split is possible.
  EXPECT_LE(tree.num_nodes(), 3);
}

TEST(TreeTest, DeeperTreesFitBetter) {
  util::Rng rng(6);
  FeatureMatrix X = MakeMatrix(800, 2, [&](int, int) {
    return static_cast<float>(rng.Uniform(-3, 3));
  });
  std::vector<float> y(800);
  for (int r = 0; r < 800; ++r) {
    y[static_cast<size_t>(r)] =
        std::sin(X.at(r, 0)) * 2 + std::cos(X.at(r, 1));
  }
  BinnedMatrix binned(X, 64);
  auto mse_at_depth = [&](int depth) {
    util::Rng tree_rng(7);
    RegressionTree tree({.max_depth = depth, .min_samples_leaf = 5});
    tree.Fit(binned, y, AllRows(800), &tree_rng);
    double mse = 0;
    for (int r = 0; r < 800; ++r) {
      double d = tree.PredictRow(binned, r) - y[static_cast<size_t>(r)];
      mse += d * d;
    }
    return mse / 800;
  };
  double d1 = mse_at_depth(1), d3 = mse_at_depth(3), d7 = mse_at_depth(7);
  EXPECT_LT(d3, d1);
  EXPECT_LT(d7, d3);
}

TEST(TreeTest, PredictRawAgreesWithPredictRow) {
  util::Rng rng(8);
  FeatureMatrix X = MakeMatrix(300, 4, [&](int, int) {
    return static_cast<float>(rng.Normal());
  });
  std::vector<float> y(300);
  for (int r = 0; r < 300; ++r) {
    y[static_cast<size_t>(r)] = X.at(r, 0) * X.at(r, 1);
  }
  BinnedMatrix binned(X, 64);
  RegressionTree tree({.max_depth = 6, .min_samples_leaf = 5});
  tree.Fit(binned, y, AllRows(300), &rng);
  for (int r = 0; r < 300; r += 11) {
    EXPECT_FLOAT_EQ(tree.PredictRow(binned, r),
                    tree.PredictRaw(binned, X.row(r)));
  }
}

}  // namespace
}  // namespace baselines
}  // namespace deepsd
