#include "store/model_store.h"

#include <cstring>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace store {

namespace {

util::Status Corrupt(const std::string& path, const std::string& what) {
  return util::Status::InvalidArgument("model store " + path + ": " + what);
}

}  // namespace

util::Status ModelStore::Open(const std::string& path,
                              std::shared_ptr<const ModelStore>* out) {
  // make_shared needs a public ctor; the store is immutable after Open so
  // handing out shared_ptr<const> keeps the read-only contract.
  std::shared_ptr<ModelStore> store(new ModelStore());
  store->path_ = path;
  DEEPSD_RETURN_IF_ERROR(store->map_.Open(path));
  DEEPSD_RETURN_IF_ERROR(store->Validate());
  *out = std::move(store);
  return util::Status::OK();
}

ModelStore::~ModelStore() {
  const int64_t pins = pins_.load(std::memory_order_acquire);
  DEEPSD_CHECK_MSG(pins == 0,
                   "unmapping a model store with outstanding read pins — a "
                   "reader could dereference unmapped memory");
}

util::Status ModelStore::Validate() {
  if (map_.size() < sizeof(FileHeader)) {
    return util::Status::IoError(
        util::StrFormat("model store %s: truncated (%zu bytes, header needs "
                        "%zu)",
                        path_.c_str(), map_.size(), sizeof(FileHeader)));
  }
  std::memcpy(&header_, map_.data(), sizeof(FileHeader));
  if (std::memcmp(header_.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path_, "bad magic (not a DSAR1 artifact)");
  }
  if (util::Crc32(&header_, kHeaderCrcBytes) != header_.header_crc) {
    return Corrupt(path_, "header CRC mismatch");
  }
  if (header_.min_reader > kFormatVersion) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "model store %s: written for reader version >= %u but this reader "
        "is version %u — upgrade the binary to open this artifact",
        path_.c_str(), header_.min_reader, kFormatVersion));
  }
  if (header_.page_size == 0 ||
      (header_.page_size & (header_.page_size - 1)) != 0) {
    return Corrupt(path_, "page_size is not a power of two");
  }
  if (header_.file_size != map_.size()) {
    return util::Status::IoError(util::StrFormat(
        "model store %s: truncated (header says %llu bytes, file has %zu)",
        path_.c_str(),
        static_cast<unsigned long long>(header_.file_size), map_.size()));
  }
  if (header_.toc_bytes !=
      static_cast<uint64_t>(header_.section_count) * sizeof(SectionEntry)) {
    return Corrupt(path_, "TOC size disagrees with section count");
  }
  if (header_.toc_offset < sizeof(FileHeader) ||
      header_.toc_offset > map_.size() ||
      header_.toc_bytes > map_.size() - header_.toc_offset) {
    return Corrupt(path_, "TOC out of bounds");
  }
  const char* toc_bytes = map_.data() + header_.toc_offset;
  if (util::Crc32(toc_bytes, header_.toc_bytes) != header_.toc_crc) {
    return Corrupt(path_, "TOC CRC mismatch");
  }
  toc_.resize(header_.section_count);
  if (header_.toc_bytes > 0) {
    std::memcpy(toc_.data(), toc_bytes, header_.toc_bytes);
  }
  for (size_t i = 0; i < toc_.size(); ++i) {
    const SectionEntry& e = toc_[i];
    // The TOC CRC passed, so these only fire on a writer bug — but the
    // reader still refuses rather than trusting offsets into the void.
    if (e.offset % header_.page_size != 0) {
      return Corrupt(path_, "section " + SectionKindToString(e.kind) +
                                " is not page-aligned");
    }
    if (e.offset > map_.size() || e.length > map_.size() - e.offset) {
      return Corrupt(path_, "section " + SectionKindToString(e.kind) +
                                " extends past end of file");
    }
  }
  verified_ = std::vector<std::atomic<uint8_t>>(toc_.size());
  for (auto& v : verified_) v.store(0, std::memory_order_relaxed);
  return util::Status::OK();
}

int ModelStore::FindSection(const std::string& kind) const {
  for (size_t i = 0; i < toc_.size(); ++i) {
    if (SectionKindToString(toc_[i].kind) == kind) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

util::Status ModelStore::Section(const std::string& kind, const char** data,
                                 size_t* size) const {
  const int index = FindSection(kind);
  if (index < 0) {
    return util::Status::NotFound("model store " + path_ +
                                  ": no section of kind '" + kind + "'");
  }
  return SectionAt(static_cast<size_t>(index), data, size);
}

util::Status ModelStore::SectionAt(size_t index, const char** data,
                                   size_t* size) const {
  DEEPSD_CHECK(index < toc_.size());
  const SectionEntry& e = toc_[index];
  uint8_t state = verified_[index].load(std::memory_order_acquire);
  if (state == 0) {
    std::lock_guard<std::mutex> lock(verify_mu_);
    state = verified_[index].load(std::memory_order_relaxed);
    if (state == 0) {
      const uint32_t crc = util::Crc32(map_.data() + e.offset, e.length);
      state = crc == e.crc ? 1 : 2;
      verified_[index].store(state, std::memory_order_release);
    }
  }
  if (state != 1) {
    return Corrupt(path_, "section " + SectionKindToString(e.kind) +
                              " CRC mismatch (corrupt payload)");
  }
  *data = map_.data() + e.offset;
  *size = e.length;
  return util::Status::OK();
}

util::Status ModelStore::VerifyAll() const {
  for (size_t i = 0; i < toc_.size(); ++i) {
    const char* data = nullptr;
    size_t size = 0;
    DEEPSD_RETURN_IF_ERROR(SectionAt(i, &data, &size));
  }
  return util::Status::OK();
}

}  // namespace store
}  // namespace deepsd
