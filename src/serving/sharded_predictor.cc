#include "serving/sharded_predictor.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace serving {

ShardedPredictor::ShardedPredictor(const core::DeepSDModel* model,
                                   const feature::FeatureAssembler* history,
                                   ShardedPredictorConfig config)
    : config_(std::move(config)),
      ring_(config_.ring),
      num_areas_(history->dataset().num_areas()) {
  DEEPSD_CHECK_MSG(model != nullptr, "ShardedPredictor needs a model");
  DEEPSD_CHECK_MSG(history != nullptr, "ShardedPredictor needs history");
  BuildShards([&](int) {
    return std::make_unique<OnlinePredictor>(model, history,
                                             config_.fallback);
  });
}

ShardedPredictor::ShardedPredictor(store::VersionedModel* versions,
                                   const feature::FeatureAssembler* history,
                                   ShardedPredictorConfig config)
    : config_(std::move(config)),
      ring_(config_.ring),
      num_areas_(history->dataset().num_areas()),
      versions_(versions) {
  DEEPSD_CHECK_MSG(versions_ != nullptr,
                   "versioned ShardedPredictor needs a VersionedModel");
  DEEPSD_CHECK_MSG(history != nullptr, "ShardedPredictor needs history");
  BuildShards([&](int) {
    return std::make_unique<OnlinePredictor>(versions_, history,
                                             config_.fallback);
  });
}

void ShardedPredictor::BuildShards(
    const std::function<std::unique_ptr<OnlinePredictor>(int)>&
        make_predictor) {
  const int n = ring_.num_shards();
  shards_.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    shard.predictor = make_predictor(s);
    ServingQueueConfig qc = config_.queue;
    qc.metric_prefix = util::StrFormat("serving/shard%d", s);
    if (config_.per_shard_breakers) {
      util::CircuitBreaker::Config bc = config_.breaker;
      bc.name = qc.metric_prefix + "/breaker";
      shard.breaker = std::make_unique<util::CircuitBreaker>(bc);
      qc.breaker = shard.breaker.get();
    }
    shard.queue = std::make_unique<ServingQueue>(shard.predictor.get(), qc);
  }
}

ShardedPredictor::~ShardedPredictor() = default;

OnlinePredictor& ShardedPredictor::shard_predictor(int shard) {
  return *shards_.at(static_cast<size_t>(shard)).predictor;
}

const OnlinePredictor& ShardedPredictor::shard_predictor(int shard) const {
  return *shards_.at(static_cast<size_t>(shard)).predictor;
}

ServingQueue& ShardedPredictor::shard_queue(int shard) {
  return *shards_.at(static_cast<size_t>(shard)).queue;
}

void ShardedPredictor::set_baseline(
    const baselines::GapBaseline* baseline) {
  for (Shard& shard : shards_) shard.predictor->set_baseline(baseline);
}

util::Status ShardedPredictor::SwapModel(
    std::shared_ptr<const store::ModelVersion> version) {
  if (versions_ == nullptr) {
    return util::Status::FailedPrecondition(
        "sharded predictor serves a static model; build it over a "
        "store::VersionedModel to enable hot swap");
  }
  // One Publish flips the version for every shard at once — the replicas
  // all read the same VersionedModel, so there is no per-shard rollout
  // window in which different shards would serve different versions to
  // newly arriving calls. (In-flight calls still finish on their pin.)
  return versions_->Publish(std::move(version));
}

util::Status ShardedPredictor::RollbackModel(
    std::shared_ptr<const store::ModelVersion> version) {
  static obs::Counter* rollbacks =
      obs::MetricsRegistry::Global().GetCounter("serving/model_rollbacks");
  DEEPSD_RETURN_IF_ERROR(SwapModel(std::move(version)));
  rollbacks->Inc();
  return util::Status::OK();
}

void ShardedPredictor::AddOrder(const data::Order& order) {
  // A malformed area can hash anywhere on the ring; route it to shard 0 so
  // exactly one buffer rejects (and counts) it, and never advance the
  // citywide freshness clock from garbage.
  const bool valid_area =
      order.start_area >= 0 && order.start_area < num_areas_;
  const int owner = valid_area ? ring_.ShardOf(order.start_area) : 0;
  const int n = ring_.num_shards();
  for (int s = 0; s < n; ++s) {
    OrderStreamBuffer& buffer =
        shards_[static_cast<size_t>(s)].predictor->buffer();
    if (s == owner) {
      buffer.AddOrder(order);
    } else if (valid_area) {
      buffer.NoteOrderSeen(order.day, order.ts);
    }
  }
}

void ShardedPredictor::AddWeather(const data::WeatherRecord& record) {
  for (Shard& shard : shards_) shard.predictor->buffer().AddWeather(record);
}

void ShardedPredictor::AddTraffic(const data::TrafficRecord& record) {
  const bool valid_area = record.area >= 0 && record.area < num_areas_;
  const int owner = valid_area ? ring_.ShardOf(record.area) : 0;
  shards_[static_cast<size_t>(owner)].predictor->buffer().AddTraffic(record);
}

void ShardedPredictor::AdvanceTo(int day, int minute) {
  for (Shard& shard : shards_) shard.predictor->AdvanceTo(day, minute);
}

util::Deadline ShardedPredictor::ShardBudget(int shard,
                                             util::Deadline caller) const {
  if (config_.shard_budget_fn) return config_.shard_budget_fn(shard, caller);
  if (caller.infinite() || config_.merge_slack_us <= 0) return caller;
  return util::Deadline::AtSteadyUs(caller.deadline_us() -
                                    config_.merge_slack_us);
}

CityPredictResult ShardedPredictor::PredictCity(
    const std::vector<int>& area_ids, util::Deadline deadline) {
  CityPredictResult city;
  city.gaps.resize(area_ids.size(), 0.0f);
  if (area_ids.empty()) return city;

  // Pin ONE version for the whole call, before the scatter, and hold the
  // Ref across the gather: every shard slice — admitted, shed, or expired
  // — resolves against this exact version, so a SwapModel racing this
  // call can never produce a version-torn city answer, and the pinned
  // mapping cannot be reclaimed while any slice still reads it.
  store::VersionedModel::Ref pin;
  store::PinnedModel pinned;
  if (versions_ != nullptr) {
    pin = versions_->Acquire();
    pinned = pin.pinned();
    city.model_sequence = pinned.sequence;
  }

  const int n = ring_.num_shards();
  // Scatter: partition the request by the ring, remembering where each
  // area sits in the caller's order so the gather can write answers back
  // in place. Order is preserved within a shard, which is what makes the
  // 1-shard path literally the legacy PredictBatch call.
  std::vector<std::vector<int>> parts(static_cast<size_t>(n));
  std::vector<std::vector<size_t>> positions(static_cast<size_t>(n));
  for (size_t i = 0; i < area_ids.size(); ++i) {
    const size_t s = static_cast<size_t>(ring_.ShardOf(area_ids[i]));
    parts[s].push_back(area_ids[i]);
    positions[s].push_back(i);
  }

  // Fan out. Each shard queue resolves its future on its own worker (the
  // prediction itself fans out on the shared ThreadPool), so the slices
  // run concurrently and this caller pays max(shard latency), not the sum.
  std::vector<std::future<ServingResponse>> futures(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (parts[static_cast<size_t>(s)].empty()) continue;
    futures[static_cast<size_t>(s)] =
        shards_[static_cast<size_t>(s)].queue->Submit(
            parts[static_cast<size_t>(s)], ShardBudget(s, deadline), pinned);
  }

  // Gather + merge: worst tier wins, and only the shards that missed
  // degrade — a shed or expired shard's slice answers from its replica's
  // cheap path while healthy siblings' slices stay fresh.
  for (int s = 0; s < n; ++s) {
    const size_t si = static_cast<size_t>(s);
    if (parts[si].empty()) continue;
    ServingResponse response = futures[si].get();

    ShardOutcome outcome;
    outcome.shard = s;
    outcome.num_areas = parts[si].size();
    outcome.verdict = response.verdict;
    outcome.queue_wait_us = response.queue_wait_us;
    outcome.total_us = response.total_us;

    std::vector<float> slice;
    if (response.admitted()) {
      slice = std::move(response.result.gaps);
      outcome.tier = response.result.tier;
      outcome.deadline_expired = response.deadline_missed;
      outcome.model_sequence = response.result.model_sequence;
    } else {
      slice = shards_[si].predictor->CheapGaps(parts[si], pinned);
      outcome.tier = FallbackTier::kBaseline;
      outcome.model_sequence = pinned.sequence;
      city.fully_served = false;
    }
    DEEPSD_CHECK_MSG(slice.size() == parts[si].size(),
                     "shard answered the wrong number of areas");
    for (size_t j = 0; j < slice.size(); ++j) {
      city.gaps[positions[si][j]] = slice[j];
    }
    city.tier = std::max(city.tier, outcome.tier);
    city.deadline_expired |= outcome.deadline_expired;
    city.shards.push_back(outcome);
  }
  return city;
}

CityPredictResult ShardedPredictor::PredictCityAll() {
  std::vector<int> all(static_cast<size_t>(num_areas_));
  std::iota(all.begin(), all.end(), 0);
  return PredictCity(all, util::Deadline::Infinite());
}

void ShardedPredictor::Drain() {
  for (Shard& shard : shards_) shard.queue->Drain();
}

ShardedStats ShardedPredictor::stats() const {
  ShardedStats stats;
  stats.per_shard.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    stats.per_shard.push_back(shard.queue->stats());
  }
  return stats;
}

}  // namespace serving
}  // namespace deepsd
