// deepsd_predict: load a dataset + trained parameters and predict gaps.
//
//   deepsd_predict --data=city.bin --model=model.bin --mode=advanced
//                  --ref_days=24 --day=30 [--area=all] [--t=all] [--csv=out.csv]

#include <cstdio>

#include "core/explain.h"
#include "core/trainer.h"
#include "data/serialize.h"
#include "eval/metrics.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/csv.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace deepsd;
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown({"data", "model", "mode", "ref_days", "day",
                                    "area", "t", "csv", "no_weather",
                                    "no_traffic", "explain", "threads",
                                    "help"});
  if (!st.ok() || cli.GetBool("help", false) || !cli.Has("data") ||
      !cli.Has("model")) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_predict --data=city.bin --model=model.bin "
                 "--mode=basic|advanced --ref_days=N --day=D [--area=A] "
                 "[--t=minute] [--csv=out.csv] [--no_weather] [--no_traffic] "
                 "[--threads=N]\n",
                 st.ToString().c_str());
    return 2;
  }

  // 0 = hardware concurrency; predictions are bit-identical for any value.
  st = util::ThreadPool::SetGlobalThreads(
      static_cast<int>(cli.GetInt("threads", 0)));
  if (!st.ok()) {
    std::fprintf(stderr, "--threads: %s\n", st.ToString().c_str());
    return 1;
  }

  data::OrderDataset dataset;
  st = data::LoadDataset(cli.GetString("data"), &dataset);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  int ref_days = static_cast<int>(
      cli.GetInt("ref_days", dataset.num_days() * 2 / 3));
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, ref_days);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = !cli.GetBool("no_weather", false) && dataset.has_weather();
  config.use_traffic = !cli.GetBool("no_traffic", false) && dataset.has_traffic();
  bool advanced = cli.GetString("mode", "advanced") == "advanced";
  nn::ParameterStore params;
  util::Rng rng(1);
  core::DeepSDModel model(config,
                          advanced ? core::DeepSDModel::Mode::kAdvanced
                                   : core::DeepSDModel::Mode::kBasic,
                          &params, &rng);
  int loaded = 0;
  st = params.Load(cli.GetString("model"), &loaded);
  if (!st.ok() || loaded == 0) {
    std::fprintf(stderr, "model load failed (%d tensors): %s\n", loaded,
                 st.ToString().c_str());
    return 1;
  }

  int day = static_cast<int>(cli.GetInt("day", dataset.num_days() - 1));
  std::vector<data::PredictionItem> items;
  auto add_items = [&](int area) {
    if (cli.Has("t") && cli.GetString("t") != "all") {
      data::PredictionItem item;
      item.area = area;
      item.day = day;
      item.t = static_cast<int>(cli.GetInt("t", 450));
      item.week_id = dataset.WeekId(day);
      item.gap = static_cast<float>(dataset.Gap(area, day, item.t));
      items.push_back(item);
      return;
    }
    for (int t = 450; t <= 1410; t += 30) {
      data::PredictionItem item;
      item.area = area;
      item.day = day;
      item.t = t;
      item.week_id = dataset.WeekId(day);
      item.gap = static_cast<float>(dataset.Gap(area, day, t));
      items.push_back(item);
    }
  };
  if (cli.Has("area") && cli.GetString("area") != "all") {
    add_items(static_cast<int>(cli.GetInt("area", 0)));
  } else {
    for (int a = 0; a < dataset.num_areas(); ++a) add_items(a);
  }

  core::AssemblerSource source(&assembler, items, advanced);
  std::vector<float> preds = model.Predict(source);

  std::vector<float> targets;
  for (const auto& item : items) targets.push_back(item.gap);
  eval::Metrics m = eval::ComputeMetrics(preds, targets);
  std::printf("%zu predictions on day %d: MAE=%.3f RMSE=%.3f\n", items.size(),
              day, m.mae, m.rmse);

  if (cli.GetBool("explain", false) && !items.empty()) {
    // Sensitivity profile of the first requested prediction: which signals
    // and lags drive the forecast.
    feature::ModelInput input =
        advanced ? assembler.AssembleAdvanced(items[0])
                 : assembler.AssembleBasic(items[0]);
    auto sens = core::ExplainPrediction(model, input);
    std::printf("\nsignal importance for area %d at %s (day %d):\n",
                items[0].area, util::MinuteToClock(items[0].t).c_str(),
                items[0].day);
    for (const auto& [group, share] : core::GroupImportance(sens)) {
      std::printf("  %-12s %5.1f%%  %s\n", group.c_str(), 100.0 * share,
                  std::string(static_cast<size_t>(50 * share), '#').c_str());
    }
    std::printf("strongest single lags:\n");
    std::sort(sens.begin(), sens.end(),
              [](const core::FeatureSensitivity& a,
                 const core::FeatureSensitivity& b) {
                return std::abs(a.gradient) > std::abs(b.gradient);
              });
    for (size_t i = 0; i < sens.size() && i < 8; ++i) {
      std::printf("  %-12s lag %-2d  %+0.3f gap per unit\n",
                  sens[i].group.c_str(), sens[i].lag, sens[i].gradient);
    }
  }

  if (cli.Has("csv")) {
    util::CsvWriter csv(cli.GetString("csv"));
    csv.WriteRow(std::vector<std::string>{"area", "day", "t", "true_gap",
                                          "predicted_gap"});
    for (size_t i = 0; i < items.size(); ++i) {
      csv.WriteRow(std::vector<double>{
          static_cast<double>(items[i].area), static_cast<double>(items[i].day),
          static_cast<double>(items[i].t), items[i].gap, preds[i]});
    }
    csv.Close();
    std::printf("wrote %s\n", cli.GetString("csv").c_str());
  } else {
    for (size_t i = 0; i < items.size() && i < 40; ++i) {
      std::printf("area %-3d %s  true %6.1f  pred %6.1f\n", items[i].area,
                  util::MinuteToClock(items[i].t).c_str(), items[i].gap,
                  preds[i]);
    }
    if (items.size() > 40) std::printf("... (%zu total)\n", items.size());
  }
  return 0;
}
