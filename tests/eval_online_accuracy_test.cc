#include "src/eval/online_accuracy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/drift.h"
#include "src/feature/feature_assembler.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/serving/online_predictor.h"
#include "src/util/deadline.h"
#include "tests/test_util.h"

namespace deepsd {
namespace eval {
namespace {

class OnlineAccuracyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::Enabled();
    obs::SetEnabled(true);
  }
  void TearDown() override { obs::SetEnabled(was_enabled_); }

  /// Feeds a prediction for one area directly through the observer tap.
  void Predict(OnlineAccuracyTracker* tracker, int area, int64_t now_abs,
               float gap, serving::FallbackTier tier) {
    serving::PredictResult result;
    result.gaps = {gap};
    result.tier = tier;
    tracker->OnPrediction({area}, result, {}, now_abs);
  }

  /// One invalid (= gap-contributing) order through the stream tap.
  void InvalidOrder(OnlineAccuracyTracker* tracker, int area, int64_t ts_abs) {
    data::Order o;
    o.day = static_cast<int>(ts_abs / data::kMinutesPerDay);
    o.ts = static_cast<int>(ts_abs % data::kMinutesPerDay);
    o.start_area = area;
    o.valid = false;
    tracker->OnOrderAccepted(o, ts_abs);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(OnlineAccuracyTest, JoinsPredictionAgainstSlotTruth) {
  OnlineAccuracyConfig config;
  config.num_areas = 2;
  OnlineAccuracyTracker tracker(config);

  // Predict gap 3 for area 0's slot [1000, 1010); truth turns out to be 2
  // (one invalid order in the slot lands outside it and must not count).
  Predict(&tracker, 0, 1000, 3.0f, serving::FallbackTier::kNone);
  InvalidOrder(&tracker, 0, 1000);
  InvalidOrder(&tracker, 0, 1009);
  InvalidOrder(&tracker, 0, 1010);  // next slot
  InvalidOrder(&tracker, 1, 1005);  // other area
  EXPECT_EQ(tracker.pending(), 1u);
  EXPECT_EQ(tracker.joined(), 0u);

  tracker.OnClockAdvance(1009);  // slot not closed yet
  EXPECT_EQ(tracker.joined(), 0u);
  tracker.OnClockAdvance(1010);
  EXPECT_EQ(tracker.joined(), 1u);
  EXPECT_EQ(tracker.pending(), 0u);

  TierAccuracy overall = tracker.Overall();
  EXPECT_EQ(overall.count, 1u);
  EXPECT_DOUBLE_EQ(overall.mae, 1.0);   // |3 - 2|
  EXPECT_DOUBLE_EQ(overall.rmse, 1.0);
  EXPECT_DOUBLE_EQ(overall.er, 0.5);    // 1 / 2

  // Valid orders carry no gap signal.
  data::Order valid;
  valid.start_area = 0;
  valid.valid = true;
  Predict(&tracker, 0, 1010, 1.0f, serving::FallbackTier::kNone);
  tracker.OnOrderAccepted(valid, 1015);
  tracker.OnClockAdvance(1020);
  EXPECT_DOUBLE_EQ(tracker.ForArea(0).mae, (1.0 + 1.0) / 2);
}

TEST_F(OnlineAccuracyTest, PerTierGaugesMatchHandComputedAccuracy) {
  OnlineAccuracyConfig config;
  config.num_areas = 1;
  OnlineAccuracyTracker tracker(config);

  // Two fresh joins (errors 1 and 3) and one ZOH join (error 2), with
  // truths 2, 4 and 1.
  struct Case {
    float predicted, truth;
    serving::FallbackTier tier;
  };
  const std::vector<Case> cases = {
      {3.0f, 2.0f, serving::FallbackTier::kNone},
      {1.0f, 4.0f, serving::FallbackTier::kNone},
      {3.0f, 1.0f, serving::FallbackTier::kZeroOrderHold},
  };
  int64_t t = 100;
  for (const Case& c : cases) {
    Predict(&tracker, 0, t, c.predicted, c.tier);
    for (int i = 0; i < static_cast<int>(c.truth); ++i) {
      InvalidOrder(&tracker, 0, t + i);
    }
    t += data::kGapWindow;
    tracker.OnClockAdvance(t);
  }

  // Offline recomputation of the same joins.
  const TierAccuracy fresh = tracker.ForTier(serving::FallbackTier::kNone);
  EXPECT_EQ(fresh.count, 2u);
  EXPECT_NEAR(fresh.mae, (1.0 + 3.0) / 2, 1e-9);
  EXPECT_NEAR(fresh.rmse, std::sqrt((1.0 + 9.0) / 2), 1e-9);
  EXPECT_NEAR(fresh.er, 4.0 / 6.0, 1e-9);
  const TierAccuracy zoh =
      tracker.ForTier(serving::FallbackTier::kZeroOrderHold);
  EXPECT_EQ(zoh.count, 1u);
  EXPECT_NEAR(zoh.mae, 2.0, 1e-9);

  // The published gauges carry exactly the accessor values.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_NEAR(reg.GetGauge("accuracy/mae_fresh")->value(), fresh.mae, 1e-9);
  EXPECT_NEAR(reg.GetGauge("accuracy/rmse_fresh")->value(), fresh.rmse, 1e-9);
  EXPECT_NEAR(reg.GetGauge("accuracy/er_fresh")->value(), fresh.er, 1e-9);
  EXPECT_NEAR(reg.GetGauge("accuracy/mae_zoh")->value(), zoh.mae, 1e-9);
  EXPECT_NEAR(reg.GetGauge("accuracy/mae")->value(), tracker.Overall().mae,
              1e-9);
  EXPECT_DOUBLE_EQ(reg.GetGauge("accuracy/worst_area_id")->value(), 0.0);
}

TEST_F(OnlineAccuracyTest, RollingWindowEvictsExactContributions) {
  OnlineAccuracyConfig config;
  config.num_areas = 1;
  config.window_samples = 2;
  OnlineAccuracyTracker tracker(config);

  // Three joins with errors 5, 1, 2; the window keeps the last two.
  int64_t t = 0;
  for (float predicted : {5.0f, 1.0f, 2.0f}) {
    Predict(&tracker, 0, t, predicted, serving::FallbackTier::kNone);
    t += data::kGapWindow;
    tracker.OnClockAdvance(t);  // truth stays 0
  }
  const TierAccuracy overall = tracker.Overall();
  EXPECT_EQ(overall.count, 2u);
  EXPECT_NEAR(overall.mae, (1.0 + 2.0) / 2, 1e-9);
  EXPECT_EQ(tracker.joined(), 3u);  // lifetime total keeps counting
}

TEST_F(OnlineAccuracyTest, PendingIsBoundedPerArea) {
  OnlineAccuracyConfig config;
  config.num_areas = 1;
  config.max_pending_per_area = 3;
  OnlineAccuracyTracker tracker(config);
  for (int i = 0; i < 5; ++i) {
    Predict(&tracker, 0, 1000 + i, 1.0f, serving::FallbackTier::kNone);
  }
  EXPECT_EQ(tracker.pending(), 3u);
  EXPECT_EQ(tracker.dropped_pending(), 2u);
  // Out-of-range areas are ignored, not fatal.
  Predict(&tracker, 99, 1000, 1.0f, serving::FallbackTier::kNone);
  EXPECT_EQ(tracker.pending(), 3u);
}

TEST_F(OnlineAccuracyTest, DriftReactsToDistributionShift) {
  OnlineAccuracyConfig config;
  config.num_areas = 1;
  OnlineAccuracyTracker tracker(config);

  int64_t t = 0;
  auto run = [&](float predicted, int joins) {
    for (int i = 0; i < joins; ++i) {
      Predict(&tracker, 0, t, predicted, serving::FallbackTier::kNone);
      t += data::kGapWindow;
      tracker.OnClockAdvance(t);
    }
  };
  run(2.0f, 50);  // long steady phase: fast and slow EWMAs converge
  const double steady = tracker.PredictionDrift();
  run(10.0f, 5);  // sudden level shift: fast EWMA runs ahead
  EXPECT_GT(tracker.PredictionDrift(), steady + 1.0);
  EXPECT_GT(tracker.ResidualDrift(), 0.0);
}

TEST_F(OnlineAccuracyTest, PsiDetectsInputShiftAgainstReference) {
  OnlineAccuracyConfig config;
  config.num_areas = 1;
  OnlineAccuracyTracker tracker(config);

  // Reference: activity uniformly spread over buckets (<=1, <=2, <=3, >3).
  core::ReferenceHistogram ref;
  ref.bounds = {1.0f, 2.0f, 3.0f};
  ref.counts = {25, 25, 25, 25};
  tracker.SetInputReference(ref);
  EXPECT_DOUBLE_EQ(tracker.InputPsi(), 0.0);  // no live data yet

  serving::PredictResult result;
  result.gaps = {0.0f};
  result.tier = serving::FallbackTier::kNone;
  // Live distribution matching the reference: PSI stays small.
  for (int i = 0; i < 40; ++i) {
    tracker.OnPrediction({0}, result, {0.5f + 1.0f * (i % 4)}, 0);
  }
  const double matched = tracker.InputPsi();
  EXPECT_LT(matched, 0.1);

  // Everything piling into the overflow bucket is a major shift.
  for (int i = 0; i < 400; ++i) {
    tracker.OnPrediction({0}, result, {50.0f}, 0);
  }
  EXPECT_GT(tracker.InputPsi(), 0.25);
  EXPECT_GT(tracker.InputPsi(), matched);
}

/// End-to-end: a real predictor with the tracker on both taps, replaying a
/// simulated day. The tracker's windowed MAE must agree with an offline
/// recomputation from the recorded predictions and the dataset's own
/// invalid-order counts.
TEST_F(OnlineAccuracyTest, AgreesWithOfflineRecomputationOnLiveReplay) {
  data::OrderDataset ds = deepsd::testing::MakeSmallCity(4, 12, 99);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&ds, fc, 0, 10);
  nn::ParameterStore store;
  util::Rng rng(1);
  core::DeepSDConfig mc;
  mc.num_areas = ds.num_areas();
  mc.use_weather = true;
  mc.use_traffic = true;
  core::DeepSDModel model(mc, core::DeepSDModel::Mode::kBasic, &store, &rng);

  serving::OnlinePredictor predictor(&model, &assembler);
  OnlineAccuracyConfig config;
  config.num_areas = ds.num_areas();
  OnlineAccuracyTracker tracker(config);
  predictor.set_prediction_observer(&tracker);
  predictor.buffer().set_stream_observer(&tracker);

  std::vector<int> areas;
  for (int a = 0; a < ds.num_areas(); ++a) areas.push_back(a);

  const int day = 11;
  const int start = 600, end = 760;
  // (area, slot start minute) -> prediction, recorded as they happen.
  std::map<std::pair<int, int>, float> predicted;
  predictor.AdvanceTo(day, start);
  for (int ts = start; ts < end; ++ts) {
    for (int a = 0; a < ds.num_areas(); ++a) {
      for (const data::Order& o : ds.OrdersAt(a, day, ts)) {
        predictor.buffer().AddOrder(o);
      }
      data::TrafficRecord tr = ds.TrafficAt(a, day, ts);
      tr.area = a;
      tr.day = day;
      tr.ts = ts;
      predictor.buffer().AddTraffic(tr);
    }
    data::WeatherRecord w = ds.WeatherAt(day, ts);
    w.day = day;
    w.ts = ts;
    predictor.buffer().AddWeather(w);
    predictor.AdvanceTo(day, ts + 1);
    if ((ts + 1) % data::kGapWindow == 0 && ts + 1 < end - data::kGapWindow) {
      serving::PredictResult r =
          predictor.PredictBatch(areas, util::Deadline::Infinite());
      for (int a = 0; a < ds.num_areas(); ++a) {
        predicted[{a, ts + 1}] = r.gaps[static_cast<size_t>(a)];
      }
    }
  }

  ASSERT_EQ(tracker.joined(), predicted.size());
  ASSERT_GT(tracker.joined(), 0u);

  // Offline recomputation: the true gap of slot [t, t+10) is the dataset's
  // invalid-order count (every order was fed, no faults active).
  double abs_sum = 0, sq_sum = 0, truth_sum = 0;
  for (const auto& [key, gap] : predicted) {
    const auto [area, t] = key;
    double truth = 0;
    for (int ts = t; ts < t + data::kGapWindow; ++ts) {
      for (const data::Order& o : ds.OrdersAt(area, day, ts)) {
        if (!o.valid) truth += 1;
      }
    }
    const double err = static_cast<double>(gap) - truth;
    abs_sum += std::abs(err);
    sq_sum += err * err;
    truth_sum += truth;
  }
  const double n = static_cast<double>(predicted.size());
  const TierAccuracy overall = tracker.Overall();
  EXPECT_NEAR(overall.mae, abs_sum / n, 1e-5);
  EXPECT_NEAR(overall.rmse, std::sqrt(sq_sum / n), 1e-5);
  if (truth_sum > 0) {
    EXPECT_NEAR(overall.er, abs_sum / truth_sum, 1e-5);
  }
  // Fresh feeds: every join lands in the kNone tier.
  EXPECT_EQ(tracker.ForTier(serving::FallbackTier::kNone).count,
            tracker.joined());

  predictor.set_prediction_observer(nullptr);
  predictor.buffer().set_stream_observer(nullptr);
}

}  // namespace
}  // namespace eval
}  // namespace deepsd
