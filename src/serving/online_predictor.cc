#include "serving/online_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/drift.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepsd {
namespace serving {

namespace {

/// The current-weekday 2L block of an assembler's 7×2L historical vector —
/// the empirical stand-in for a real-time vector whose feed has stalled.
std::vector<float> EmpiricalBlock(const feature::FeatureAssembler& history,
                                  int kind, int area, int t, int week_id) {
  std::vector<float> full = history.HistoricalVectors(kind, area, t);
  const size_t block = full.size() / data::kDaysPerWeek;
  const size_t off = static_cast<size_t>(week_id) * block;
  return std::vector<float>(
      full.begin() + static_cast<long>(off),
      full.begin() + static_cast<long>(off + block));
}

}  // namespace

OnlinePredictor::OnlinePredictor(const core::DeepSDModel* model,
                                 const feature::FeatureAssembler* history,
                                 FallbackConfig fallback)
    : model_(model),
      history_(history),
      fallback_(fallback),
      buffer_(history->dataset().num_areas(), history->config().window) {
  DEEPSD_CHECK(model != nullptr);
  DEEPSD_CHECK_MSG(model->config().window == history->config().window,
                   "model and assembler window mismatch");
}

OnlinePredictor::OnlinePredictor(store::VersionedModel* versions,
                                 const feature::FeatureAssembler* history,
                                 FallbackConfig fallback)
    : versions_(versions),
      history_(history),
      fallback_(fallback),
      buffer_(history->dataset().num_areas(), history->config().window) {
  DEEPSD_CHECK(versions != nullptr);
  DEEPSD_CHECK_MSG(versions->has_version(),
                   "versioned predictor needs an initial published version");
  // Later publishes are config-gated by VersionedModel::Publish, so the
  // window agreed on here stays agreed for the predictor's lifetime.
  store::VersionedModel::Ref ref = versions->Acquire();
  DEEPSD_CHECK_MSG(
      ref.version()->model().config().window == history->config().window,
      "model and assembler window mismatch");
}

util::Status OnlinePredictor::SwapModel(
    std::shared_ptr<const store::ModelVersion> version) {
  if (versions_ == nullptr) {
    return util::Status::FailedPrecondition(
        "predictor serves a static model; build it over a "
        "store::VersionedModel to hot-swap");
  }
  return versions_->Publish(std::move(version));
}

OnlinePredictor::Resolved OnlinePredictor::Resolve(
    store::PinnedModel pinned) const {
  if (pinned.version != nullptr) {
    const baselines::GapBaseline* vb = pinned.version->baseline();
    return {&pinned.version->model(), vb != nullptr ? vb : baseline_,
            pinned.sequence};
  }
  DEEPSD_CHECK_MSG(model_ != nullptr,
                   "versioned predictor resolved without a pin");
  return {model_, baseline_, 0};
}

FallbackTier OnlinePredictor::CurrentTier() const {
  if (versions_ != nullptr) {
    store::VersionedModel::Ref ref = versions_->Acquire();
    return TierFor(ref.version()->model());
  }
  return TierFor(*model_);
}

FallbackTier OnlinePredictor::TierFor(const core::DeepSDModel& model) const {
  const int64_t now = buffer_.now_abs();
  auto age = [now](int64_t last) {
    return last < 0 ? std::numeric_limits<int64_t>::max() : now - last;
  };

  int tier = 0;
  // Order-feed stall is global: at any realistic scale some area orders
  // every minute, so a citywide gap means the feed died, while one quiet
  // area is ordinary sparsity and must not degrade its neighbours.
  const int64_t order_age = age(buffer_.last_order_abs());
  if (order_age > fallback_.baseline_after_minutes) {
    tier = static_cast<int>(FallbackTier::kBaseline);
  } else if (order_age > fallback_.order_stall_minutes) {
    tier = static_cast<int>(FallbackTier::kEmpiricalBlock);
  }

  // Environment feeds only matter to models that consume them.
  if (model.config().use_weather) {
    const int64_t a = age(buffer_.last_weather_abs());
    if (a > fallback_.env_fresh_minutes + fallback_.weather_hold_minutes) {
      tier = std::max(tier, static_cast<int>(FallbackTier::kEmpiricalBlock));
    } else if (a > fallback_.env_fresh_minutes) {
      tier = std::max(tier, static_cast<int>(FallbackTier::kZeroOrderHold));
    }
  }
  if (model.config().use_traffic) {
    const int64_t a = age(buffer_.last_traffic_abs());
    if (a > fallback_.env_fresh_minutes + fallback_.traffic_hold_minutes) {
      tier = std::max(tier, static_cast<int>(FallbackTier::kEmpiricalBlock));
    } else if (a > fallback_.env_fresh_minutes) {
      tier = std::max(tier, static_cast<int>(FallbackTier::kZeroOrderHold));
    }
  }
  return static_cast<FallbackTier>(tier);
}

feature::ModelInput OnlinePredictor::AssembleLive(int area) const {
  if (versions_ != nullptr) {
    store::VersionedModel::Ref ref = versions_->Acquire();
    const core::DeepSDModel& model = ref.version()->model();
    return AssembleAtTier(area, TierFor(model), model);
  }
  return AssembleAtTier(area, TierFor(*model_), *model_);
}

feature::ModelInput OnlinePredictor::AssembleAtTier(
    int area, FallbackTier tier, const core::DeepSDModel& model) const {
  const bool advanced =
      model.mode() == core::DeepSDModel::Mode::kAdvanced;
  const int t = buffer_.minute();
  const int t10 = t + data::kGapWindow;
  // Order vectors fall back to the day-of-week empirical block once the
  // order feed is stalled (tier >= 2); the order stream can't zero-order
  // hold (counts are per-minute events, not levels).
  const bool empirical_orders = tier >= FallbackTier::kEmpiricalBlock;

  feature::ModelInput in;
  in.area_id = area;
  in.time_id = t;
  in.week_id = history_->dataset().WeekId(buffer_.day());

  in.v_sd = history_->NormalizeCounts(
      empirical_orders ? EmpiricalBlock(*history_, 0, area, t, in.week_id)
                       : buffer_.SupplyDemandVector(area));
  if (advanced) {
    in.h_sd = history_->NormalizeCounts(
        history_->HistoricalVectors(0, area, t));
    in.h_sd10 = history_->NormalizeCounts(
        history_->HistoricalVectors(0, area, t10));
    in.v_lc = history_->NormalizeCounts(
        empirical_orders ? EmpiricalBlock(*history_, 1, area, t, in.week_id)
                         : buffer_.LastCallVector(area));
    in.h_lc = history_->NormalizeCounts(
        history_->HistoricalVectors(1, area, t));
    in.h_lc10 = history_->NormalizeCounts(
        history_->HistoricalVectors(1, area, t10));
    in.v_wt = history_->NormalizeCounts(
        empirical_orders ? EmpiricalBlock(*history_, 2, area, t, in.week_id)
                         : buffer_.WaitingTimeVector(area));
    in.h_wt = history_->NormalizeCounts(
        history_->HistoricalVectors(2, area, t));
    in.h_wt10 = history_->NormalizeCounts(
        history_->HistoricalVectors(2, area, t10));
  }

  // Stale (but not dead) weather/traffic feeds are zero-order held: the
  // last accepted record stands in for the missing trailing minutes. A
  // fresh feed makes the held variants identical to the plain ones, and a
  // long-dead feed degrades to the unknown encoding (type 0 / zeros).
  if (tier >= FallbackTier::kZeroOrderHold) {
    in.weather_types = buffer_.WeatherTypesHeld(fallback_.weather_hold_minutes);
    in.weather_reals = buffer_.WeatherRealsHeld(fallback_.weather_hold_minutes);
  } else {
    in.weather_types = buffer_.WeatherTypes();
    in.weather_reals = buffer_.WeatherReals();
  }
  // Out-of-vocabulary type ids (possible only from a corrupted feed; the
  // stream buffer rejects negatives but cannot know the model's vocab)
  // degrade to the unknown type rather than tripping the embedding check.
  for (int& type : in.weather_types) {
    if (type < 0 || type >= model.config().weather_vocab) type = 0;
  }
  const int L = history_->config().window;
  for (int i = 0; i < L; ++i) {
    in.weather_reals[static_cast<size_t>(i)] =
        history_->NormTemp(in.weather_reals[static_cast<size_t>(i)]);
    in.weather_reals[static_cast<size_t>(L + i)] =
        history_->NormPm(in.weather_reals[static_cast<size_t>(L + i)]);
  }
  in.v_tc = tier >= FallbackTier::kZeroOrderHold
                ? buffer_.TrafficVectorHeld(area,
                                            fallback_.traffic_hold_minutes)
                : buffer_.TrafficVector(area);
  for (size_t i = 0; i < in.v_tc.size(); ++i) {
    in.v_tc[i] = history_->NormTraffic(
        static_cast<int>(i % data::kCongestionLevels), in.v_tc[i]);
  }
  return in;
}

float OnlinePredictor::Predict(int area) const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_us");
  DEEPSD_SPAN("serving/predict", latency_us);
  return AssembleAndPredict({area}, util::Deadline::Infinite(), {}).gaps[0];
}

std::vector<float> OnlinePredictor::PredictAll() const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_all_us");
  DEEPSD_SPAN("serving/predict_all", latency_us);
  std::vector<int> area_ids(static_cast<size_t>(buffer_.num_areas()));
  for (int a = 0; a < buffer_.num_areas(); ++a) {
    area_ids[static_cast<size_t>(a)] = a;
  }
  return AssembleAndPredict(area_ids, util::Deadline::Infinite(), {}).gaps;
}

std::vector<float> OnlinePredictor::PredictBatch(
    const std::vector<int>& area_ids) const {
  return PredictBatch(area_ids, util::Deadline::Infinite()).gaps;
}

PredictResult OnlinePredictor::PredictBatch(const std::vector<int>& area_ids,
                                            util::Deadline deadline) const {
  return PredictBatch(area_ids, deadline, {});
}

PredictResult OnlinePredictor::PredictBatch(const std::vector<int>& area_ids,
                                            util::Deadline deadline,
                                            store::PinnedModel pinned) const {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/predict_batch_us");
  DEEPSD_SPAN("serving/predict_batch", latency_us);
  return AssembleAndPredict(area_ids, deadline, pinned);
}

std::vector<float> OnlinePredictor::CheapGapsFrom(
    const std::vector<int>& area_ids,
    const baselines::GapBaseline* baseline) const {
  std::vector<float> gaps;
  gaps.reserve(area_ids.size());
  const int t = buffer_.minute();
  for (int area : area_ids) {
    gaps.push_back(baseline != nullptr ? baseline->Predict(area, t) : 0.0f);
  }
  return gaps;
}

std::vector<float> OnlinePredictor::CheapGaps(
    const std::vector<int>& area_ids) const {
  return CheapGaps(area_ids, {});
}

std::vector<float> OnlinePredictor::CheapGaps(
    const std::vector<int>& area_ids, store::PinnedModel pinned) const {
  store::VersionedModel::Ref own;
  if (pinned.version == nullptr && versions_ != nullptr) {
    own = versions_->Acquire();
    pinned = own.pinned();
  }
  return CheapGapsFrom(area_ids, Resolve(pinned).baseline);
}

PredictResult OnlinePredictor::AssembleAndPredict(
    const std::vector<int>& area_ids, util::Deadline deadline,
    store::PinnedModel pinned) const {
  static obs::Counter* degraded = obs::MetricsRegistry::Global().GetCounter(
      "serving/degraded_predictions");
  static obs::Counter* tier_zoh =
      obs::MetricsRegistry::Global().GetCounter("serving/fallback_tier_zoh");
  static obs::Counter* tier_empirical =
      obs::MetricsRegistry::Global().GetCounter(
          "serving/fallback_tier_empirical");
  static obs::Counter* tier_baseline =
      obs::MetricsRegistry::Global().GetCounter(
          "serving/fallback_tier_baseline");
  static obs::Counter* nonfinite = obs::MetricsRegistry::Global().GetCounter(
      "serving/nonfinite_predictions");
  static obs::Counter* expired_calls =
      obs::MetricsRegistry::Global().GetCounter(
          "serving/predict_deadline_expired");
  if (area_ids.empty()) return {};

  // Pin one model version for the whole call (no-op for a static
  // predictor or when the caller — the scatter-gather coordinator —
  // already pinned). Everything below resolves against `rm`, so a
  // concurrent SwapModel can never mix versions within this result.
  store::VersionedModel::Ref own;
  if (pinned.version == nullptr && versions_ != nullptr) {
    own = versions_->Acquire();
    pinned = own.pinned();
  }
  const Resolved rm = Resolve(pinned);

  PredictionObserver* observer = observer_.load(std::memory_order_acquire);
  const int64_t now_abs = buffer_.now_abs();
  std::vector<float> activity;

  PredictResult result;
  result.model_sequence = rm.sequence;
  FallbackTier tier = TierFor(*rm.model);
  // Without a baseline attached the ladder's last rung is the empirical
  // block — still an answer, just a less specific one.
  if (tier == FallbackTier::kBaseline && rm.baseline == nullptr) {
    tier = FallbackTier::kEmpiricalBlock;
  }

  // Abandons the remaining pipeline stages: the answer a late caller gets
  // is the cheapest one we have, reported as tier-3 so downstream breakers
  // see it for what it is. Shared by every cancellation checkpoint below.
  auto expire = [&]() -> PredictResult& {
    result.gaps = CheapGapsFrom(area_ids, rm.baseline);
    result.tier = FallbackTier::kBaseline;
    result.deadline_expired = true;
    expired_calls->Inc();
    degraded->Inc(area_ids.size());
    tier_baseline->Inc(area_ids.size());
    // Expired answers are still served answers; the tap sees them at the
    // tier they actually went out at (no activity: assembly was skipped).
    if (observer != nullptr) {
      observer->OnPrediction(area_ids, result, {}, now_abs);
    }
    return result;
  };

  // Checkpoint 1: already too late to start.
  if (deadline.expired()) return expire();

  std::vector<float> preds;
  if (tier == FallbackTier::kBaseline) {
    const int t = buffer_.minute();
    preds.reserve(area_ids.size());
    for (int area : area_ids) {
      preds.push_back(rm.baseline->Predict(area, t));
    }
  } else {
    // Assembly parallelizes over areas (each writes its own slot; the
    // stream buffer's accessors are mutex-guarded snapshots); the forward
    // pass then parallelizes internally over row chunks. A chunk of 16
    // areas keeps per-task graphs small enough to overlap across workers.
    // Each worker's graph is long-lived and arena-backed (see
    // docs/performance.md), so a steady request stream replays prebuilt
    // topologies into recycled tensor storage instead of reallocating per
    // request.
    //
    // Checkpoint 2: each assembly chunk starts only while the deadline
    // holds — one relaxed flag load plus a clock read per chunk, so a
    // request that expires mid-assembly stops burning pool time almost
    // immediately instead of finishing work nobody will read.
    std::vector<feature::ModelInput> inputs(area_ids.size());
    std::atomic<bool> assembly_expired{false};
    util::ThreadPool::Global().ParallelFor(
        0, area_ids.size(), 4, [&](size_t i0, size_t i1) {
          if (assembly_expired.load(std::memory_order_relaxed)) return;
          if (deadline.expired()) {
            assembly_expired.store(true, std::memory_order_relaxed);
            return;
          }
          for (size_t i = i0; i < i1; ++i) {
            inputs[i] = AssembleAtTier(area_ids[i], tier, *rm.model);
          }
        });
    if (assembly_expired.load(std::memory_order_relaxed)) return expire();

    if (observer != nullptr) {
      activity.reserve(inputs.size());
      for (const feature::ModelInput& in : inputs) {
        activity.push_back(core::InputActivity(in));
      }
    }

    if (deadline.infinite()) {
      preds = rm.model->Predict(inputs, /*batch_size=*/16);
    } else {
      // Checkpoint 3: the forward pass runs in sub-batches (multiples of
      // the internal batch of 16 rows, so the chunk structure — and the
      // bits — match the single-call path) with the deadline re-checked
      // between them.
      constexpr size_t kSubBatch = 64;
      preds.reserve(inputs.size());
      for (size_t begin = 0; begin < inputs.size(); begin += kSubBatch) {
        if (deadline.expired()) return expire();
        const size_t end = std::min(inputs.size(), begin + kSubBatch);
        std::vector<feature::ModelInput> sub(
            inputs.begin() + static_cast<long>(begin),
            inputs.begin() + static_cast<long>(end));
        std::vector<float> sub_preds = rm.model->Predict(sub, /*batch_size=*/16);
        preds.insert(preds.end(), sub_preds.begin(), sub_preds.end());
      }
    }
    // Last line of defense: a non-finite output (NaN-poisoned weights, a
    // corrupt upstream) is replaced by the baseline (or 0), never served.
    const int t = buffer_.minute();
    for (size_t i = 0; i < preds.size(); ++i) {
      if (!std::isfinite(preds[i])) {
        preds[i] = rm.baseline != nullptr
                       ? rm.baseline->Predict(area_ids[i], t)
                       : 0.0f;
        nonfinite->Inc();
        tier = FallbackTier::kBaseline;
      }
    }
  }

  switch (tier) {
    case FallbackTier::kNone:
      break;
    case FallbackTier::kZeroOrderHold:
      degraded->Inc(area_ids.size());
      tier_zoh->Inc(area_ids.size());
      break;
    case FallbackTier::kEmpiricalBlock:
      degraded->Inc(area_ids.size());
      tier_empirical->Inc(area_ids.size());
      break;
    case FallbackTier::kBaseline:
      degraded->Inc(area_ids.size());
      tier_baseline->Inc(area_ids.size());
      break;
  }
  result.gaps = std::move(preds);
  result.tier = tier;
  if (observer != nullptr) {
    observer->OnPrediction(area_ids, result, activity, now_abs);
  }
  return result;
}

}  // namespace serving
}  // namespace deepsd
