#ifndef DEEPSD_UTIL_BYTE_IO_H_
#define DEEPSD_UTIL_BYTE_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace deepsd {
namespace util {

/// Append-only byte sink for the binary file formats (dataset, parameters,
/// checkpoints). All multi-byte values are written in host order, matching
/// the historical stream-based writers, so existing files stay readable.
class ByteWriter {
 public:
  const std::vector<char>& bytes() const { return bytes_; }
  std::vector<char> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;
    const size_t old = bytes_.size();
    bytes_.resize(old + size);
    std::memcpy(bytes_.data() + old, data, size);
  }

  template <typename T>
  void PutPod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutRaw(&v, sizeof(T));
  }

  /// u32 length prefix + bytes.
  void PutString(const std::string& s) {
    PutPod<uint32_t>(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// u64 element count + raw elements.
  template <typename T>
  void PutPodVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutPod<uint64_t>(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

 private:
  std::vector<char> bytes_;
};

/// Bounds-checked reader over an in-memory buffer. Every accessor returns
/// false instead of reading past the end, so loaders can turn torn or
/// truncated files into typed Status errors rather than undefined behavior.
/// The reader never allocates more than the buffer can actually back: a
/// length prefix larger than the remaining bytes fails immediately, which is
/// what defuses absurd-size allocations from corrupt headers.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(const std::vector<char>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  bool GetRaw(void* out, size_t size) {
    if (size > remaining()) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool GetPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return GetRaw(out, sizeof(T));
  }

  bool GetString(std::string* out, uint32_t max_len = 1u << 20) {
    uint32_t len = 0;
    if (!GetPod(&len) || len > max_len || len > remaining()) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  template <typename T>
  bool GetPodVec(std::vector<T>* out) {
    uint64_t n = 0;
    if (!GetPod(&n)) return false;
    if (n > remaining() / sizeof(T)) return false;
    out->resize(static_cast<size_t>(n));
    return n == 0 || GetRaw(out->data(), static_cast<size_t>(n) * sizeof(T));
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads the whole file into `*out`. Fault injection (util::FaultInjector)
/// is applied to the returned bytes when enabled, so loaders built on this
/// helper are exactly the ones the fault harness can exercise.
Status ReadFileBytes(const std::string& path, std::vector<char>* out);

/// Writes `bytes` to `path` atomically: the data goes to `path + ".tmp"`
/// first and is renamed over `path` only after a complete write, so a
/// crash (or SIGKILL) mid-write can never leave a torn file at `path`.
Status AtomicWriteFile(const std::string& path, const void* data, size_t size);
Status AtomicWriteFile(const std::string& path, const std::vector<char>& bytes);

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_BYTE_IO_H_
