#include "obs/obs.h"

#include <cstdlib>
#include <cstring>

namespace deepsd {
namespace obs {
namespace internal {

namespace {
bool InitFromEnv() {
  const char* v = std::getenv("DEEPSD_OBS_ENABLED");
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{InitFromEnv()};

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace deepsd
