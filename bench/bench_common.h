#ifndef DEEPSD_BENCH_BENCH_COMMON_H_
#define DEEPSD_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction binaries. Each binary
// prints the corresponding table or data series from the paper, computed on
// the simulated city at the scale chosen by DEEPSD_BENCH_SCALE
// (tiny | default | full).

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/empirical_average.h"
#include "baselines/gbdt.h"
#include "baselines/lasso.h"
#include "baselines/random_forest.h"
#include "baselines/seasonal_ewma.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "obs/metrics.h"
#include "obs/metrics_io.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace deepsd {
namespace bench {

/// Test predictions of the Empirical Average baseline.
inline std::vector<float> RunEmpiricalAverage(const eval::Experiment& exp) {
  baselines::EmpiricalAverage avg;
  avg.Fit(exp.train_items());
  return avg.Predict(exp.test_items());
}

/// Test predictions of the seasonal-EWMA time-series baseline (the
/// Poisson/ARMA-per-location style of the paper's related work).
inline std::vector<float> RunSeasonalEwma(const eval::Experiment& exp) {
  baselines::SeasonalEwma model;
  model.Fit(exp.train_items());
  return model.Predict(exp.test_items());
}

/// Test predictions of the LASSO baseline (one-hot categoricals).
inline std::vector<float> RunLasso(const eval::Experiment& exp) {
  baselines::FeatureMatrix X = exp.FlatFeatures(exp.train_items(), true);
  baselines::FeatureMatrix Xt = exp.FlatFeatures(exp.test_items(), true);
  std::vector<float> y = exp.Targets(exp.train_items());
  baselines::Lasso lasso(
      {.alpha = 0.02, .max_iters = exp.scale().lasso_iters});
  lasso.Fit(X, y);
  return lasso.Predict(Xt);
}

/// Test predictions of the GBDT baseline (raw ordinal categoricals).
inline std::vector<float> RunGbdt(const eval::Experiment& exp) {
  baselines::FeatureMatrix X = exp.FlatFeatures(exp.train_items(), false);
  baselines::FeatureMatrix Xt = exp.FlatFeatures(exp.test_items(), false);
  std::vector<float> y = exp.Targets(exp.train_items());
  baselines::GbdtConfig config;
  config.num_trees = exp.scale().gbdt_trees;
  config.learning_rate = 0.1;
  config.tree.max_depth = 7;
  config.tree.colsample = 0.3;
  baselines::Gbdt gbdt(config);
  gbdt.Fit(X, y);
  std::vector<float> pred = gbdt.Predict(Xt);
  for (float& p : pred) p = std::max(p, 0.0f);
  return pred;
}

/// Test predictions of the Random Forest baseline.
inline std::vector<float> RunRandomForest(const eval::Experiment& exp) {
  baselines::FeatureMatrix X = exp.FlatFeatures(exp.train_items(), false);
  baselines::FeatureMatrix Xt = exp.FlatFeatures(exp.test_items(), false);
  std::vector<float> y = exp.Targets(exp.train_items());
  baselines::RandomForestConfig config;
  config.num_trees = exp.scale().rf_trees;
  baselines::RandomForest rf(config);
  rf.Fit(X, y);
  std::vector<float> pred = rf.Predict(Xt);
  for (float& p : pred) p = std::max(p, 0.0f);
  return pred;
}

/// Prints every latency histogram in the metrics registry whose name
/// contains `filter` (all of them when empty) as a quantile table —
/// count / mean / p50 / p90 / p99 / max in microseconds. Benches that
/// enable obs::SetEnabled(true) get the same percentile reporting as the
/// serving tools' --metrics-out dumps, from the same obs::Histogram
/// measurements.
inline void PrintRegistryLatencies(const std::string& filter = "") {
  std::vector<obs::MetricSnapshot> kept;
  for (obs::MetricSnapshot& s : obs::MetricsRegistry::Global().Snapshot()) {
    if (s.kind != obs::MetricSnapshot::Kind::kHistogram) continue;
    if (!filter.empty() && s.name.find(filter) == std::string::npos) continue;
    kept.push_back(std::move(s));
  }
  if (kept.empty()) return;
  std::fputs(obs::RenderTable(kept).c_str(), stdout);
}

}  // namespace bench
}  // namespace deepsd

#endif  // DEEPSD_BENCH_BENCH_COMMON_H_
