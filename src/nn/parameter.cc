#include "nn/parameter.h"

#include <cmath>
#include <cstring>

#include "util/byte_io.h"

namespace deepsd {
namespace nn {

void InitTensor(Tensor* t, Init init, util::Rng* rng) {
  switch (init) {
    case Init::kZero:
      t->Zero();
      return;
    case Init::kGlorotUniform: {
      double limit = std::sqrt(6.0 / (t->rows() + t->cols()));
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kHeUniform: {
      double limit = std::sqrt(6.0 / t->rows());
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kEmbedding:
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-0.05, 0.05));
      }
      return;
  }
}

Parameter* ParameterStore::Create(const std::string& name, int rows, int cols,
                                  Init init, util::Rng* rng) {
  if (Parameter* existing = Find(name)) {
    DEEPSD_CHECK_MSG(existing->value.rows() == rows &&
                         existing->value.cols() == cols,
                     "parameter re-created with different shape: " + name);
    return existing;
  }
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->value = Tensor(rows, cols);
  p->grad = Tensor(rows, cols);
  InitTensor(&p->value, init, rng);
  Parameter* raw = p.get();
  params_.push_back(std::move(p));
  return raw;
}

Parameter* ParameterStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

const Parameter* ParameterStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

size_t ParameterStore::NumWeights() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) p->grad.Zero();
}

void ParameterStore::SetFrozen(const std::string& prefix, bool frozen) {
  for (auto& p : params_) {
    if (p->name.rfind(prefix, 0) == 0) p->frozen = frozen;
  }
}

util::Status ParameterStore::Save(const std::string& path) const {
  util::ByteWriter out;
  out.PutRaw("DSP1", 4);
  out.PutPod<uint64_t>(params_.size());
  for (const auto& p : params_) {
    out.PutString(p->name);
    out.PutPod<int32_t>(p->value.rows());
    out.PutPod<int32_t>(p->value.cols());
    out.PutRaw(p->value.data(), p->value.size() * sizeof(float));
  }
  // Atomic replace: a crash mid-save leaves the previous model intact
  // instead of a torn file.
  return util::AtomicWriteFile(path, out.bytes());
}

util::Status ParameterStore::Load(const std::string& path, int* loaded) {
  // ReadFileBytes routes through util::FaultInjector, so injected
  // truncation/bit-flips exercise every rejection branch below.
  std::vector<char> bytes;
  if (util::Status s = util::ReadFileBytes(path, &bytes); !s.ok()) return s;

  util::ByteReader in(bytes);
  char magic[4];
  if (!in.GetRaw(magic, 4) || std::memcmp(magic, "DSP1", 4) != 0) {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t n = 0;
  if (!in.GetPod(&n)) {
    return util::Status::IoError("truncated parameter file " + path);
  }
  // Parse everything before touching the store: a file that turns out to
  // be torn halfway through must not leave the model half-loaded.
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    int32_t rows = 0, cols = 0;
    if (!in.GetString(&name, /*max_len=*/4096) || !in.GetPod(&rows) ||
        !in.GetPod(&cols)) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    if (rows < 0 || cols < 0) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    const uint64_t count_floats =
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
    // The reader refuses any tensor larger than the remaining bytes, so a
    // corrupt header can never trigger a runaway allocation.
    if (count_floats > in.remaining() / sizeof(float)) {
      return util::Status::IoError("truncated parameter file " + path);
    }
    Tensor t(rows, cols);
    if (count_floats > 0 &&
        !in.GetRaw(t.data(), static_cast<size_t>(count_floats) * sizeof(float))) {
      return util::Status::IoError("truncated parameter file " + path);
    }
    // Weights must be finite: a bit-flip that survives parsing would
    // otherwise silently poison every downstream prediction.
    for (float v : t.flat()) {
      if (!std::isfinite(v)) {
        return util::Status::InvalidArgument(
            "non-finite value for parameter '" + name + "' in " + path);
      }
    }
    tensors.emplace_back(std::move(name), std::move(t));
  }

  int count = 0;
  for (auto& [name, t] : tensors) {
    Parameter* p = Find(name);
    if (p != nullptr && p->value.SameShape(t)) {
      p->value = std::move(t);
      ++count;
    }
  }
  if (loaded != nullptr) *loaded = count;
  return util::Status::OK();
}

int ParameterStore::CopyFrom(const ParameterStore& other) {
  int count = 0;
  for (auto& p : params_) {
    const Parameter* src = other.Find(p->name);
    if (src != nullptr && src->value.SameShape(p->value)) {
      p->value = src->value;
      ++count;
    }
  }
  return count;
}

void ParameterStore::AverageFrom(
    const std::vector<const ParameterStore*>& stores) {
  DEEPSD_CHECK(!stores.empty());
  for (auto& p : params_) {
    Tensor sum(p->value.rows(), p->value.cols());
    for (const ParameterStore* s : stores) {
      const Parameter* src = s->Find(p->name);
      DEEPSD_CHECK_MSG(src != nullptr && src->value.SameShape(p->value),
                       "AverageFrom structure mismatch: " + p->name);
      for (size_t i = 0; i < sum.size(); ++i) {
        sum.flat()[i] += src->value.flat()[i];
      }
    }
    float inv = 1.0f / static_cast<float>(stores.size());
    for (size_t i = 0; i < sum.size(); ++i) {
      p->value.flat()[i] = sum.flat()[i] * inv;
    }
  }
}

GradBuffer::GradBuffer(const ParameterStore& store) {
  const auto& params = store.parameters();
  grads_.reserve(params.size());
  index_.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    grads_.emplace_back(params[i]->value.rows(), params[i]->value.cols());
    index_.emplace(params[i].get(), i);
  }
}

Tensor& GradBuffer::grad(const Parameter* p) {
  auto it = index_.find(p);
  DEEPSD_CHECK_MSG(it != index_.end(),
                   "GradBuffer used with a foreign parameter: " + p->name);
  return grads_[it->second];
}

void GradBuffer::Zero() {
  for (Tensor& g : grads_) g.Zero();
}

std::unique_ptr<ParameterStore> ParameterStore::Clone() const {
  auto out = std::make_unique<ParameterStore>();
  for (const auto& p : params_) {
    auto q = std::make_unique<Parameter>();
    q->name = p->name;
    q->value = p->value;
    q->grad = Tensor(p->value.rows(), p->value.cols());
    q->frozen = p->frozen;
    out->params_.push_back(std::move(q));
  }
  return out;
}

}  // namespace nn
}  // namespace deepsd
