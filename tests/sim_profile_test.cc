#include "src/sim/area_profile.h"

#include <gtest/gtest.h>

namespace deepsd {
namespace sim {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  util::Rng rng_{99};
};

TEST_F(ProfileTest, MakeAreaProfilesCoversAllClusters) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(15, 1.0, &rng_);
  ASSERT_EQ(ps.size(), 15u);
  bool seen[kNumAreaTypes] = {};
  for (const auto& p : ps) seen[static_cast<int>(p.type)] = true;
  for (int t = 0; t < kNumAreaTypes; ++t) {
    EXPECT_TRUE(seen[t]) << "archetype " << t << " missing";
  }
}

TEST_F(ProfileTest, IntensitiesAreNonNegative) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(10, 1.0, &rng_);
  for (const auto& p : ps) {
    for (int w = 0; w < 7; ++w) {
      for (int m = 0; m < 1440; m += 30) {
        EXPECT_GE(p.DemandIntensity(m, w), 0.0);
        EXPECT_GE(p.SupplyIntensity(m, w), 0.0);
      }
    }
  }
}

TEST_F(ProfileTest, BusinessAreaHasWeekdayCommutePeaks) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(10, 1.0, &rng_);
  for (const auto& p : ps) {
    if (p.type != AreaType::kBusiness) continue;
    // Monday evening peak (~19:00) well above Monday 3am and above Sunday
    // at the same hour.
    double evening_peak = p.DemandIntensity(1140, 0);
    double night = p.DemandIntensity(200, 0);
    double sunday_evening = p.DemandIntensity(1140, 6);
    EXPECT_GT(evening_peak, 3.0 * night);
    EXPECT_GT(evening_peak, 1.5 * sunday_evening);
  }
}

TEST_F(ProfileTest, EntertainmentAreaSurgesOnWeekend) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(10, 1.0, &rng_);
  for (const auto& p : ps) {
    if (p.type != AreaType::kEntertainment) continue;
    // Saturday 21:30 demand well above Tuesday 21:30 (paper Fig 1 pattern).
    EXPECT_GT(p.DemandIntensity(1290, 5), 1.5 * p.DemandIntensity(1290, 1));
  }
}

TEST_F(ProfileTest, NightDemandSuppressed) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(10, 1.0, &rng_);
  for (const auto& p : ps) {
    // 3:30am is quieter than midday for every archetype.
    EXPECT_LT(p.DemandIntensity(210, 2), p.DemandIntensity(780, 2) + 1e-9);
  }
}

TEST_F(ProfileTest, ScaleMultipliesDemand) {
  std::vector<AreaProfile> ps = MakeAreaProfiles(1, 1.0, &rng_);
  AreaProfile p = ps[0];
  double base = p.DemandIntensity(600, 2);
  p.scale *= 3.0;
  EXPECT_NEAR(p.DemandIntensity(600, 2), 3.0 * base, 1e-9);
}

TEST_F(ProfileTest, SameClusterSharesShapeDifferentScale) {
  // Areas i and i+5 share a cluster template; correlation of their
  // normalized weekday curves should be high.
  std::vector<AreaProfile> ps = MakeAreaProfiles(10, 1.0, &rng_);
  for (int i = 0; i < 5; ++i) {
    const AreaProfile& a = ps[static_cast<size_t>(i)];
    const AreaProfile& b = ps[static_cast<size_t>(i + 5)];
    ASSERT_EQ(a.cluster_id, b.cluster_id);
    double num = 0, da = 0, db = 0;
    for (int m = 0; m < 1440; m += 10) {
      double va = a.DemandIntensity(m, 2) / a.scale;
      double vb = b.DemandIntensity(m, 2) / b.scale;
      num += va * vb;
      da += va * va;
      db += vb * vb;
    }
    EXPECT_GT(num / std::sqrt(da * db), 0.95);
  }
}

TEST_F(ProfileTest, HeavyTailedScalesAcrossAreas) {
  util::Rng rng(7);
  std::vector<AreaProfile> ps = MakeAreaProfiles(200, 1.0, &rng);
  double max_scale = 0, sum = 0;
  for (const auto& p : ps) {
    max_scale = std::max(max_scale, p.scale);
    sum += p.scale;
  }
  double mean = sum / 200.0;
  // A lognormal with sigma ~0.95 gives a max several times the mean.
  EXPECT_GT(max_scale, 3.0 * mean);
}

TEST_F(ProfileTest, DeterministicGivenRngSeed) {
  util::Rng r1(5), r2(5);
  auto a = MakeAreaProfiles(8, 1.0, &r1);
  auto b = MakeAreaProfiles(8, 1.0, &r2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].scale, b[i].scale);
    EXPECT_EQ(a[i].road_segments, b[i].road_segments);
  }
}

}  // namespace
}  // namespace sim
}  // namespace deepsd
