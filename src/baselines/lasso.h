#ifndef DEEPSD_BASELINES_LASSO_H_
#define DEEPSD_BASELINES_LASSO_H_

#include <vector>

#include "baselines/binned.h"

namespace deepsd {
namespace baselines {

/// L1-regularized linear regression by cyclic coordinate descent (the
/// scikit-learn Lasso baseline of paper Table II).
///
/// Objective: (1/2n)·‖y − Xw − b‖² + alpha·‖w‖₁, features standardized
/// internally (zero-variance columns are dropped).
struct LassoConfig {
  double alpha = 0.01;
  int max_iters = 100;     ///< Full coordinate sweeps.
  double tolerance = 1e-5; ///< Stop when max |Δw| in a sweep is below this.
};

class Lasso {
 public:
  explicit Lasso(const LassoConfig& config) : config_(config) {}

  void Fit(const FeatureMatrix& X, const std::vector<float>& y);
  std::vector<float> Predict(const FeatureMatrix& X) const;
  float PredictRow(const float* features) const;

  /// Weights in the original (un-standardized) feature space.
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  /// Number of non-zero weights (sparsity diagnostics).
  int NumNonZero() const;
  /// Sweeps actually run before convergence.
  int iterations_run() const { return iterations_run_; }

 private:
  LassoConfig config_;
  std::vector<double> weights_;
  double intercept_ = 0;
  int iterations_run_ = 0;
};

}  // namespace baselines
}  // namespace deepsd

#endif  // DEEPSD_BASELINES_LASSO_H_
