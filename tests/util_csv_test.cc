#include "src/util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace deepsd {
namespace util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("deepsd_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTripPlain) {
  {
    CsvWriter w(path_.string());
    ASSERT_TRUE(w.status().ok());
    w.WriteRow(std::vector<std::string>{"a", "b", "c"});
    w.WriteRow(std::vector<double>{1.5, 2.0, -3.25});
    w.Close();
  }
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path_.string(), &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1][0], "1.5");
  EXPECT_EQ(rows[1][2], "-3.25");
}

TEST_F(CsvTest, EscapesCommasAndQuotes) {
  {
    CsvWriter w(path_.string());
    w.WriteRow(std::vector<std::string>{"hello, world", "say \"hi\"", "plain"});
    w.Close();
  }
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path_.string(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "hello, world");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST_F(CsvTest, EmptyFieldsPreserved) {
  {
    CsvWriter w(path_.string());
    w.WriteRow(std::vector<std::string>{"", "x", ""});
    w.Close();
  }
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path_.string(), &rows).ok());
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "");
  EXPECT_EQ(rows[0][2], "");
}

TEST_F(CsvTest, MissingFileIsIoError) {
  std::vector<std::vector<std::string>> rows;
  Status st = ReadCsv("/nonexistent/dir/file.csv", &rows);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIoError);
}

TEST_F(CsvTest, WriterToBadPathReportsError) {
  CsvWriter w("/nonexistent/dir/file.csv");
  EXPECT_FALSE(w.status().ok());
  // Writing must not crash.
  w.WriteRow(std::vector<std::string>{"x"});
}

}  // namespace
}  // namespace util
}  // namespace deepsd
