#!/usr/bin/env bash
# Regenerates every paper table/figure at the chosen scale and records the
# log next to the sources.
#
#   scripts/run_experiments.sh [tiny|default|full] [build-dir]
set -euo pipefail

SCALE="${1:-default}"
BUILD="${2:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

export DEEPSD_BENCH_SCALE="$SCALE"
echo "running bench suite at scale '$SCALE'..."
: > bench_output.txt
for b in "$BUILD"/bench/bench_*; do
  echo "### $b (scale=$SCALE)" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
echo "done — results in bench_output.txt"
