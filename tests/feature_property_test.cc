// Property-style sweeps: the assembler's vectors must match brute-force
// recomputations of the paper's Definitions 5-7 at arbitrary (area, day, t)
// triples of a simulated city.

#include <gtest/gtest.h>

#include <map>

#include "src/feature/feature_assembler.h"
#include "tests/test_util.h"

namespace deepsd {
namespace feature {
namespace {

constexpr int kL = 20;

struct Query {
  int area;
  int day;
  int t;
};

class VectorDefinitionTest : public ::testing::TestWithParam<Query> {
 protected:
  static const data::OrderDataset& Dataset() {
    static const data::OrderDataset* ds =
        new data::OrderDataset(deepsd::testing::MakeSmallCity(5, 9, 5150));
    return *ds;
  }
};

TEST_P(VectorDefinitionTest, SupplyDemandMatchesBruteForce) {
  const Query q = GetParam();
  const data::OrderDataset& ds = Dataset();
  std::vector<float> v = SupplyDemandVector(ds, q.area, q.day, q.t, kL);

  // Brute force straight from the raw order list.
  std::vector<float> expected(2 * kL, 0.0f);
  for (const data::Order& o : ds.orders()) {
    if (o.start_area != q.area || o.day != q.day) continue;
    int l = q.t - o.ts;
    if (l < 1 || l > kL) continue;
    expected[static_cast<size_t>(o.valid ? l - 1 : kL + l - 1)] += 1.0f;
  }
  EXPECT_EQ(v, expected);
}

TEST_P(VectorDefinitionTest, LastCallMatchesBruteForce) {
  const Query q = GetParam();
  const data::OrderDataset& ds = Dataset();
  std::vector<float> v = LastCallVector(ds, q.area, q.day, q.t, kL);

  std::map<int, const data::Order*> last;  // pid → last order in window
  for (const data::Order& o : ds.orders()) {
    if (o.start_area != q.area || o.day != q.day) continue;
    if (o.ts < q.t - kL || o.ts >= q.t) continue;
    auto [it, inserted] = last.emplace(o.passenger_id, &o);
    if (!inserted && o.ts > it->second->ts) it->second = &o;
  }
  std::vector<float> expected(2 * kL, 0.0f);
  for (auto& [pid, o] : last) {
    int l = q.t - o->ts;
    expected[static_cast<size_t>(o->valid ? l - 1 : kL + l - 1)] += 1.0f;
  }
  EXPECT_EQ(v, expected);
}

TEST_P(VectorDefinitionTest, WaitingTimeMatchesBruteForce) {
  const Query q = GetParam();
  const data::OrderDataset& ds = Dataset();
  std::vector<float> v = WaitingTimeVector(ds, q.area, q.day, q.t, kL);

  struct Episode {
    int first = -1, last = -1;
    bool last_valid = false;
  };
  std::map<int, Episode> episodes;
  for (const data::Order& o : ds.orders()) {
    if (o.start_area != q.area || o.day != q.day) continue;
    if (o.ts < q.t - kL || o.ts >= q.t) continue;
    Episode& e = episodes[o.passenger_id];
    if (e.first < 0 || o.ts < e.first) e.first = o.ts;
    if (o.ts > e.last) {
      e.last = o.ts;
      e.last_valid = o.valid;
    }
  }
  std::vector<float> expected(2 * kL, 0.0f);
  for (auto& [pid, e] : episodes) {
    int wait = e.last - e.first;
    expected[static_cast<size_t>(e.last_valid ? wait : kL + wait)] += 1.0f;
  }
  EXPECT_EQ(v, expected);
}

TEST_P(VectorDefinitionTest, GapMatchesBruteForce) {
  const Query q = GetParam();
  const data::OrderDataset& ds = Dataset();
  int expected = 0;
  for (const data::Order& o : ds.orders()) {
    if (o.start_area == q.area && o.day == q.day && !o.valid &&
        o.ts >= q.t && o.ts < q.t + data::kGapWindow) {
      ++expected;
    }
  }
  EXPECT_EQ(ds.Gap(q.area, q.day, q.t), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VectorDefinitionTest,
    ::testing::Values(Query{0, 0, 30}, Query{0, 2, 500}, Query{1, 4, 520},
                      Query{2, 1, 720}, Query{3, 3, 1145}, Query{4, 5, 1290},
                      Query{0, 8, 1430}, Query{2, 6, 20}, Query{1, 7, 999},
                      Query{4, 8, 450}),
    [](const ::testing::TestParamInfo<Query>& info) {
      std::string name = "a";
      name += std::to_string(info.param.area);
      name += "_d";
      name += std::to_string(info.param.day);
      name += "_t";
      name += std::to_string(info.param.t);
      return name;
    });

// The empirical vector identity: with uniform weights p = 1/7, the network's
// E = Σ p(w)·H(w) equals the plain average of the per-weekday historicals.
TEST(EmpiricalVectorTest, UniformWeightsGiveGlobalAverage) {
  data::OrderDataset ds = deepsd::testing::MakeSmallCity(3, 14, 808);
  FeatureConfig fc;
  fc.normalize = false;
  FeatureAssembler assembler(&ds, fc, 0, 14);

  const int area = 1, t = 600;
  std::vector<float> combined(2 * fc.window, 0.0f);
  double total_weight = 0;
  for (int w = 0; w < 7; ++w) {
    int n = assembler.RefDayCount(w);
    if (n == 0) continue;
    std::vector<float> h = assembler.HistoricalSd(area, w, t);
    // Weight by day counts to reconstruct the all-days average.
    for (size_t k = 0; k < h.size(); ++k) combined[k] += h[k] * n;
    total_weight += n;
  }
  for (float& x : combined) x /= static_cast<float>(total_weight);

  std::vector<float> direct(2 * fc.window, 0.0f);
  for (int d = 0; d < 14; ++d) {
    std::vector<float> v = SupplyDemandVector(ds, area, d, t, fc.window);
    for (size_t k = 0; k < v.size(); ++k) direct[k] += v[k];
  }
  for (float& x : direct) x /= 14.0f;

  for (size_t k = 0; k < direct.size(); ++k) {
    EXPECT_NEAR(combined[k], direct[k], 1e-4);
  }
}

}  // namespace
}  // namespace feature
}  // namespace deepsd
