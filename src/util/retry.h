#ifndef DEEPSD_UTIL_RETRY_H_
#define DEEPSD_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace deepsd {
namespace util {

/// Bounded exponential backoff with deterministic jitter.
///
/// The continuous-learning loop retries transient IoError outcomes
/// (artifact pack, stored-model open) instead of aborting a fine-tune
/// cycle on a single flaky write; everything else — InvalidArgument from
/// a corrupt artifact, FailedPrecondition from a structure mismatch — is
/// permanent and surfaces immediately. Jitter is drawn from util::Rng, so
/// a retry schedule is a pure function of (options, seed): tests replay
/// it exactly, and two learners with different seeds never thundering-herd
/// the same file.
struct RetryOptions {
  /// Total tries including the first; <= 1 disables retrying.
  int max_attempts = 4;
  int64_t initial_backoff_us = 1000;
  double multiplier = 2.0;
  /// Per-sleep cap after jitter.
  int64_t max_backoff_us = 60 * 1000 * 1000;
  /// Each sleep is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter]; 0 disables jitter.
  double jitter = 0.2;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options, uint64_t seed = 0);

  /// Replaces the real sleep (std::this_thread::sleep_for) — the virtual
  /// clock hook the unit tests use to assert the exact backoff schedule
  /// without waiting it out.
  void set_sleep_fn(std::function<void(int64_t us)> sleep_fn);

  /// Which non-OK codes are worth retrying; defaults to IoError only.
  void set_retryable_fn(std::function<bool(const Status&)> retryable_fn);

  /// Runs `op` until it returns OK, a non-retryable error, or the attempt
  /// budget is exhausted; sleeps the jittered backoff between attempts.
  /// Returns the last Status `op` produced.
  Status Run(const std::function<Status()>& op);

  /// The jittered, capped backoff before retry number `attempt` (1-based:
  /// attempt 1 follows the first failure). Deterministic: consumes the
  /// policy's RNG stream in order, exactly as Run does.
  int64_t NextBackoffUs(int attempt);

  /// Attempts consumed by the most recent Run (1 = first try succeeded).
  int attempts() const { return attempts_; }

 private:
  RetryOptions options_;
  Rng rng_;
  int attempts_ = 0;
  std::function<void(int64_t)> sleep_fn_;
  std::function<bool(const Status&)> retryable_fn_;
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_RETRY_H_
