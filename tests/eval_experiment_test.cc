#include "src/eval/experiment.h"

#include <gtest/gtest.h>

namespace deepsd {
namespace eval {
namespace {

TEST(ScaleTest, EnvVariableSelectsScale) {
  ::setenv("DEEPSD_BENCH_SCALE", "tiny", 1);
  EXPECT_EQ(GetScaleFromEnv().name, "tiny");
  ::setenv("DEEPSD_BENCH_SCALE", "full", 1);
  EXPECT_EQ(GetScaleFromEnv().name, "full");
  ::unsetenv("DEEPSD_BENCH_SCALE");
  EXPECT_EQ(GetScaleFromEnv().name, "default");
  ::setenv("DEEPSD_BENCH_SCALE", "", 1);
  EXPECT_EQ(GetScaleFromEnv().name, "default");
  ::unsetenv("DEEPSD_BENCH_SCALE");
}

TEST(ScaleTest, PresetsResolve) {
  ExperimentScale tiny = MakeScale("tiny");
  EXPECT_EQ(tiny.name, "tiny");
  EXPECT_LT(tiny.num_areas, MakeScale("default").num_areas);
  ExperimentScale full = MakeScale("full");
  EXPECT_EQ(full.num_areas, 58);
  EXPECT_EQ(full.train_days, 24);
  EXPECT_EQ(full.test_days, 28);
  EXPECT_EQ(full.epochs, 50);
  EXPECT_EQ(full.best_k, 10);
}

class ExperimentTest : public ::testing::Test {
 protected:
  static Experiment& Exp() {
    static Experiment* exp = new Experiment(MakeScale("tiny"), 2024);
    return *exp;
  }
};

TEST_F(ExperimentTest, DatasetMatchesScale) {
  const Experiment& exp = Exp();
  EXPECT_EQ(exp.dataset().num_areas(), exp.scale().num_areas);
  EXPECT_EQ(exp.dataset().num_days(),
            exp.scale().train_days + exp.scale().test_days);
  EXPECT_GT(exp.sim_summary().total_orders, 0u);
}

TEST_F(ExperimentTest, ItemGridsDisjointAndOrdered) {
  const Experiment& exp = Exp();
  for (const auto& item : exp.train_items()) {
    EXPECT_LT(item.day, exp.train_day_end());
  }
  for (const auto& item : exp.test_items()) {
    EXPECT_GE(item.day, exp.test_day_begin());
    EXPECT_LT(item.day, exp.test_day_end());
  }
  // Test grid: 9 slots per area-day.
  EXPECT_EQ(exp.test_items().size(),
            9u * static_cast<size_t>(exp.scale().num_areas) *
                static_cast<size_t>(exp.scale().test_days));
}

TEST_F(ExperimentTest, SourcesProduceConsistentFeatures) {
  const Experiment& exp = Exp();
  core::AssemblerSource basic = exp.TestSource(false);
  core::AssemblerSource advanced = exp.TestSource(true);
  ASSERT_EQ(basic.size(), exp.test_items().size());
  feature::ModelInput b = basic.Get(0);
  feature::ModelInput a = advanced.Get(0);
  EXPECT_TRUE(b.h_sd.empty());
  EXPECT_FALSE(a.h_sd.empty());
  EXPECT_EQ(b.area_id, a.area_id);
  EXPECT_FLOAT_EQ(basic.Target(0), exp.test_items()[0].gap);
}

TEST_F(ExperimentTest, FlatFeaturesMatchAssemblerDim) {
  const Experiment& exp = Exp();
  std::vector<data::PredictionItem> subset(exp.test_items().begin(),
                                           exp.test_items().begin() + 5);
  baselines::FeatureMatrix m = exp.FlatFeatures(subset, false);
  EXPECT_EQ(m.rows, 5);
  EXPECT_EQ(m.cols, exp.assembler().FlatDim(false));
}

TEST_F(ExperimentTest, TrainDeepSDEndToEnd) {
  // Smoke test of the one-call training path used by the benches.
  const Experiment& exp = Exp();
  core::DeepSDConfig config = exp.ModelConfig();
  Experiment::TrainedModel tm =
      exp.TrainDeepSD(core::DeepSDModel::Mode::kBasic, config, 7);
  EXPECT_EQ(tm.test_predictions.size(), exp.test_items().size());
  EXPECT_EQ(tm.result.history.size(),
            static_cast<size_t>(exp.scale().epochs));
  // Model beats the constant-zero predictor's RMSE on the simulated data.
  std::vector<float> zeros(exp.test_items().size(), 0.0f);
  Metrics zero_m = ComputeMetrics(zeros, exp.TestTargets());
  Metrics model_m = ComputeMetrics(tm.test_predictions, exp.TestTargets());
  EXPECT_LT(model_m.rmse, zero_m.rmse);
}

}  // namespace
}  // namespace eval
}  // namespace deepsd
