#include "baselines/empirical_average.h"

namespace deepsd {
namespace baselines {

void EmpiricalAverage::Fit(const std::vector<data::PredictionItem>& train_items) {
  by_area_t_.clear();
  by_area_.clear();
  global_ = Accumulator{};
  for (const data::PredictionItem& item : train_items) {
    Accumulator& a = by_area_t_[Key(item.area, item.t)];
    a.sum += item.gap;
    ++a.count;
    Accumulator& b = by_area_[item.area];
    b.sum += item.gap;
    ++b.count;
    global_.sum += item.gap;
    ++global_.count;
  }
}

float EmpiricalAverage::Predict(int area, int t) const {
  auto it = by_area_t_.find(Key(area, t));
  if (it != by_area_t_.end() && it->second.count > 0) {
    return static_cast<float>(it->second.sum / it->second.count);
  }
  auto it2 = by_area_.find(area);
  if (it2 != by_area_.end() && it2->second.count > 0) {
    return static_cast<float>(it2->second.sum / it2->second.count);
  }
  return global_.count > 0
             ? static_cast<float>(global_.sum / global_.count)
             : 0.0f;
}

std::vector<float> EmpiricalAverage::Predict(
    const std::vector<data::PredictionItem>& items) const {
  std::vector<float> out;
  out.reserve(items.size());
  for (const data::PredictionItem& item : items) {
    out.push_back(Predict(item.area, item.t));
  }
  return out;
}

}  // namespace baselines
}  // namespace deepsd
