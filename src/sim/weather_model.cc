#include "sim/weather_model.h"

#include <cmath>
#include <numbers>

namespace deepsd {
namespace sim {

double WeatherDemandMultiplier(WeatherType type) {
  switch (type) {
    case WeatherType::kSunny: return 1.0;
    case WeatherType::kCloudy: return 1.02;
    case WeatherType::kOvercast: return 1.05;
    case WeatherType::kLightRain: return 1.25;
    case WeatherType::kHeavyRain: return 1.55;
    case WeatherType::kThunderstorm: return 1.7;
    case WeatherType::kFog: return 1.15;
    case WeatherType::kHaze: return 1.1;
    case WeatherType::kWindy: return 1.05;
    case WeatherType::kSnow: return 1.6;
  }
  return 1.0;
}

double WeatherSupplyMultiplier(WeatherType type) {
  switch (type) {
    case WeatherType::kSunny: return 1.0;
    case WeatherType::kCloudy: return 1.0;
    case WeatherType::kOvercast: return 0.99;
    case WeatherType::kLightRain: return 0.9;
    case WeatherType::kHeavyRain: return 0.75;
    case WeatherType::kThunderstorm: return 0.65;
    case WeatherType::kFog: return 0.85;
    case WeatherType::kHaze: return 0.95;
    case WeatherType::kWindy: return 0.97;
    case WeatherType::kSnow: return 0.7;
  }
  return 1.0;
}

WeatherModel::WeatherModel(util::Rng rng) : rng_(rng) {}

WeatherType WeatherModel::NextType(WeatherType current) {
  // Sticky Markov chain: mostly stay, occasionally drift towards adjacent
  // severities; rain episodes persist for a few hours.
  double u = rng_.Uniform();
  auto t = static_cast<int>(current);
  if (u < 0.78) return current;
  if (u < 0.90) {
    // Drift one step along the sunny..thunderstorm axis.
    int axis_max = static_cast<int>(WeatherType::kThunderstorm);
    if (t <= axis_max) {
      int next = t + (rng_.Bernoulli(0.5) ? 1 : -1);
      if (next < 0) next = 0;
      if (next > axis_max) next = axis_max;
      return static_cast<WeatherType>(next);
    }
    return WeatherType::kCloudy;
  }
  // Rare jump to a special condition.
  double v = rng_.Uniform();
  if (v < 0.4) return WeatherType::kHaze;
  if (v < 0.7) return WeatherType::kFog;
  if (v < 0.95) return WeatherType::kWindy;
  return WeatherType::kSnow;
}

std::vector<data::WeatherRecord> WeatherModel::Generate(int num_days) {
  std::vector<data::WeatherRecord> out;
  out.reserve(static_cast<size_t>(num_days) * data::kMinutesPerDay);

  WeatherType type = WeatherType::kSunny;
  double pm25 = 60.0;
  for (int d = 0; d < num_days; ++d) {
    // Season drifts slowly across the simulated weeks (late winter→spring).
    double season_temp = 8.0 + 12.0 * static_cast<double>(d) / 60.0;
    double day_offset = rng_.Normal(0.0, 2.5);
    for (int hour = 0; hour < 24; ++hour) {
      type = NextType(type);
      pm25 = 0.92 * pm25 + 0.08 * 60.0 + rng_.Normal(0.0, 6.0);
      if (pm25 < 5.0) pm25 = 5.0;
      // Rain washes particulates out.
      if (type == WeatherType::kLightRain || type == WeatherType::kHeavyRain ||
          type == WeatherType::kThunderstorm) {
        pm25 *= 0.9;
      }
      double diurnal =
          5.5 * std::sin((hour - 9.0) / 24.0 * 2.0 * std::numbers::pi);
      double temp = season_temp + day_offset + diurnal;
      for (int m = 0; m < 60; ++m) {
        data::WeatherRecord w;
        w.day = d;
        w.ts = hour * 60 + m;
        w.type = static_cast<int>(type);
        w.temperature = static_cast<float>(temp);
        w.pm25 = static_cast<float>(pm25);
        out.push_back(w);
      }
    }
  }
  return out;
}

}  // namespace sim
}  // namespace deepsd
