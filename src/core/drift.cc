#include "core/drift.h"

#include <algorithm>
#include <cmath>

namespace deepsd {
namespace core {

size_t ReferenceHistogram::BucketOf(float v) const {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<size_t>(it - bounds.begin());
}

float InputActivity(const feature::ModelInput& input) {
  float sum = 0;
  for (float v : input.v_sd) sum += v;
  return sum;
}

ReferenceHistogram BuildInputReference(const InputSource& source, int bins,
                                       size_t max_items) {
  ReferenceHistogram ref;
  const size_t n = source.size();
  if (n == 0 || bins < 1 || max_items == 0) return ref;

  const size_t stride = n > max_items ? (n + max_items - 1) / max_items : 1;
  std::vector<float> values;
  values.reserve(n / stride + 1);
  for (size_t i = 0; i < n; i += stride) {
    values.push_back(InputActivity(source.Get(i)));
  }
  if (values.empty()) return ref;

  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  // Quantile edges at k/bins for k = 1..bins-1, deduplicated: heavy ties
  // (e.g. many all-zero windows) collapse into one bucket instead of
  // producing empty zero-width ones.
  for (int k = 1; k < bins; ++k) {
    const size_t idx = std::min(
        sorted.size() - 1, static_cast<size_t>(k) * sorted.size() /
                               static_cast<size_t>(bins));
    const float edge = sorted[idx];
    if (ref.bounds.empty() || edge > ref.bounds.back()) {
      ref.bounds.push_back(edge);
    }
  }
  ref.counts.assign(ref.bounds.size() + 1, 0);
  for (float v : values) ++ref.counts[ref.BucketOf(v)];
  return ref;
}

double PopulationStabilityIndex(const ReferenceHistogram& ref,
                                const std::vector<uint64_t>& live) {
  if (ref.empty() || live.size() != ref.counts.size()) return 0.0;
  double ref_total = 0, live_total = 0;
  for (uint64_t c : ref.counts) ref_total += static_cast<double>(c);
  for (uint64_t c : live) live_total += static_cast<double>(c);
  if (ref_total <= 0 || live_total <= 0) return 0.0;

  // Epsilon-smoothing: an empty bucket on either side contributes a large
  // but finite term instead of +inf.
  constexpr double kEps = 1e-4;
  double psi = 0;
  for (size_t b = 0; b < ref.counts.size(); ++b) {
    const double p =
        std::max(static_cast<double>(ref.counts[b]) / ref_total, kEps);
    const double q = std::max(static_cast<double>(live[b]) / live_total, kEps);
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

}  // namespace core
}  // namespace deepsd
