#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics_io.h"
#include "src/obs/obs.h"

namespace deepsd {
namespace obs {
namespace {

/// Turns telemetry on for the test and restores the prior state after, so
/// obs tests don't leak enablement into unrelated tests in this binary.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsMetricsTest, CounterIncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsMetricsTest, CounterIsNoOpWhenDisabled) {
  Counter c;
  SetEnabled(false);
  c.Inc(100);
  EXPECT_EQ(c.value(), 0u);
  SetEnabled(true);
  c.Inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  SetEnabled(false);
  g.Set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST_F(ObsMetricsTest, HistogramBasicAccounting) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.5, 3.0, 5.0, 100.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  std::vector<uint64_t> expected = {1, 1, 1, 1, 1};  // one per bucket
  EXPECT_EQ(h.bucket_counts(), expected);
}

TEST_F(ObsMetricsTest, EmptyHistogramReadsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST_F(ObsMetricsTest, QuantilesOnKnownUniformDistribution) {
  // 1..1000 into unit-width buckets: interpolation should land within one
  // bucket width of the exact order statistic.
  std::vector<double> bounds;
  for (int i = 10; i <= 1000; i += 10) bounds.push_back(i);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.90), 900.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST_F(ObsMetricsTest, QuantileClipsOpenEndedBucketsToObservedRange) {
  Histogram h({10.0, 100.0});
  // Everything lands in the overflow bucket; quantiles must stay inside
  // [min, max] rather than extrapolating to infinity.
  for (double v : {200.0, 300.0, 400.0}) h.Observe(v);
  EXPECT_GE(h.Quantile(0.5), 200.0);
  EXPECT_LE(h.Quantile(0.99), 400.0);
}

TEST_F(ObsMetricsTest, QuantileOfSingleObservationIsThatObservation) {
  Histogram h({10.0, 100.0});
  h.Observe(42.0);
  // One sample: every quantile collapses to it (interpolation inside the
  // (10, 100] bucket must clip to the observed min == max).
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST_F(ObsMetricsTest, QuantileAllMassInOverflowStaysFiniteAndOrdered) {
  Histogram h({1.0});
  for (int i = 0; i < 100; ++i) h.Observe(1000.0 + i);
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LE(p99, 1099.0);
  EXPECT_LE(p50, p99);
  EXPECT_TRUE(std::isfinite(p50));
}

TEST_F(ObsMetricsTest, ResetValuesRacingWritersStaysConsistent) {
  // ResetValues while writers hammer the metrics: the TSAN job certifies
  // no data race, and afterwards one clean reset must read all-zero.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test/reset_race_counter");
  Gauge* g = reg.GetGauge("test/reset_race_gauge");
  Histogram* h = reg.GetHistogram("test/reset_race_histo");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Inc();
        g->Set(5.0);
        h->Observe(3.0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) reg.ResetValues();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();

  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, 0u);
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsFromFourThreadsAreExact) {
  Counter c;
  Histogram h(Histogram::ExponentialBounds(1.0, 2.0, 20));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
        h.Observe(static_cast<double>(t * kPerThread + i % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST_F(ObsMetricsTest, RegistryReturnsStablePointersAndSnapshots) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("test/registry_counter");
  Counter* c2 = reg.GetCounter("test/registry_counter");
  EXPECT_EQ(c1, c2);
  c1->Reset();
  c1->Inc(7);
  Histogram* h = reg.GetHistogram("test/registry_histo");
  h->Reset();
  h->Observe(3.0);

  bool saw_counter = false, saw_histo = false;
  for (const MetricSnapshot& s : reg.Snapshot()) {
    if (s.name == "test/registry_counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, MetricSnapshot::Kind::kCounter);
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    }
    if (s.name == "test/registry_histo") {
      saw_histo = true;
      EXPECT_EQ(s.kind, MetricSnapshot::Kind::kHistogram);
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histo);
}

TEST_F(ObsMetricsTest, JsonLinesRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test/io_counter")->Reset();
  reg.GetCounter("test/io_counter")->Inc(5);
  Histogram* h = reg.GetHistogram("test/io_histo");
  h->Reset();
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));

  std::string path =
      ::testing::TempDir() + "/obs_metrics_roundtrip.jsonl";
  ASSERT_TRUE(WriteJsonLines(reg.Snapshot(), path).ok());

  std::vector<MetricSnapshot> loaded;
  ASSERT_TRUE(LoadJsonLines(path, &loaded).ok());
  ASSERT_FALSE(loaded.empty());
  bool saw_counter = false, saw_histo = false;
  for (const MetricSnapshot& s : loaded) {
    if (s.name == "test/io_counter") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(s.value, 5.0);
    }
    if (s.name == "test/io_histo") {
      saw_histo = true;
      EXPECT_EQ(s.count, 100u);
      EXPECT_DOUBLE_EQ(s.sum, 5050.0);
      EXPECT_NEAR(s.p50, 50.0, 20.0);  // default ×2 buckets are coarse
      EXPECT_GT(s.p99, s.p50);
      EXPECT_EQ(s.bucket_counts.size(), s.bounds.size() + 1);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histo);
  std::remove(path.c_str());
}

TEST_F(ObsMetricsTest, RenderTableListsEveryMetric) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test/render_counter")->Inc();
  reg.GetHistogram("test/render_histo")->Observe(1.0);
  std::string table = RenderTable(reg.Snapshot());
  EXPECT_NE(table.find("test/render_counter"), std::string::npos);
  EXPECT_NE(table.find("test/render_histo"), std::string::npos);
  EXPECT_NE(table.find("P99"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace deepsd
