#ifndef DEEPSD_OBS_JSON_H_
#define DEEPSD_OBS_JSON_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace deepsd {
namespace obs {
namespace json {

/// Minimal JSON support for the telemetry dump formats: enough of a writer
/// (string quoting, number formatting) and a recursive-descent parser to
/// round-trip the JSON this library itself emits, so the report tool and
/// tests need no external dependency. Not a general-purpose library: no
/// \uXXXX decoding beyond pass-through, numbers parsed as double.

/// `"`-quoted JSON string with the standard escapes.
std::string Quote(const std::string& s);
/// Shortest round-trip double rendering ("%.17g", integers without ".0").
std::string Number(double v);

/// Parsed JSON value (tree-owning).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  // Vector-of-pairs keeps insertion order; lookups are linear but the
  // telemetry objects have ~10 keys.
  std::vector<std::pair<std::string, Value>> object;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
  /// Member's number with a default; works only on objects.
  double NumberOr(const std::string& key, double fallback) const;
  /// Member's string with a default; works only on objects.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parses one complete JSON document (surrounding whitespace allowed).
/// Returns false and fills `error` (with a byte offset) on malformed input.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace json
}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_JSON_H_
