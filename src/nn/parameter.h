#ifndef DEEPSD_NN_PARAMETER_H_
#define DEEPSD_NN_PARAMETER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepsd {
namespace nn {

/// A trainable weight matrix with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Frozen parameters are skipped by the optimizer (used to study
  /// fine-tuning, paper Sec V-C / Fig 16).
  bool frozen = false;
};

/// A tensor addressed by parameter name — the serialization-friendly form
/// used by optimizer state export and trainer checkpoints, where raw
/// Parameter pointers cannot survive a process restart.
struct NamedTensor {
  std::string name;
  Tensor value;
};

/// Weight initialization schemes.
enum class Init {
  kZero,
  kGlorotUniform,  ///< U(±sqrt(6/(fan_in+fan_out))) — FC weights.
  kHeUniform,      ///< U(±sqrt(6/fan_in)) — relu-family layers.
  kEmbedding,      ///< U(±0.05), standard small-range embedding init.
};

/// Owns all parameters of a model. Parameters are created once (layer
/// constructors) and referenced by raw pointer thereafter; the store is the
/// unit of optimization, serialization and parameter counting.
class ParameterStore {
 public:
  /// Creates (or returns, when a parameter of this name and shape already
  /// exists) a parameter. Re-use by name is what makes fine-tuning work: a
  /// rebuilt model picks up previously trained weights from the same store.
  Parameter* Create(const std::string& name, int rows, int cols, Init init,
                    util::Rng* rng);

  /// Looks up by name; nullptr if absent.
  Parameter* Find(const std::string& name);
  const Parameter* Find(const std::string& name) const;

  const std::vector<std::unique_ptr<Parameter>>& parameters() const {
    return params_;
  }
  std::vector<std::unique_ptr<Parameter>>& parameters() { return params_; }

  /// Total number of scalar weights.
  size_t NumWeights() const;

  /// Zeroes every gradient (call before each batch).
  void ZeroGrads();

  /// Marks parameters whose name starts with `prefix` as frozen/unfrozen.
  void SetFrozen(const std::string& prefix, bool frozen);

  /// Binary round-trip of all parameter values (format "DSP1").
  util::Status Save(const std::string& path) const;
  /// Loads values into matching (same name and shape) parameters; unknown
  /// names in the file are ignored, missing ones keep their current values.
  /// `*loaded` (optional) reports how many parameters were filled.
  util::Status Load(const std::string& path, int* loaded = nullptr);

  /// Deep copy of all values from `other` for parameters with matching
  /// name and shape. Returns the number copied.
  int CopyFrom(const ParameterStore& other);

  /// Element-wise average of the values of `stores` into this store
  /// (all must have identical structure). Implements the paper's
  /// "average of the models in the best 10 epochs".
  void AverageFrom(const std::vector<const ParameterStore*>& stores);

  /// Clone with identical names/shapes/values (fresh gradients).
  std::unique_ptr<ParameterStore> Clone() const;

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Fills `t` in place according to `init`.
void InitTensor(Tensor* t, Init init, util::Rng* rng);

/// Shard-local gradient accumulator for data-parallel training.
///
/// Holds one zero-initialized tensor per parameter of a store, aligned
/// with store->parameters() order. A Graph pointed at a GradBuffer (see
/// Graph::set_grad_buffer) accumulates parameter gradients here instead of
/// Parameter::grad, so concurrent backward passes never touch shared
/// state; the trainer then reduces the per-shard buffers in a fixed tree
/// order and writes the result into the store (docs/parallelism.md).
///
/// Buffers are reused across batches: Zero() each shard's buffer at the
/// start of its task rather than reallocating.
class GradBuffer {
 public:
  explicit GradBuffer(const ParameterStore& store);

  /// The accumulator for `p`; `p` must belong to the construction store.
  Tensor& grad(const Parameter* p);

  /// Accumulator of the parameter at `index` in store->parameters() order.
  Tensor& at(size_t index) { return grads_[index]; }
  const Tensor& at(size_t index) const { return grads_[index]; }
  size_t size() const { return grads_.size(); }

  /// Zeroes every accumulator.
  void Zero();

 private:
  std::vector<Tensor> grads_;
  std::unordered_map<const Parameter*, size_t> index_;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_PARAMETER_H_
