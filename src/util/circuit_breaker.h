#ifndef DEEPSD_UTIL_CIRCUIT_BREAKER_H_
#define DEEPSD_UTIL_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "util/deadline.h"

namespace deepsd {
namespace obs {
class Counter;
class Gauge;
}  // namespace obs
namespace util {

/// Classic three-state circuit breaker guarding a dependency that has
/// started failing (here: a predictor missing its deadlines or answering
/// from the tier-3 baseline — an answer the caller could compute itself).
///
///   kClosed   — healthy; requests flow. `failure_threshold` *consecutive*
///               failures trip the breaker.
///   kOpen     — requests are refused outright for `open_duration_us`;
///               the caller uses its own fallback instead of queueing work
///               on a dependency that is already drowning.
///   kHalfOpen — after the open window, up to `half_open_probes` requests
///               are let through as probes. Any probe failure re-opens
///               (and re-arms the window); `half_open_probes` consecutive
///               successes close the breaker.
///
/// Allow() is the gate callers ask before dispatching; RecordSuccess /
/// RecordFailure feed outcomes back. All methods are thread-safe, and the
/// *At variants take an explicit NowSteadyUs() timestamp so tests drive a
/// virtual clock. State changes are observable through the `<name>/state`
/// gauge (0 closed / 1 open / 2 half-open) and `<name>/opened` /
/// `<name>/rejected` counters in the obs registry.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Config {
    /// Consecutive failures that trip a closed breaker.
    int failure_threshold = 5;
    /// How long an open breaker refuses everything before probing.
    int64_t open_duration_us = 1'000'000;
    /// Probes admitted half-open; this many consecutive successes close.
    int half_open_probes = 2;
    /// Metric prefix ("breaker" → breaker/state, breaker/opened, ...).
    std::string name = "breaker";
  };

  CircuitBreaker();  ///< Default Config.
  explicit CircuitBreaker(Config config);

  /// True when a request may proceed. Transitions open → half-open once
  /// the open window has elapsed; half-open admits at most
  /// `half_open_probes` outstanding probes until their outcomes arrive.
  bool Allow() { return AllowAt(NowSteadyUs()); }
  bool AllowAt(int64_t now_us);

  void RecordSuccess() { RecordSuccessAt(NowSteadyUs()); }
  void RecordSuccessAt(int64_t now_us);
  void RecordFailure() { RecordFailureAt(NowSteadyUs()); }
  void RecordFailureAt(int64_t now_us);
  /// Returns an Allow()-granted half-open probe slot without recording an
  /// outcome — for callers that shed the request after Allow() for an
  /// unrelated reason (rate limit, full queue) and never dispatched it.
  void CancelProbe();

  State state() const;
  /// Times the breaker transitioned closed/half-open → open.
  uint64_t times_opened() const;
  /// Requests refused by Allow().
  uint64_t rejected() const;

  const Config& config() const { return config_; }

  /// Back to closed with counters' consecutive streaks cleared (tests,
  /// phase boundaries). Cumulative times_opened/rejected are kept.
  void Reset();

  static const char* StateName(State s);

 private:
  void TransitionLocked(State next, int64_t now_us);

  Config config_;

  // Registry pointers are process-lifetime; resolved once at construction
  // so the deny path under overload never touches the registry lock.
  obs::Gauge* state_gauge_;
  obs::Counter* opened_counter_;
  obs::Counter* rejected_counter_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int probes_in_flight_ = 0;
  int64_t opened_at_us_ = 0;
  uint64_t times_opened_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_CIRCUIT_BREAKER_H_
