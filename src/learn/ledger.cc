#include "learn/ledger.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/byte_io.h"
#include "util/crc32.h"

namespace deepsd {
namespace learn {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'P', 'L', '1', '\0', '\0', '\0'};
constexpr uint32_t kMaxPayload = 1u << 20;

std::vector<char> EncodeRecord(const LedgerRecord& r) {
  util::ByteWriter w;
  w.PutPod<uint64_t>(r.seq);
  w.PutPod<uint8_t>(static_cast<uint8_t>(r.event));
  w.PutPod<int64_t>(r.t_abs);
  w.PutString(r.candidate_id);
  w.PutString(r.artifact_path);
  w.PutString(r.prior_version);
  w.PutPod<double>(r.serving_mae);
  w.PutPod<double>(r.candidate_mae);
  w.PutPod<double>(r.serving_rmse);
  w.PutPod<double>(r.candidate_rmse);
  w.PutPod<uint64_t>(r.shadow_samples);
  w.PutString(r.note);
  return w.TakeBytes();
}

bool DecodeRecord(const char* data, size_t size, LedgerRecord* r) {
  util::ByteReader reader(data, size);
  uint8_t event = 0;
  if (!reader.GetPod(&r->seq) || !reader.GetPod(&event) ||
      !reader.GetPod(&r->t_abs) || !reader.GetString(&r->candidate_id) ||
      !reader.GetString(&r->artifact_path) ||
      !reader.GetString(&r->prior_version) ||
      !reader.GetPod(&r->serving_mae) || !reader.GetPod(&r->candidate_mae) ||
      !reader.GetPod(&r->serving_rmse) ||
      !reader.GetPod(&r->candidate_rmse) ||
      !reader.GetPod(&r->shadow_samples) || !reader.GetString(&r->note)) {
    return false;
  }
  if (event < 1 || event > 10) return false;
  if (reader.remaining() != 0) return false;
  r->event = static_cast<LedgerEvent>(event);
  return true;
}

/// Parses every intact frame of `bytes` (which must start with the magic).
/// Returns the byte offset where the intact prefix ends; everything past
/// it is a torn/corrupt tail.
size_t ParseFrames(const std::vector<char>& bytes,
                   std::vector<LedgerRecord>* out) {
  size_t pos = sizeof(kMagic);
  while (pos + 8 <= bytes.size()) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len == 0 || len > kMaxPayload || pos + 8 + len > bytes.size()) break;
    const char* payload = bytes.data() + pos + 8;
    if (util::Crc32(payload, len) != crc) break;
    LedgerRecord record;
    if (!DecodeRecord(payload, len, &record)) break;
    out->push_back(std::move(record));
    pos += 8 + len;
  }
  return pos;
}

}  // namespace

const char* LedgerEventName(LedgerEvent event) {
  switch (event) {
    case LedgerEvent::kFineTuneStarted: return "fine_tune_started";
    case LedgerEvent::kCandidatePacked: return "candidate_packed";
    case LedgerEvent::kShadowStarted: return "shadow_started";
    case LedgerEvent::kShadowResult: return "shadow_result";
    case LedgerEvent::kPromoting: return "promoting";
    case LedgerEvent::kPromoted: return "promoted";
    case LedgerEvent::kRejected: return "rejected";
    case LedgerEvent::kRollbackStarted: return "rollback_started";
    case LedgerEvent::kRolledBack: return "rolled_back";
    case LedgerEvent::kAborted: return "aborted";
  }
  return "unknown";
}

PromotionLedger::~PromotionLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status PromotionLedger::Open() {
  static obs::Counter* torn_counter =
      obs::MetricsRegistry::Global().GetCounter("learn/ledger_torn_tail");
  if (file_ != nullptr) {
    return util::Status::FailedPrecondition("ledger already open");
  }

  std::vector<char> bytes;
  util::Status read = util::ReadFileBytes(path_, &bytes);
  if (read.ok()) {
    if (bytes.size() < sizeof(kMagic) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      return util::Status::IoError("not a promotion ledger: " + path_);
    }
    records_.clear();
    const size_t intact = ParseFrames(bytes, &records_);
    torn_bytes_ = bytes.size() - intact;
    if (torn_bytes_ > 0) {
      // Drop the torn tail durably before appending anything after it.
      torn_counter->Inc();
      DEEPSD_RETURN_IF_ERROR(
          util::AtomicWriteFile(path_, bytes.data(), intact));
    }
  } else {
    // Fresh ledger: seal the magic atomically so a half-created file can
    // never be mistaken for an empty-but-valid ledger.
    DEEPSD_RETURN_IF_ERROR(
        util::AtomicWriteFile(path_, kMagic, sizeof(kMagic)));
  }
  next_seq_ = records_.empty() ? 1 : records_.back().seq + 1;

  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return util::Status::IoError("open for append failed: " + path_ + ": " +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

util::Status PromotionLedger::AppendFrame(const std::vector<char>& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = util::Crc32(payload.data(), payload.size());
  if (std::fwrite(&len, 4, 1, file_) != 1 ||
      std::fwrite(&crc, 4, 1, file_) != 1 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fflush(file_) != 0) {
    return util::Status::IoError("ledger append failed: " + path_);
  }
  return util::Status::OK();
}

util::Status PromotionLedger::Append(LedgerRecord record) {
  static obs::Counter* appended =
      obs::MetricsRegistry::Global().GetCounter("learn/ledger_records");
  if (file_ == nullptr) {
    return util::Status::FailedPrecondition("ledger not open");
  }
  record.seq = next_seq_;
  DEEPSD_RETURN_IF_ERROR(AppendFrame(EncodeRecord(record)));
  ++next_seq_;
  appended->Inc();
  records_.push_back(std::move(record));
  return util::Status::OK();
}

LedgerState PromotionLedger::Derive(const std::vector<LedgerRecord>& records) {
  LedgerState state;
  if (!records.empty()) state.next_seq = records.back().seq + 1;

  // Committed chain: promotions move it forward, rollbacks move it back.
  for (const LedgerRecord& r : records) {
    if (r.event == LedgerEvent::kPromoted) {
      state.committed_version = r.candidate_id;
      state.committed_artifact = r.artifact_path;
    } else if (r.event == LedgerEvent::kRolledBack ||
               r.event == LedgerEvent::kRollbackStarted) {
      // An open kRollbackStarted resolves as rolled back: the watchdog
      // already judged the incident, and re-serving the regressed model
      // after a crash would repeat it.
      state.committed_version = r.prior_version;
      state.committed_artifact = r.artifact_path;
    }
  }

  // In-flight stage: the last record, unless it is terminal.
  if (!records.empty()) {
    const LedgerRecord& last = records.back();
    state.last_event = last.event;
    switch (last.event) {
      case LedgerEvent::kFineTuneStarted:
      case LedgerEvent::kCandidatePacked:
      case LedgerEvent::kShadowStarted:
      case LedgerEvent::kShadowResult:
      case LedgerEvent::kPromoting:
        state.in_flight = true;
        state.in_flight_candidate = last.candidate_id;
        state.in_flight_artifact = last.artifact_path;
        state.in_flight_serving_mae = last.serving_mae;
        break;
      case LedgerEvent::kRollbackStarted:
        state.in_flight_prior_version = last.prior_version;
        break;
      default:
        break;
    }
    // A candidate mid-pipeline may have its artifact path only on an
    // earlier record (kShadowStarted carries it; kShadowResult repeats it).
    if (state.in_flight && state.in_flight_artifact.empty()) {
      for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->candidate_id == state.in_flight_candidate &&
            !it->artifact_path.empty()) {
          state.in_flight_artifact = it->artifact_path;
          break;
        }
      }
    }
  }
  return state;
}

util::Status PromotionLedger::Replay(const std::string& path,
                                     std::vector<LedgerRecord>* out,
                                     uint64_t* torn_bytes) {
  std::vector<char> bytes;
  DEEPSD_RETURN_IF_ERROR(util::ReadFileBytes(path, &bytes));
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::IoError("not a promotion ledger: " + path);
  }
  out->clear();
  const size_t intact = ParseFrames(bytes, out);
  if (torn_bytes != nullptr) *torn_bytes = bytes.size() - intact;
  return util::Status::OK();
}

}  // namespace learn
}  // namespace deepsd
