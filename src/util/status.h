#ifndef DEEPSD_UTIL_STATUS_H_
#define DEEPSD_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace deepsd {
namespace util {

/// Lightweight error-reporting type used across the public API instead of
/// exceptions (paper-repro code is often embedded in services that compile
/// with -fno-exceptions). Mirrors the shape of absl::Status / arrow::Status.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kIoError,
    kInternal,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: batch size must be > 0".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kFailedPrecondition: return "FailedPrecondition";
      case Code::kIoError: return "IoError";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define DEEPSD_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::deepsd::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_STATUS_H_
