#include "serving/shard_ring.h"

#include <algorithm>

#include "util/logging.h"

namespace deepsd {
namespace serving {

namespace {

/// SplitMix64 finalizer — the same full-avalanche mix util::Rng seeds
/// with. Every input bit flips every output bit with probability ~1/2,
/// which is exactly what ring placement needs from consecutive area ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Domain tags keeping vnode keys and area keys in disjoint hash input
// spaces. Without them, area id a and vnode key (shard·0x10001 + v + 1)
// hash IDENTICALLY whenever the integers coincide — areas 1..512 land
// exactly on shard 0's ring points and lower_bound's >= assigns them all
// to shard 0, a ~50% load skew at 1000 areas that the balance property
// tests catch.
constexpr uint64_t kVnodeDomain = 0x564E4F44452D2D2DULL;
constexpr uint64_t kAreaDomain = 0x415245412D2D2D2DULL;

}  // namespace

ShardRing::ShardRing(ShardRingConfig config) : config_(config) {
  DEEPSD_CHECK_MSG(config_.num_shards >= 1, "ShardRing needs >= 1 shard");
  DEEPSD_CHECK_MSG(config_.vnodes_per_shard >= 1,
                   "ShardRing needs >= 1 vnode per shard");
  ring_.reserve(static_cast<size_t>(config_.num_shards) *
                static_cast<size_t>(config_.vnodes_per_shard));
  for (int shard = 0; shard < config_.num_shards; ++shard) {
    for (int v = 0; v < config_.vnodes_per_shard; ++v) {
      // A point's position depends only on (seed, shard, vnode): adding
      // shard S+1 inserts its points without touching shards 0..S, which
      // is where the minimal-movement property comes from.
      const uint64_t key = config_.seed ^ kVnodeDomain ^
                           Mix64(static_cast<uint64_t>(shard) * 0x10001ULL +
                                 static_cast<uint64_t>(v) + 1);
      ring_.push_back({Mix64(key), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Ties broken by shard id so the ring is a total order — placement
    // must never depend on std::sort's handling of equal keys.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

int ShardRing::ShardOf(int area) const {
  if (config_.num_shards == 1) return 0;
  const uint64_t h =
      Mix64(config_.seed ^ kAreaDomain ^
            Mix64(static_cast<uint64_t>(static_cast<int64_t>(area))));
  // First ring point clockwise of (>= ) the key; wrap to the start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t key) { return p.hash < key; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::vector<std::vector<int>> ShardRing::Partition(
    const std::vector<int>& area_ids) const {
  std::vector<std::vector<int>> parts(
      static_cast<size_t>(config_.num_shards));
  for (int area : area_ids) {
    parts[static_cast<size_t>(ShardOf(area))].push_back(area);
  }
  return parts;
}

std::vector<int> ShardRing::LoadHistogram(int num_areas) const {
  std::vector<int> loads(static_cast<size_t>(config_.num_shards), 0);
  for (int a = 0; a < num_areas; ++a) {
    ++loads[static_cast<size_t>(ShardOf(a))];
  }
  return loads;
}

}  // namespace serving
}  // namespace deepsd
