#include "core/drift.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace deepsd {
namespace core {

size_t ReferenceHistogram::BucketOf(float v) const {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<size_t>(it - bounds.begin());
}

util::Status ReferenceHistogram::Validate() const {
  if (counts.empty() && bounds.empty()) return util::Status::OK();
  if (counts.size() != bounds.size() + 1) {
    return util::Status::InvalidArgument(
        "reference histogram: counts/bounds size mismatch (" +
        std::to_string(counts.size()) + " counts, " +
        std::to_string(bounds.size()) + " bounds)");
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i])) {
      return util::Status::InvalidArgument(
          "reference histogram: non-finite bound at index " +
          std::to_string(i));
    }
    if (i > 0 && bounds[i] <= bounds[i - 1]) {
      return util::Status::InvalidArgument(
          "reference histogram: bounds not strictly ascending at index " +
          std::to_string(i));
    }
  }
  return util::Status::OK();
}

float InputActivity(const feature::ModelInput& input) {
  float sum = 0;
  for (float v : input.v_sd) sum += v;
  return sum;
}

ReferenceHistogram BuildInputReference(const InputSource& source, int bins,
                                       size_t max_items) {
  ReferenceHistogram ref;
  const size_t n = source.size();
  if (n == 0 || bins < 1 || max_items == 0) return ref;

  const size_t stride = n > max_items ? (n + max_items - 1) / max_items : 1;
  std::vector<float> values;
  values.reserve(n / stride + 1);
  for (size_t i = 0; i < n; i += stride) {
    values.push_back(InputActivity(source.Get(i)));
  }
  if (values.empty()) return ref;

  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  // Quantile edges at k/bins for k = 1..bins-1, deduplicated: heavy ties
  // (e.g. many all-zero windows) collapse into one bucket instead of
  // producing empty zero-width ones.
  for (int k = 1; k < bins; ++k) {
    const size_t idx = std::min(
        sorted.size() - 1, static_cast<size_t>(k) * sorted.size() /
                               static_cast<size_t>(bins));
    const float edge = sorted[idx];
    if (ref.bounds.empty() || edge > ref.bounds.back()) {
      ref.bounds.push_back(edge);
    }
  }
  ref.counts.assign(ref.bounds.size() + 1, 0);
  for (float v : values) ++ref.counts[ref.BucketOf(v)];
  return ref;
}

util::Status PopulationStabilityIndex(const ReferenceHistogram& ref,
                                      const std::vector<uint64_t>& live,
                                      double* psi) {
  *psi = 0.0;
  if (ref.empty()) return util::Status::OK();
  DEEPSD_RETURN_IF_ERROR(ref.Validate());
  if (live.size() != ref.counts.size()) {
    return util::Status::InvalidArgument(
        "PSI: live bucket count " + std::to_string(live.size()) +
        " != reference bucket count " + std::to_string(ref.counts.size()));
  }
  // Single-bucket reference: both distributions put all mass in the one
  // bin, so p == q == 1 and the PSI is exactly 0 — return early rather
  // than relying on floating-point cancellation.
  if (ref.counts.size() == 1) return util::Status::OK();

  double ref_total = 0, live_total = 0;
  for (uint64_t c : ref.counts) ref_total += static_cast<double>(c);
  for (uint64_t c : live) live_total += static_cast<double>(c);
  if (ref_total <= 0 || live_total <= 0) return util::Status::OK();

  // Epsilon-smoothing: an empty bucket on either side contributes a large
  // but finite term instead of +inf.
  constexpr double kEps = 1e-4;
  double sum = 0;
  for (size_t b = 0; b < ref.counts.size(); ++b) {
    const double p =
        std::max(static_cast<double>(ref.counts[b]) / ref_total, kEps);
    const double q = std::max(static_cast<double>(live[b]) / live_total, kEps);
    sum += (q - p) * std::log(q / p);
  }
  *psi = sum;
  return util::Status::OK();
}

double PopulationStabilityIndex(const ReferenceHistogram& ref,
                                const std::vector<uint64_t>& live) {
  double psi = 0.0;
  if (!PopulationStabilityIndex(ref, live, &psi).ok()) return 0.0;
  return psi;
}

}  // namespace core
}  // namespace deepsd
