#include "src/util/cli.h"

#include <gtest/gtest.h>

namespace deepsd {
namespace util {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CommandLine(static_cast<int>(args.size()), args.data());
}

TEST(CommandLineTest, EqualsForm) {
  CommandLine cli = Parse({"--out=file.bin", "--areas=12"});
  EXPECT_EQ(cli.GetString("out"), "file.bin");
  EXPECT_EQ(cli.GetInt("areas", 0), 12);
}

TEST(CommandLineTest, SpaceForm) {
  CommandLine cli = Parse({"--out", "file.bin", "--areas", "12"});
  EXPECT_EQ(cli.GetString("out"), "file.bin");
  EXPECT_EQ(cli.GetInt("areas", 0), 12);
}

TEST(CommandLineTest, BareBooleanFlag) {
  CommandLine cli = Parse({"--verbose", "--no_weather"});
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_TRUE(cli.GetBool("no_weather", false));
  EXPECT_FALSE(cli.GetBool("missing", false));
  EXPECT_TRUE(cli.GetBool("missing", true));
}

TEST(CommandLineTest, BooleanValues) {
  CommandLine cli = Parse({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(cli.GetBool("a", false));
  EXPECT_FALSE(cli.GetBool("b", true));
  EXPECT_TRUE(cli.GetBool("c", false));
  EXPECT_FALSE(cli.GetBool("d", true));
}

TEST(CommandLineTest, Positionals) {
  CommandLine cli = Parse({"first", "--k=v", "second"});
  EXPECT_EQ(cli.positionals(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(CommandLineTest, Defaults) {
  CommandLine cli = Parse({});
  EXPECT_EQ(cli.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.GetDouble("missing", 2.5), 2.5);
}

TEST(CommandLineTest, DoubleParsing) {
  CommandLine cli = Parse({"--lr=1e-3", "--scale=0.5"});
  EXPECT_DOUBLE_EQ(cli.GetDouble("lr", 0), 1e-3);
  EXPECT_DOUBLE_EQ(cli.GetDouble("scale", 0), 0.5);
}

TEST(CommandLineTest, CheckKnown) {
  CommandLine cli = Parse({"--good=1", "--bad=2"});
  EXPECT_TRUE(cli.CheckKnown({"good", "bad"}).ok());
  Status st = cli.CheckKnown({"good"});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bad"), std::string::npos);
}

TEST(CommandLineTest, NegativeNumberValue) {
  CommandLine cli = Parse({"--offset", "-5"});
  // "-5" does not start with "--" so it is consumed as the value.
  EXPECT_EQ(cli.GetInt("offset", 0), -5);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
