#include "store/pack.h"

#include <memory>
#include <utility>

#include "store/artifact.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace deepsd {
namespace store {

util::Status PackModelArtifact(const core::DeepSDModel& model,
                               const nn::ParameterStore& params,
                               const baselines::EmpiricalAverage* ea,
                               const PackOptions& options,
                               const std::string& path) {
  Manifest manifest;
  manifest.version_id = options.version_id;
  manifest.mode = model.mode();
  manifest.config = model.config();

  ArtifactWriter writer;
  writer.AddSection(kSectionManifest, EncodeManifest(manifest));
  std::vector<char> idx, blob;
  EncodeParamsSections(params, options.encoding, &idx, &blob);
  writer.AddSection(kSectionParamsIndex, std::move(idx));
  writer.AddSection(kSectionParamsBlob, std::move(blob));
  if (ea != nullptr) {
    writer.AddSection(kSectionEa,
                      EncodeEaSection(ea->ToDense(model.config().num_areas)));
  }
  return writer.WriteFile(path);
}

util::Status PackCheckpointArtifact(const core::TrainerCheckpoint& ck,
                                    const core::DeepSDConfig& config,
                                    core::DeepSDModel::Mode mode,
                                    const baselines::EmpiricalAverage* ea,
                                    const PackOptions& options,
                                    const std::string& path) {
  nn::ParameterStore params;
  util::Rng rng(1);
  core::DeepSDModel model(config, mode, &params, &rng);
  // The checkpoint must cover the rebuilt structure exactly — a silent
  // partial apply would pack fresh random weights as if they were trained.
  for (const auto& p : params.parameters()) {
    bool found = false;
    for (const nn::NamedTensor& nt : ck.params) {
      if (nt.name == p->name) {
        if (!nt.value.SameShape(p->value)) {
          return util::Status::FailedPrecondition(util::StrFormat(
              "checkpoint parameter '%s' is [%d, %d] but the given config "
              "builds it as [%d, %d]",
              nt.name.c_str(), nt.value.rows(), nt.value.cols(),
              p->value.rows(), p->value.cols()));
        }
        found = true;
        break;
      }
    }
    if (!found) {
      return util::Status::FailedPrecondition(
          "checkpoint does not cover model parameter '" + p->name + "'");
    }
  }
  core::ApplyCheckpointParams(ck, &params);
  return PackModelArtifact(model, params, ea, options, path);
}

}  // namespace store
}  // namespace deepsd
