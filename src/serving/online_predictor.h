#ifndef DEEPSD_SERVING_ONLINE_PREDICTOR_H_
#define DEEPSD_SERVING_ONLINE_PREDICTOR_H_

#include <atomic>
#include <vector>

#include "baselines/empirical_average.h"
#include "core/model.h"
#include "feature/feature_assembler.h"
#include "serving/order_stream.h"
#include "store/versioned_model.h"
#include "util/deadline.h"
#include "util/status.h"

namespace deepsd {
namespace serving {

/// How degraded the inputs behind a prediction were — the fallback ladder
/// of docs/robustness.md, healthiest first. Serving never refuses to
/// answer; it steps down this ladder instead.
enum class FallbackTier {
  kNone = 0,           ///< All feeds fresh; full model inputs.
  kZeroOrderHold = 1,  ///< Weather/traffic briefly stale; last known value
                       ///< held in place of the missing minutes.
  kEmpiricalBlock = 2, ///< Order stream stalled (or env feeds long dead);
                       ///< real-time blocks replaced by the day-of-week
                       ///< empirical averages the model also trains on.
  kBaseline = 3,       ///< Stream dead past recovery (or non-finite model
                       ///< output); EmpiricalAverage baseline answers.
};

/// Per-call outcome of a prediction batch. Returned by value so concurrent
/// PredictBatch callers each see their own tier and deadline verdict.
struct PredictResult {
  /// One gap per requested area, in request order. Always fully populated:
  /// an expired deadline degrades the answer, it never truncates it.
  std::vector<float> gaps;
  /// The fallback tier this call was actually served at.
  FallbackTier tier = FallbackTier::kNone;
  /// True when the request's deadline expired at a cancellation checkpoint
  /// mid-pipeline: the remaining expensive stages were abandoned and the
  /// gaps come from the cheap path (baseline, or 0 without one), reported
  /// as tier kBaseline. The serving queue counts these as deadline misses.
  bool deadline_expired = false;
  /// Publish sequence of the model version this call was served from; 0
  /// when the predictor serves a static (unversioned) model. Every gap in
  /// `gaps` — including degraded and expired answers — came from this one
  /// version: a hot swap mid-call can never mix versions within a result.
  uint64_t model_sequence = 0;
};

/// Tap on completed prediction batches — the online accuracy tracker's
/// feed (eval/online_accuracy.h). Invoked on the predicting thread after
/// the batch is fully resolved (including deadline-expired answers, which
/// are served predictions too). Implementations must be thread-safe:
/// concurrent PredictBatch callers invoke it concurrently.
class PredictionObserver {
 public:
  virtual ~PredictionObserver() = default;
  /// `result.gaps[i]` answers `area_ids[i]` for the gap window starting at
  /// absolute minute `now_abs`. `activity[i]` is the input-activity scalar
  /// of area_ids[i]'s assembled features (core::InputActivity — the PSI
  /// drift feature); empty when the batch skipped assembly (baseline tier
  /// or an expired deadline).
  virtual void OnPrediction(const std::vector<int>& area_ids,
                            const PredictResult& result,
                            const std::vector<float>& activity,
                            int64_t now_abs) = 0;
};

/// Staleness thresholds of the fallback ladder, all in minutes.
struct FallbackConfig {
  /// Weather/traffic lags this recent count as fresh (feeds publish once a
  /// minute; 2 tolerates ordinary pipeline jitter without degrading).
  int env_fresh_minutes = 2;
  /// Zero-order-hold horizon for a stale weather/traffic feed; beyond it
  /// the unknown-value encoding (type 0 / zeros) takes over.
  int weather_hold_minutes = 15;
  int traffic_hold_minutes = 15;
  /// No order anywhere in the city for this long means the order feed is
  /// stalled (orders arrive every minute citywide at any realistic scale;
  /// a single quiet area is normal sparsity and never degrades).
  int order_stall_minutes = 20;
  /// An order-feed outage past this long falls all the way back to the
  /// EmpiricalAverage baseline.
  int baseline_after_minutes = 120;
};

/// Live serving front-end for a trained DeepSD model — the deployment shape
/// the paper's conclusion describes ("incorporating our prediction model
/// into the scheduling system of Didi").
///
/// Real-time vectors come from an OrderStreamBuffer fed by the live event
/// stream; the per-day-of-week historical ("empirical") vectors come from a
/// FeatureAssembler built over the training period. Feed events, advance
/// the clock, query gaps:
///
///   OnlinePredictor predictor(&model, &assembler);
///   predictor.buffer().AddOrder(order);              // as events arrive
///   predictor.AdvanceTo(day, minute);                // move the clock
///   std::vector<float> gaps = predictor.PredictAll();
///
/// Predictions degrade gracefully instead of failing when feeds stall: see
/// FallbackTier. CurrentTier() and the per-call PredictResult::tier expose
/// the degradation level, and the serving/degraded_predictions counter
/// (with per-tier counters) tracks it in the metrics registry.
class OnlinePredictor {
 public:
  /// `model` and `history` must outlive the predictor and share the same
  /// window / normalization configuration.
  OnlinePredictor(const core::DeepSDModel* model,
                  const feature::FeatureAssembler* history,
                  FallbackConfig fallback = {});

  /// Versioned (hot-swappable) variant: predictions resolve against
  /// `versions`' current published model — pinned per call, so one call
  /// never mixes versions — and SwapModel() publishes replacements with
  /// zero dropped or blocked requests (store/versioned_model.h).
  /// `versions` must already hold a published version (the swap path
  /// replaces models, it does not bootstrap an empty predictor) and must
  /// outlive the predictor.
  OnlinePredictor(store::VersionedModel* versions,
                  const feature::FeatureAssembler* history,
                  FallbackConfig fallback = {});

  OrderStreamBuffer& buffer() { return buffer_; }
  const OrderStreamBuffer& buffer() const { return buffer_; }

  /// Publishes a new model version for a versioned predictor: requests
  /// already in flight finish on the version they pinned, every later
  /// request sees the new one. Typed failures: FailedPrecondition when the
  /// predictor was built over a static model, InvalidArgument when the
  /// version is serving-incompatible with the current one.
  util::Status SwapModel(std::shared_ptr<const store::ModelVersion> version);

  /// True when this predictor serves hot-swappable versions.
  bool versioned() const { return versions_ != nullptr; }
  /// The publish sequence the next request would pin (0 when static).
  uint64_t current_model_sequence() const {
    return versions_ != nullptr ? versions_->stats().current_sequence : 0;
  }

  /// Attaches the last-resort baseline (tier 3). Optional — without it the
  /// ladder stops at the empirical block. `baseline` must outlive the
  /// predictor and be Fit on the same training period as `history`. A
  /// versioned predictor prefers the baseline packaged with the pinned
  /// model version and uses this one only when the version ships none.
  void set_baseline(const baselines::GapBaseline* baseline) {
    baseline_ = baseline;
  }

  const FallbackConfig& fallback_config() const { return fallback_; }

  /// The degradation tier the next prediction would be served at, from the
  /// current feed staleness. Cheap (three clock reads).
  FallbackTier CurrentTier() const;

  /// Attaches (or detaches, with nullptr) the prediction tap. The observer
  /// must be thread-safe and outlive the predictor or be detached first.
  void set_prediction_observer(PredictionObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  /// Moves the serving clock (delegates to the buffer).
  void AdvanceTo(int day, int minute) { buffer_.AdvanceTo(day, minute); }

  /// Predicted gap over [now, now+10) for one area.
  float Predict(int area) const;
  /// Predicted gaps for every area. Feature assembly and the forward pass
  /// are distributed over the shared thread pool; results are
  /// bit-identical for any --threads setting (docs/parallelism.md).
  std::vector<float> PredictAll() const;
  /// Predicted gaps for an arbitrary set of areas (e.g. the areas one
  /// dispatch shard owns), in the order given. Parallel like PredictAll;
  /// latency lands in the serving/predict_batch_us histogram.
  std::vector<float> PredictBatch(const std::vector<int>& area_ids) const;
  /// Deadline-aware variant with the per-call outcome: the deadline is
  /// checked at cheap cancellation checkpoints — on entry, per feature-
  /// assembly chunk, and between forward-pass sub-batches — and once it
  /// expires the remaining expensive stages are abandoned in favor of the
  /// baseline (see PredictResult::deadline_expired). An infinite deadline
  /// (the default Deadline) takes exactly the legacy code path, bit for
  /// bit. Counted in serving/predict_deadline_expired when abandoned.
  PredictResult PredictBatch(const std::vector<int>& area_ids,
                             util::Deadline deadline) const;
  /// Variant serving from an externally pinned model version — the
  /// scatter-gather path: ShardedPredictor::PredictCity pins ONE version
  /// and passes it to every shard's queue, so all slices of one city call
  /// resolve against the same model even while SwapModel publishes
  /// concurrently. An empty pin (default PinnedModel) resolves exactly
  /// like the two-argument overload.
  PredictResult PredictBatch(const std::vector<int>& area_ids,
                             util::Deadline deadline,
                             store::PinnedModel pinned) const;

  /// The assembled live features for one area at the current tier
  /// (exposed for tests: with fresh feeds it must agree with the offline
  /// FeatureAssembler on identical data).
  feature::ModelInput AssembleLive(int area) const;

  /// The cheapest answer available — the baseline per area, or 0 without
  /// one. This is the bottom rung every degraded path lands on; the
  /// sharded scatter-gather also answers a *shed* shard's areas from it so
  /// one drowning shard degrades instead of failing the whole city call.
  std::vector<float> CheapGaps(const std::vector<int>& area_ids) const;
  /// Pinned-version variant (see PredictBatch): a shed shard slice must be
  /// answered from the same version as its siblings.
  std::vector<float> CheapGaps(const std::vector<int>& area_ids,
                               store::PinnedModel pinned) const;

 private:
  /// The (model, baseline, sequence) one call serves from — a static
  /// predictor's members, or the pinned version's payload.
  struct Resolved {
    const core::DeepSDModel* model = nullptr;
    const baselines::GapBaseline* baseline = nullptr;
    uint64_t sequence = 0;
  };
  /// Resolves an external pin, or the members for an empty pin on a
  /// static predictor. An empty pin on a *versioned* predictor is resolved
  /// by the caller acquiring a Ref first (AssembleAndPredict does).
  Resolved Resolve(store::PinnedModel pinned) const;
  /// CurrentTier against a specific model (the tier depends on which
  /// input blocks the model consumes).
  FallbackTier TierFor(const core::DeepSDModel& model) const;
  /// Tier-aware assembly body.
  feature::ModelInput AssembleAtTier(int area, FallbackTier tier,
                                     const core::DeepSDModel& model) const;
  std::vector<float> CheapGapsFrom(const std::vector<int>& area_ids,
                                   const baselines::GapBaseline* baseline) const;
  /// Shared body of Predict/PredictAll/PredictBatch: tier decision, then
  /// parallel per-area assembly + one batched forward pass (or the
  /// baseline at tier 3), then the non-finite output guard. Deadline
  /// checkpoints abandon to the cheap path (CheapGaps). Pins the current
  /// version for the whole call when versioned and not already pinned.
  PredictResult AssembleAndPredict(const std::vector<int>& area_ids,
                                   util::Deadline deadline,
                                   store::PinnedModel pinned) const;

  const core::DeepSDModel* model_ = nullptr;  ///< null when versioned
  store::VersionedModel* versions_ = nullptr;  ///< null when static
  const feature::FeatureAssembler* history_;
  const baselines::GapBaseline* baseline_ = nullptr;
  FallbackConfig fallback_;
  std::atomic<PredictionObserver*> observer_{nullptr};
  OrderStreamBuffer buffer_;
};

}  // namespace serving
}  // namespace deepsd

#endif  // DEEPSD_SERVING_ONLINE_PREDICTOR_H_
