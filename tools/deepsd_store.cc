// deepsd_store: pack, verify, inspect, and diff DSAR1 model-store
// artifacts (docs/model_store.md) — the mmap-able serving format behind
// zero-copy replica sharing and hot swap.
//
//   deepsd_store pack --params=model.bin --data=city.bin --out=model.dsar
//                [--checkpoint=ck.bin instead of --params]
//                [--mode=basic|advanced] [--no_weather] [--no_traffic]
//                [--encoding=raw|compressed|quant] [--version_id=tag]
//                [--ea] [--ref_days=N]
//   deepsd_store verify model.dsar       # exit 0 iff fully valid
//   deepsd_store inspect model.dsar      # header, TOC, manifest, tensors
//   deepsd_store diff a.dsar b.dsar      # exit 0 same, 1 differ, 2 error

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/empirical_average.h"
#include "core/checkpoint.h"
#include "data/serialize.h"
#include "nn/parameter.h"
#include "store/model_store.h"
#include "store/pack.h"
#include "store/stored_model.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using namespace deepsd;

int Usage(const util::Status& st) {
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::fprintf(
      stderr,
      "usage:\n"
      "  deepsd_store pack --params=model.bin|--checkpoint=ck.bin "
      "--data=city.bin --out=model.dsar [--mode=basic|advanced] "
      "[--no_weather] [--no_traffic] [--encoding=raw|compressed|quant] "
      "[--version_id=tag] [--ea] [--ref_days=N]\n"
      "  deepsd_store verify model.dsar\n"
      "  deepsd_store inspect model.dsar\n"
      "  deepsd_store diff a.dsar b.dsar\n");
  return 2;
}

int Fail(const char* what, const util::Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

const char* EncodingName(store::TensorEncoding e) {
  switch (e) {
    case store::TensorEncoding::kRawF32: return "raw";
    case store::TensorEncoding::kCompressedF32: return "block";
    case store::TensorEncoding::kInt8: return "int8";
  }
  return "?";
}

const char* ModeName(core::DeepSDModel::Mode mode) {
  return mode == core::DeepSDModel::Mode::kAdvanced ? "advanced" : "basic";
}

int Pack(const util::CommandLine& cli) {
  if (!cli.Has("data") || !cli.Has("out") ||
      (cli.Has("params") == cli.Has("checkpoint"))) {
    return Usage(util::Status::InvalidArgument(
        "pack needs --data, --out, and exactly one of "
        "--params / --checkpoint"));
  }

  data::OrderDataset dataset;
  util::Status st = data::LoadDataset(cli.GetString("data"), &dataset);
  if (!st.ok()) return Fail("load dataset", st);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather =
      !cli.GetBool("no_weather", false) && dataset.has_weather();
  config.use_traffic =
      !cli.GetBool("no_traffic", false) && dataset.has_traffic();
  const bool advanced = cli.GetString("mode", "advanced") == "advanced";
  const core::DeepSDModel::Mode mode =
      advanced ? core::DeepSDModel::Mode::kAdvanced
               : core::DeepSDModel::Mode::kBasic;

  store::PackOptions options;
  options.version_id = cli.GetString("version_id", "unversioned");
  const std::string enc = cli.GetString("encoding", "raw");
  if (enc == "raw") {
    options.encoding = store::ParamEncoding::kRaw;
  } else if (enc == "compressed") {
    options.encoding = store::ParamEncoding::kCompressed;
  } else if (enc == "quant") {
    options.encoding = store::ParamEncoding::kQuant;
  } else {
    return Usage(util::Status::InvalidArgument(
        "--encoding must be raw, compressed, or quant"));
  }

  // Optional tier-3 baseline packaged with the artifact, fitted on the
  // same reference window the serving FeatureAssembler would use.
  baselines::EmpiricalAverage ea;
  const baselines::EmpiricalAverage* ea_ptr = nullptr;
  if (cli.GetBool("ea", false)) {
    const int ref_days = static_cast<int>(
        cli.GetInt("ref_days", dataset.num_days() * 2 / 3));
    ea.Fit(data::MakeTrainItems(dataset, 0, ref_days));
    ea_ptr = &ea;
  }

  const std::string out = cli.GetString("out");
  if (cli.Has("checkpoint")) {
    core::TrainerCheckpoint ck;
    st = core::LoadCheckpoint(cli.GetString("checkpoint"), &ck);
    if (!st.ok()) return Fail("load checkpoint", st);
    st = store::PackCheckpointArtifact(ck, config, mode, ea_ptr, options,
                                       out);
    if (!st.ok()) return Fail("pack", st);
  } else {
    nn::ParameterStore params;
    util::Rng rng(1);
    core::DeepSDModel model(config, mode, &params, &rng);
    int loaded = 0;
    st = params.Load(cli.GetString("params"), &loaded);
    if (!st.ok() || loaded == 0) {
      return Fail("load params", st.ok() ? util::Status::InvalidArgument(
                                               "no matching tensors")
                                         : st);
    }
    st = store::PackModelArtifact(model, params, ea_ptr, options, out);
    if (!st.ok()) return Fail("pack", st);
  }

  // Round-trip as proof of packaging: a pack that cannot be reopened is a
  // failure now, not at the swap that tries to serve it.
  std::shared_ptr<const store::StoredModel> reopened;
  st = store::StoredModel::Open(out, &reopened);
  if (!st.ok()) return Fail("reopen packed artifact", st);
  std::printf("packed %s  version_id %s  mode %s  encoding %s  ea %s\n",
              out.c_str(), reopened->version_id().c_str(),
              ModeName(reopened->manifest().mode), enc.c_str(),
              reopened->baseline() != nullptr ? "yes" : "no");
  return 0;
}

int Verify(const std::string& path) {
  std::shared_ptr<const store::ModelStore> ms;
  util::Status st = store::ModelStore::Open(path, &ms);
  if (!st.ok()) return Fail("open", st);
  st = ms->VerifyAll();
  if (!st.ok()) return Fail("section CRC", st);
  // Full bind: sections can be individually intact yet not describe a
  // servable model (missing tensor, bad manifest). verify means "a swap
  // to this artifact would succeed".
  std::shared_ptr<const store::StoredModel> sm;
  st = store::StoredModel::Open(path, &sm);
  if (!st.ok()) return Fail("bind", st);
  std::printf("%s: OK  (%zu sections, %zu bytes, version_id %s, "
              "%zu tensors)\n",
              path.c_str(), ms->section_count(), ms->file_size(),
              sm->version_id().c_str(), sm->params().parameters().size());
  return 0;
}

int Inspect(const std::string& path) {
  std::shared_ptr<const store::ModelStore> ms;
  util::Status st = store::ModelStore::Open(path, &ms);
  if (!st.ok()) return Fail("open", st);
  const store::FileHeader& h = ms->header();
  std::printf("%s: DSAR v%u (min reader v%u)  %zu bytes  page %u  "
              "%zu sections\n",
              path.c_str(), h.version, h.min_reader, ms->file_size(),
              h.page_size, ms->section_count());

  util::TablePrinter toc({"section", "offset", "bytes", "crc32"});
  for (size_t i = 0; i < ms->section_count(); ++i) {
    const store::SectionEntry& e = ms->entry(i);
    char off[32], len[32], crc[16];
    std::snprintf(off, sizeof(off), "%llu",
                  static_cast<unsigned long long>(e.offset));
    std::snprintf(len, sizeof(len), "%llu",
                  static_cast<unsigned long long>(e.length));
    std::snprintf(crc, sizeof(crc), "%08x", e.crc);
    toc.AddRow({store::SectionKindToString(e.kind), off, len, crc});
  }
  toc.Print();

  const char* data = nullptr;
  size_t size = 0;
  st = ms->Section(store::kSectionManifest, &data, &size);
  if (st.ok()) {
    store::Manifest m;
    st = store::DecodeManifest(data, size, &m);
    if (!st.ok()) return Fail("manifest", st);
    const core::DeepSDConfig& c = m.config;
    std::printf("manifest: version_id %s  mode %s  window %d  areas %d  "
                "weather %d  traffic %d  last_call %d  waiting %d\n",
                m.version_id.c_str(), ModeName(m.mode), c.window,
                c.num_areas, c.use_weather, c.use_traffic, c.use_last_call,
                c.use_waiting_time);
  }

  const char* blob = nullptr;
  size_t blob_size = 0;
  if (ms->Section(store::kSectionParamsIndex, &data, &size).ok() &&
      ms->Section(store::kSectionParamsBlob, &blob, &blob_size).ok()) {
    std::vector<store::TensorRecord> records;
    st = store::DecodeParamsIndex(data, size, blob_size, &records);
    if (!st.ok()) return Fail("params index", st);
    util::TablePrinter table(
        {"tensor", "shape", "enc", "bytes", "act_absmax"});
    size_t total = 0;
    for (const store::TensorRecord& r : records) {
      char shape[32], bytes[32], absmax[32];
      std::snprintf(shape, sizeof(shape), "%dx%d", r.rows, r.cols);
      std::snprintf(bytes, sizeof(bytes), "%llu",
                    static_cast<unsigned long long>(r.data_bytes +
                                                    r.scales_bytes));
      std::snprintf(absmax, sizeof(absmax), "%.4g", r.act_absmax);
      total += r.data_bytes + r.scales_bytes;
      table.AddRow({r.name, shape, EncodingName(r.encoding), bytes, absmax});
    }
    table.Print();
    std::printf("tensors %zu  payload bytes %zu\n", records.size(), total);
  }

  if (ms->Section(store::kSectionEa, &data, &size).ok()) {
    std::unique_ptr<store::MappedEmpiricalAverage> ea;
    st = store::MappedEmpiricalAverage::Create(data, size, &ea);
    if (!st.ok()) return Fail("ea section", st);
    std::printf("ea: %d areas (zero-copy tier-3 baseline)\n",
                ea->num_areas());
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  std::shared_ptr<const store::StoredModel> a, b;
  util::Status st = store::StoredModel::Open(path_a, &a);
  if (!st.ok()) return Fail(path_a.c_str(), st) + 1;  // 2 = error
  st = store::StoredModel::Open(path_b, &b);
  if (!st.ok()) return Fail(path_b.c_str(), st) + 1;

  bool differ = false;
  if (a->version_id() != b->version_id()) {
    std::printf("version_id: %s vs %s\n", a->version_id().c_str(),
                b->version_id().c_str());
    differ = true;
  }
  if (a->manifest().mode != b->manifest().mode) {
    std::printf("mode: %s vs %s\n", ModeName(a->manifest().mode),
                ModeName(b->manifest().mode));
    differ = true;
  }

  // Value-level comparison over the bound fp32 tensors: this sees through
  // encoding differences (a raw and a compressed artifact of the same
  // model diff clean; raw vs quant shows exactly the quantization error).
  util::TablePrinter table({"tensor", "status", "max_abs_diff"});
  for (const auto& pa : a->params().parameters()) {
    const nn::Parameter* pb = b->params().Find(pa->name);
    if (pb == nullptr) {
      table.AddRow({pa->name, "only in A", "-"});
      differ = true;
      continue;
    }
    const nn::Tensor& ta = pa->value;
    const nn::Tensor& tb = pb->value;
    if (ta.rows() != tb.rows() || ta.cols() != tb.cols()) {
      table.AddRow({pa->name, "shape mismatch", "-"});
      differ = true;
      continue;
    }
    float max_diff = 0.0f;
    for (size_t i = 0; i < ta.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(ta.data()[i] - tb.data()[i]));
    }
    if (max_diff > 0.0f) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", max_diff);
      table.AddRow({pa->name, "differs", buf});
      differ = true;
    }
  }
  for (const auto& pb : b->params().parameters()) {
    if (a->params().Find(pb->name) == nullptr) {
      table.AddRow({pb->name, "only in B", "-"});
      differ = true;
    }
  }
  if (differ) {
    table.Print();
    std::printf("artifacts differ\n");
    return 1;
  }
  std::printf("artifacts are value-identical (%zu tensors)\n",
              a->params().parameters().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  deepsd::util::CommandLine cli(argc, argv);
  deepsd::util::Status st = cli.CheckKnown(
      {"params", "checkpoint", "data", "out", "mode", "no_weather",
       "no_traffic", "encoding", "version_id", "ea", "ref_days", "help"});
  if (!st.ok() || cli.GetBool("help", false) || cli.positionals().empty()) {
    return Usage(st);
  }
  const std::string& cmd = cli.positionals()[0];
  if (cmd == "pack") return Pack(cli);
  if (cmd == "verify" && cli.positionals().size() == 2) {
    return Verify(cli.positionals()[1]);
  }
  if (cmd == "inspect" && cli.positionals().size() == 2) {
    return Inspect(cli.positionals()[1]);
  }
  if (cmd == "diff" && cli.positionals().size() == 3) {
    return Diff(cli.positionals()[1], cli.positionals()[2]);
  }
  return Usage(deepsd::util::Status::InvalidArgument(
      "unknown or malformed subcommand: " + cmd));
}
