#include "nn/parameter.h"

#include <cmath>
#include <cstring>
#include <fstream>

namespace deepsd {
namespace nn {

void InitTensor(Tensor* t, Init init, util::Rng* rng) {
  switch (init) {
    case Init::kZero:
      t->Zero();
      return;
    case Init::kGlorotUniform: {
      double limit = std::sqrt(6.0 / (t->rows() + t->cols()));
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kHeUniform: {
      double limit = std::sqrt(6.0 / t->rows());
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-limit, limit));
      }
      return;
    }
    case Init::kEmbedding:
      for (float& v : t->flat()) {
        v = static_cast<float>(rng->Uniform(-0.05, 0.05));
      }
      return;
  }
}

Parameter* ParameterStore::Create(const std::string& name, int rows, int cols,
                                  Init init, util::Rng* rng) {
  if (Parameter* existing = Find(name)) {
    DEEPSD_CHECK_MSG(existing->value.rows() == rows &&
                         existing->value.cols() == cols,
                     "parameter re-created with different shape: " + name);
    return existing;
  }
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->value = Tensor(rows, cols);
  p->grad = Tensor(rows, cols);
  InitTensor(&p->value, init, rng);
  Parameter* raw = p.get();
  params_.push_back(std::move(p));
  return raw;
}

Parameter* ParameterStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

const Parameter* ParameterStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

size_t ParameterStore::NumWeights() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) p->grad.Zero();
}

void ParameterStore::SetFrozen(const std::string& prefix, bool frozen) {
  for (auto& p : params_) {
    if (p->name.rfind(prefix, 0) == 0) p->frozen = frozen;
  }
}

util::Status ParameterStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write("DSP1", 4);
  uint64_t n = params_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& p : params_) {
    uint32_t name_len = static_cast<uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    int32_t rows = p->value.rows(), cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) return util::Status::IoError("short write to " + path);
  return util::Status::OK();
}

util::Status ParameterStore::Load(const std::string& path, int* loaded) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, "DSP1", 4) != 0) {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  int count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows < 0 || cols < 0) {
      return util::Status::IoError("corrupt parameter file " + path);
    }
    size_t count_floats = static_cast<size_t>(rows) * static_cast<size_t>(cols);
    // Refuse absurd tensor sizes from a corrupt header rather than
    // attempting a multi-GB allocation (largest real table is ~O(10^5)).
    if (count_floats > (1ULL << 28)) {
      return util::Status::IoError("implausible tensor size in " + path);
    }
    std::vector<float> values(count_floats);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count_floats * sizeof(float)));
    if (!in) return util::Status::IoError("truncated parameter file " + path);
    Parameter* p = Find(name);
    if (p != nullptr && p->value.rows() == rows && p->value.cols() == cols) {
      p->value.flat() = std::move(values);
      ++count;
    }
  }
  if (loaded != nullptr) *loaded = count;
  return util::Status::OK();
}

int ParameterStore::CopyFrom(const ParameterStore& other) {
  int count = 0;
  for (auto& p : params_) {
    const Parameter* src = other.Find(p->name);
    if (src != nullptr && src->value.SameShape(p->value)) {
      p->value = src->value;
      ++count;
    }
  }
  return count;
}

void ParameterStore::AverageFrom(
    const std::vector<const ParameterStore*>& stores) {
  DEEPSD_CHECK(!stores.empty());
  for (auto& p : params_) {
    Tensor sum(p->value.rows(), p->value.cols());
    for (const ParameterStore* s : stores) {
      const Parameter* src = s->Find(p->name);
      DEEPSD_CHECK_MSG(src != nullptr && src->value.SameShape(p->value),
                       "AverageFrom structure mismatch: " + p->name);
      for (size_t i = 0; i < sum.size(); ++i) {
        sum.flat()[i] += src->value.flat()[i];
      }
    }
    float inv = 1.0f / static_cast<float>(stores.size());
    for (size_t i = 0; i < sum.size(); ++i) {
      p->value.flat()[i] = sum.flat()[i] * inv;
    }
  }
}

GradBuffer::GradBuffer(const ParameterStore& store) {
  const auto& params = store.parameters();
  grads_.reserve(params.size());
  index_.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    grads_.emplace_back(params[i]->value.rows(), params[i]->value.cols());
    index_.emplace(params[i].get(), i);
  }
}

Tensor& GradBuffer::grad(const Parameter* p) {
  auto it = index_.find(p);
  DEEPSD_CHECK_MSG(it != index_.end(),
                   "GradBuffer used with a foreign parameter: " + p->name);
  return grads_[it->second];
}

void GradBuffer::Zero() {
  for (Tensor& g : grads_) g.Zero();
}

std::unique_ptr<ParameterStore> ParameterStore::Clone() const {
  auto out = std::make_unique<ParameterStore>();
  for (const auto& p : params_) {
    auto q = std::make_unique<Parameter>();
    q->name = p->name;
    q->value = p->value;
    q->grad = Tensor(p->value.rows(), p->value.cols());
    q->frozen = p->frozen;
    out->params_.push_back(std::move(q));
  }
  return out;
}

}  // namespace nn
}  // namespace deepsd
