#ifndef DEEPSD_NN_SGD_H_
#define DEEPSD_NN_SGD_H_

#include <unordered_map>

#include "nn/parameter.h"

namespace deepsd {
namespace nn {

/// Plain SGD with classical momentum. The paper picks Adam for robustness
/// (Sec VI-B3); this optimizer exists to let the optimizer-choice ablation
/// quantify that decision on the same model.
struct SgdConfig {
  float learning_rate = 1e-2f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Global gradient-norm clip; 0 disables.
  float clip_norm = 5.0f;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config = {}) : config_(config) {}

  const SgdConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

  /// Applies one update from accumulated gradients; returns the pre-clip
  /// global gradient norm. Frozen parameters are skipped.
  double Step(ParameterStore* store);

  void Reset();

  /// Checkpoint support: velocity tensors in name-addressed form (see
  /// Adam::ExportState for the contract).
  void ExportState(const ParameterStore& store,
                   std::vector<NamedTensor>* velocity) const;
  void ImportState(const ParameterStore& store,
                   const std::vector<NamedTensor>& velocity);

 private:
  SgdConfig config_;
  std::unordered_map<const Parameter*, Tensor> velocity_;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_SGD_H_
