#ifndef DEEPSD_NN_ADAM_H_
#define DEEPSD_NN_ADAM_H_

#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace deepsd {
namespace nn {

/// Adam hyperparameters (paper Sec VI-B3 uses the defaults).
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// L2 weight decay applied to the gradient (0 = off).
  float weight_decay = 0.0f;
  /// Global gradient-norm clip; 0 disables. Keeps training stable on the
  /// heavy-tailed gap targets.
  float clip_norm = 5.0f;
};

/// Adaptive Moment Estimation optimizer over a ParameterStore.
/// Frozen parameters are skipped entirely (fine-tuning support).
class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  const AdamConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

  /// Applies one update from the accumulated gradients, then leaves the
  /// gradients untouched (caller zeroes them before the next batch).
  /// Returns the pre-clip global gradient norm (diagnostics).
  double Step(ParameterStore* store);

  /// Drops all moment state (e.g. when the model topology changed).
  void Reset();

  /// Checkpoint support: the number of Step() calls applied so far. Bias
  /// correction depends on it, so a resumed run must restore it exactly.
  int64_t timestep() const { return t_; }
  void set_timestep(int64_t t) { t_ = t; }

  /// Copies the first/second-moment tensors of every parameter of `store`
  /// that has accumulated state into name-addressed form (aligned vectors).
  /// Parameters that never took a step are omitted.
  void ExportState(const ParameterStore& store, std::vector<NamedTensor>* m,
                   std::vector<NamedTensor>* v) const;
  /// Inverse of ExportState: drops current moments and adopts `m`/`v` for
  /// the matching (by name and shape) parameters of `store`. Entries that
  /// match nothing are ignored.
  void ImportState(const ParameterStore& store,
                   const std::vector<NamedTensor>& m,
                   const std::vector<NamedTensor>& v);

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };

  AdamConfig config_;
  int64_t t_ = 0;
  std::unordered_map<const Parameter*, Moments> moments_;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_ADAM_H_
