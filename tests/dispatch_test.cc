#include "src/dispatch/closed_loop.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "tests/test_util.h"

namespace deepsd {
namespace dispatch {
namespace {

sim::CityConfig SmallCity() {
  sim::CityConfig config;
  config.num_areas = 4;
  config.num_days = 10;
  config.seed = 4242;
  return config;
}

ClosedLoopConfig EvalLastDays() {
  ClosedLoopConfig config;
  config.day_begin = 8;
  config.day_end = 10;
  config.drivers_per_minute = 4.0;
  return config;
}

TEST(CountUnservedTest, MatchesHandBuiltData) {
  data::OrderDataset ds = deepsd::testing::MakeMicroDataset();
  // Day 0: pid 100 retried and finally succeeded; pid 103 failed; pid 101,
  // 102, 200 succeeded; pid 201 failed → 2 unserved.
  EXPECT_EQ(CountUnservedPassengers(ds, 0, 1), 2u);
  // Day 1: pid 301 failed → 1. Day 2: pid 400 served → 0.
  EXPECT_EQ(CountUnservedPassengers(ds, 1, 2), 1u);
  EXPECT_EQ(CountUnservedPassengers(ds, 2, 3), 0u);
  EXPECT_EQ(CountUnservedPassengers(ds, 0, 3), 3u);
}

TEST(PolicyTest, UniformWeightsAreUniform) {
  data::OrderDataset ds = deepsd::testing::MakeSmallCity(5, 3, 1);
  UniformPolicy policy;
  std::vector<double> w = policy.Weights(ds, 1, 600);
  ASSERT_EQ(w.size(), 5u);
  for (double v : w) EXPECT_EQ(v, w[0]);
}

TEST(PolicyTest, ReactiveWeightsTrackRecentGaps) {
  data::OrderDataset ds = deepsd::testing::MakeMicroDataset();
  ReactivePolicy policy;
  // At t=110 of day 0, area 0 had 3 invalid orders in [100, 110); area 1
  // had 0 in that window... (invalid at ts=110 is outside [100,110)).
  std::vector<double> w = policy.Weights(ds, 0, 110);
  EXPECT_EQ(w[0], 3.0);
  EXPECT_EQ(w[1], 0.0);
}

TEST(PolicyTest, OracleWeightsAreTrueGaps) {
  data::OrderDataset ds = deepsd::testing::MakeMicroDataset();
  OraclePolicy policy;
  std::vector<double> w = policy.Weights(ds, 0, 100);
  EXPECT_EQ(w[0], ds.Gap(0, 0, 100));
  EXPECT_EQ(w[1], ds.Gap(1, 0, 100));
}

TEST(ClosedLoopTest, InterventionNeverIncreasesUnserved) {
  UniformPolicy policy;
  ClosedLoopResult result =
      RunClosedLoop(SmallCity(), &policy, EvalLastDays());
  EXPECT_GT(result.baseline_unserved, 0u);
  EXPECT_LE(result.intervened_unserved, result.baseline_unserved);
  EXPECT_GE(result.reduction_percent, 0.0);
}

TEST(ClosedLoopTest, OracleBeatsUniform) {
  UniformPolicy uniform;
  OraclePolicy oracle;
  ClosedLoopResult u = RunClosedLoop(SmallCity(), &uniform, EvalLastDays());
  ClosedLoopResult o = RunClosedLoop(SmallCity(), &oracle, EvalLastDays());
  // Perfect foresight targets the gaps; spreading thin cannot do better.
  EXPECT_LT(o.intervened_unserved, u.intervened_unserved);
}

TEST(ClosedLoopTest, BaselineIdenticalAcrossPolicies) {
  UniformPolicy uniform;
  ReactivePolicy reactive;
  ClosedLoopResult a = RunClosedLoop(SmallCity(), &uniform, EvalLastDays());
  ClosedLoopResult b = RunClosedLoop(SmallCity(), &reactive, EvalLastDays());
  EXPECT_EQ(a.baseline_unserved, b.baseline_unserved);
  EXPECT_EQ(a.baseline_invalid_orders, b.baseline_invalid_orders);
}

TEST(ClosedLoopTest, PredictivePolicyRuns) {
  // End-to-end: train a tiny basic model, drive the predictive policy.
  sim::CityConfig city = SmallCity();
  data::OrderDataset ds = sim::SimulateCity(city);
  feature::FeatureConfig fc;
  fc.window = 6;
  feature::FeatureAssembler assembler(&ds, fc, 0, 8);
  auto train_items = data::MakeItems(ds, 0, 8, 400, 1300, 120);

  core::DeepSDConfig mc;
  mc.num_areas = ds.num_areas();
  mc.window = 6;
  nn::ParameterStore store;
  util::Rng rng(1);
  core::DeepSDModel model(mc, core::DeepSDModel::Mode::kBasic, &store, &rng);
  core::AssemblerSource train(&assembler, train_items, false);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.best_k = 0;
  core::Trainer(tc).Train(&model, &store, train, train);

  PredictiveGapPolicy policy(&model, &assembler);
  ClosedLoopConfig clc = EvalLastDays();
  clc.epoch_minutes = 30;  // fewer decisions: keep the test fast
  ClosedLoopResult result = RunClosedLoop(city, &policy, clc);
  EXPECT_EQ(result.policy, "deepsd");
  EXPECT_LE(result.intervened_unserved, result.baseline_unserved);
}

}  // namespace
}  // namespace dispatch
}  // namespace deepsd
