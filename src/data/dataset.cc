#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace data {

namespace {
const WeatherRecord kDefaultWeather{};
const TrafficRecord kDefaultTraffic{};
}  // namespace

std::span<const Order> OrderDataset::OrdersAt(int area, int day, int ts) const {
  if (!InRange(area, day, ts)) return {};
  size_t idx = BucketIndex(area, day, ts);
  uint32_t begin = offsets_[idx];
  uint32_t end = offsets_[idx + 1];
  return {orders_.data() + begin, orders_.data() + end};
}

int OrderDataset::ValidCount(int area, int day, int ts) const {
  return ValidInRange(area, day, ts, ts + 1);
}

int OrderDataset::InvalidCount(int area, int day, int ts) const {
  return InvalidInRange(area, day, ts, ts + 1);
}

int OrderDataset::Gap(int area, int day, int t) const {
  return InvalidInRange(area, day, t, t + kGapWindow);
}

int OrderDataset::InvalidInRange(int area, int day, int t_begin,
                                 int t_end) const {
  if (area < 0 || area >= num_areas_ || day < 0 || day >= num_days_) return 0;
  t_begin = std::clamp(t_begin, 0, kMinutesPerDay);
  t_end = std::clamp(t_end, 0, kMinutesPerDay);
  if (t_end <= t_begin) return 0;
  size_t base = (static_cast<size_t>(area) * num_days_ + day) *
                (kMinutesPerDay + 1);
  return static_cast<int>(invalid_prefix_[base + t_end] -
                          invalid_prefix_[base + t_begin]);
}

int OrderDataset::ValidInRange(int area, int day, int t_begin, int t_end) const {
  if (area < 0 || area >= num_areas_ || day < 0 || day >= num_days_) return 0;
  t_begin = std::clamp(t_begin, 0, kMinutesPerDay);
  t_end = std::clamp(t_end, 0, kMinutesPerDay);
  if (t_end <= t_begin) return 0;
  size_t base = (static_cast<size_t>(area) * num_days_ + day) *
                (kMinutesPerDay + 1);
  return static_cast<int>(valid_prefix_[base + t_end] -
                          valid_prefix_[base + t_begin]);
}

const WeatherRecord& OrderDataset::WeatherAt(int day, int ts) const {
  size_t idx = static_cast<size_t>(day) * kMinutesPerDay + ts;
  if (day < 0 || day >= num_days_ || ts < 0 || ts >= kMinutesPerDay ||
      idx >= weather_.size()) {
    return kDefaultWeather;
  }
  return weather_[idx];
}

const TrafficRecord& OrderDataset::TrafficAt(int area, int day, int ts) const {
  if (!InRange(area, day, ts) || traffic_.empty()) return kDefaultTraffic;
  return traffic_[BucketIndex(area, day, ts)];
}

void OrderDataset::BuildIndex() {
  std::sort(orders_.begin(), orders_.end(),
            [](const Order& a, const Order& b) {
              if (a.start_area != b.start_area) return a.start_area < b.start_area;
              if (a.day != b.day) return a.day < b.day;
              return a.ts < b.ts;
            });

  size_t buckets = static_cast<size_t>(num_areas_) * num_days_ * kMinutesPerDay;
  offsets_.assign(buckets + 1, 0);
  for (const Order& o : orders_) {
    ++offsets_[BucketIndex(o.start_area, o.day, o.ts) + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  size_t rows = static_cast<size_t>(num_areas_) * num_days_;
  valid_prefix_.assign(rows * (kMinutesPerDay + 1), 0);
  invalid_prefix_.assign(rows * (kMinutesPerDay + 1), 0);
  for (int a = 0; a < num_areas_; ++a) {
    for (int d = 0; d < num_days_; ++d) {
      size_t base = (static_cast<size_t>(a) * num_days_ + d) *
                    (kMinutesPerDay + 1);
      uint32_t valid = 0, invalid = 0;
      for (int ts = 0; ts < kMinutesPerDay; ++ts) {
        for (const Order& o : OrdersAt(a, d, ts)) {
          if (o.valid) {
            ++valid;
          } else {
            ++invalid;
          }
        }
        valid_prefix_[base + ts + 1] = valid;
        invalid_prefix_[base + ts + 1] = invalid;
      }
    }
  }

  int max_pid = -1;
  for (const Order& o : orders_) max_pid = std::max(max_pid, o.passenger_id);
  num_passengers_ = max_pid + 1;
}

OrderDatasetBuilder::OrderDatasetBuilder(int num_areas, int num_days,
                                         int first_weekday)
    : num_areas_(num_areas),
      num_days_(num_days),
      first_weekday_(first_weekday) {
  DEEPSD_CHECK(num_areas > 0);
  DEEPSD_CHECK(num_days > 0);
  DEEPSD_CHECK(first_weekday >= 0 && first_weekday < kDaysPerWeek);
}

void OrderDatasetBuilder::AddOrder(const Order& order) {
  orders_.push_back(order);
}

void OrderDatasetBuilder::AddWeather(const WeatherRecord& record) {
  weather_.push_back(record);
}

void OrderDatasetBuilder::AddTraffic(const TrafficRecord& record) {
  traffic_.push_back(record);
}

util::Status OrderDatasetBuilder::Build(OrderDataset* out) {
  for (const Order& o : orders_) {
    if (o.start_area < 0 || o.start_area >= num_areas_ || o.dest_area < 0 ||
        o.dest_area >= num_areas_) {
      return util::Status::InvalidArgument(
          util::StrFormat("order area out of range: start=%d dest=%d (N=%d)",
                          o.start_area, o.dest_area, num_areas_));
    }
    if (o.day < 0 || o.day >= num_days_) {
      return util::Status::InvalidArgument(
          util::StrFormat("order day out of range: %d", o.day));
    }
    if (o.ts < 0 || o.ts >= kMinutesPerDay) {
      return util::Status::InvalidArgument(
          util::StrFormat("order timeslot out of range: %d", o.ts));
    }
    if (o.passenger_id < 0) {
      return util::Status::InvalidArgument("negative passenger id");
    }
  }

  *out = OrderDataset();
  out->num_areas_ = num_areas_;
  out->num_days_ = num_days_;
  out->first_weekday_ = first_weekday_;
  out->orders_ = std::move(orders_);

  if (!weather_.empty()) {
    out->weather_.assign(static_cast<size_t>(num_days_) * kMinutesPerDay,
                         WeatherRecord{});
    for (const WeatherRecord& w : weather_) {
      if (w.day < 0 || w.day >= num_days_ || w.ts < 0 || w.ts >= kMinutesPerDay) {
        return util::Status::InvalidArgument("weather record out of range");
      }
      out->weather_[static_cast<size_t>(w.day) * kMinutesPerDay + w.ts] = w;
    }
  }
  if (!traffic_.empty()) {
    out->traffic_.assign(
        static_cast<size_t>(num_areas_) * num_days_ * kMinutesPerDay,
        TrafficRecord{});
    for (const TrafficRecord& t : traffic_) {
      if (t.area < 0 || t.area >= num_areas_ || t.day < 0 ||
          t.day >= num_days_ || t.ts < 0 || t.ts >= kMinutesPerDay) {
        return util::Status::InvalidArgument("traffic record out of range");
      }
      out->traffic_[out->BucketIndex(t.area, t.day, t.ts)] = t;
    }
  }

  out->BuildIndex();
  orders_.clear();
  weather_.clear();
  traffic_.clear();
  return util::Status::OK();
}

std::vector<PredictionItem> MakeItems(const OrderDataset& dataset,
                                      int day_begin, int day_end, int t_begin,
                                      int t_end, int stride) {
  std::vector<PredictionItem> items;
  day_begin = std::max(day_begin, 0);
  day_end = std::min(day_end, dataset.num_days());
  for (int a = 0; a < dataset.num_areas(); ++a) {
    for (int d = day_begin; d < day_end; ++d) {
      for (int t = t_begin; t <= t_end; t += stride) {
        PredictionItem item;
        item.area = a;
        item.day = d;
        item.t = t;
        item.week_id = dataset.WeekId(d);
        item.gap = static_cast<float>(dataset.Gap(a, d, t));
        items.push_back(item);
      }
    }
  }
  return items;
}

std::vector<PredictionItem> MakeTrainItems(const OrderDataset& dataset,
                                           int day_begin, int day_end) {
  // 00:20 .. 23:50 every 5 minutes -> 283 items per area-day (paper VI-A).
  return MakeItems(dataset, day_begin, day_end, 20, 1430, 5);
}

std::vector<PredictionItem> MakeTestItems(const OrderDataset& dataset,
                                          int day_begin, int day_end) {
  // 07:30 .. 23:30 every 2 hours -> 9 items per area-day (paper VI-A).
  return MakeItems(dataset, day_begin, day_end, 450, 1410, 120);
}

}  // namespace data
}  // namespace deepsd
