#include "feature/vectors.h"

#include <algorithm>

#include "util/logging.h"

namespace deepsd {
namespace feature {

namespace {

/// Per-passenger episode summary within one window.
struct Episode {
  int32_t pid;
  int32_t first_ts;
  int32_t last_ts;
  bool last_valid;
};

/// Collects one episode per passenger with orders in [t-window, t),
/// sorted scan over the window's per-minute buckets.
std::vector<Episode> CollectEpisodes(const data::OrderDataset& dataset,
                                     int area, int day, int t, int window) {
  // Gather (pid, ts, valid) triples then reduce by pid. Window sizes are
  // tens of orders for typical areas, so a sort beats a hash map here.
  struct Call {
    int32_t pid;
    int32_t ts;
    bool valid;
  };
  std::vector<Call> calls;
  int begin = std::max(t - window, 0);
  for (int ts = begin; ts < t && ts < data::kMinutesPerDay; ++ts) {
    for (const data::Order& o : dataset.OrdersAt(area, day, ts)) {
      calls.push_back({o.passenger_id, o.ts, o.valid});
    }
  }
  std::sort(calls.begin(), calls.end(), [](const Call& a, const Call& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.ts < b.ts;
  });

  std::vector<Episode> episodes;
  for (size_t i = 0; i < calls.size();) {
    size_t j = i;
    while (j + 1 < calls.size() && calls[j + 1].pid == calls[i].pid) ++j;
    episodes.push_back(
        {calls[i].pid, calls[i].ts, calls[j].ts, calls[j].valid});
    i = j + 1;
  }
  return episodes;
}

}  // namespace

std::vector<float> SupplyDemandVector(const data::OrderDataset& dataset,
                                      int area, int day, int t, int window) {
  std::vector<float> v(2 * static_cast<size_t>(window), 0.0f);
  for (int l = 1; l <= window; ++l) {
    int ts = t - l;
    if (ts < 0) break;
    v[static_cast<size_t>(l - 1)] =
        static_cast<float>(dataset.ValidCount(area, day, ts));
    v[static_cast<size_t>(window + l - 1)] =
        static_cast<float>(dataset.InvalidCount(area, day, ts));
  }
  return v;
}

std::vector<float> LastCallVector(const data::OrderDataset& dataset, int area,
                                  int day, int t, int window) {
  std::vector<float> v(2 * static_cast<size_t>(window), 0.0f);
  for (const Episode& e : CollectEpisodes(dataset, area, day, t, window)) {
    int l = t - e.last_ts;  // in [1, window]
    if (l < 1 || l > window) continue;
    size_t idx = static_cast<size_t>(e.last_valid ? l - 1 : window + l - 1);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<float> WaitingTimeVector(const data::OrderDataset& dataset,
                                     int area, int day, int t, int window) {
  std::vector<float> v(2 * static_cast<size_t>(window), 0.0f);
  for (const Episode& e : CollectEpisodes(dataset, area, day, t, window)) {
    int wait = e.last_ts - e.first_ts;  // in [0, window-1]
    if (wait < 0 || wait >= window) continue;
    size_t idx = static_cast<size_t>(e.last_valid ? wait : window + wait);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<double> DemandCurve(const data::OrderDataset& dataset, int area,
                                int day) {
  std::vector<double> curve(data::kMinutesPerDay, 0.0);
  for (int ts = 0; ts < data::kMinutesPerDay; ++ts) {
    curve[static_cast<size_t>(ts)] = dataset.ValidCount(area, day, ts) +
                                     dataset.InvalidCount(area, day, ts);
  }
  return curve;
}

std::vector<double> GapCurve(const data::OrderDataset& dataset, int area,
                             int day, int stride) {
  DEEPSD_CHECK(stride > 0);
  std::vector<double> curve;
  for (int t = 0; t + data::kGapWindow <= data::kMinutesPerDay; t += stride) {
    curve.push_back(dataset.Gap(area, day, t));
  }
  return curve;
}

}  // namespace feature
}  // namespace deepsd
