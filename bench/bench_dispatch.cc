// Closed-loop dispatch experiment — the downstream value of the paper's
// prediction model. A budget of relocatable drivers is distributed every 10
// minutes by four policies: uniform (no information), reactive (chases the
// last observed gap), DeepSD-predictive (paper's model), and oracle
// (perfect foresight — the upper bound). Each allocation is injected into
// the simulator as extra capacity against the *identical* demand
// realization; the score is the reduction in unserved passengers.

#include "bench/bench_common.h"
#include "dispatch/closed_loop.h"

namespace deepsd {
namespace {

int Main() {
  // Collect per-policy latency histograms (dispatch/policy_weights_us etc.)
  // alongside the headline table.
  obs::SetEnabled(true);

  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Closed-loop dispatch: value of prediction");

  // Train the advanced model on the training period (as everywhere else).
  std::printf("training Advanced DeepSD...\n");
  auto trained = exp.TrainDeepSD(core::DeepSDModel::Mode::kAdvanced,
                                 exp.ModelConfig(), /*seed=*/7);

  // The closed loop re-simulates the same city config.
  sim::CityConfig city;
  city.num_areas = exp.scale().num_areas;
  city.num_days = exp.scale().train_days + exp.scale().test_days;
  city.seed = 42;
  city.mean_scale = exp.scale().mean_scale;

  dispatch::ClosedLoopConfig clc;
  clc.day_begin = exp.test_day_begin();
  clc.day_end = std::min(exp.test_day_begin() + 3, exp.test_day_end());
  clc.drivers_per_minute = 0.4 * exp.scale().num_areas;

  dispatch::UniformPolicy uniform;
  dispatch::ReactivePolicy reactive;
  dispatch::PredictiveGapPolicy predictive(trained.model.get(),
                                           &exp.assembler());
  dispatch::OraclePolicy oracle;

  eval::TablePrinter table({"Policy", "Unserved passengers",
                            "Unmet orders", "Reduction vs baseline"});
  size_t baseline_unserved = 0, baseline_invalid = 0;
  std::vector<dispatch::DispatchPolicy*> policies = {&uniform, &reactive,
                                                     &predictive, &oracle};
  for (dispatch::DispatchPolicy* policy : policies) {
    std::printf("running closed loop: %s...\n", policy->name().c_str());
    dispatch::ClosedLoopResult r =
        dispatch::RunClosedLoop(city, policy, clc);
    baseline_unserved = r.baseline_unserved;
    baseline_invalid = r.baseline_invalid_orders;
    table.AddRow({policy->name(),
                  util::StrFormat("%zu", r.intervened_unserved),
                  util::StrFormat("%zu", r.intervened_invalid_orders),
                  util::StrFormat("%.1f%%", r.reduction_percent)});
  }

  std::printf(
      "\nClosed-loop dispatch over days [%d, %d), budget %.1f drivers/min "
      "city-wide\nbaseline (no intervention): %zu unserved passengers, %zu "
      "unmet orders\n",
      clc.day_begin, clc.day_end, clc.drivers_per_minute, baseline_unserved,
      baseline_invalid);
  table.Print();
  std::printf(
      "\nExpected shape: uniform < reactive < deepsd ≤ oracle in unserved-"
      "passenger reduction — prediction converts the same driver budget "
      "into more served rides.\n\n");
  bench::PrintRegistryLatencies("dispatch/");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
