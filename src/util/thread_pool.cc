#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace util {

namespace {

/// The pool (if any) whose worker the current thread is. Lets nested
/// ParallelFor / Submit calls detect self-deadlock and run inline.
thread_local const ThreadPool* t_worker_pool = nullptr;

struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks;
  obs::Counter* busy_us;
  obs::Histogram* task_us;
};

/// Registry pointers are process-lifetime, so one shared set serves every
/// pool instance (in practice only the global pool and test pools exist).
PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    return PoolMetrics{r.GetGauge("pool/queue_depth"),
                       r.GetCounter("pool/tasks"),
                       r.GetCounter("pool/busy_us"),
                       r.GetHistogram("pool/task_us")};
  }();
  return m;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

struct ThreadPool::ForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t active_helpers = 0;
  /// (chunk index, exception) of every failed chunk; the lowest chunk
  /// index is rethrown so the surfaced error is scheduling-independent.
  std::vector<std::pair<size_t, std::exception_ptr>> errors;
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::WorkerLoop(int worker_id) {
  t_worker_pool = this;
  SetThreadLogTag(StrFormat("w%d", worker_id));
  DEEPSD_LOG(Debug) << "pool worker started";
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    if (obs::Enabled()) {
      int64_t t0 = SteadyNowUs();
      task();
      int64_t dur = SteadyNowUs() - t0;
      Metrics().tasks->Inc();
      Metrics().busy_us->Inc(static_cast<uint64_t>(std::max<int64_t>(dur, 0)));
      Metrics().task_us->Observe(static_cast<double>(dur));
    } else {
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
  DEEPSD_LOG(Debug) << "pool worker stopped";
  SetThreadLogTag("");
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  // No workers, or called from a worker of this pool: run inline. A worker
  // enqueueing and then waiting on the future could deadlock once every
  // worker blocks the same way.
  if (workers_.empty() || InWorkerThread()) {
    (*task)();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::RunChunks(ForState* state) {
  for (;;) {
    size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    size_t chunk_begin = state->begin + c * state->grain;
    size_t chunk_end = std::min(state->end, chunk_begin + state->grain);
    try {
      (*state->fn)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->errors.emplace_back(c, std::current_exception());
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;

  // Serial fast path: single chunk, no workers, or nested call from one of
  // this pool's own workers (enqueueing would risk deadlock — every worker
  // could end up waiting for chunks only the queue can run).
  if (num_chunks == 1 || workers_.empty() || InWorkerThread()) {
    std::vector<std::pair<size_t, std::exception_ptr>> errors;
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t chunk_begin = begin + c * grain;
      size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        errors.emplace_back(c, std::current_exception());
      }
    }
    if (!errors.empty()) std::rethrow_exception(errors.front().second);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  // The caller also drains chunks, so at most num_chunks - 1 helpers.
  const size_t num_helpers =
      std::min(workers_.size(), num_chunks - 1);
  state->active_helpers = num_helpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < num_helpers; ++h) {
      queue_.emplace_back([state] {
        RunChunks(state.get());
        std::lock_guard<std::mutex> state_lock(state->mu);
        if (--state->active_helpers == 0) state->done_cv.notify_all();
      });
    }
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();

  RunChunks(state.get());
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock,
                        [&state] { return state->active_helpers == 0; });
  }

  if (!state->errors.empty()) {
    auto first = std::min_element(
        state->errors.begin(), state->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

size_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

void ThreadPool::Drain() {
  // A worker draining its own pool would wait for itself to finish.
  DEEPSD_CHECK_MSG(!InWorkerThread(),
                   "ThreadPool::Drain called from a worker of the same pool");
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::WaitIdleFor(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(
      lock, std::chrono::microseconds(timeout_us),
      [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(0);
  }
  return *g_global_pool;
}

Status ThreadPool::SetGlobalThreads(int num_threads) {
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_global_mu);
    if (g_global_pool != nullptr) {
      // Swapping pools under live work used to be a documented-but-silent
      // footgun: callers racing the old pool would lose its workers mid
      // task. Refuse instead. The grace wait absorbs the microseconds a
      // ParallelFor's helpers spend unwinding after the call has already
      // returned to the caller — logically-complete work, not a misuse.
      // (Best-effort: a caller that submits right after this check is
      // still violating the "between phases" contract, but every observed
      // misuse is now loud.)
      if (!g_global_pool->WaitIdleFor(100'000)) {
        return Status::FailedPrecondition(StrFormat(
            "SetGlobalThreads while the old pool still has %zu queued or "
            "in-flight task(s); Drain() it or call between phases",
            g_global_pool->pending_tasks()));
      }
    }
    old = std::move(g_global_pool);
    g_global_pool = std::make_unique<ThreadPool>(num_threads);
  }
  // Old pool (if any) joins its idle workers here, outside the lock.
  return Status::OK();
}

int ThreadPool::GlobalThreads() { return Global().num_threads(); }

}  // namespace util
}  // namespace deepsd
