#include "src/sim/traffic_model.h"

#include <gtest/gtest.h>

namespace deepsd {
namespace sim {
namespace {

TEST(TrafficModelTest, FractionsSumToOne) {
  for (double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    double f[4];
    TrafficModel::LevelFractions(p, f);
    double sum = f[0] + f[1] + f[2] + f[3];
    EXPECT_NEAR(sum, 1.0, 1e-12) << "pressure=" << p;
    for (int i = 0; i < 4; ++i) EXPECT_GE(f[i], 0.0);
  }
}

TEST(TrafficModelTest, CongestionGrowsWithPressure) {
  double lo[4], hi[4];
  TrafficModel::LevelFractions(0.1, lo);
  TrafficModel::LevelFractions(0.9, hi);
  EXPECT_GT(hi[0], lo[0]);  // jammed share rises
  EXPECT_LT(hi[3], lo[3]);  // free-flow share falls
}

TEST(TrafficModelTest, PressureClamped) {
  double f1[4], f2[4];
  TrafficModel::LevelFractions(-3.0, f1);
  TrafficModel::LevelFractions(0.0, f2);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(f1[i], f2[i]);
  TrafficModel::LevelFractions(9.0, f1);
  TrafficModel::LevelFractions(1.0, f2);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(f1[i], f2[i]);
}

TEST(TrafficModelTest, SampleConservesSegments) {
  TrafficModel tm(util::Rng{3});
  AreaProfile profile;
  profile.road_segments = 120;
  for (double p : {0.0, 0.3, 0.7, 1.0}) {
    for (int i = 0; i < 50; ++i) {
      data::TrafficRecord rec = tm.Sample(profile, 1, 2, 300, p);
      int total = 0;
      for (int level = 0; level < 4; ++level) {
        EXPECT_GE(rec.level_counts[level], 0);
        total += rec.level_counts[level];
      }
      EXPECT_EQ(total, 120);
      EXPECT_EQ(rec.area, 1);
      EXPECT_EQ(rec.day, 2);
      EXPECT_EQ(rec.ts, 300);
    }
  }
}

TEST(TrafficModelTest, SampledCongestionTracksPressure) {
  TrafficModel tm(util::Rng{5});
  AreaProfile profile;
  profile.road_segments = 100;
  double low_jam = 0, high_jam = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    low_jam += tm.Sample(profile, 0, 0, 0, 0.1).level_counts[0];
    high_jam += tm.Sample(profile, 0, 0, 0, 0.9).level_counts[0];
  }
  EXPECT_GT(high_jam / n, low_jam / n + 10.0);
}

}  // namespace
}  // namespace sim
}  // namespace deepsd
