#ifndef DEEPSD_UTIL_CRC32_H_
#define DEEPSD_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace deepsd {
namespace util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `size` bytes. Used to
/// seal checkpoint payloads so a torn or bit-flipped file is rejected with
/// a typed error instead of being parsed (docs/robustness.md).
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` the running value (start from 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace util
}  // namespace deepsd

#endif  // DEEPSD_UTIL_CRC32_H_
