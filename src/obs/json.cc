#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace deepsd {
namespace obs {
namespace json {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return util::StrFormat("%lld", static_cast<long long>(v));
  }
  return util::StrFormat("%.17g", v);
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->str : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return ConsumeWord("true") || Fail("bad literal");
      case 'f':
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return ConsumeWord("false") || Fail("bad literal");
      case 'n':
        out->kind = Value::Kind::kNull;
        return ConsumeWord("null") || Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      Value v;
      if (!ParseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Value* out) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      SkipSpace();
      Value v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          // Pass the code unit through as '?' for non-ASCII; our own
          // writer never emits \u above 0x1f.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->kind = Value::Kind::kNumber;
    out->number = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  return Parser(text, error).Run(out);
}

}  // namespace json
}  // namespace obs
}  // namespace deepsd
