#ifndef DEEPSD_TESTS_TEST_UTIL_H_
#define DEEPSD_TESTS_TEST_UTIL_H_

#include <vector>

#include "data/dataset.h"
#include "sim/city_sim.h"
#include "util/logging.h"

namespace deepsd {
namespace testing {

/// Hand-built micro dataset: 2 areas, 3 days, a handful of orders with
/// known valid/invalid layout. Passenger 100 fails at minute 100 and
/// retries at 102 (fails) and 105 (succeeds) in area 0 / day 0.
inline data::OrderDataset MakeMicroDataset() {
  data::OrderDatasetBuilder builder(/*num_areas=*/2, /*num_days=*/3,
                                    /*first_weekday=*/0);
  auto add = [&](int day, int ts, int pid, int area, bool valid) {
    data::Order o;
    o.day = day;
    o.ts = ts;
    o.passenger_id = pid;
    o.start_area = area;
    o.dest_area = (area + 1) % 2;
    o.valid = valid;
    builder.AddOrder(o);
  };
  // Area 0, day 0: the retry episode.
  add(0, 100, 100, 0, false);
  add(0, 102, 100, 0, false);
  add(0, 105, 100, 0, true);
  // Single-call passengers.
  add(0, 100, 101, 0, true);
  add(0, 101, 102, 0, true);
  add(0, 103, 103, 0, false);
  // Area 1, day 0.
  add(0, 100, 200, 1, true);
  add(0, 110, 201, 1, false);
  // Area 0, day 1 (same weekday grid +1).
  add(1, 100, 300, 0, true);
  add(1, 104, 301, 0, false);
  // Day 2 empty for area 0; area 1 gets one order.
  add(2, 500, 400, 1, true);

  // Weather: sunny everywhere except rain (type 3) on day 0 minutes 90-120.
  for (int d = 0; d < 3; ++d) {
    for (int ts = 0; ts < data::kMinutesPerDay; ++ts) {
      data::WeatherRecord w;
      w.day = d;
      w.ts = ts;
      w.type = (d == 0 && ts >= 90 && ts < 120) ? 3 : 0;
      w.temperature = 15.0f;
      w.pm25 = 60.0f;
      builder.AddWeather(w);
    }
  }
  // Traffic: constant quadruple.
  for (int a = 0; a < 2; ++a) {
    for (int d = 0; d < 3; ++d) {
      for (int ts = 0; ts < data::kMinutesPerDay; ++ts) {
        data::TrafficRecord t;
        t.area = a;
        t.day = d;
        t.ts = ts;
        t.level_counts[0] = 5;
        t.level_counts[1] = 10;
        t.level_counts[2] = 20;
        t.level_counts[3] = 65;
        builder.AddTraffic(t);
      }
    }
  }

  data::OrderDataset dataset;
  util::Status st = builder.Build(&dataset);
  DEEPSD_CHECK_MSG(st.ok(), st.ToString());
  return dataset;
}

/// Small simulated city shared by integration-style tests.
inline data::OrderDataset MakeSmallCity(int areas = 6, int days = 15,
                                        uint64_t seed = 123,
                                        sim::SimSummary* summary = nullptr) {
  sim::CityConfig config;
  config.num_areas = areas;
  config.num_days = days;
  config.seed = seed;
  config.mean_scale = 0.8;
  return sim::SimulateCity(config, summary);
}

}  // namespace testing
}  // namespace deepsd

#endif  // DEEPSD_TESTS_TEST_UTIL_H_
