#ifndef DEEPSD_SERVING_ORDER_STREAM_H_
#define DEEPSD_SERVING_ORDER_STREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "data/types.h"

namespace deepsd {
namespace serving {

/// Tap on the live stream — e.g. the online accuracy tracker
/// (eval/online_accuracy.h) joining predictions against arriving ground
/// truth. Callbacks run on the ingesting/advancing thread with the
/// buffer's internal mutex HELD, so the tap observes events in buffer
/// order; implementations must be fast and must never call back into the
/// buffer.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;
  /// A well-formed order passed validation (ts_abs = day·1440 + ts).
  /// Fires even for orders older than the buffer's window — stale events
  /// are useless for feature vectors but still real ground truth.
  virtual void OnOrderAccepted(const data::Order& order, int64_t ts_abs) = 0;
  /// The serving clock moved forward to `now_abs`.
  virtual void OnClockAdvance(int64_t now_abs) = 0;
};

/// Rolling window over a live order / weather / traffic stream.
///
/// Holds exactly the last `window` minutes of state per area — everything
/// the paper's real-time feature vectors (Definitions 5–7) need — and
/// evicts older events as the clock advances. Events may arrive slightly
/// out of order within the window; events older than the window are
/// dropped.
///
/// Robustness: malformed events (out-of-range area or timestamp — e.g. a
/// bit-flipped payload from a flaky feed) are rejected with a counter
/// bump (`serving/events_rejected`), never a crash. When the global
/// util::FaultInjector is enabled, every Add* call is a fault point:
/// events may be dropped, bit-flipped, or delayed (delayed events queue
/// up and are delivered by the AdvanceTo that first reaches their release
/// time). The buffer also tracks the freshness of each feed so the
/// serving layer can decide when to degrade (docs/robustness.md).
///
/// Thread safety: every mutator (AdvanceTo / Add*) and every snapshot
/// reader (the *Vector / Weather* accessors, buffered_orders) takes an
/// internal mutex, so ingestion and concurrent prediction callers may race
/// freely; each vector is a consistent snapshot of the buffer at some
/// point between the caller's surrounding operations. The clock accessors
/// (now_abs / day / minute) are lock-free atomic reads.
class OrderStreamBuffer {
 public:
  /// `window` is the look-back L in minutes (paper: 20).
  OrderStreamBuffer(int num_areas, int window);

  int num_areas() const { return num_areas_; }
  int window() const { return window_; }

  /// Current clock as absolute minutes (day·1440 + minute).
  int64_t now_abs() const { return now_abs_.load(std::memory_order_acquire); }
  int day() const { return static_cast<int>(now_abs() / data::kMinutesPerDay); }
  int minute() const {
    return static_cast<int>(now_abs() % data::kMinutesPerDay);
  }

  /// Moves the clock forward (never backward) and evicts expired state.
  void AdvanceTo(int day, int minute);

  /// Ingests one order (uses order.day/order.ts for its timestamp).
  /// Malformed records are rejected, not fatal.
  void AddOrder(const data::Order& order);
  /// Advances the citywide order-feed freshness clock without storing an
  /// order. The sharded router feeds each order to its owning shard's
  /// buffer and *notes* it on the siblings: order-stall detection is
  /// citywide by design (one quiet area is ordinary sparsity and must not
  /// degrade its neighbours — see FallbackConfig::order_stall_minutes), so
  /// every replica must agree on when the feed last produced, no matter
  /// which shard the event landed in. Ignores out-of-range timestamps; no
  /// observer fires (the owning shard delivers the real event).
  void NoteOrderSeen(int day, int ts);
  /// Ingests a weather record (shared across areas).
  void AddWeather(const data::WeatherRecord& record);
  /// Ingests a traffic record for its area.
  void AddTraffic(const data::TrafficRecord& record);

  /// Absolute minute of the most recent event accepted per feed; -1 while
  /// the feed has never produced. The serving fallback ladder reads these
  /// to spot stalled feeds.
  int64_t last_order_abs() const;
  int64_t last_weather_abs() const;
  int64_t last_traffic_abs() const;

  /// Events rejected as malformed since construction.
  uint64_t rejected_events() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Real-time supply-demand vector over [now-L, now): 2L raw counts.
  std::vector<float> SupplyDemandVector(int area) const;
  /// Real-time last-call vector (Def. 6 semantics), 2L raw counts.
  std::vector<float> LastCallVector(int area) const;
  /// Real-time waiting-time vector (Def. 7 semantics), 2L raw counts.
  std::vector<float> WaitingTimeVector(int area) const;

  /// Weather-type ids at lags 1..L (most recent known record per lag; lags
  /// with no data yet return type 0).
  std::vector<int> WeatherTypes() const;
  /// Temperatures then PM2.5 at lags 1..L (raw units).
  std::vector<float> WeatherReals() const;
  /// Traffic level counts at lags 1..L (4L raw values).
  std::vector<float> TrafficVector(int area) const;

  /// Zero-order-hold variants: lags with no record are filled from the
  /// most recent accepted record as long as it is at most `hold_minutes`
  /// older than the lag. Tier-1 degradation (docs/robustness.md).
  std::vector<int> WeatherTypesHeld(int hold_minutes) const;
  std::vector<float> WeatherRealsHeld(int hold_minutes) const;
  std::vector<float> TrafficVectorHeld(int area, int hold_minutes) const;

  /// Number of buffered orders (diagnostics).
  size_t buffered_orders() const;

  /// Attaches (or detaches, with nullptr) the stream tap. The observer
  /// must outlive the buffer or be detached first; see StreamObserver for
  /// the locking contract.
  void set_stream_observer(StreamObserver* observer);

 private:
  struct Call {
    int64_t ts_abs;
    int32_t pid;
    bool valid;
  };
  struct WeatherSlot {
    bool seen = false;
    int32_t type = 0;
    float temperature = 0;
    float pm25 = 0;
  };
  struct TrafficSlot {
    bool seen = false;
    int32_t level_counts[data::kCongestionLevels] = {0, 0, 0, 0};
  };

  /// Index of the per-minute slot for absolute minute `ts_abs` in the
  /// circular per-lag arrays; slots cycle every `window` minutes.
  size_t SlotIndex(int64_t ts_abs) const {
    return static_cast<size_t>(ts_abs % window_);
  }
  bool InWindow(int64_t ts_abs) const {
    int64_t now = now_abs_.load(std::memory_order_relaxed);
    return ts_abs >= now - window_ && ts_abs < now;
  }
  void Evict();
  /// buffered_orders() body; the caller must hold mu_. AdvanceTo reports
  /// the post-eviction depth while still inside its critical section, so
  /// the public accessor (which takes mu_) cannot be reused there.
  size_t BufferedOrdersLocked() const;

  /// A fault-delayed event waiting for the clock to reach `release_abs`.
  struct Pending {
    enum class Kind { kOrder, kWeather, kTraffic };
    Kind kind;
    int64_t release_abs;
    data::Order order{};
    data::WeatherRecord weather{};
    data::TrafficRecord traffic{};
  };

  // Ingestion bodies (caller holds mu_): validate, insert, update feed
  // freshness. Return false when the record is malformed.
  bool IngestOrderLocked(const data::Order& order);
  bool IngestWeatherLocked(const data::WeatherRecord& record);
  bool IngestTrafficLocked(const data::TrafficRecord& record);
  void RejectEvent();
  /// Delivers pending events whose release time has arrived (holds mu_).
  void DrainPendingLocked();

  int num_areas_;
  int window_;
  std::atomic<int64_t> now_abs_{0};

  /// Guards every container below. All mutators and snapshot readers lock
  /// it; now_abs_ is additionally atomic so the clock accessors need not.
  mutable std::mutex mu_;

  std::vector<std::deque<Call>> calls_;            // per area, ts ascending
  std::vector<WeatherSlot> weather_;               // window slots
  std::vector<int64_t> weather_ts_;                // slot → abs minute
  std::vector<TrafficSlot> traffic_;               // area*window slots
  std::vector<int64_t> traffic_ts_;

  std::vector<Pending> pending_;  // fault-delayed events, unordered

  // Feed freshness + the last accepted record per feed (the zero-order
  // hold source). Traffic keeps one per area.
  int64_t last_order_abs_ = -1;
  int64_t last_weather_abs_ = -1;
  int64_t last_traffic_abs_ = -1;
  WeatherSlot held_weather_;
  std::vector<TrafficSlot> held_traffic_;     // per area
  std::vector<int64_t> held_traffic_ts_;      // per area, -1 = never

  StreamObserver* observer_ = nullptr;  // guarded by mu_

  std::atomic<uint64_t> rejected_{0};
};

}  // namespace serving
}  // namespace deepsd

#endif  // DEEPSD_SERVING_ORDER_STREAM_H_
