#include "src/core/model.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/nn/grad_check.h"
#include "tests/test_util.h"

namespace deepsd {
namespace core {
namespace {

// Small window keeps the gradient checks fast while exercising every block.
constexpr int kL = 6;

class ModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = deepsd::testing::MakeSmallCity(4, 10, 777);
    feature::FeatureConfig fc;
    fc.window = kL;
    // Normalized features keep every input O(1): the gradient checks below
    // compare float32 finite differences, which need a well-scaled loss.
    fc.normalize = true;
    assembler_ = std::make_unique<feature::FeatureAssembler>(&ds_, fc, 0, 8);
    items_ = data::MakeItems(ds_, 8, 10, 400, 1200, 200);
    ASSERT_FALSE(items_.empty());
  }

  DeepSDConfig Config() const {
    DeepSDConfig config;
    config.num_areas = ds_.num_areas();
    config.window = kL;
    return config;
  }

  std::vector<feature::ModelInput> Assemble(bool advanced, size_t count) const {
    std::vector<feature::ModelInput> out;
    for (size_t i = 0; i < std::min(count, items_.size()); ++i) {
      out.push_back(advanced ? assembler_->AssembleAdvanced(items_[i])
                             : assembler_->AssembleBasic(items_[i]));
    }
    return out;
  }

  data::OrderDataset ds_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
  std::vector<data::PredictionItem> items_;
};

TEST_F(ModelTest, BasicForwardShape) {
  nn::ParameterStore store;
  util::Rng rng(1);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  auto inputs = Assemble(false, 5);
  Batch batch = MakeBatch(VectorSource(inputs), 0, inputs.size());
  nn::Graph g;
  nn::NodeId pred = model.Forward(&g, batch);
  EXPECT_EQ(g.value(pred).rows(), 5);
  EXPECT_EQ(g.value(pred).cols(), 1);
}

TEST_F(ModelTest, AdvancedForwardShape) {
  nn::ParameterStore store;
  util::Rng rng(2);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  auto inputs = Assemble(true, 7);
  Batch batch = MakeBatch(VectorSource(inputs), 0, inputs.size());
  nn::Graph g;
  nn::NodeId pred = model.Forward(&g, batch);
  EXPECT_EQ(g.value(pred).rows(), 7);
  EXPECT_EQ(g.value(pred).cols(), 1);
}

struct VariantCase {
  const char* name;
  DeepSDModel::Mode mode;
  bool residual;
  bool embedding;
  bool weather;
  bool traffic;
};

class ModelVariantTest : public ModelTest,
                         public ::testing::WithParamInterface<VariantCase> {};

// Every configuration the paper's ablations use must build, run forward,
// and pass a full-network gradient check.
TEST_P(ModelVariantTest, BuildsRunsAndGradientsCheck) {
  const VariantCase& vc = GetParam();
  DeepSDConfig config = Config();
  config.use_residual = vc.residual;
  config.use_embedding = vc.embedding;
  config.use_weather = vc.weather;
  config.use_traffic = vc.traffic;
  // Keep time vocab small in one-hot mode so the check stays fast.
  nn::ParameterStore store;
  util::Rng rng(3);
  DeepSDModel model(config, vc.mode, &store, &rng);
  // Zero-initialized residual branches would park every LReL input exactly
  // on the kink, where finite differences are undefined; nudge all weights
  // off it.
  for (auto& p : store.parameters()) {
    for (float& v : p->value.flat()) {
      v += static_cast<float>(rng.Uniform(0.005, 0.02)) *
           (rng.Bernoulli(0.5) ? 1.0f : -1.0f);
    }
  }

  bool advanced = vc.mode == DeepSDModel::Mode::kAdvanced;
  auto inputs = Assemble(advanced, 3);
  Batch batch = MakeBatch(VectorSource(inputs), 0, inputs.size());
  // Small targets keep the float32 loss ~O(1); raw gaps would make the
  // central-difference signal vanish below the loss value's own ULP.
  for (int r = 0; r < batch.target.rows(); ++r) {
    batch.target.at(r, 0) = 0.1f * static_cast<float>(r + 1);
  }

  auto loss_fn = [&]() {
    nn::Graph g;
    g.set_training(false);  // deterministic (no dropout)
    nn::NodeId pred = model.Forward(&g, batch);
    nn::NodeId loss = g.MseLoss(pred, batch.target);
    g.Backward(loss);
    return static_cast<double>(g.value(loss).at(0, 0));
  };
  loss_fn();
  nn::GradCheckResult result = nn::CheckGradients(&store, loss_fn, 2e-3, 4);
  EXPECT_GT(result.checked, 0u);
  // Allow at most one large relative error: ±eps occasionally straddles an
  // LReL kink, where finite differences are simply wrong (a single hit can
  // reach rel ≈ 1 because the two slopes differ 1000x).
  size_t above = static_cast<size_t>(
      result.FractionAbove(0.1) * static_cast<double>(result.rel_errors.size()) +
      0.5);
  EXPECT_LE(above, 1u) << vc.name << " worst: " << result.worst_param
                       << " max_rel: " << result.max_rel_error << " ("
                       << result.rel_errors.size() << " entries)";
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ModelVariantTest,
    ::testing::Values(
        VariantCase{"basic_full", DeepSDModel::Mode::kBasic, true, true, true,
                    true},
        VariantCase{"basic_no_residual", DeepSDModel::Mode::kBasic, false,
                    true, true, true},
        VariantCase{"basic_onehot", DeepSDModel::Mode::kBasic, true, false,
                    true, true},
        VariantCase{"basic_no_env", DeepSDModel::Mode::kBasic, true, true,
                    false, false},
        VariantCase{"basic_weather_only", DeepSDModel::Mode::kBasic, true,
                    true, true, false},
        VariantCase{"advanced_full", DeepSDModel::Mode::kAdvanced, true, true,
                    true, true},
        VariantCase{"advanced_no_residual", DeepSDModel::Mode::kAdvanced,
                    false, true, true, true},
        VariantCase{"advanced_no_env", DeepSDModel::Mode::kAdvanced, true,
                    true, false, false}),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      return info.param.name;
    });

TEST_F(ModelTest, PredictClampsAtZero) {
  nn::ParameterStore store;
  util::Rng rng(5);
  DeepSDConfig config = Config();
  DeepSDModel model(config, DeepSDModel::Mode::kBasic, &store, &rng);
  // Force strongly negative outputs through the head bias.
  store.Find("head.out.b")->value.at(0, 0) = -100.0f;
  auto inputs = Assemble(false, 6);
  std::vector<float> preds = model.Predict(inputs);
  for (float p : preds) EXPECT_GE(p, 0.0f);

  DeepSDConfig unclamped = config;
  unclamped.clamp_nonnegative = false;
  DeepSDModel model2(unclamped, DeepSDModel::Mode::kBasic, &store, &rng);
  std::vector<float> raw = model2.Predict(inputs);
  for (float p : raw) EXPECT_LT(p, 0.0f);
}

TEST_F(ModelTest, CombiningWeightsAreDistribution) {
  nn::ParameterStore store;
  util::Rng rng(6);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  for (int signal = 0; signal < 3; ++signal) {
    auto p = model.CombiningWeights(2, 6, signal);
    float sum = 0;
    for (float w : p) {
      EXPECT_GT(w, 0.0f);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST_F(ModelTest, ParameterReuseAcrossRebuilds) {
  nn::ParameterStore store;
  util::Rng rng(7);
  DeepSDModel a(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  size_t count = store.parameters().size();
  // Rebuilding the same topology adds no parameters.
  DeepSDModel b(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  EXPECT_EQ(store.parameters().size(), count);
  // Extending with mode change adds the new blocks but keeps shared ones.
  DeepSDModel c(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  EXPECT_GT(store.parameters().size(), count);
  EXPECT_NE(store.Find("id.area.embed"), nullptr);
}

TEST_F(ModelTest, EnvironmentBlocksChangeParameterSet) {
  util::Rng rng(8);
  DeepSDConfig no_env = Config();
  no_env.use_weather = false;
  no_env.use_traffic = false;
  nn::ParameterStore store;
  DeepSDModel model(no_env, DeepSDModel::Mode::kBasic, &store, &rng);
  EXPECT_EQ(store.Find("weather.fc1.w"), nullptr);
  EXPECT_EQ(store.Find("traffic.fc1.w"), nullptr);

  DeepSDConfig with_env = Config();
  nn::ParameterStore store2;
  DeepSDModel model2(with_env, DeepSDModel::Mode::kBasic, &store2, &rng);
  EXPECT_NE(store2.Find("weather.fc1.w"), nullptr);
  EXPECT_NE(store2.Find("traffic.fc1.w"), nullptr);
}

TEST_F(ModelTest, AreaEmbeddingAccessible) {
  nn::ParameterStore store;
  util::Rng rng(9);
  DeepSDModel model(Config(), DeepSDModel::Mode::kBasic, &store, &rng);
  ASSERT_NE(model.area_embedding(), nullptr);
  EXPECT_EQ(model.area_embedding()->vocab(), ds_.num_areas());

  DeepSDConfig onehot = Config();
  onehot.use_embedding = false;
  nn::ParameterStore store2;
  DeepSDModel model2(onehot, DeepSDModel::Mode::kBasic, &store2, &rng);
  EXPECT_EQ(model2.area_embedding(), nullptr);
}

TEST_F(ModelTest, BatchSizeInvariantPredictions) {
  // Inference must not depend on how the inputs are batched.
  nn::ParameterStore store;
  util::Rng rng(11);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  auto inputs = Assemble(true, 7);
  std::vector<float> one_by_one = model.Predict(inputs, /*batch_size=*/1);
  std::vector<float> all_at_once = model.Predict(inputs, /*batch_size=*/256);
  std::vector<float> threes = model.Predict(inputs, /*batch_size=*/3);
  ASSERT_EQ(one_by_one.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_FLOAT_EQ(one_by_one[i], all_at_once[i]) << i;
    EXPECT_FLOAT_EQ(one_by_one[i], threes[i]) << i;
  }
}

TEST_F(ModelTest, DeterministicPredictions) {
  nn::ParameterStore store;
  util::Rng rng(10);
  DeepSDModel model(Config(), DeepSDModel::Mode::kAdvanced, &store, &rng);
  auto inputs = Assemble(true, 4);
  std::vector<float> p1 = model.Predict(inputs);
  std::vector<float> p2 = model.Predict(inputs);
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace core
}  // namespace deepsd
