// Int8 quantized inference path (DEEPSD_KERNEL=quant): QuantizeWeights
// round-trip error bounds, GemmQuant accuracy against the fp32 oracle,
// determinism and batch-composition independence (per-row activation
// scales make each row's result independent of its batch neighbors), the
// fused bias+LReL epilogue's bitwise parity with its unfused composition,
// the calibrated saturation guard, graph-level dispatch gating (inference
// only, Parameter-backed weights only), the per-version quant cache, and
// the DEEPSD_KERNEL parsing contract incl. the unknown-value fallback.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/parameter.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepsd {
namespace nn {
namespace {

std::vector<float> RandomVec(size_t n, util::Rng* rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(lo, hi);
  return v;
}

bool SameBits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

double RelErr(const std::vector<float>& ref, const std::vector<float>& got) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double d = static_cast<double>(ref[i]) - got[i];
    num += d * d;
    den += static_cast<double>(ref[i]) * ref[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

TEST(QuantizeWeightsTest, RoundTripWithinHalfScale) {
  util::Rng rng(7);
  const int rows = 13, cols = 9;
  std::vector<float> w = RandomVec(static_cast<size_t>(rows) * cols, &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), rows, cols, &q);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.data.size(), static_cast<size_t>(rows) * cols);
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(cols));
  for (int p = 0; p < rows; ++p) {
    for (int j = 0; j < cols; ++j) {
      const float orig = w[static_cast<size_t>(p) * cols + j];
      const float deq =
          q.data[static_cast<size_t>(p) * cols + j] * q.scales[j];
      // Symmetric round-to-nearest: at most half a quantization step off.
      EXPECT_LE(std::fabs(orig - deq), q.scales[j] * 0.5f + 1e-7f)
          << "(" << p << "," << j << ")";
    }
  }
}

TEST(QuantizeWeightsTest, ZeroColumnGetsZeroScaleAndCodes) {
  const int rows = 4, cols = 3;
  std::vector<float> w(static_cast<size_t>(rows) * cols, 0.0f);
  for (int p = 0; p < rows; ++p) w[static_cast<size_t>(p) * cols + 1] = 1.5f;
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), rows, cols, &q);
  for (int j : {0, 2}) {
    EXPECT_EQ(q.scales[j], 0.0f);
    for (int p = 0; p < rows; ++p) {
      EXPECT_EQ(q.data[static_cast<size_t>(p) * cols + j], 0);
    }
  }
  EXPECT_GT(q.scales[1], 0.0f);
}

TEST(QuantizeWeightsTest, Deterministic) {
  util::Rng rng(8);
  std::vector<float> w = RandomVec(24 * 17, &rng);
  kernels::QuantizedWeights q1, q2;
  kernels::QuantizeWeights(w.data(), 24, 17, &q1);
  kernels::QuantizeWeights(w.data(), 24, 17, &q2);
  EXPECT_EQ(q1.data, q2.data);
  EXPECT_EQ(q1.scales, q2.scales);
}

TEST(GemmQuantTest, CloseToFp32Oracle) {
  util::Rng rng(21);
  const int m = 6, k = 64, n = 32;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  std::vector<float> ref(static_cast<size_t>(m) * n);
  kernels::GemmNaive(a.data(), w.data(), ref.data(), m, k, n,
                     /*accumulate=*/false);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  std::vector<float> y(static_cast<size_t>(m) * n);
  kernels::GemmQuant(a.data(), q, y.data(), m, k, n, /*act_absmax=*/0.0f,
                     /*accumulate=*/false);
  // Two int8 roundings over a k=64 contraction: ~1% relative is typical,
  // 3% is a loose ceiling that still catches any scale-handling bug.
  EXPECT_LT(RelErr(ref, y), 0.03);
}

TEST(GemmQuantTest, AccumulateAddsIntoOutput) {
  util::Rng rng(22);
  const int m = 3, k = 16, n = 8;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  std::vector<float> base = RandomVec(static_cast<size_t>(m) * n, &rng);
  std::vector<float> fresh(static_cast<size_t>(m) * n);
  kernels::GemmQuant(a.data(), q, fresh.data(), m, k, n, 0.0f, false);
  std::vector<float> acc = base;
  kernels::GemmQuant(a.data(), q, acc.data(), m, k, n, 0.0f, true);
  for (size_t i = 0; i < acc.size(); ++i) {
    EXPECT_FLOAT_EQ(acc[i], base[i] + fresh[i]) << i;
  }
}

TEST(GemmQuantTest, DeterministicAndBatchCompositionIndependent) {
  util::Rng rng(23);
  const int m = 5, k = 40, n = 24;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  std::vector<float> y1(static_cast<size_t>(m) * n),
      y2(static_cast<size_t>(m) * n);
  kernels::GemmQuant(a.data(), q, y1.data(), m, k, n, 0.0f, false);
  kernels::GemmQuant(a.data(), q, y2.data(), m, k, n, 0.0f, false);
  EXPECT_TRUE(SameBits(y1, y2));
  // Per-row activation scales: row i of the batch result must equal the
  // m=1 result for that row alone (no cross-row coupling).
  for (int i = 0; i < m; ++i) {
    std::vector<float> yrow(static_cast<size_t>(n));
    kernels::GemmQuant(a.data() + static_cast<size_t>(i) * k, q, yrow.data(),
                       1, k, n, 0.0f, false);
    EXPECT_EQ(0, std::memcmp(yrow.data(), y1.data() + static_cast<size_t>(i) * n,
                             sizeof(float) * n))
        << "row " << i;
  }
}

TEST(GemmQuantTest, ZeroRowProducesZeros) {
  const int k = 12, n = 6;
  std::vector<float> a(k, 0.0f);
  util::Rng rng(24);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  std::vector<float> y(n, 42.0f);
  kernels::GemmQuant(a.data(), q, y.data(), 1, k, n, 0.0f, false);
  for (float v : y) EXPECT_EQ(v, 0.0f);
  std::vector<float> yacc(n, 42.0f);
  kernels::GemmQuant(a.data(), q, yacc.data(), 1, k, n, 0.0f, true);
  for (float v : yacc) EXPECT_EQ(v, 42.0f);  // accumulate leaves y alone
}

TEST(GemmQuantTest, FusedBiasLRelMatchesComposition) {
  util::Rng rng(25);
  const int m = 4, k = 32, n = 16;
  const float alpha = 0.001f;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  std::vector<float> bias = RandomVec(static_cast<size_t>(n), &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  for (float act_absmax : {0.0f, 2.0f}) {
    std::vector<float> fused(static_cast<size_t>(m) * n);
    kernels::GemmBiasLRelQuant(a.data(), q, bias.data(), fused.data(), m, k,
                               n, alpha, act_absmax);
    std::vector<float> composed(static_cast<size_t>(m) * n);
    kernels::GemmQuant(a.data(), q, composed.data(), m, k, n, act_absmax,
                       false);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float& v = composed[static_cast<size_t>(i) * n + j];
        v += bias[j];
        v = v < 0.0f ? v * alpha : v;
      }
    }
    EXPECT_TRUE(SameBits(fused, composed)) << "act_absmax=" << act_absmax;
  }
}

// The calibrated range acts as a saturation guard: a corrupt spike in one
// activation row saturates at the ceiling instead of blowing up the
// dynamic scale and crushing every other entry of that row to zero code.
TEST(GemmQuantTest, CalibrationClipsCorruptSpike) {
  const int k = 32, n = 8;
  util::Rng rng(26);
  std::vector<float> a = RandomVec(static_cast<size_t>(k), &rng, -1.0f, 1.0f);
  a[k - 1] = 1.0e30f;  // corrupt feature spike
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  // Columns ignore the spiked input so the clean fp32 reference is
  // well-defined.
  for (int j = 0; j < n; ++j) w[static_cast<size_t>(k - 1) * n + j] = 0.0f;
  std::vector<float> ref(n);
  kernels::GemmNaive(a.data(), w.data(), ref.data(), 1, k, n, false);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);

  std::vector<float> guarded(n), dynamic(n);
  kernels::GemmQuant(a.data(), q, guarded.data(), 1, k, n,
                     /*act_absmax=*/1.0f, false);
  kernels::GemmQuant(a.data(), q, dynamic.data(), 1, k, n,
                     /*act_absmax=*/0.0f, false);
  for (float v : guarded) EXPECT_TRUE(std::isfinite(v));
  // Unguarded: the 1e30 spike owns the whole int8 range, every sane entry
  // quantizes to code 0 and the row collapses.
  for (float v : dynamic) EXPECT_EQ(v, 0.0f);
  // Guarded: the clipped 32x ceiling is coarse (a couple of codes for the
  // sane entries) but the row keeps real signal instead of collapsing —
  // rel error well under the unguarded row's 1.0.
  EXPECT_LT(RelErr(ref, guarded), 0.6);
  bool any_nonzero = false;
  for (float v : guarded) any_nonzero |= (v != 0.0f);
  EXPECT_TRUE(any_nonzero);
}

TEST(GemmQuantTest, CleanRowsUnaffectedByCalibrationCeiling) {
  util::Rng rng(27);
  const int m = 3, k = 24, n = 12;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> w = RandomVec(static_cast<size_t>(k) * n, &rng);
  kernels::QuantizedWeights q;
  kernels::QuantizeWeights(w.data(), k, n, &q);
  // Rows stay below the ceiling (32x the calibrated range), so calibrated
  // and uncalibrated dispatch must agree bitwise.
  std::vector<float> with(static_cast<size_t>(m) * n),
      without(static_cast<size_t>(m) * n);
  kernels::GemmQuant(a.data(), q, with.data(), m, k, n, /*act_absmax=*/2.0f,
                     false);
  kernels::GemmQuant(a.data(), q, without.data(), m, k, n, 0.0f, false);
  EXPECT_TRUE(SameBits(with, without));
}

// --- graph-level dispatch -------------------------------------------------

Tensor MakeTensor(int rows, int cols, util::Rng* rng) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) v = rng->Uniform(-1.0f, 1.0f);
  return t;
}

TEST(GraphQuantTest, DispatchGatedOnModeAndTrainingAndParam) {
  util::Rng rng(31);
  ParameterStore store;
  Parameter* w = store.Create("w", 16, 8, Init::kGlorotUniform, &rng);
  Parameter* b = store.Create("b", 1, 8, Init::kZero, &rng);
  Parameter* w2 = store.Create("w2", 8, 4, Init::kGlorotUniform, &rng);
  Tensor x = MakeTensor(4, 16, &rng);

  auto run = [&](kernels::KernelMode mode, bool training) {
    kernels::ScopedKernelMode scoped(mode);
    Graph g(&rng);
    g.set_training(training);
    const uint64_t before = kernels::QuantGemmCount();
    NodeId xn = g.Input(x);
    NodeId y = g.LinearLRel(xn, g.Param(w), g.Param(b), 0.001f);
    NodeId z = g.MatMul(y, g.Param(w2));
    (void)z;
    return kernels::QuantGemmCount() - before;
  };

  EXPECT_EQ(run(kernels::KernelMode::kBlocked, false), 0u);
  EXPECT_EQ(run(kernels::KernelMode::kNaive, false), 0u);
  EXPECT_EQ(run(kernels::KernelMode::kQuant, true), 0u);   // training: fp32
  EXPECT_EQ(run(kernels::KernelMode::kQuant, false), 2u);  // both multiplies

  // A weight that is a plain Input (not Parameter-backed) never takes the
  // quant path, whatever the mode.
  {
    kernels::ScopedKernelMode scoped(kernels::KernelMode::kQuant);
    Graph g(&rng);
    g.set_training(false);
    const uint64_t before = kernels::QuantGemmCount();
    NodeId xn = g.Input(x);
    NodeId wn = g.Input(MakeTensor(16, 8, &rng));
    (void)g.MatMul(xn, wn);
    EXPECT_EQ(kernels::QuantGemmCount() - before, 0u);
  }
}

TEST(GraphQuantTest, QuantForwardCloseToFp32Forward) {
  util::Rng rng(32);
  ParameterStore store;
  Parameter* w1 = store.Create("w1", 20, 16, Init::kGlorotUniform, &rng);
  Parameter* b1 = store.Create("b1", 1, 16, Init::kZero, &rng);
  Parameter* w2 = store.Create("w2", 16, 1, Init::kGlorotUniform, &rng);
  Tensor x = MakeTensor(6, 20, &rng);

  auto forward = [&]() {
    Graph g(&rng);
    g.set_training(false);
    NodeId h = g.LinearLRel(g.Input(x), g.Param(w1), g.Param(b1), 0.001f);
    NodeId out = g.MatMul(h, g.Param(w2));
    const Tensor& v = g.value(out);
    return std::vector<float>(v.flat().begin(), v.flat().end());
  };
  std::vector<float> fp32, quant;
  {
    kernels::ScopedKernelMode scoped(kernels::KernelMode::kBlocked);
    fp32 = forward();
  }
  {
    kernels::ScopedKernelMode scoped(kernels::KernelMode::kQuant);
    quant = forward();
  }
  ASSERT_EQ(fp32.size(), quant.size());
  EXPECT_LT(RelErr(fp32, quant), 0.05);
  EXPECT_FALSE(SameBits(fp32, quant));  // it really took the int8 path
}

TEST(GraphQuantTest, CalibrationRecordsEwmaWithoutChangingValues) {
  util::Rng rng(33);
  ParameterStore store;
  Parameter* w = store.Create("w", 8, 4, Init::kGlorotUniform, &rng);
  ASSERT_EQ(w->act_absmax, 0.0f);

  Tensor x1(1, 8), x2(1, 8);
  for (float& v : x1.flat()) v = 0.5f;
  x1.flat()[3] = -3.0f;  // absmax 3
  for (float& v : x2.flat()) v = 0.25f;
  x2.flat()[5] = 5.0f;  // absmax 5

  kernels::ScopedKernelMode scoped(kernels::KernelMode::kBlocked);
  Graph g(&rng);
  g.set_training(false);

  // Reference pass without calibration.
  NodeId ref = g.MatMul(g.Input(x1), g.Param(w));
  std::vector<float> ref_v(g.value(ref).flat().begin(),
                           g.value(ref).flat().end());
  g.Clear();

  g.set_calibrating(true);
  NodeId y1 = g.MatMul(g.Input(x1), g.Param(w));
  std::vector<float> cal_v(g.value(y1).flat().begin(),
                           g.value(y1).flat().end());
  EXPECT_TRUE(SameBits(ref_v, cal_v));  // calibration never changes values
  EXPECT_FLOAT_EQ(w->act_absmax, 3.0f);  // first observation seeds
  g.Clear();
  (void)g.MatMul(g.Input(x2), g.Param(w));
  EXPECT_FLOAT_EQ(w->act_absmax, 0.9f * 3.0f + 0.1f * 5.0f);  // EWMA blend
}

// --- quant cache ----------------------------------------------------------

TEST(ParameterQuantCacheTest, InvalidatedByBumpVersion) {
  util::Rng rng(41);
  ParameterStore store;
  Parameter* p = store.Create("w", 6, 3, Init::kGlorotUniform, &rng);
  const kernels::QuantizedWeights& q1 = p->Quantized();
  std::vector<int8_t> codes1 = q1.data;
  // Same version: cached object, no requantization.
  EXPECT_EQ(&p->Quantized(), &q1);
  EXPECT_EQ(p->Quantized().data, codes1);

  for (float& v : p->value.flat()) v *= 2.0f;
  p->BumpVersion();
  // The cache requantized from the new values: dequantized magnitudes
  // track the doubled weights (codes keep the same relative layout, so
  // compare through dequantization, not raw codes).
  const kernels::QuantizedWeights& q2 = p->Quantized();
  ASSERT_EQ(q2.scales.size(), 3u);
  float max_abs = 0.0f;
  for (float v : p->value.flat()) max_abs = std::max(max_abs, std::fabs(v));
  float max_deq = 0.0f;
  for (size_t i = 0; i < q2.data.size(); ++i) {
    max_deq = std::max(max_deq, std::fabs(q2.data[i] * q2.scales[i % 3]));
  }
  EXPECT_NEAR(max_deq, max_abs, max_abs * 0.02f);
}

TEST(ParameterQuantCacheTest, InstallQuantizedServesInstalledCodes) {
  util::Rng rng(42);
  ParameterStore store;
  Parameter* p = store.Create("w", 4, 2, Init::kGlorotUniform, &rng);
  kernels::QuantizedWeights custom;
  custom.rows = 4;
  custom.cols = 2;
  custom.data = {1, -2, 3, -4, 5, -6, 7, -8};
  custom.scales = {0.5f, 0.25f};
  p->InstallQuantized(std::move(custom));
  const kernels::QuantizedWeights& q = p->Quantized();
  EXPECT_EQ(q.data, (std::vector<int8_t>{1, -2, 3, -4, 5, -6, 7, -8}));
  // A version bump discards the installed form and requantizes from fp32.
  p->BumpVersion();
  EXPECT_NE(p->Quantized().data, (std::vector<int8_t>{1, -2, 3, -4, 5, -6, 7, -8}));
}

// --- mode parsing (satellite: DEEPSD_KERNEL fallback contract) ------------

TEST(KernelModeTest, ParseKnownNames) {
  kernels::KernelMode m = kernels::KernelMode::kBlocked;
  EXPECT_TRUE(kernels::ParseKernelMode("naive", &m));
  EXPECT_EQ(m, kernels::KernelMode::kNaive);
  EXPECT_TRUE(kernels::ParseKernelMode("blocked", &m));
  EXPECT_EQ(m, kernels::KernelMode::kBlocked);
  EXPECT_TRUE(kernels::ParseKernelMode("quant", &m));
  EXPECT_EQ(m, kernels::KernelMode::kQuant);
}

TEST(KernelModeTest, UnknownNameRejectedAndOutUntouched) {
  for (const char* bad : {"", "int8", "QUANT", "fast", "blocked ", "q"}) {
    kernels::KernelMode m = kernels::KernelMode::kNaive;
    EXPECT_FALSE(kernels::ParseKernelMode(bad, &m)) << "'" << bad << "'";
    EXPECT_EQ(m, kernels::KernelMode::kNaive) << "'" << bad << "'";
  }
}

TEST(KernelModeTest, ScopedOverrideRestores) {
  const kernels::KernelMode before = kernels::kernel_mode();
  {
    kernels::ScopedKernelMode scoped(kernels::KernelMode::kQuant);
    EXPECT_EQ(kernels::kernel_mode(), kernels::KernelMode::kQuant);
    {
      kernels::ScopedKernelMode inner(kernels::KernelMode::kNaive);
      EXPECT_EQ(kernels::kernel_mode(), kernels::KernelMode::kNaive);
    }
    EXPECT_EQ(kernels::kernel_mode(), kernels::KernelMode::kQuant);
  }
  EXPECT_EQ(kernels::kernel_mode(), before);
}

}  // namespace
}  // namespace nn
}  // namespace deepsd
