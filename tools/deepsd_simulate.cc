// deepsd_simulate: generate a synthetic car-hailing city and save it as a
// binary OrderDataset for the other tools.
//
//   deepsd_simulate --out=city.bin --areas=58 --days=52 --seed=42
//                   [--mean_scale=1.0] [--no_weather] [--no_traffic]
//                   [--metrics-out=metrics.jsonl] [--trace-out=trace.json]
//
// --metrics-out / --trace-out turn telemetry on and additionally run an
// instrumented end-to-end pass over the generated city — a short training
// run, a live-serving replay through OnlinePredictor, and one closed-loop
// dispatch evaluation — so the dumps cover every subsystem's hot path
// (trainer, predictor, order stream, feature assembly, dispatch). The
// metrics dump is JSON lines; the trace loads in chrome://tracing and
// Perfetto. See docs/observability.md.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <filesystem>

#include "core/drift.h"
#include "core/trainer.h"
#include "learn/continuous_learner.h"
#include "data/serialize.h"
#include "dispatch/closed_loop.h"
#include "dispatch/policies.h"
#include "eval/online_accuracy.h"
#include "obs/http_export.h"
#include "obs/metrics_io.h"
#include "obs/openmetrics.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serving/online_predictor.h"
#include "serving/serving_queue.h"
#include "serving/sharded_predictor.h"
#include "sim/city_sim.h"
#include "store/pack.h"
#include "store/stored_model.h"
#include "store/versioned_model.h"
#include "util/circuit_breaker.h"
#include "util/cli.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/rate_limiter.h"
#include "util/thread_pool.h"

namespace deepsd {
namespace {

/// Trains a small basic-mode model on the generated city, replays one
/// serving day through the OnlinePredictor minute by minute, and runs a
/// predictive closed-loop dispatch epoch — purely to exercise the
/// instrumented paths end to end. Kept deliberately tiny: 2 epochs, a
/// coarse item stride, and a single dispatch day.
void RunInstrumentedPipeline(const data::OrderDataset& dataset,
                             const sim::CityConfig& city_config) {
  const int num_days = dataset.num_days();
  if (num_days < 3) {
    std::fprintf(stderr,
                 "telemetry pipeline needs >= 3 days, have %d; skipping\n",
                 num_days);
    return;
  }
  const int train_days = std::max(2, num_days * 2 / 3);
  const int serve_day = train_days;  // first held-out day

  // --- Trainer spans ---
  std::printf("telemetry: training probe model on days [0,%d)...\n",
              train_days);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 30);
  auto eval_items = data::MakeTestItems(dataset, serve_day, serve_day + 1);

  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::AssemblerSource eval(&assembler, eval_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, eval);

  // --- Serving spans: replay the serve day like a live feed, with the
  // online accuracy tracker joining predictions against the arriving
  // ground truth and scoring input drift against the training reference.
  std::printf("telemetry: replaying day %d through OnlinePredictor...\n",
              serve_day);
  serving::OnlinePredictor predictor(&model, &assembler);
  eval::OnlineAccuracyConfig ac;
  ac.num_areas = dataset.num_areas();
  eval::OnlineAccuracyTracker tracker(ac);
  tracker.SetInputReference(core::BuildInputReference(train));
  predictor.set_prediction_observer(&tracker);
  predictor.buffer().set_stream_observer(&tracker);
  serving::OrderStreamBuffer& buffer = predictor.buffer();
  const int t_begin = 420, t_end = 600;  // morning peak is plenty
  buffer.AdvanceTo(serve_day, t_begin - fc.window);
  for (int ts = t_begin - fc.window; ts < t_end; ++ts) {
    for (int a = 0; a < dataset.num_areas(); ++a) {
      for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
        buffer.AddOrder(o);
      }
      if (dataset.has_traffic()) {
        data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
        tr.area = a;
        tr.day = serve_day;
        tr.ts = ts;
        buffer.AddTraffic(tr);
      }
    }
    if (dataset.has_weather()) {
      data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
      w.day = serve_day;
      w.ts = ts;
      buffer.AddWeather(w);
    }
    predictor.AdvanceTo(serve_day, ts + 1);
    if ((ts + 1) % 10 == 0 && ts + 1 >= t_begin) {
      predictor.PredictAll();
      predictor.Predict(0);
    }
  }
  // Let the last open prediction slots mature, then report.
  predictor.AdvanceTo(serve_day, t_end + data::kGapWindow);
  const eval::TierAccuracy acc = tracker.Overall();
  std::printf(
      "telemetry: online accuracy over %llu joined slots: MAE %.3f RMSE %.3f "
      "ER %.3f, input PSI %.3f\n",
      static_cast<unsigned long long>(acc.count), acc.mae, acc.rmse, acc.er,
      tracker.InputPsi());
  predictor.set_prediction_observer(nullptr);
  predictor.buffer().set_stream_observer(nullptr);

  // --- Dispatch spans: one short predictive closed loop ---
  std::printf("telemetry: running closed-loop dispatch on day %d...\n",
              serve_day);
  dispatch::PredictiveGapPolicy policy(&model, &assembler);
  dispatch::ClosedLoopConfig clc;
  clc.day_begin = serve_day;
  clc.day_end = serve_day + 1;
  clc.t_begin = t_begin;
  clc.t_end = t_end;
  clc.drivers_per_minute = 0.4 * dataset.num_areas();
  dispatch::RunClosedLoop(city_config, &policy, clc);
}

/// Closed-loop overload spike against a ServingQueue-fronted predictor:
/// calibrate the per-request service time, then offer load in three phases
/// — a ramp (1x..5x the sustainable rate), a burst (`burst_mult`x), and a
/// sustained 2x tail — with per-request deadlines a few service times
/// long. Verifies the overload invariants the robustness docs promise:
/// admitted + shed == offered, every accepted request resolves (zero
/// losses), and Drain() closes admission without abandoning work. Returns
/// false (and prints why) when any invariant breaks.
bool RunOverloadScenario(const data::OrderDataset& dataset, double burst_mult,
                         int requests_per_phase,
                         obs::TimelineRecorder* recorder) {
  const int num_days = dataset.num_days();
  if (num_days < 3) {
    std::fprintf(stderr, "--overload needs >= 3 days, have %d\n", num_days);
    return false;
  }
  const int train_days = std::max(2, num_days * 2 / 3);
  const int serve_day = train_days;

  std::printf("overload: training probe model on days [0,%d)...\n",
              train_days);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 60);
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, train);

  // Feed the live buffer a healthy morning window so admission decisions,
  // not staleness fallbacks, are what the scenario exercises.
  serving::OnlinePredictor predictor(&model, &assembler);
  serving::OrderStreamBuffer& buffer = predictor.buffer();
  const int t_now = 480;
  buffer.AdvanceTo(serve_day, t_now - fc.window);
  for (int ts = t_now - fc.window; ts < t_now; ++ts) {
    for (int a = 0; a < dataset.num_areas(); ++a) {
      for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
        buffer.AddOrder(o);
      }
      if (dataset.has_traffic()) {
        data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
        tr.area = a;
        tr.day = serve_day;
        tr.ts = ts;
        buffer.AddTraffic(tr);
      }
    }
    if (dataset.has_weather()) {
      data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
      w.day = serve_day;
      w.ts = ts;
      buffer.AddWeather(w);
    }
  }
  predictor.AdvanceTo(serve_day, t_now);

  std::vector<int> all_areas(static_cast<size_t>(dataset.num_areas()));
  for (int a = 0; a < dataset.num_areas(); ++a) {
    all_areas[static_cast<size_t>(a)] = a;
  }

  // Calibrate: a few unhurried requests establish the service-time EWMA
  // the deadline-feasibility shed relies on.
  int64_t calib_start = util::NowSteadyUs();
  for (int i = 0; i < 4; ++i) {
    predictor.PredictBatch(all_areas, util::Deadline::Infinite());
  }
  const double service_us = std::max(
      static_cast<double>(util::NowSteadyUs() - calib_start) / 4.0, 100.0);
  std::printf("overload: calibrated service time %.0f us/request\n",
              service_us);

  // The guard rails: a rate limiter at ~3x the sustainable rate (so the
  // ramp passes but the burst trips it) and a breaker that opens after a
  // run of deadline misses and recovers quickly enough to probe within
  // the scenario.
  util::RateLimiter limiter(3.0 * 1e6 / service_us, /*burst=*/8.0);
  util::CircuitBreaker::Config bc;
  bc.failure_threshold = 8;
  bc.open_duration_us = static_cast<int64_t>(service_us * 4);
  bc.name = "overload_breaker";
  util::CircuitBreaker breaker(bc);

  serving::ServingQueueConfig qc;
  qc.capacity = 16;
  qc.num_workers = 1;
  qc.default_deadline_us = static_cast<int64_t>(service_us * 4);
  qc.rate_limiter = &limiter;
  qc.breaker = &breaker;
  qc.watchdog_stuck_us = 10'000'000;
  serving::ServingQueue queue(&predictor, qc);

  struct Phase {
    const char* name;
    double mult;
  };
  const Phase phases[] = {{"ramp_1x", 1.0},
                          {"ramp_2x", 2.0},
                          {"ramp_5x", 5.0},
                          {"burst", burst_mult},
                          {"sustained_2x", 2.0}};
  std::vector<std::future<serving::ServingResponse>> futures;
  futures.reserve(static_cast<size_t>(requests_per_phase) * 5);
  // Baseline scrape before load so the phase deltas stand out.
  if (recorder != nullptr) recorder->SampleNow();
  for (const Phase& phase : phases) {
    // Below ~50us the sleep's own scheduling latency throttles the offered
    // load; a genuinely overloading phase just submits back to back.
    const int64_t inter_us =
        static_cast<int64_t>(service_us / phase.mult);
    const serving::ServingQueueStats before = queue.stats();
    for (int i = 0; i < requests_per_phase; ++i) {
      futures.push_back(queue.Submit(all_areas));
      if (inter_us >= 50) {
        std::this_thread::sleep_for(std::chrono::microseconds(inter_us));
      }
    }
    const serving::ServingQueueStats after = queue.stats();
    // One deterministic timeline sample per phase: the burst phase shows
    // up as a shed-rate spike in exactly one scrape interval, and the SLO
    // monitor (if attached to the recorder) sees each phase once.
    if (recorder != nullptr) recorder->SampleNow();
    std::printf(
        "overload: phase %-12s offered %3llu admitted %3llu shed %3llu "
        "(full %llu deadline %llu rate %llu breaker %llu)\n",
        phase.name,
        static_cast<unsigned long long>(after.offered - before.offered),
        static_cast<unsigned long long>(after.admitted - before.admitted),
        static_cast<unsigned long long>(after.shed_total() -
                                        before.shed_total()),
        static_cast<unsigned long long>(after.shed_queue_full -
                                        before.shed_queue_full),
        static_cast<unsigned long long>(after.shed_deadline -
                                        before.shed_deadline),
        static_cast<unsigned long long>(after.shed_rate_limited -
                                        before.shed_rate_limited),
        static_cast<unsigned long long>(after.shed_breaker -
                                        before.shed_breaker));
  }

  // Every future must resolve — shed ones immediately, admitted ones once
  // served. A hung future is a lost request, the one failure mode the
  // queue exists to rule out.
  size_t lost = 0, resolved_admitted = 0, misses = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
      ++lost;
      continue;
    }
    serving::ServingResponse r = f.get();
    if (r.admitted()) {
      ++resolved_admitted;
      if (r.deadline_missed) ++misses;
    }
  }

  queue.Drain();
  // Admission must stay closed after a drain.
  serving::ServingResponse post_drain =
      queue.Submit(all_areas, util::Deadline::Infinite()).get();

  const serving::ServingQueueStats s = queue.stats();
  std::printf(
      "overload: total offered %llu admitted %llu shed %llu "
      "deadline_miss %llu breaker_opened %llu\n",
      static_cast<unsigned long long>(s.offered),
      static_cast<unsigned long long>(s.admitted),
      static_cast<unsigned long long>(s.shed_total()),
      static_cast<unsigned long long>(s.deadline_misses),
      static_cast<unsigned long long>(breaker.times_opened()));

  bool ok = true;
  if (lost != 0) {
    std::fprintf(stderr, "overload FAIL: %zu request(s) never resolved\n",
                 lost);
    ok = false;
  }
  if (s.offered != s.admitted + s.shed_total()) {
    std::fprintf(stderr,
                 "overload FAIL: offered %llu != admitted %llu + shed %llu "
                 "(silent drop)\n",
                 static_cast<unsigned long long>(s.offered),
                 static_cast<unsigned long long>(s.admitted),
                 static_cast<unsigned long long>(s.shed_total()));
    ok = false;
  }
  if (resolved_admitted != s.completed || s.completed != s.admitted) {
    std::fprintf(stderr,
                 "overload FAIL: admitted %llu completed %llu resolved %zu\n",
                 static_cast<unsigned long long>(s.admitted),
                 static_cast<unsigned long long>(s.completed),
                 resolved_admitted);
    ok = false;
  }
  if (s.admitted == 0) {
    std::fprintf(stderr, "overload FAIL: everything was shed\n");
    ok = false;
  }
  if (post_drain.verdict != serving::AdmitVerdict::kShedDraining) {
    std::fprintf(stderr,
                 "overload FAIL: post-drain submit was not shed as draining "
                 "(got %s)\n",
                 serving::ServingQueue::VerdictName(post_drain.verdict));
    ok = false;
  }
  if (ok) std::printf("overload scenario OK (%zu misses of admitted)\n",
                      misses);
  return ok;
}

/// Sharded serving smoke at city scale (docs/sharding.md): trains a probe
/// model on the generated city, replays identical fresh feeds into a
/// direct OnlinePredictor and ShardedPredictors at 1 and `shards` shards,
/// and checks the invariants the sharded design promises — PredictCity()
/// bitwise identical to the direct path at every shard count under an
/// infinite deadline, the ring placing every area with every shard owning
/// some, and admitted + shed == offered per shard and merged. This is the
/// CI gate behind `deepsd_simulate --shards 4 --areas 1000`; returns false
/// (and prints why) when any invariant breaks.
bool RunShardedScenario(const data::OrderDataset& dataset, int shards) {
  const int num_days = dataset.num_days();
  if (num_days < 3) {
    std::fprintf(stderr, "--shards needs >= 3 days, have %d\n", num_days);
    return false;
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1, got %d\n", shards);
    return false;
  }
  const int train_days = std::max(2, num_days * 2 / 3);
  const int serve_day = train_days;

  std::printf("sharded: training probe model on days [0,%d)...\n",
              train_days);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 60);
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, train);

  // Identical fresh feeds into the direct predictor and each sharded
  // configuration: the equivalence check below compares like with like.
  const int t_now = 480;
  auto replay = [&](auto& sink) {
    sink.AdvanceTo(serve_day, t_now - fc.window);
    for (int ts = t_now - fc.window; ts < t_now; ++ts) {
      for (int a = 0; a < dataset.num_areas(); ++a) {
        for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
          sink.AddOrder(o);
        }
        if (dataset.has_traffic()) {
          data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
          tr.area = a;
          tr.day = serve_day;
          tr.ts = ts;
          sink.AddTraffic(tr);
        }
      }
      if (dataset.has_weather()) {
        data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
        w.day = serve_day;
        w.ts = ts;
        sink.AddWeather(w);
      }
    }
    sink.AdvanceTo(serve_day, t_now);
  };

  serving::OnlinePredictor direct(&model, &assembler);
  replay(direct.buffer());
  std::vector<int> all_areas(static_cast<size_t>(dataset.num_areas()));
  for (int a = 0; a < dataset.num_areas(); ++a) {
    all_areas[static_cast<size_t>(a)] = a;
  }
  const std::vector<float> want = direct.PredictBatch(all_areas);

  bool ok = true;
  for (int n : {1, shards}) {
    if (n == 1 && shards == 1) continue;  // don't run 1-shard twice
    serving::ShardedPredictorConfig sc;
    sc.ring.num_shards = n;
    sc.queue.num_workers = 1;
    sc.queue.capacity = 64;
    sc.queue.watchdog_stuck_us = 0;
    serving::ShardedPredictor sharded(&model, &assembler, sc);
    replay(sharded);

    const std::vector<int> loads =
        sharded.ring().LoadHistogram(dataset.num_areas());
    const int max_load = *std::max_element(loads.begin(), loads.end());
    const int min_load = *std::min_element(loads.begin(), loads.end());
    if (min_load == 0) {
      std::fprintf(stderr, "sharded FAIL: an idle shard at %d shards x %d "
                   "areas — the ring is unbalanced\n",
                   n, dataset.num_areas());
      ok = false;
    }

    serving::CityPredictResult city =
        sharded.PredictCity(all_areas, util::Deadline::Infinite());
    size_t mismatches = 0;
    if (city.gaps.size() != want.size()) {
      mismatches = want.size();
    } else {
      for (size_t i = 0; i < want.size(); ++i) {
        if (city.gaps[i] != want[i]) ++mismatches;
      }
    }
    if (mismatches != 0 || city.tier != serving::FallbackTier::kNone ||
        !city.fully_served || city.deadline_expired) {
      std::fprintf(stderr,
                   "sharded FAIL: %d-shard PredictCity diverged from the "
                   "direct path (%zu mismatching area(s), tier %d) — the "
                   "equivalence contract is broken\n",
                   n, mismatches, static_cast<int>(city.tier));
      ok = false;
    }

    sharded.Drain();
    serving::ShardedStats stats = sharded.stats();
    uint64_t offered = 0, admitted = 0, shed = 0;
    for (size_t s = 0; s < stats.per_shard.size(); ++s) {
      const serving::ServingQueueStats& q = stats.per_shard[s];
      if (q.offered != q.admitted + q.shed_total() ||
          q.completed != q.admitted) {
        std::fprintf(stderr,
                     "sharded FAIL: shard %zu accounting broke (offered "
                     "%llu admitted %llu shed %llu completed %llu)\n",
                     s, static_cast<unsigned long long>(q.offered),
                     static_cast<unsigned long long>(q.admitted),
                     static_cast<unsigned long long>(q.shed_total()),
                     static_cast<unsigned long long>(q.completed));
        ok = false;
      }
      offered += q.offered;
      admitted += q.admitted;
      shed += q.shed_total();
    }
    const serving::ServingQueueStats merged = stats.merged();
    if (merged.offered != offered || merged.admitted != admitted ||
        merged.offered != merged.admitted + merged.shed_total()) {
      std::fprintf(stderr, "sharded FAIL: merged accounting broke\n");
      ok = false;
    }
    std::printf(
        "sharded: %d shard(s), ring %d..%d areas/shard, offered %llu "
        "admitted %llu shed %llu — %s\n",
        n, min_load, max_load, static_cast<unsigned long long>(offered),
        static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(shed),
        ok ? "invariants hold" : "INVARIANT BREACH");
  }
  if (ok) {
    std::printf("sharded scenario OK: %d-shard PredictCity bitwise equal "
                "to the direct path over %d areas\n",
                shards, dataset.num_areas());
  }
  return ok;
}

/// Swap-under-load harness (docs/model_store.md): trains a probe model,
/// packs it into two bitwise-distinct DSAR1 artifacts (v1, and v2 after
/// one further training epoch), serves a `shards`-shard city over one
/// store::VersionedModel shared by every replica, and publishes the two
/// versions alternately `publishes` times while `readers` threads keep
/// PredictCity under sustained load. Returns false (and prints why) on:
///
///   * a dropped or failed request — any city answer that is not fully
///     served at tier kNone with every area populated;
///   * a non-finite prediction;
///   * a version-torn output — shards of one call reporting mixed publish
///     sequences, or the answer's bytes not matching, bitwise, the single
///     version its pinned sequence names.
///
/// This is the CI gate behind `deepsd_simulate --shards 4 --swap`; on
/// failure the caller dumps the flight-recorder bundle.
bool RunSwapScenario(const data::OrderDataset& dataset, int shards,
                     int publishes, int readers,
                     const std::string& scratch) {
  const int num_days = dataset.num_days();
  if (num_days < 3) {
    std::fprintf(stderr, "--swap needs >= 3 days, have %d\n", num_days);
    return false;
  }
  if (shards < 1 || publishes < 1 || readers < 1) {
    std::fprintf(stderr,
                 "--swap needs positive --shards/--swap_publishes/"
                 "--swap_readers\n");
    return false;
  }
  const int train_days = std::max(2, num_days * 2 / 3);
  const int serve_day = train_days;

  std::printf("swap: training probe model on days [0,%d)...\n", train_days);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, train_days);
  auto train_items = data::MakeItems(dataset, 0, train_days, 20, 1430, 60);
  core::DeepSDConfig config;
  config.num_areas = dataset.num_areas();
  config.use_weather = dataset.has_weather();
  config.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &params,
                          &rng);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, train);

  // Two bitwise-distinct versions: v1 as trained, v2 after one further
  // epoch — the realistic "freshly fine-tuned model replaces the serving
  // one" swap the store exists for.
  const std::string v1_path = scratch + ".swap_v1.dsar";
  const std::string v2_path = scratch + ".swap_v2.dsar";
  store::PackOptions po;
  po.version_id = "swap-v1";
  util::Status st = store::PackModelArtifact(model, params, nullptr, po,
                                             v1_path);
  if (!st.ok()) {
    std::fprintf(stderr, "swap: pack v1 failed: %s\n", st.ToString().c_str());
    return false;
  }
  core::Trainer(tc).Train(&model, &params, train, train);
  po.version_id = "swap-v2";
  st = store::PackModelArtifact(model, params, nullptr, po, v2_path);
  if (!st.ok()) {
    std::fprintf(stderr, "swap: pack v2 failed: %s\n", st.ToString().c_str());
    return false;
  }

  std::shared_ptr<const store::StoredModel> v1, v2;
  st = store::StoredModel::Open(v1_path, &v1);
  if (st.ok()) st = store::StoredModel::Open(v2_path, &v2);
  if (!st.ok()) {
    std::fprintf(stderr, "swap: open failed: %s\n", st.ToString().c_str());
    return false;
  }

  bool ok = true;
  {
    store::VersionedModel versions;
    st = versions.Publish(v1);  // sequence 1
    if (!st.ok()) {
      std::fprintf(stderr, "swap: publish v1 failed: %s\n",
                   st.ToString().c_str());
      return false;
    }

    serving::ShardedPredictorConfig sc;
    sc.ring.num_shards = shards;
    sc.queue.num_workers = 1;
    sc.queue.capacity = 64;
    sc.queue.watchdog_stuck_us = 0;
    serving::ShardedPredictor sharded(&versions, &assembler, sc);

    // A healthy morning window into every shard so the run exercises the
    // swap path, not staleness fallbacks.
    const int t_now = 480;
    sharded.AdvanceTo(serve_day, t_now - fc.window);
    for (int ts = t_now - fc.window; ts < t_now; ++ts) {
      for (int a = 0; a < dataset.num_areas(); ++a) {
        for (const data::Order& o : dataset.OrdersAt(a, serve_day, ts)) {
          sharded.AddOrder(o);
        }
        if (dataset.has_traffic()) {
          data::TrafficRecord tr = dataset.TrafficAt(a, serve_day, ts);
          tr.area = a;
          tr.day = serve_day;
          tr.ts = ts;
          sharded.AddTraffic(tr);
        }
      }
      if (dataset.has_weather()) {
        data::WeatherRecord w = dataset.WeatherAt(serve_day, ts);
        w.day = serve_day;
        w.ts = ts;
        sharded.AddWeather(w);
      }
    }
    sharded.AdvanceTo(serve_day, t_now);

    std::vector<int> all_areas(static_cast<size_t>(dataset.num_areas()));
    for (int a = 0; a < dataset.num_areas(); ++a) {
      all_areas[static_cast<size_t>(a)] = a;
    }

    // Reference answers per version. Publishes alternate v1/v2 from
    // sequence 1 on, so an odd pinned sequence must serve exactly want_v1
    // and an even one exactly want_v2 — any other bytes are a torn read.
    serving::CityPredictResult ref1 =
        sharded.PredictCity(all_areas, util::Deadline::Infinite());
    st = versions.Publish(v2);  // sequence 2
    if (!st.ok()) {
      std::fprintf(stderr, "swap: publish v2 failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
    serving::CityPredictResult ref2 =
        sharded.PredictCity(all_areas, util::Deadline::Infinite());
    if (ref1.model_sequence != 1 || ref2.model_sequence != 2 ||
        !ref1.fully_served || !ref2.fully_served) {
      std::fprintf(stderr, "swap FAIL: reference answers were not served "
                   "cleanly from sequences 1 and 2\n");
      return false;
    }
    const std::vector<float> want_v1 = ref1.gaps;
    const std::vector<float> want_v2 = ref2.gaps;
    size_t distinct = 0;
    for (size_t i = 0; i < want_v1.size(); ++i) {
      if (want_v1[i] != want_v2[i]) ++distinct;
    }
    if (distinct == 0) {
      std::fprintf(stderr, "swap FAIL: v1 and v2 predict identically — the "
                   "torn-read detector would be blind\n");
      return false;
    }
    std::printf("swap: versions differ on %zu/%zu areas; running %d "
                "publishes under %d reader thread(s) x %d shard(s)...\n",
                distinct, want_v1.size(), publishes, readers, shards);

    std::atomic<uint64_t> requests{0}, failed{0}, non_finite{0}, torn{0};
    std::atomic<uint64_t> seen_v1{0}, seen_v2{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&]() {
        while (!stop.load(std::memory_order_acquire)) {
          serving::CityPredictResult city =
              sharded.PredictCity(all_areas, util::Deadline::Infinite());
          requests.fetch_add(1, std::memory_order_relaxed);
          if (!city.fully_served || city.deadline_expired ||
              city.tier != serving::FallbackTier::kNone ||
              city.gaps.size() != all_areas.size()) {
            failed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          bool finite = true;
          for (float g : city.gaps) {
            if (!std::isfinite(g)) finite = false;
          }
          if (!finite) non_finite.fetch_add(1, std::memory_order_relaxed);
          bool mixed = false;
          for (const serving::ShardOutcome& s : city.shards) {
            if (s.model_sequence != city.model_sequence) mixed = true;
          }
          const std::vector<float>& want =
              (city.model_sequence % 2 == 1) ? want_v1 : want_v2;
          (city.model_sequence % 2 == 1 ? seen_v1 : seen_v2)
              .fetch_add(1, std::memory_order_relaxed);
          if (mixed ||
              std::memcmp(city.gaps.data(), want.data(),
                          want.size() * sizeof(float)) != 0) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    // The publish loop: alternate versions with a breather between flips
    // so readers land on both sides of every swap.
    for (int i = 0; i < publishes && ok; ++i) {
      st = versions.Publish(i % 2 == 0 ? v1 : v2);
      if (!st.ok()) {
        std::fprintf(stderr, "swap FAIL: publish %d failed: %s\n", i,
                     st.ToString().c_str());
        ok = false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    sharded.Drain();
    versions.TryReclaim();

    const store::VersionedModel::Stats vs = versions.stats();
    const serving::ServingQueueStats merged = sharded.stats().merged();
    std::printf(
        "swap: %llu requests (%llu on v1-odd, %llu on v2-even), %llu "
        "failed, %llu non-finite, %llu torn; %llu published, %llu "
        "reclaimed, %llu retired live, %llu slot overflow(s)\n",
        static_cast<unsigned long long>(requests.load()),
        static_cast<unsigned long long>(seen_v1.load()),
        static_cast<unsigned long long>(seen_v2.load()),
        static_cast<unsigned long long>(failed.load()),
        static_cast<unsigned long long>(non_finite.load()),
        static_cast<unsigned long long>(torn.load()),
        static_cast<unsigned long long>(vs.published),
        static_cast<unsigned long long>(vs.reclaimed),
        static_cast<unsigned long long>(vs.retired_live),
        static_cast<unsigned long long>(vs.slot_overflows));

    if (requests.load() == 0 || seen_v1.load() == 0 || seen_v2.load() == 0) {
      std::fprintf(stderr, "swap FAIL: the load never observed both "
                   "versions — the harness proved nothing\n");
      ok = false;
    }
    if (failed.load() != 0) {
      std::fprintf(stderr, "swap FAIL: %llu request(s) dropped or degraded "
                   "during hot swaps\n",
                   static_cast<unsigned long long>(failed.load()));
      ok = false;
    }
    if (non_finite.load() != 0) {
      std::fprintf(stderr, "swap FAIL: non-finite predictions served\n");
      ok = false;
    }
    if (torn.load() != 0) {
      std::fprintf(stderr, "swap FAIL: %llu version-torn answer(s) — a "
                   "request mixed old and new model state\n",
                   static_cast<unsigned long long>(torn.load()));
      ok = false;
    }
    if (merged.offered != merged.admitted + merged.shed_total() ||
        merged.shed_total() != 0) {
      std::fprintf(stderr,
                   "swap FAIL: shard accounting broke under swaps (offered "
                   "%llu admitted %llu shed %llu)\n",
                   static_cast<unsigned long long>(merged.offered),
                   static_cast<unsigned long long>(merged.admitted),
                   static_cast<unsigned long long>(merged.shed_total()));
      ok = false;
    }
    if (vs.retired_live != 0) {
      std::fprintf(stderr, "swap FAIL: %llu retired version(s) still live "
                   "after all readers released — reclamation leaked\n",
                   static_cast<unsigned long long>(vs.retired_live));
      ok = false;
    }
  }
  if (ok) {
    std::printf("swap scenario OK: zero drops and zero torn reads across "
                "%d hot swaps\n", publishes);
  }
  return ok;
}

/// Continuous-learning drift gate (docs/continuous_learning.md): simulates
/// the same city with an archetype shift over its last two days, trains and
/// packs a pre-shift model, then replays the shifted days through a full
/// ContinuousLearner deployment — versioned serving, live accuracy tracker,
/// durable ledger under `scratch`.drift_state — beside a frozen replica
/// that never fine-tunes. One fine-tune is requested after the first
/// drifted day. Returns false (and prints why) unless:
///
///   * exactly one candidate is promoted and none rolled back or rejected
///     (the gate holds on healthy adaptation);
///   * the ledger's committed version is the promoted candidate;
///   * the promoted model's post-promotion MAE beats the frozen replica's
///     over the same joined prediction slots (the recovery gate).
///
/// This is the CI gate behind `deepsd_simulate --drift`; the ledger it
/// leaves behind feeds `deepsd_metrics_report --promotions`.
bool RunDriftScenario(const sim::CityConfig& base_config,
                      const std::string& scratch, obs::AlertLog* alert_log,
                      obs::FlightRecorder* flight) {
  sim::CityConfig config = base_config;
  if (config.num_days < 6) {
    std::fprintf(stderr, "drift: raising --days from %d to 6 (2 shifted "
                 "days need 4 clean ones before them)\n", config.num_days);
    config.num_days = 6;
  }
  const int shift_day = config.num_days - 2;
  sim::RegimeShift shift;
  shift.kind = sim::RegimeShift::Kind::kArchetypeShift;
  shift.start_day = shift_day;
  shift.area_stride = 1;  // every area shifts: an unmistakable regime change
  shift.intensity = 1.5;
  config.regime_shifts.push_back(shift);

  std::printf("drift: simulating %d areas x %d days, archetype shift from "
              "day %d...\n",
              config.num_areas, config.num_days, shift_day);
  data::OrderDataset dataset = sim::SimulateCity(config, nullptr);
  const int num_areas = dataset.num_areas();

  std::printf("drift: training pre-shift model on days [0,%d)...\n",
              shift_day);
  feature::FeatureConfig fc;
  feature::FeatureAssembler assembler(&dataset, fc, 0, shift_day);
  auto train_items = data::MakeItems(dataset, 0, shift_day, 20, 1430, 30);
  core::DeepSDConfig mc;
  mc.num_areas = num_areas;
  mc.use_weather = dataset.has_weather();
  mc.use_traffic = dataset.has_traffic();
  nn::ParameterStore params;
  util::Rng rng(7);
  core::DeepSDModel model(mc, core::DeepSDModel::Mode::kBasic, &params, &rng);
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.best_k = 0;
  core::AssemblerSource train(&assembler, train_items, /*advanced=*/false);
  core::Trainer(tc).Train(&model, &params, train, train);

  const std::string state_dir = scratch + ".drift_state";
  std::error_code ec;
  std::filesystem::remove_all(state_dir, ec);
  std::filesystem::create_directories(state_dir, ec);
  if (ec) {
    std::fprintf(stderr, "drift: cannot create %s: %s\n", state_dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  const std::string init_path = state_dir + "/init.dsar";
  store::PackOptions po;
  po.version_id = "init";
  util::Status st = store::PackModelArtifact(model, params, nullptr, po,
                                             init_path);
  if (!st.ok()) {
    std::fprintf(stderr, "drift: pack failed: %s\n", st.ToString().c_str());
    return false;
  }

  // The deployment: versioned serving fed by the learner's publish /
  // rollback hooks, a live accuracy tracker the learner drives, and the
  // durable ledger under state_dir.
  eval::OnlineAccuracyConfig ac;
  ac.num_areas = num_areas;
  eval::OnlineAccuracyTracker tracker(ac);

  learn::LearnerOptions lo;
  lo.state_dir = state_dir;
  lo.initial_artifact = init_path;
  lo.num_areas = num_areas;
  lo.first_weekday = config.first_weekday;
  lo.finetune = tc;
  lo.finetune.epochs = 4;
  lo.features = fc;
  lo.snapshot_days = 1;
  lo.min_train_days = 1;
  lo.item_stride = 10;
  // Only the explicit request below starts a fine-tune: the cooldown is
  // effectively infinite and the PSI trigger unreachable (no input
  // reference is attached, so live PSI stays 0).
  lo.cooldown_minutes = 1 << 20;
  lo.psi_trigger = 1e9;
  // Judge the candidate late in the day, once its shadow buffer has long
  // since warmed past the feature window.
  lo.shadow_min_samples = static_cast<uint64_t>(num_areas) * 100;
  lo.watch_min_samples = 64;
  store::VersionedModel versions;
  learn::ContinuousLearner learner(
      lo, &assembler, &tracker,
      [&](std::shared_ptr<const store::ModelVersion> v) {
        return versions.Publish(std::move(v));
      });
  if (alert_log != nullptr) learner.set_alert_log(alert_log);
  if (flight != nullptr) learner.set_flight_recorder(flight);

  std::shared_ptr<const store::StoredModel> boot;
  st = learner.Recover(&boot);
  if (st.ok()) st = versions.Publish(boot);
  if (!st.ok()) {
    std::fprintf(stderr, "drift: boot failed: %s\n", st.ToString().c_str());
    return false;
  }
  serving::OnlinePredictor predictor(&versions, &assembler);
  predictor.set_prediction_observer(&learner);

  // The frozen replica: the same pre-shift model, never fine-tuned, scored
  // by its own (unpublished) tracker over the same slots.
  serving::OnlinePredictor frozen(&boot->model(), &assembler);
  eval::OnlineAccuracyConfig frozen_ac = ac;
  frozen_ac.publish_metrics = false;
  eval::OnlineAccuracyTracker frozen_tracker(frozen_ac);
  frozen.set_prediction_observer(&frozen_tracker);
  frozen.buffer().set_stream_observer(&frozen_tracker);

  std::vector<int> all_areas(static_cast<size_t>(num_areas));
  for (int a = 0; a < num_areas; ++a) all_areas[static_cast<size_t>(a)] = a;

  std::printf("drift: replaying days [%d,%d) through the learner...\n",
              shift_day - 1, config.num_days);
  bool frozen_marked = false;
  for (int day = shift_day - 1; day < config.num_days; ++day) {
    for (int ts = 0; ts < data::kMinutesPerDay; ++ts) {
      if (day == shift_day + 1 && ts == 0) learner.RequestFineTune();
      st = learner.Tick(day, ts);
      if (!st.ok()) {
        std::fprintf(stderr, "drift: Tick(%d,%d) failed: %s\n", day, ts,
                     st.ToString().c_str());
        return false;
      }
      for (int a = 0; a < num_areas; ++a) {
        for (const data::Order& o : dataset.OrdersAt(a, day, ts)) {
          learner.OnOrder(o);
          predictor.buffer().AddOrder(o);
          frozen.buffer().AddOrder(o);
        }
        if (dataset.has_traffic()) {
          data::TrafficRecord tr = dataset.TrafficAt(a, day, ts);
          tr.area = a;
          tr.day = day;
          tr.ts = ts;
          learner.OnTraffic(tr);
          predictor.buffer().AddTraffic(tr);
          frozen.buffer().AddTraffic(tr);
        }
      }
      if (dataset.has_weather()) {
        data::WeatherRecord w = dataset.WeatherAt(day, ts);
        w.day = day;
        w.ts = ts;
        learner.OnWeather(w);
        predictor.buffer().AddWeather(w);
        frozen.buffer().AddWeather(w);
      }
      predictor.AdvanceTo(day, ts + 1);
      frozen.AdvanceTo(day, ts + 1);
      if (day >= shift_day && (ts + 1) % 5 == 0 && ts + 1 >= fc.window) {
        predictor.PredictBatch(all_areas, util::Deadline::Infinite());
        frozen.PredictBatch(all_areas, util::Deadline::Infinite());
        // Score the frozen replica over exactly the promoted model's
        // post-promotion slots (the learner Mark()s its own tracker).
        if (!frozen_marked && learner.promotions() == 1) {
          frozen_tracker.Mark();
          frozen_marked = true;
        }
      }
    }
  }

  const std::string ledger_path = state_dir + "/promotions.ledger";
  std::printf(
      "drift: %llu fine-tune(s), %llu promotion(s), %llu rejection(s), "
      "%llu rollback(s); ledger at %s\n",
      static_cast<unsigned long long>(learner.fine_tunes()),
      static_cast<unsigned long long>(learner.promotions()),
      static_cast<unsigned long long>(learner.rejected()),
      static_cast<unsigned long long>(learner.rollbacks()),
      ledger_path.c_str());

  bool ok = true;
  if (learner.promotions() != 1 || learner.rollbacks() != 0 ||
      learner.rejected() != 0) {
    std::fprintf(stderr,
                 "drift FAIL: expected exactly one clean promotion, got "
                 "%llu promoted / %llu rejected / %llu rolled back\n",
                 static_cast<unsigned long long>(learner.promotions()),
                 static_cast<unsigned long long>(learner.rejected()),
                 static_cast<unsigned long long>(learner.rollbacks()));
    ok = false;
  }
  const learn::LedgerState ledger_state = learner.ledger().state();
  if (ok && (ledger_state.committed_version != learner.serving_model()->version_id() ||
             ledger_state.in_flight)) {
    std::fprintf(stderr,
                 "drift FAIL: ledger committed '%s' (in flight: %d) but "
                 "serving answers from '%s'\n",
                 ledger_state.committed_version.c_str(),
                 ledger_state.in_flight,
                 learner.serving_model()->version_id().c_str());
    ok = false;
  }
  if (ok) {
    const eval::TierAccuracy adapted = tracker.SinceMark();
    const eval::TierAccuracy stale = frozen_tracker.SinceMark();
    std::printf(
        "drift: post-promotion MAE %.3f over %llu slots (frozen replica "
        "%.3f over %llu)\n",
        adapted.mae, static_cast<unsigned long long>(adapted.count),
        stale.mae, static_cast<unsigned long long>(stale.count));
    if (adapted.count < lo.watch_min_samples || stale.count == 0) {
      std::fprintf(stderr, "drift FAIL: too few post-promotion slots to "
                   "judge recovery\n");
      ok = false;
    } else if (adapted.mae >= stale.mae) {
      std::fprintf(stderr,
                   "drift FAIL: the promoted model (MAE %.3f) did not beat "
                   "the frozen pre-shift model (MAE %.3f) on drifted "
                   "traffic\n",
                   adapted.mae, stale.mae);
      ok = false;
    }
  }
  predictor.set_prediction_observer(nullptr);
  frozen.set_prediction_observer(nullptr);
  frozen.buffer().set_stream_observer(nullptr);
  if (ok) {
    std::printf("drift scenario OK: one guarded promotion recovered "
                "accuracy after the regime shift\n");
  }
  return ok;
}

int Main(int argc, char** argv) {
  util::CommandLine cli(argc, argv);
  util::Status st = cli.CheckKnown(
      {"out", "areas", "days", "seed", "mean_scale", "no_weather", "shards",
       "no_traffic", "first_weekday", "threads", "faults", "metrics-out",
       "trace-out", "overload", "overload_burst", "overload_requests",
       "timeline-out", "timeline-interval-ms", "openmetrics-out",
       "serve-metrics", "alerts-out", "flight-dir", "slo", "slo_availability",
       "slo_queue_p99_us", "slo_mae", "swap", "swap_publishes",
       "swap_readers", "drift", "help"});
  if (!st.ok() || cli.GetBool("help", false)) {
    std::fprintf(stderr,
                 "%s\nusage: deepsd_simulate --out=city.bin [--areas=58] "
                 "[--days=52] [--seed=42] [--mean_scale=1.0] [--no_weather] "
                 "[--no_traffic] [--first_weekday=1] [--threads=N] "
                 "[--faults=drop_event=0.1,seed=42] "
                 "[--metrics-out=metrics.jsonl] [--trace-out=trace.json] "
                 "[--timeline-out=timeline.jsonl] [--timeline-interval-ms=200] "
                 "[--openmetrics-out=metrics.txt] [--serve-metrics=PORT] "
                 "[--slo] [--slo_availability=0.99] [--slo_queue_p99_us=0] "
                 "[--slo_mae=0] [--alerts-out=alerts.jsonl] "
                 "[--flight-dir=DIR] [--overload] [--overload_burst=10] "
                 "[--overload_requests=40] [--shards=N] [--swap] "
                 "[--swap_publishes=120] [--swap_readers=4] [--drift]\n",
                 st.ToString().c_str());
    return st.ok() ? 0 : 2;
  }

  const bool want_timeline = cli.Has("timeline-out") ||
                             cli.Has("openmetrics-out") ||
                             cli.Has("serve-metrics") || cli.GetBool("slo",
                                                                     false);
  const bool telemetry =
      cli.Has("metrics-out") || cli.Has("trace-out") || want_timeline;
  if (telemetry) obs::SetEnabled(true);

  // Fault injection for the instrumented pipeline's serving replay (same
  // spec grammar as DEEPSD_FAULTS; see docs/robustness.md). The simulated
  // city itself is always generated clean — faults hit the feeds, not the
  // generator.
  if (cli.Has("faults")) {
    st = util::FaultInjector::Global().ConfigureFromSpec(
        cli.GetString("faults"));
    if (!st.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  // Thread count for the instrumented pipeline (0 = hardware concurrency);
  // simulation output is bit-identical regardless.
  st = util::ThreadPool::SetGlobalThreads(
      static_cast<int>(cli.GetInt("threads", 0)));
  if (!st.ok()) {
    std::fprintf(stderr, "--threads: %s\n", st.ToString().c_str());
    return 1;
  }

  std::string out = cli.GetString("out", "city.bin");
  sim::CityConfig config;
  config.num_areas = static_cast<int>(cli.GetInt("areas", 58));
  config.num_days = static_cast<int>(cli.GetInt("days", 52));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  config.mean_scale = cli.GetDouble("mean_scale", 1.0);
  config.generate_weather = !cli.GetBool("no_weather", false);
  config.generate_traffic = !cli.GetBool("no_traffic", false);
  config.first_weekday = static_cast<int>(cli.GetInt("first_weekday", 1));

  std::printf("simulating %d areas x %d days (seed %llu)...\n",
              config.num_areas, config.num_days,
              static_cast<unsigned long long>(config.seed));
  sim::SimSummary summary;
  data::OrderDataset dataset = sim::SimulateCity(config, &summary);
  std::printf(
      "generated %zu orders (%.1f%% unmet), %.1f%% of busy-hour windows "
      "balanced, max gap %d\n",
      summary.total_orders,
      100.0 * summary.invalid_orders / std::max<size_t>(summary.total_orders, 1),
      100.0 * summary.zero_gap_fraction, summary.max_gap);

  st = data::SaveDataset(dataset, out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  // Time-series observability: a TimelineRecorder scraping in the
  // background (plus one deterministic scrape per overload phase), an
  // optional SLO monitor with alert log + flight recorder, and an optional
  // loopback /metrics endpoint. See docs/observability.md.
  std::unique_ptr<obs::TimelineRecorder> recorder;
  std::unique_ptr<obs::SloMonitor> slo_monitor;
  obs::AlertLog alert_log;
  std::unique_ptr<obs::FlightRecorder> flight;
  // The flight recorder serves two masters: the SLO monitor dumps it on
  // the first alert, and the swap-under-load harness dumps it on an
  // invariant breach — so it exists whenever --flight-dir is given.
  if (cli.Has("flight-dir")) {
    flight = std::make_unique<obs::FlightRecorder>(
        obs::FlightRecorder::Config{cli.GetString("flight-dir"), 64});
  }
  if (want_timeline) {
    obs::TimelineConfig tlc;
    tlc.interval_ms =
        std::max<int64_t>(cli.GetInt("timeline-interval-ms", 200), 10);
    recorder = std::make_unique<obs::TimelineRecorder>(tlc);
    if (cli.GetBool("slo", false)) {
      std::vector<obs::SloSpec> specs = obs::DefaultServingSlos(
          cli.GetDouble("slo_availability", 0.99),
          cli.GetDouble("slo_queue_p99_us", 0.0),
          cli.GetDouble("slo_mae", 0.0));
      slo_monitor = std::make_unique<obs::SloMonitor>(std::move(specs));
      slo_monitor->set_alert_log(&alert_log);
      if (flight != nullptr) slo_monitor->set_flight_recorder(flight.get());
      recorder->set_slo_monitor(slo_monitor.get());
    }
    recorder->Start();
  }
  obs::MetricsHttpServer http_server;
  if (cli.Has("serve-metrics")) {
    const int port = static_cast<int>(cli.GetInt("serve-metrics", 0));
    st = http_server.Start(port);
    if (!st.ok()) {
      std::fprintf(stderr, "--serve-metrics: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving OpenMetrics on http://127.0.0.1:%d/metrics\n",
                http_server.port());
  }

  if (cli.GetBool("swap", false)) {
    // --swap implies sharded serving over --shards replicas; it subsumes
    // the static sharded scenario's checks with per-version references.
    if (!RunSwapScenario(dataset, static_cast<int>(cli.GetInt("shards", 4)),
                         static_cast<int>(cli.GetInt("swap_publishes", 120)),
                         static_cast<int>(cli.GetInt("swap_readers", 4)),
                         out)) {
      if (flight != nullptr) {
        obs::TimelineRecorder* tl = recorder.get();
        if (tl != nullptr) tl->SampleNow();
        st = flight->Dump(tl, &alert_log, "swap-under-load invariant breach");
        if (st.ok()) {
          std::fprintf(stderr, "flight bundle written to %s\n",
                       flight->bundle_dir().c_str());
        }
      }
      return 1;
    }
  } else if (cli.Has("shards")) {
    if (!RunShardedScenario(dataset,
                            static_cast<int>(cli.GetInt("shards", 4)))) {
      return 1;
    }
  }

  if (cli.GetBool("drift", false)) {
    if (!RunDriftScenario(config, out, &alert_log, flight.get())) {
      if (flight != nullptr && !flight->dumped()) {
        obs::TimelineRecorder* tl = recorder.get();
        if (tl != nullptr) tl->SampleNow();
        st = flight->Dump(tl, &alert_log, "drift-recovery gate breach");
        if (st.ok()) {
          std::fprintf(stderr, "flight bundle written to %s\n",
                       flight->bundle_dir().c_str());
        }
      }
      return 1;
    }
  }

  if (cli.GetBool("overload", false)) {
    const double burst = cli.GetDouble("overload_burst", 10.0);
    const int requests =
        static_cast<int>(cli.GetInt("overload_requests", 40));
    if (!RunOverloadScenario(dataset, std::max(burst, 1.0),
                             std::max(requests, 1), recorder.get())) {
      return 1;
    }
    if (slo_monitor != nullptr) {
      recorder->SampleNow();  // post-drain state
      const uint64_t fired = slo_monitor->alerts_fired();
      std::printf("slo: %llu alert(s) fired\n",
                  static_cast<unsigned long long>(fired));
      if (fired == 0) {
        std::fprintf(stderr,
                     "slo FAIL: overload scenario fired no alert — either "
                     "the breach induction or the burn-rate logic broke\n");
        return 1;
      }
      if (flight != nullptr && !flight->dumped()) {
        std::fprintf(stderr, "slo FAIL: alert fired but no flight bundle\n");
        return 1;
      }
      if (flight != nullptr) {
        std::printf("flight bundle written to %s\n",
                    flight->bundle_dir().c_str());
      }
    }
  }

  if (telemetry) {
    RunInstrumentedPipeline(dataset, config);
    if (cli.Has("metrics-out")) {
      std::string path = cli.GetString("metrics-out");
      st = obs::WriteJsonLines(obs::MetricsRegistry::Global().Snapshot(),
                               path);
      if (!st.ok()) {
        std::fprintf(stderr, "metrics dump failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
    if (cli.Has("trace-out")) {
      std::string path = cli.GetString("trace-out");
      st = obs::TraceExporter::WriteJson(path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace dump failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                  path.c_str());
    }
  }

  if (cli.Has("serve-metrics")) {
    // Self-check: scrape our own endpoint once, so a CI run proves the
    // HTTP path end to end without an external curl.
    std::string body;
    st = obs::MetricsHttpServer::Get(http_server.port(), "/metrics", &body);
    if (!st.ok() || body.find("# EOF") == std::string::npos) {
      std::fprintf(stderr, "serve-metrics self-check failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("serve-metrics self-check OK (%zu bytes)\n", body.size());
    http_server.Stop();
  }
  if (recorder != nullptr) {
    recorder->SampleNow();  // final state always makes the timeline
    recorder->Stop();
    if (cli.Has("timeline-out")) {
      const std::string path = cli.GetString("timeline-out");
      st = recorder->WriteJsonLines(path);
      if (!st.ok()) {
        std::fprintf(stderr, "timeline dump failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (%llu scrapes)\n", path.c_str(),
                  static_cast<unsigned long long>(recorder->scrape_count()));
    }
  }
  if (cli.Has("openmetrics-out")) {
    const std::string path = cli.GetString("openmetrics-out");
    st = obs::WriteOpenMetrics(obs::MetricsRegistry::Global().Snapshot(),
                               path);
    if (!st.ok()) {
      std::fprintf(stderr, "openmetrics dump failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  if (cli.Has("alerts-out")) {
    const std::string path = cli.GetString("alerts-out");
    st = alert_log.WriteJsonLines(path);
    if (!st.ok()) {
      std::fprintf(stderr, "alerts dump failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu alert(s))\n", path.c_str(), alert_log.size());
  }
  return 0;
}

}  // namespace
}  // namespace deepsd

int main(int argc, char** argv) { return deepsd::Main(argc, argv); }
