#include "serving/order_stream.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace deepsd {
namespace serving {

namespace {

bool ValidDayTs(int day, int ts) {
  return day >= 0 && ts >= 0 && ts < data::kMinutesPerDay;
}

}  // namespace

OrderStreamBuffer::OrderStreamBuffer(int num_areas, int window)
    : num_areas_(num_areas), window_(window) {
  DEEPSD_CHECK(num_areas > 0);
  DEEPSD_CHECK(window > 0);
  calls_.resize(static_cast<size_t>(num_areas));
  weather_.resize(static_cast<size_t>(window));
  weather_ts_.assign(static_cast<size_t>(window), -1);
  traffic_.resize(static_cast<size_t>(num_areas) * window);
  traffic_ts_.assign(static_cast<size_t>(num_areas) * window, -1);
  held_traffic_.resize(static_cast<size_t>(num_areas));
  held_traffic_ts_.assign(static_cast<size_t>(num_areas), -1);
}

void OrderStreamBuffer::AdvanceTo(int day, int minute) {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/advance_to_us");
  static obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("serving/buffered_orders");
  DEEPSD_SPAN("serving/advance_to", latency_us);
  int64_t target = static_cast<int64_t>(day) * data::kMinutesPerDay + minute;
  std::lock_guard<std::mutex> lock(mu_);
  if (target <= now_abs_.load(std::memory_order_relaxed)) return;
  now_abs_.store(target, std::memory_order_release);
  DrainPendingLocked();
  Evict();
  if (obs::Enabled()) {
    depth->Set(static_cast<double>(BufferedOrdersLocked()));
  }
  if (observer_ != nullptr) observer_->OnClockAdvance(target);
}

void OrderStreamBuffer::set_stream_observer(StreamObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = observer;
}

void OrderStreamBuffer::DrainPendingLocked() {
  if (pending_.empty()) return;
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  size_t kept = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& p = pending_[i];
    if (p.release_abs > now) {
      pending_[kept++] = p;
      continue;
    }
    switch (p.kind) {
      case Pending::Kind::kOrder:
        if (!IngestOrderLocked(p.order)) RejectEvent();
        break;
      case Pending::Kind::kWeather:
        if (!IngestWeatherLocked(p.weather)) RejectEvent();
        break;
      case Pending::Kind::kTraffic:
        if (!IngestTrafficLocked(p.traffic)) RejectEvent();
        break;
    }
  }
  pending_.resize(kept);
}

void OrderStreamBuffer::RejectEvent() {
  static obs::Counter* rejected =
      obs::MetricsRegistry::Global().GetCounter("serving/events_rejected");
  rejected->Inc();
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void OrderStreamBuffer::Evict() {
  int64_t cutoff = now_abs_.load(std::memory_order_relaxed) - window_;
  for (auto& area_calls : calls_) {
    while (!area_calls.empty() && area_calls.front().ts_abs < cutoff) {
      area_calls.pop_front();
    }
  }
}

void OrderStreamBuffer::AddOrder(const data::Order& order) {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/add_order_us");
  static obs::Counter* ingested =
      obs::MetricsRegistry::Global().GetCounter("serving/orders_ingested");
  DEEPSD_SPAN("serving/add_order", latency_us);
  ingested->Inc();
  data::Order event = order;
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (faults.enabled()) {
    if (faults.DropEvent()) return;
    if (faults.CorruptEvent(&event, sizeof(event))) {
      // A flip inside the bool byte makes reading `valid` as bool UB;
      // re-derive it from the raw byte before anything loads the field.
      unsigned char raw = 0;
      std::memcpy(&raw, &event.valid, sizeof(raw));
      event.valid = raw != 0;
    }
    if (int delay = faults.DelayEventMinutes(); delay > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      Pending p{Pending::Kind::kOrder,
                now_abs_.load(std::memory_order_relaxed) + delay};
      p.order = event;
      pending_.push_back(p);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!IngestOrderLocked(event)) RejectEvent();
}

void OrderStreamBuffer::NoteOrderSeen(int day, int ts) {
  if (!ValidDayTs(day, ts)) return;
  const int64_t ts_abs =
      static_cast<int64_t>(day) * data::kMinutesPerDay + ts;
  std::lock_guard<std::mutex> lock(mu_);
  last_order_abs_ = std::max(last_order_abs_, ts_abs);
}

bool OrderStreamBuffer::IngestOrderLocked(const data::Order& order) {
  if (order.start_area < 0 || order.start_area >= num_areas_ ||
      !ValidDayTs(order.day, order.ts)) {
    return false;
  }
  int64_t ts_abs =
      static_cast<int64_t>(order.day) * data::kMinutesPerDay + order.ts;
  last_order_abs_ = std::max(last_order_abs_, ts_abs);
  if (observer_ != nullptr) observer_->OnOrderAccepted(order, ts_abs);
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) {
    return true;  // valid but too old to matter
  }
  auto& area_calls = calls_[static_cast<size_t>(order.start_area)];
  Call call{ts_abs, order.passenger_id, order.valid};
  // Common case: in-order append; otherwise insert to keep ts ascending.
  if (area_calls.empty() || area_calls.back().ts_abs <= ts_abs) {
    area_calls.push_back(call);
  } else {
    auto pos = std::upper_bound(
        area_calls.begin(), area_calls.end(), call,
        [](const Call& a, const Call& b) { return a.ts_abs < b.ts_abs; });
    area_calls.insert(pos, call);
  }
  return true;
}

void OrderStreamBuffer::AddWeather(const data::WeatherRecord& record) {
  data::WeatherRecord event = record;
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (faults.enabled()) {
    if (faults.DropEvent()) return;
    faults.CorruptEvent(&event, sizeof(event));
    if (int delay = faults.DelayEventMinutes(); delay > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      Pending p{Pending::Kind::kWeather,
                now_abs_.load(std::memory_order_relaxed) + delay};
      p.weather = event;
      pending_.push_back(p);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!IngestWeatherLocked(event)) RejectEvent();
}

bool OrderStreamBuffer::IngestWeatherLocked(const data::WeatherRecord& record) {
  if (!ValidDayTs(record.day, record.ts)) return false;
  // A negative type or non-finite real is a mangled payload (a bit-flipped
  // feed), not a weather condition. Large positive types are left to the
  // consumer, which knows the model's vocabulary.
  if (record.type < 0 || !std::isfinite(record.temperature) ||
      !std::isfinite(record.pm25)) {
    return false;
  }
  int64_t ts_abs =
      static_cast<int64_t>(record.day) * data::kMinutesPerDay + record.ts;
  if (ts_abs >= last_weather_abs_) {
    last_weather_abs_ = ts_abs;
    held_weather_.seen = true;
    held_weather_.type = record.type;
    held_weather_.temperature = record.temperature;
    held_weather_.pm25 = record.pm25;
  }
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) return true;
  size_t slot = SlotIndex(ts_abs);
  weather_[slot].seen = true;
  weather_[slot].type = record.type;
  weather_[slot].temperature = record.temperature;
  weather_[slot].pm25 = record.pm25;
  weather_ts_[slot] = ts_abs;
  return true;
}

void OrderStreamBuffer::AddTraffic(const data::TrafficRecord& record) {
  data::TrafficRecord event = record;
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (faults.enabled()) {
    if (faults.DropEvent()) return;
    faults.CorruptEvent(&event, sizeof(event));
    if (int delay = faults.DelayEventMinutes(); delay > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      Pending p{Pending::Kind::kTraffic,
                now_abs_.load(std::memory_order_relaxed) + delay};
      p.traffic = event;
      pending_.push_back(p);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!IngestTrafficLocked(event)) RejectEvent();
}

bool OrderStreamBuffer::IngestTrafficLocked(const data::TrafficRecord& record) {
  if (record.area < 0 || record.area >= num_areas_ ||
      !ValidDayTs(record.day, record.ts)) {
    return false;
  }
  int64_t ts_abs =
      static_cast<int64_t>(record.day) * data::kMinutesPerDay + record.ts;
  if (ts_abs >= held_traffic_ts_[static_cast<size_t>(record.area)]) {
    held_traffic_ts_[static_cast<size_t>(record.area)] = ts_abs;
    TrafficSlot& held = held_traffic_[static_cast<size_t>(record.area)];
    held.seen = true;
    std::copy(record.level_counts,
              record.level_counts + data::kCongestionLevels,
              held.level_counts);
  }
  last_traffic_abs_ = std::max(last_traffic_abs_, ts_abs);
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) return true;
  size_t slot =
      static_cast<size_t>(record.area) * window_ + SlotIndex(ts_abs);
  traffic_[slot].seen = true;
  std::copy(record.level_counts,
            record.level_counts + data::kCongestionLevels,
            traffic_[slot].level_counts);
  traffic_ts_[slot] = ts_abs;
  return true;
}

int64_t OrderStreamBuffer::last_order_abs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_order_abs_;
}

int64_t OrderStreamBuffer::last_weather_abs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_weather_abs_;
}

int64_t OrderStreamBuffer::last_traffic_abs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_traffic_abs_;
}

std::vector<float> OrderStreamBuffer::SupplyDemandVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    int l = static_cast<int>(now - call.ts_abs);  // in [1, window]
    size_t idx = static_cast<size_t>(call.valid ? l - 1 : window_ + l - 1);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<float> OrderStreamBuffer::LastCallVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  std::map<int32_t, const Call*> last;
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    auto [it, inserted] = last.emplace(call.pid, &call);
    if (!inserted && call.ts_abs >= it->second->ts_abs) it->second = &call;
  }
  for (auto& [pid, call] : last) {
    int l = static_cast<int>(now - call->ts_abs);
    size_t idx = static_cast<size_t>(call->valid ? l - 1 : window_ + l - 1);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<float> OrderStreamBuffer::WaitingTimeVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  struct Episode {
    int64_t first;
    int64_t last;
    bool last_valid;
  };
  std::map<int32_t, Episode> episodes;
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    auto [it, inserted] =
        episodes.emplace(call.pid, Episode{call.ts_abs, call.ts_abs, call.valid});
    if (!inserted) {
      it->second.first = std::min(it->second.first, call.ts_abs);
      if (call.ts_abs >= it->second.last) {
        it->second.last = call.ts_abs;
        it->second.last_valid = call.valid;
      }
    }
  }
  for (auto& [pid, e] : episodes) {
    int wait = static_cast<int>(e.last - e.first);
    if (wait < 0 || wait >= window_) continue;
    size_t idx = static_cast<size_t>(e.last_valid ? wait : window_ + wait);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<int> OrderStreamBuffer::WeatherTypes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(window_));
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    out.push_back(fresh ? weather_[slot].type : 0);
  }
  return out;
}

std::vector<float> OrderStreamBuffer::WeatherReals() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> temps, pms;
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    temps.push_back(fresh ? weather_[slot].temperature : 0.0f);
    pms.push_back(fresh ? weather_[slot].pm25 : 0.0f);
  }
  temps.insert(temps.end(), pms.begin(), pms.end());
  return temps;
}

std::vector<float> OrderStreamBuffer::TrafficVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> out;
  out.reserve(static_cast<size_t>(data::kCongestionLevels) * window_);
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0
                      ? static_cast<size_t>(area) * window_ + SlotIndex(ts)
                      : 0;
    bool fresh = ts >= 0 && traffic_[slot].seen && traffic_ts_[slot] == ts;
    for (int level = 0; level < data::kCongestionLevels; ++level) {
      out.push_back(fresh ? static_cast<float>(
                                traffic_[slot].level_counts[level])
                          : 0.0f);
    }
  }
  return out;
}

std::vector<int> OrderStreamBuffer::WeatherTypesHeld(int hold_minutes) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(window_));
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    // Zero-order hold: a lag with no record of its own reuses the last
    // accepted record while that is no more than `hold_minutes` stale.
    bool held = !fresh && held_weather_.seen && last_weather_abs_ <= ts &&
                ts - last_weather_abs_ <= hold_minutes;
    out.push_back(fresh ? weather_[slot].type
                        : (held ? held_weather_.type : 0));
  }
  return out;
}

std::vector<float> OrderStreamBuffer::WeatherRealsHeld(int hold_minutes) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> temps, pms;
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    bool held = !fresh && held_weather_.seen && last_weather_abs_ <= ts &&
                ts - last_weather_abs_ <= hold_minutes;
    temps.push_back(fresh ? weather_[slot].temperature
                          : (held ? held_weather_.temperature : 0.0f));
    pms.push_back(fresh ? weather_[slot].pm25
                        : (held ? held_weather_.pm25 : 0.0f));
  }
  temps.insert(temps.end(), pms.begin(), pms.end());
  return temps;
}

std::vector<float> OrderStreamBuffer::TrafficVectorHeld(
    int area, int hold_minutes) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  const TrafficSlot& held_slot = held_traffic_[static_cast<size_t>(area)];
  const int64_t held_ts = held_traffic_ts_[static_cast<size_t>(area)];
  std::vector<float> out;
  out.reserve(static_cast<size_t>(data::kCongestionLevels) * window_);
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0
                      ? static_cast<size_t>(area) * window_ + SlotIndex(ts)
                      : 0;
    bool fresh = ts >= 0 && traffic_[slot].seen && traffic_ts_[slot] == ts;
    bool held = !fresh && held_slot.seen && held_ts <= ts &&
                ts - held_ts <= hold_minutes;
    for (int level = 0; level < data::kCongestionLevels; ++level) {
      float v = 0.0f;
      if (fresh) {
        v = static_cast<float>(traffic_[slot].level_counts[level]);
      } else if (held) {
        v = static_cast<float>(held_slot.level_counts[level]);
      }
      out.push_back(v);
    }
  }
  return out;
}

size_t OrderStreamBuffer::buffered_orders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BufferedOrdersLocked();
}

size_t OrderStreamBuffer::BufferedOrdersLocked() const {
  size_t n = 0;
  for (const auto& area_calls : calls_) n += area_calls.size();
  return n;
}

}  // namespace serving
}  // namespace deepsd
