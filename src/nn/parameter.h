#ifndef DEEPSD_NN_PARAMETER_H_
#define DEEPSD_NN_PARAMETER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/kernels.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepsd {
namespace nn {

/// A trainable weight matrix with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Frozen parameters are skipped by the optimizer (used to study
  /// fine-tuning, paper Sec V-C / Fig 16).
  bool frozen = false;
  /// EWMA'd absmax of the activations multiplied against this weight,
  /// captured by the trainer's calibration pass (core/trainer.cc) and
  /// serialized with the values. 0 means "uncalibrated": the quant
  /// kernels then fall back to per-row dynamic ranges.
  float act_absmax = 0.0f;

  /// Monotonic value-mutation tag. Every code path that rewrites `value`
  /// (optimizer steps, Load, CopyFrom, AverageFrom, the trainer's
  /// apply-checkpoint) bumps it, which is what invalidates the cached
  /// int8 weights below — fine-tuning a loaded model can never serve
  /// stale quantized weights.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// The int8 form of `value` for KernelMode::kQuant, quantized lazily
  /// once per version and cached. Thread-safe against concurrent readers
  /// (double-checked under a mutex); concurrent mutation of `value` while
  /// serving is outside the contract, exactly as for the fp32 path.
  const kernels::QuantizedWeights& Quantized() const;

  /// Installs a ready-made quantized form for the *current* version —
  /// used by the parameter loader so replicas that load a quantized file
  /// serve the exact int8 weights that were saved, with no requantization
  /// round-trip.
  void InstallQuantized(kernels::QuantizedWeights qw);

  /// Replaces `value` (and the int8 calibration) under the version
  /// discipline every other value-mutation path follows. The model store
  /// binds artifact tensors — including read-only Tensor::View aliases
  /// into the file mapping — through this, so a stale quant cache can
  /// never survive a rebind.
  void InstallValue(Tensor new_value, float new_act_absmax) {
    value = std::move(new_value);
    act_absmax = new_act_absmax;
    BumpVersion();
  }

 private:
  std::atomic<uint64_t> version_{1};
  mutable std::mutex quant_mu_;
  mutable std::atomic<uint64_t> quant_version_{0};  // 0 = never filled
  mutable kernels::QuantizedWeights quant_;
};

/// A tensor addressed by parameter name — the serialization-friendly form
/// used by optimizer state export and trainer checkpoints, where raw
/// Parameter pointers cannot survive a process restart.
struct NamedTensor {
  std::string name;
  Tensor value;
};

/// Weight initialization schemes.
enum class Init {
  kZero,
  kGlorotUniform,  ///< U(±sqrt(6/(fan_in+fan_out))) — FC weights.
  kHeUniform,      ///< U(±sqrt(6/fan_in)) — relu-family layers.
  kEmbedding,      ///< U(±0.05), standard small-range embedding init.
};

/// Owns all parameters of a model. Parameters are created once (layer
/// constructors) and referenced by raw pointer thereafter; the store is the
/// unit of optimization, serialization and parameter counting.
class ParameterStore {
 public:
  /// Creates (or returns, when a parameter of this name and shape already
  /// exists) a parameter. Re-use by name is what makes fine-tuning work: a
  /// rebuilt model picks up previously trained weights from the same store.
  Parameter* Create(const std::string& name, int rows, int cols, Init init,
                    util::Rng* rng);

  /// Looks up by name; nullptr if absent.
  Parameter* Find(const std::string& name);
  const Parameter* Find(const std::string& name) const;

  const std::vector<std::unique_ptr<Parameter>>& parameters() const {
    return params_;
  }
  std::vector<std::unique_ptr<Parameter>>& parameters() { return params_; }

  /// Total number of scalar weights.
  size_t NumWeights() const;

  /// Zeroes every gradient (call before each batch).
  void ZeroGrads();

  /// Marks parameters whose name starts with `prefix` as frozen/unfrozen.
  void SetFrozen(const std::string& prefix, bool frozen);

  /// On-disk encodings of Save. Every format round-trips through Load;
  /// see docs/performance.md ("File formats and versioning").
  enum class SaveFormat {
    /// Legacy "DSP1": raw fp32 tensors, no checksum. Kept so existing
    /// tooling and files stay exchangeable.
    kRaw,
    /// "DSP2" full precision: losslessly compressed float blocks +
    /// calibration, CRC-sealed. Bit-exact round-trip — the default.
    kCompressed,
    /// "DSP2" quantized: calibrated GEMM weights (act_absmax > 0) as int8
    /// with per-output-channel scales; biases and embedding tables stay
    /// losslessly compressed fp32 (embeddings are consumed by lookup, not
    /// through a quant GEMM). CRC-sealed, ~4x smaller on the GEMM weights;
    /// lossy only where the quant kernels already round. Loading installs
    /// the int8 weights straight into the quant cache, so a serving
    /// replica under DEEPSD_KERNEL=quant runs exactly the saved integer
    /// weights — bit-identical to in-memory quant serving.
    kQuantized,
  };

  /// Binary round-trip of all parameter values (+ calibration for the
  /// DSP2 formats).
  util::Status Save(const std::string& path,
                    SaveFormat format = SaveFormat::kCompressed) const;
  /// Loads values into matching (same name and shape) parameters; unknown
  /// names in the file are ignored, missing ones keep their current values.
  /// Accepts every SaveFormat (the magic/version header picks the parser).
  /// `*loaded` (optional) reports how many parameters were filled.
  util::Status Load(const std::string& path, int* loaded = nullptr);

  /// Deep copy of all values from `other` for parameters with matching
  /// name and shape. Returns the number copied.
  int CopyFrom(const ParameterStore& other);

  /// Element-wise average of the values of `stores` into this store
  /// (all must have identical structure). Implements the paper's
  /// "average of the models in the best 10 epochs".
  void AverageFrom(const std::vector<const ParameterStore*>& stores);

  /// Clone with identical names/shapes/values (fresh gradients).
  std::unique_ptr<ParameterStore> Clone() const;

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Fills `t` in place according to `init`.
void InitTensor(Tensor* t, Init init, util::Rng* rng);

/// One tensor's table-of-contents entry in a saved parameter file, as
/// reported by ReadParameterFileSummary — the shared parser behind
/// deepsd_inspect and deepsd_model_info.
struct ParameterFileEntry {
  std::string name;
  int32_t rows = 0;
  int32_t cols = 0;
  bool quantized = false;    ///< stored as int8 codes + per-column scales
  size_t stored_bytes = 0;   ///< on-disk bytes of this tensor's value payload
  float act_absmax = 0.0f;   ///< calibration (0 in DSP1 files)
  double norm = 0.0;         ///< ||w|| of the (de)quantized values
};

/// Parses a parameter file of any SaveFormat without needing a matching
/// store. `*format` gets a human-readable format tag ("DSP1",
/// "DSP2/full", "DSP2/quant").
util::Status ReadParameterFileSummary(const std::string& path,
                                      std::string* format,
                                      std::vector<ParameterFileEntry>* out);

/// Shard-local gradient accumulator for data-parallel training.
///
/// Holds one zero-initialized tensor per parameter of a store, aligned
/// with store->parameters() order. A Graph pointed at a GradBuffer (see
/// Graph::set_grad_buffer) accumulates parameter gradients here instead of
/// Parameter::grad, so concurrent backward passes never touch shared
/// state; the trainer then reduces the per-shard buffers in a fixed tree
/// order and writes the result into the store (docs/parallelism.md).
///
/// Buffers are reused across batches: Zero() each shard's buffer at the
/// start of its task rather than reallocating.
class GradBuffer {
 public:
  explicit GradBuffer(const ParameterStore& store);

  /// The accumulator for `p`; `p` must belong to the construction store.
  Tensor& grad(const Parameter* p);

  /// Accumulator of the parameter at `index` in store->parameters() order.
  Tensor& at(size_t index) { return grads_[index]; }
  const Tensor& at(size_t index) const { return grads_[index]; }
  size_t size() const { return grads_.size(); }

  /// Zeroes every accumulator.
  void Zero();

 private:
  std::vector<Tensor> grads_;
  std::unordered_map<const Parameter*, size_t> index_;
};

}  // namespace nn
}  // namespace deepsd

#endif  // DEEPSD_NN_PARAMETER_H_
