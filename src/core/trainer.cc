#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace core {

std::pair<double, double> EvaluateMaeRmse(const DeepSDModel& model,
                                          const InputSource& source) {
  if (source.size() == 0) return {0.0, 0.0};
  std::vector<float> preds = model.Predict(source);
  double abs_sum = 0.0, sq_sum = 0.0;
  for (size_t i = 0; i < source.size(); ++i) {
    double d = static_cast<double>(preds[i]) - source.Target(i);
    abs_sum += std::abs(d);
    sq_sum += d * d;
  }
  double n = static_cast<double>(source.size());
  return {abs_sum / n, std::sqrt(sq_sum / n)};
}

TrainResult Trainer::Train(
    DeepSDModel* model, nn::ParameterStore* store,
    const std::vector<feature::ModelInput>& train_inputs,
    const std::vector<feature::ModelInput>& eval_inputs,
    const std::function<void(const EpochStats&)>& on_epoch) {
  return Train(model, store, VectorSource(train_inputs),
               VectorSource(eval_inputs), on_epoch);
}

TrainResult Trainer::Train(
    DeepSDModel* model, nn::ParameterStore* store,
    const InputSource& train_source, const InputSource& eval_source,
    const std::function<void(const EpochStats&)>& on_epoch) {
  DEEPSD_CHECK(train_source.size() > 0);
  TrainResult result;

  util::Rng rng(config_.seed);
  nn::Adam adam({.learning_rate = config_.learning_rate});
  nn::Sgd sgd({.learning_rate = config_.learning_rate});
  const bool use_adam = config_.optimizer == TrainConfig::Optimizer::kAdam;
  auto optimizer_step = [&](nn::ParameterStore* s) {
    return use_adam ? adam.Step(s) : sgd.Step(s);
  };
  auto set_lr = [&](float lr) {
    if (use_adam) {
      adam.set_learning_rate(lr);
    } else {
      sgd.set_learning_rate(lr);
    }
  };

  std::vector<size_t> order(train_source.size());
  std::iota(order.begin(), order.end(), 0);

  // Snapshots of the best epochs, kept sorted by eval RMSE (ascending).
  struct Snapshot {
    double rmse;
    std::unique_ptr<nn::ParameterStore> store;
  };
  std::vector<Snapshot> best;

  const int decay_epoch = static_cast<int>(
      config_.lr_decay_at_fraction * config_.epochs);

  // Telemetry: spans feed both the chrome-trace export and the latency
  // histograms; the TimedSpans below additionally supply EpochStats even
  // when obs is disabled.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_counter = registry.GetCounter("trainer/epochs");
  obs::Counter* batches_counter = registry.GetCounter("trainer/batches");
  obs::Histogram* batch_us = registry.GetHistogram("trainer/batch_us");
  obs::Gauge* last_rmse = registry.GetGauge("trainer/last_eval_rmse");

  obs::TimedSpan train_span("trainer/train");
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TimedSpan epoch_span("trainer/epoch");
    if (config_.lr_decay_factor != 1.0f && epoch == decay_epoch && epoch > 0) {
      set_lr(config_.learning_rate * config_.lr_decay_factor);
    }
    if (config_.shuffle) {
      for (size_t i = order.size(); i > 1; --i) {
        size_t j = rng.UniformInt(i);
        std::swap(order[i - 1], order[j]);
      }
    }

    double loss_sum = 0.0;
    size_t batches = 0;
    obs::TimedSpan batch_phase("trainer/epoch_batches");
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      DEEPSD_SPAN("trainer/batch", batch_us);
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(config_.batch_size));
      std::vector<size_t> idx(order.begin() + static_cast<long>(begin),
                              order.begin() + static_cast<long>(end));
      Batch batch = MakeBatch(train_source, idx);

      nn::Graph g(&rng);
      g.set_training(true);
      nn::NodeId pred = model->Forward(&g, batch);
      nn::NodeId loss = g.MseLoss(pred, batch.target);
      store->ZeroGrads();
      g.Backward(loss);
      optimizer_step(store);
      loss_sum += g.value(loss).at(0, 0);
      ++batches;
      batches_counter->Inc();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    stats.batch_seconds = batch_phase.Stop();
    obs::TimedSpan eval_phase("trainer/epoch_eval");
    auto [mae, rmse] = EvaluateMaeRmse(*model, eval_source);
    stats.eval_seconds = eval_phase.Stop();
    stats.seconds = stats.batch_seconds + stats.eval_seconds;
    stats.eval_mae = mae;
    stats.eval_rmse = rmse;
    result.history.push_back(stats);
    epochs_counter->Inc();
    last_rmse->Set(rmse);

    if (config_.verbose) {
      DEEPSD_LOG(Info) << util::StrFormat(
          "epoch %3d  train_mse=%.3f  eval_mae=%.3f  eval_rmse=%.3f  "
          "(%.1fs batches + %.1fs eval)",
          epoch, stats.train_loss, stats.eval_mae, stats.eval_rmse,
          stats.batch_seconds, stats.eval_seconds);
    }
    if (on_epoch) on_epoch(stats);

    if (config_.best_k > 0 && eval_source.size() > 0) {
      Snapshot snap{rmse, store->Clone()};
      auto pos = std::lower_bound(
          best.begin(), best.end(), snap.rmse,
          [](const Snapshot& s, double v) { return s.rmse < v; });
      best.insert(pos, std::move(snap));
      if (static_cast<int>(best.size()) > config_.best_k) best.pop_back();
    }
  }
  result.total_seconds = train_span.Stop();
  result.seconds_per_epoch =
      config_.epochs > 0 ? result.total_seconds / config_.epochs : 0.0;

  if (!best.empty()) {
    result.best_eval_rmse = best.front().rmse;
    std::vector<const nn::ParameterStore*> stores;
    stores.reserve(best.size());
    for (const Snapshot& s : best) stores.push_back(s.store.get());
    store->AverageFrom(stores);
  } else if (!result.history.empty()) {
    result.best_eval_rmse = result.history.back().eval_rmse;
  }

  auto [mae, rmse] = EvaluateMaeRmse(*model, eval_source);
  result.final_eval_mae = mae;
  result.final_eval_rmse = rmse;
  return result;
}

}  // namespace core
}  // namespace deepsd
