#ifndef DEEPSD_OBS_METRICS_H_
#define DEEPSD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace deepsd {
namespace obs {

/// Monotone event counter. Updates are relaxed atomic adds — safe and
/// lock-free from any number of threads — and no-ops while obs::Enabled()
/// is false.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, learning rate, ...).
/// Set is a relaxed store; Add is a CAS loop — both lock-free.
class Gauge {
 public:
  void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with interpolated quantile readout.
///
/// `bounds` are ascending bucket upper edges; an implicit overflow bucket
/// catches values above the last edge. Observe() is a handful of relaxed
/// atomic updates (bucket count, total count/sum, min/max CAS), so
/// concurrent recording never loses samples; quantiles are computed at
/// read time by linear interpolation inside the owning bucket, exactly as
/// Prometheus-style fixed-bucket histograms do.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Geometric bucket edges: `count` edges starting at `start`, each
  /// `factor` times the previous.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// Default edges for latency-in-microseconds histograms: 1us .. ~34s in
  /// ×2 steps (36 buckets).
  static const std::vector<double>& LatencyUsBounds();

  void Observe(double v) {
    if (Enabled()) ObserveAlways(v);
  }
  /// Records regardless of the global switch (used by callers that already
  /// checked it, e.g. an active ScopedSpan flushing its duration).
  void ObserveAlways(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.
  /// q in [0, 1]; linear interpolation within the bucket holding the rank.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> bucket_counts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels make the extreme-update CAS loops race-free; the
  // accessors report 0 for an empty histogram.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Read-time snapshot of one named metric (see metrics_io.h for the dump
/// formats built on it).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;

  double value = 0;  ///< Counter / gauge value.

  // Histogram-only fields.
  uint64_t count = 0;
  double sum = 0, min = 0, max = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
};

/// Name → metric map. Registration takes a mutex and returns a pointer
/// that stays valid for the life of the process (metrics are never
/// deallocated, only value-reset), so hot paths cache the pointer in a
/// function-local static and touch only the lock-free metric afterwards:
///
///   static obs::Counter* c =
///       obs::MetricsRegistry::Global().GetCounter("feature/assemble_basic");
///   c->Inc();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Find-or-create; a name keeps its first-registered type and (for
  /// histograms) first-registered bounds.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` means Histogram::LatencyUsBounds().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Snapshot of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric's value but keeps all registrations alive (cached
  /// pointers stay valid) — for tests and between tool phases.
  void ResetValues();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace deepsd

#endif  // DEEPSD_OBS_METRICS_H_
