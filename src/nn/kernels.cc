#include "nn/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace deepsd {
namespace nn {
namespace kernels {

namespace {

KernelMode ModeFromEnv() {
  const char* env = std::getenv("DEEPSD_KERNEL");
  if (env == nullptr || *env == '\0') return KernelMode::kBlocked;
  KernelMode mode = KernelMode::kBlocked;
  if (!ParseKernelMode(env, &mode)) {
    DEEPSD_LOG(Warning) << "unknown DEEPSD_KERNEL value '" << env
                        << "' (expected naive|blocked|quant), using blocked";
  }
  return mode;
}

std::atomic<KernelMode>& ModeFlag() {
  static std::atomic<KernelMode> mode{ModeFromEnv()};
  return mode;
}

// GCC vector extensions pin the codegen the auto-vectorizer misses when
// it SLP-unrolls a scalar accumulator tile (shuffle soup instead of row
// vectors). Lane ops are element-wise, so every c element keeps its single
// ascending-k `acc += a*b` chain — bitwise identical to the naive loops.
// Loads/stores go through memcpy: tile pointers are only float-aligned,
// and alignment attributes on the typedef would be silently dropped when
// the type is passed as a template argument.
typedef float V16 __attribute__((vector_size(64)));
typedef float V4 __attribute__((vector_size(16)));

// GCC notes that passing V16 by value would use a different ABI if AVX-512
// were enabled (-Wpsabi). Every helper taking/returning one lives in this
// TU and inlines, so no cross-TU call with that ABI ever exists.
#pragma GCC diagnostic ignored "-Wpsabi"

template <typename V>
inline V LoadV(const float* p) {
  V v;
  __builtin_memcpy(&v, p, sizeof(V));
  return v;
}

template <typename V>
inline void StoreV(float* p, V v) {
  __builtin_memcpy(p, &v, sizeof(V));
}

template <typename V>
inline V ZeroV() {
  V v;
  __builtin_memset(&v, 0, sizeof(V));
  return v;
}

// Register-blocked micro-kernel: an MR-row tile of c, one lane vector per
// row, accumulated in registers over the full k extent. Each c element is
// a single ascending-k chain of `acc += a*b`, matching the naive ikj loop
// element-for-element; MR independent row vectors hide FP-add latency and
// c is touched once instead of once per k step.
template <int MR, typename V>
inline void GemmTile(const float* a, const float* b, float* c, int k, int lda,
                     int ldb, int ldc, bool accumulate) {
  V acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = accumulate ? LoadV<V>(c + r * ldc) : ZeroV<V>();
  }
  for (int p = 0; p < k; ++p) {
    const V bv = LoadV<V>(b + static_cast<size_t>(p) * ldb);
    for (int r = 0; r < MR; ++r) {
      // Scalar-vector op: GCC spreads the scalar with one vbroadcastss.
      acc[r] += a[r * lda + p] * bv;
    }
  }
  for (int r = 0; r < MR; ++r) {
    StoreV<V>(c + r * ldc, acc[r]);
  }
}

// Column tail (n % 4): per-element ascending-k chain, same order again.
inline void GemmEdge(const float* a, const float* b, float* c, int i0, int i1,
                     int j0, int j1, int k, int n, bool accumulate) {
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      float acc = accumulate ? c[static_cast<size_t>(i) * n + j] : 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a[static_cast<size_t>(i) * k + p] *
               b[static_cast<size_t>(p) * n + j];
      }
      c[static_cast<size_t>(i) * n + j] = acc;
    }
  }
}

// dW-style tile: c[k,n] += a[m,k]^T·b[m,n] over rows p∈[p0,p0+MR) of c
// and one lane vector of columns at j0, accumulating over the shared row
// index i of a/b in ascending order — the naive loop's per-element order.
template <int MR, typename V>
inline void GemmTATile(const float* a, const float* b, float* c, int m, int k,
                       int n, int p0, int j0) {
  V acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = LoadV<V>(c + static_cast<size_t>(p0 + r) * n + j0);
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k + p0;
    const V bv = LoadV<V>(b + static_cast<size_t>(i) * n + j0);
    for (int r = 0; r < MR; ++r) {
      acc[r] += arow[r] * bv;
    }
  }
  for (int r = 0; r < MR; ++r) {
    StoreV<V>(c + static_cast<size_t>(p0 + r) * n + j0, acc[r]);
  }
}

inline void GemmTAEdge(const float* a, const float* b, float* c, int m, int k,
                       int n, int p0, int p1, int j0, int j1) {
  for (int p = p0; p < p1; ++p) {
    for (int j = j0; j < j1; ++j) {
      float acc = c[static_cast<size_t>(p) * n + j];
      for (int i = 0; i < m; ++i) {
        acc += a[static_cast<size_t>(i) * k + p] *
               b[static_cast<size_t>(i) * n + j];
      }
      c[static_cast<size_t>(p) * n + j] = acc;
    }
  }
}

// dX-style tile: c[m,n] += a[m,k]·b[n,k]^T. Each element is a fresh
// ascending-k dot product added once into c — exactly the naive order —
// but MR·NR dot products run as independent chains instead of one
// latency-bound chain at a time.
template <int MR, int NR>
inline void GemmTBTile(const float* a, const float* b, float* c, int k, int n,
                       int i0, int j0) {
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < NR; ++j) acc[r][j] = 0.0f;
  }
  for (int p = 0; p < k; ++p) {
    for (int r = 0; r < MR; ++r) {
      float av = a[static_cast<size_t>(i0 + r) * k + p];
      for (int j = 0; j < NR; ++j) {
        acc[r][j] += av * b[static_cast<size_t>(j0 + j) * k + p];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < NR; ++j) {
      c[static_cast<size_t>(i0 + r) * n + j0 + j] += acc[r][j];
    }
  }
}

inline void GemmTBEdge(const float* a, const float* b, float* c, int k, int n,
                       int i0, int i1, int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      float s = 0.0f;
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<size_t>(i) * k + p] *
             b[static_cast<size_t>(j) * k + p];
      }
      c[static_cast<size_t>(i) * n + j] += s;
    }
  }
}

inline float LRel(float v, float alpha) { return v < 0.0f ? v * alpha : v; }

}  // namespace

KernelMode kernel_mode() {
  return ModeFlag().load(std::memory_order_relaxed);
}

void SetKernelMode(KernelMode mode) {
  ModeFlag().store(mode, std::memory_order_relaxed);
}

bool ParseKernelMode(const char* name, KernelMode* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "naive") == 0) {
    *out = KernelMode::kNaive;
    return true;
  }
  if (std::strcmp(name, "blocked") == 0) {
    *out = KernelMode::kBlocked;
    return true;
  }
  if (std::strcmp(name, "quant") == 0) {
    *out = KernelMode::kQuant;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Naive kernels — the seed repo's loops, verbatim. These are the oracle.
// ---------------------------------------------------------------------------

void GemmNaive(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  if (const size_t bytes = static_cast<size_t>(m) * n * sizeof(float);
      !accumulate && bytes > 0) {
    std::memset(c, 0, bytes);
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransposeANaive(const float* a, const float* b, float* c, int m,
                         int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    const float* brow = b + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransposeBNaive(const float* a, const float* b, float* c, int m,
                         int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float s = 0.0f;
      for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += s;
    }
  }
}

void GemmBiasLRelNaive(const float* a, const float* w, const float* bias,
                       float* y, int m, int k, int n, float alpha) {
  GemmNaive(a, w, y, m, k, n, /*accumulate=*/false);
  for (int i = 0; i < m; ++i) {
    float* yrow = y + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) yrow[j] = LRel(yrow[j] + bias[j], alpha);
  }
}

// ---------------------------------------------------------------------------
// Blocked kernels.
// ---------------------------------------------------------------------------

namespace {
constexpr int kMR = 4;   // rows per tile
constexpr int kNR = 16;  // columns per tile (two AVX vectors / four SSE)
}  // namespace

void GemmBlocked(const float* a, const float* b, float* c, int m, int k, int n,
                 bool accumulate) {
  int j = 0;
  for (; j + kNR <= n; j += kNR) {
    int i = 0;
    for (; i + kMR <= m; i += kMR) {
      GemmTile<kMR, V16>(a + static_cast<size_t>(i) * k, b + j,
                         c + static_cast<size_t>(i) * n + j, k, k, n, n,
                         accumulate);
    }
    for (; i < m; ++i) {
      GemmTile<1, V16>(a + static_cast<size_t>(i) * k, b + j,
                       c + static_cast<size_t>(i) * n + j, k, k, n, n,
                       accumulate);
    }
  }
  for (; j + 4 <= n; j += 4) {
    int i = 0;
    for (; i + kMR <= m; i += kMR) {
      GemmTile<kMR, V4>(a + static_cast<size_t>(i) * k, b + j,
                        c + static_cast<size_t>(i) * n + j, k, k, n, n,
                        accumulate);
    }
    for (; i < m; ++i) {
      GemmTile<1, V4>(a + static_cast<size_t>(i) * k, b + j,
                      c + static_cast<size_t>(i) * n + j, k, k, n, n,
                      accumulate);
    }
  }
  if (j < n) GemmEdge(a, b, c, 0, m, j, n, k, n, accumulate);
}

void GemmTransposeABlocked(const float* a, const float* b, float* c, int m,
                           int k, int n) {
  int j = 0;
  for (; j + kNR <= n; j += kNR) {
    int p = 0;
    for (; p + kMR <= k; p += kMR) GemmTATile<kMR, V16>(a, b, c, m, k, n, p, j);
    for (; p < k; ++p) GemmTATile<1, V16>(a, b, c, m, k, n, p, j);
  }
  for (; j + 4 <= n; j += 4) {
    int p = 0;
    for (; p + kMR <= k; p += kMR) GemmTATile<kMR, V4>(a, b, c, m, k, n, p, j);
    for (; p < k; ++p) GemmTATile<1, V4>(a, b, c, m, k, n, p, j);
  }
  if (j < n) GemmTAEdge(a, b, c, m, k, n, 0, k, j, n);
}

void GemmTransposeBBlocked(const float* a, const float* b, float* c, int m,
                           int k, int n) {
  int i = 0;
  for (; i + kMR <= m; i += kMR) {
    int j = 0;
    for (; j + 4 <= n; j += 4) GemmTBTile<kMR, 4>(a, b, c, k, n, i, j);
    if (j < n) GemmTBEdge(a, b, c, k, n, i, i + kMR, j, n);
  }
  // Row tail: remaining rows one at a time, same 4-wide column tiling.
  for (; i < m; ++i) {
    int j = 0;
    for (; j + 4 <= n; j += 4) GemmTBTile<1, 4>(a, b, c, k, n, i, j);
    if (j < n) GemmTBEdge(a, b, c, k, n, i, i + 1, j, n);
  }
}

void GemmBiasLRelBlocked(const float* a, const float* w, const float* bias,
                         float* y, int m, int k, int n, float alpha) {
  GemmBlocked(a, w, y, m, k, n, /*accumulate=*/false);
  for (int i = 0; i < m; ++i) {
    float* yrow = y + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) yrow[j] = LRel(yrow[j] + bias[j], alpha);
  }
}

// ---------------------------------------------------------------------------
// Dispatchers and mode-independent epilogues.
// ---------------------------------------------------------------------------

// The fp32 dispatchers treat kQuant as kBlocked: quantization applies only
// where a graph op holds a Parameter-backed weight (nn/graph.cc); every raw
// fp32 call under DEEPSD_KERNEL=quant — including all of training — takes
// the blocked path and stays bitwise identical to DEEPSD_KERNEL=blocked.

void Gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate) {
  if (kernel_mode() != KernelMode::kNaive) {
    GemmBlocked(a, b, c, m, k, n, accumulate);
  } else {
    GemmNaive(a, b, c, m, k, n, accumulate);
  }
}

void GemmTransposeA(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  if (kernel_mode() != KernelMode::kNaive) {
    GemmTransposeABlocked(a, b, c, m, k, n);
  } else {
    GemmTransposeANaive(a, b, c, m, k, n);
  }
}

void GemmTransposeB(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  if (kernel_mode() != KernelMode::kNaive) {
    GemmTransposeBBlocked(a, b, c, m, k, n);
  } else {
    GemmTransposeBNaive(a, b, c, m, k, n);
  }
}

void GemmBiasLRel(const float* a, const float* w, const float* bias, float* y,
                  int m, int k, int n, float alpha) {
  if (kernel_mode() != KernelMode::kNaive) {
    GemmBiasLRelBlocked(a, w, bias, y, m, k, n, alpha);
  } else {
    GemmBiasLRelNaive(a, w, bias, y, m, k, n, alpha);
  }
}

// ---------------------------------------------------------------------------
// Int8 quantized inference kernels.
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t>& QuantGemmCounter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

// Saturating symmetric quantization of one value at 127/absmax. NaN maps
// to 0, ±inf and out-of-range values saturate at ±127 — no UB on any bit
// pattern, which keeps the corrupt-file contract intact when quantized
// weights come straight off disk.
inline int8_t QuantClamp(float v) {
  if (!(v >= -127.0f)) return v < 0.0f ? -127 : 0;  // NaN or < -127
  if (v > 127.0f) return 127;
  return static_cast<int8_t>(std::lrintf(v));
}

// Quantizes one activation row at scale 127/amax. Returns the dequant
// scale (amax/127), or 0 for an all-zero (or absent) range, in which case
// `q` is zeroed.
inline float QuantizeRow(const float* a, int k, float amax, int8_t* q) {
  if (!(amax > 0.0f) || !std::isfinite(amax)) {
    std::memset(q, 0, static_cast<size_t>(k));
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  for (int p = 0; p < k; ++p) q[p] = QuantClamp(a[p] * inv);
  return amax / 127.0f;
}

inline float RowAbsMax(const float* a, int k) {
  float amax = 0.0f;
  for (int p = 0; p < k; ++p) {
    const float v = std::fabs(a[p]);
    if (v > amax) amax = v;
  }
  return amax;
}

// The quantization range of an activation row: its own absmax (per-row
// dynamic scales keep full int8 resolution on this model's heavy-tailed
// gap-count activations, where any one static scale either saturates the
// tail or starves typical rows — measured as +46-78% RMSE), clipped at
// kActRangeHeadroom times the calibrated range so a corrupt or drifted
// feature spike cannot blow the scale up and zero out the whole row.
// The headroom is deliberately generous: legitimate tail rows run well
// past the EWMA-smoothed calibration (4x clipped real data, +2.8% RMSE),
// while the spikes the guard exists for are orders of magnitude out.
constexpr float kActRangeHeadroom = 32.0f;

inline float RowRange(const float* a, int k, float act_absmax) {
  float amax = RowAbsMax(a, k);
  if (act_absmax > 0.0f && std::isfinite(act_absmax)) {
    const float ceil = kActRangeHeadroom * act_absmax;
    if (amax > ceil) amax = ceil;
  }
  return amax;
}

// Integer core: acc[n] = qa[k]·qw[k,n] in int32. Deliberately the plain
// k-outer / contiguous-j-inner form: at -O3 GCC autovectorizes the inner
// loop as vpmovsx widening loads + vpmulld/vpaddd, measured ~3.5x faster
// than hand-rolled 8-column __builtin_convertvector tiles (which GCC
// scalarizes into per-lane inserts). The accumulation is exact integer
// math, so any re-vectorization stays bit-identical by construction. The
// av == 0 skip is a real win on this model's inputs (most gap-count
// windows are zero, so quantized activation rows are sparse).
inline void GemmRowInt8(const int8_t* qa, const int8_t* qw, int32_t* acc,
                        int k, int n) {
  std::memset(acc, 0, sizeof(int32_t) * static_cast<size_t>(n));
  for (int p = 0; p < k; ++p) {
    const int32_t av = qa[p];
    if (av == 0) continue;
    const int8_t* wrow = qw + static_cast<size_t>(p) * n;
    for (int j = 0; j < n; ++j) acc[j] += av * wrow[j];
  }
}

struct QuantScratch {
  std::vector<int8_t> qa;
  std::vector<int32_t> acc;
};

QuantScratch& Scratch(int k, int n) {
  static thread_local QuantScratch s;
  if (static_cast<int>(s.qa.size()) < k) s.qa.resize(k);
  if (static_cast<int>(s.acc.size()) < n) s.acc.resize(n);
  return s;
}

}  // namespace

void QuantizeWeights(const float* w, int rows, int cols,
                     QuantizedWeights* out) {
  out->rows = rows;
  out->cols = cols;
  out->data.resize(static_cast<size_t>(rows) * cols);
  out->scales.assign(static_cast<size_t>(cols), 0.0f);
  std::vector<float> inv(static_cast<size_t>(cols), 0.0f);
  for (int p = 0; p < rows; ++p) {
    const float* wrow = w + static_cast<size_t>(p) * cols;
    for (int j = 0; j < cols; ++j) {
      const float v = std::fabs(wrow[j]);
      if (v > out->scales[j]) out->scales[j] = v;
    }
  }
  for (int j = 0; j < cols; ++j) {
    const float absmax = out->scales[j];
    if (absmax > 0.0f && std::isfinite(absmax)) {
      out->scales[j] = absmax / 127.0f;
      inv[j] = 127.0f / absmax;
    } else {
      out->scales[j] = 0.0f;
    }
  }
  for (int p = 0; p < rows; ++p) {
    const float* wrow = w + static_cast<size_t>(p) * cols;
    int8_t* qrow = out->data.data() + static_cast<size_t>(p) * cols;
    for (int j = 0; j < cols; ++j) {
      qrow[j] = inv[j] == 0.0f ? int8_t{0} : QuantClamp(wrow[j] * inv[j]);
    }
  }
}

void GemmQuant(const float* a, const QuantizedWeights& w, float* y, int m,
               int k, int n, float act_absmax, bool accumulate) {
  QuantGemmCounter().fetch_add(1, std::memory_order_relaxed);
  QuantScratch& s = Scratch(k, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* yrow = y + static_cast<size_t>(i) * n;
    const float amax = RowRange(arow, k, act_absmax);
    const float sa = QuantizeRow(arow, k, amax, s.qa.data());
    if (sa == 0.0f) {
      if (!accumulate) std::memset(yrow, 0, static_cast<size_t>(n) * 4);
      continue;
    }
    GemmRowInt8(s.qa.data(), w.data.data(), s.acc.data(), k, n);
    for (int j = 0; j < n; ++j) {
      const float v = static_cast<float>(s.acc[j]) * (sa * w.scales[j]);
      yrow[j] = accumulate ? yrow[j] + v : v;
    }
  }
}

void GemmBiasLRelQuant(const float* a, const QuantizedWeights& w,
                       const float* bias, float* y, int m, int k, int n,
                       float alpha, float act_absmax) {
  QuantGemmCounter().fetch_add(1, std::memory_order_relaxed);
  QuantScratch& s = Scratch(k, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* yrow = y + static_cast<size_t>(i) * n;
    const float amax = RowRange(arow, k, act_absmax);
    const float sa = QuantizeRow(arow, k, amax, s.qa.data());
    if (sa == 0.0f) {
      for (int j = 0; j < n; ++j) yrow[j] = LRel(bias[j], alpha);
      continue;
    }
    GemmRowInt8(s.qa.data(), w.data.data(), s.acc.data(), k, n);
    for (int j = 0; j < n; ++j) {
      const float v = static_cast<float>(s.acc[j]) * (sa * w.scales[j]);
      yrow[j] = LRel(v + bias[j], alpha);
    }
  }
}

uint64_t QuantGemmCount() {
  return QuantGemmCounter().load(std::memory_order_relaxed);
}

void LRelMaskBackward(const float* y, const float* dy, float* dz, size_t size,
                      float alpha) {
  // The mask comes from the sign *bit*, not `y >= 0`: a tiny negative
  // pre-activation can underflow to -0.0f after scaling by alpha, and
  // `-0.0f >= 0.0f` is true while the pre-activation mask is alpha. The
  // sign bit survives the underflow; +0 only arises from a +0
  // pre-activation (a GEMM accumulation chain starting at +0 can never
  // produce -0), so signbit(y) equals "pre-activation < 0" exactly.
  for (size_t i = 0; i < size; ++i) {
    dz[i] = dy[i] * (std::signbit(y[i]) ? alpha : 1.0f);
  }
}

void BiasGradAccumulate(const float* dz, float* db, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* row = dz + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) db[j] += row[j];
  }
}

}  // namespace kernels
}  // namespace nn
}  // namespace deepsd
