#ifndef DEEPSD_FEATURE_FEATURE_ASSEMBLER_H_
#define DEEPSD_FEATURE_FEATURE_ASSEMBLER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "feature/vectors.h"

namespace deepsd {
namespace feature {

/// Feature-extraction parameters.
struct FeatureConfig {
  /// Look-back window L in minutes (paper fixes L = 20).
  int window = 20;
  /// Grid of timeslots on which historical last-call / waiting-time tables
  /// are precomputed; must cover every t and t+10 the protocol queries.
  /// The paper's item grid (every 5 min from 00:20) satisfies this.
  int grid_start = 20;
  int grid_stride = 5;
  /// If true, count features are log1p-compressed. Default false (raw
  /// counts, as in the paper): compression flattens exactly the large-gap
  /// regimes that dominate RMSE — measured on the simulator it costs the
  /// basic model ~29% RMSE. Baseline (flat) features apply the same
  /// setting either way, so the comparison stays like-for-like.
  ///
  /// Environment reals (temperature, PM2.5, road-segment counts) are
  /// always standardized with reference-period statistics regardless of
  /// this flag: they are auxiliary context with no linear relation to the
  /// target, and at raw scale (PM2.5 ~100) they drown the environment
  /// blocks in gradient noise, while un-centered small values barely move
  /// the zero-initialized residual branches.
  bool normalize = false;
  /// Width of a time-of-day bin when one-hot encoding TimeID for linear
  /// baselines (1440 raw slots → 1440/time_bin_minutes bins).
  int time_bin_minutes = 10;
};

/// Inputs of the DeepSD network for one prediction item. Basic model uses
/// ids + v_sd + environment; the advanced model additionally consumes the
/// last-call / waiting-time vectors and the per-day-of-week historical
/// vectors (from which the network forms empirical vectors E = Σ p(w)·H(w)).
struct ModelInput {
  int area_id = 0;
  int time_id = 0;
  int week_id = 0;

  std::vector<float> v_sd;  ///< 2L real-time supply-demand vector.

  // Advanced-only fields; empty vectors for basic items.
  std::vector<float> h_sd;    ///< 7×2L historical sd vectors at t (w-major).
  std::vector<float> h_sd10;  ///< 7×2L historical sd vectors at t+10.
  std::vector<float> v_lc;    ///< 2L real-time last-call vector.
  std::vector<float> h_lc;
  std::vector<float> h_lc10;
  std::vector<float> v_wt;  ///< 2L real-time waiting-time vector.
  std::vector<float> h_wt;
  std::vector<float> h_wt10;

  std::vector<int> weather_types;    ///< L categorical weather-type ids.
  std::vector<float> weather_reals;  ///< 2L: temperatures then pm2.5.
  std::vector<float> v_tc;           ///< 4L traffic condition vector.

  float target_gap = 0;
};

/// Assembles model and baseline features from an OrderDataset.
///
/// Historical ("empirical") vectors are averaged over a fixed reference
/// period [ref_day_begin, ref_day_end) — the training days — rather than the
/// paper's "all days prior to d", with the item's own day excluded from its
/// average to avoid leaking the target window. See DESIGN.md §2 for why this
/// substitution is behaviour-preserving.
///
/// Construction precomputes per-(area, weekday) mean minute-curves for the
/// supply-demand signal and per-(area, weekday, grid-slot) tables for the
/// last-call and waiting-time signals; queries are then O(L).
class FeatureAssembler {
 public:
  FeatureAssembler(const data::OrderDataset* dataset,
                   const FeatureConfig& config, int ref_day_begin,
                   int ref_day_end);

  const FeatureConfig& config() const { return config_; }
  const data::OrderDataset& dataset() const { return *dataset_; }

  /// Features for the basic DeepSD model (ids, V_sd, environment).
  ModelInput AssembleBasic(const data::PredictionItem& item) const;

  /// Features for the advanced DeepSD model (adds last-call, waiting-time
  /// and all historical vectors).
  ModelInput AssembleAdvanced(const data::PredictionItem& item) const;

  /// Flat feature vector for the non-deep baselines, matching the feature
  /// list of paper Sec VI-C. With `onehot_categoricals` the area / binned
  /// time / weekday ids are expanded one-hot (for LASSO); otherwise they are
  /// included as raw ordinals (for the tree models).
  std::vector<float> AssembleFlat(const data::PredictionItem& item,
                                  bool onehot_categoricals) const;

  /// Dimensionality of AssembleFlat output.
  int FlatDim(bool onehot_categoricals) const;
  /// Column names of AssembleFlat output (debugging / feature importances).
  std::vector<std::string> FlatFeatureNames(bool onehot_categoricals) const;

  /// Historical per-day-of-week vector H^(w),t for the supply-demand signal
  /// (un-normalized counts), exposed for tests.
  std::vector<float> HistoricalSd(int area, int week_id, int t) const;

  /// All seven historical vectors (w-major, 7×2L) for one signal at
  /// (area, t), without any own-day exclusion — the form a live predictor
  /// needs when serving days outside the reference period.
  /// `kind`: 0 = supply-demand, 1 = last-call, 2 = waiting-time. Values are
  /// raw counts; apply the configured normalization via NormalizeCounts.
  std::vector<float> HistoricalVectors(int kind, int area, int t) const;

  /// Applies this assembler's count normalization (identity when
  /// config().normalize is false) — for callers assembling live features.
  std::vector<float> NormalizeCounts(std::vector<float> counts) const;

  /// Reference-period standardization statistics of the environment reals,
  /// shared with the live predictor so offline and online features agree.
  struct EnvStats {
    float temp_mean = 0, temp_std = 1;
    float pm_mean = 0, pm_std = 1;
    float tc_mean[data::kCongestionLevels] = {0, 0, 0, 0};
    float tc_std[data::kCongestionLevels] = {1, 1, 1, 1};
  };
  const EnvStats& env_stats() const { return env_stats_; }

  float NormTemp(float v) const {
    return (v - env_stats_.temp_mean) / env_stats_.temp_std;
  }
  float NormPm(float v) const {
    return (v - env_stats_.pm_mean) / env_stats_.pm_std;
  }
  float NormTraffic(int level, float v) const {
    return (v - env_stats_.tc_mean[level]) / env_stats_.tc_std[level];
  }
  /// Count of reference days with the given weekday.
  int RefDayCount(int week_id) const {
    return ref_day_count_[static_cast<size_t>(week_id)];
  }

 private:
  int GridIndex(int t) const;
  /// H vectors for one signal at (area, t), all 7 weekdays flattened, with
  /// the item's own day excluded where applicable. `kind`: 0=sd, 1=lc, 2=wt.
  std::vector<float> HistoricalAll(int kind, int area, int day, int t) const;
  std::vector<float> RealtimeVector(int kind, int area, int day, int t) const;
  void AppendNormalizedCounts(const std::vector<float>& src,
                              std::vector<float>* dst) const;
  float NormCount(float v) const;

  const data::OrderDataset* dataset_;
  FeatureConfig config_;
  int ref_day_begin_;
  int ref_day_end_;
  int grid_points_;

  std::vector<int> ref_day_count_;  // per weekday
  EnvStats env_stats_;

  // Mean per-minute valid/invalid counts per (area, weekday):
  // index ((area*7 + w) * 1440 + minute) * 2 + {0=valid,1=invalid}.
  std::vector<float> sd_minute_mean_;

  // Mean last-call / waiting-time vectors per (area, weekday, grid slot):
  // index ((area*7 + w) * grid_points + g) * 2L + k. kind 1 → lc_, 2 → wt_.
  std::vector<float> lc_table_;
  std::vector<float> wt_table_;
};

}  // namespace feature
}  // namespace deepsd

#endif  // DEEPSD_FEATURE_FEATURE_ASSEMBLER_H_
