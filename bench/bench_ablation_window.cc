// Window-size ablation: the paper fixes the look-back window L = 20
// minutes "due to the restriction of test data". This bench varies L and
// retrains the advanced model, quantifying how much history the model
// actually uses — and whether the fixed choice was near-optimal.

#include "bench/bench_common.h"

namespace deepsd {
namespace {

int Main() {
  eval::Experiment exp(eval::GetScaleFromEnv(), /*seed=*/42);
  eval::PrintExperimentBanner(exp, "Ablation: look-back window size L");
  std::vector<float> targets = exp.TestTargets();

  eval::TablePrinter table({"Window L", "MAE", "RMSE", "s/epoch"});
  for (int window : {10, 20, 30}) {
    std::printf("training Advanced DeepSD with L = %d...\n", window);
    feature::FeatureConfig fc;
    fc.window = window;
    feature::FeatureAssembler assembler(&exp.dataset(), fc, 0,
                                        exp.train_day_end());
    core::DeepSDConfig config = exp.ModelConfig();
    config.window = window;

    nn::ParameterStore store;
    util::Rng rng(7);
    core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced,
                            &store, &rng);
    core::AssemblerSource train(&assembler, exp.train_items(), true);
    core::AssemblerSource test(&assembler, exp.test_items(), true);
    core::Trainer trainer(exp.TrainerConfig(7));
    core::TrainResult result = trainer.Train(&model, &store, train, test);
    eval::Metrics m =
        eval::ComputeMetrics(model.Predict(test), targets);
    table.AddRow({util::StrFormat("%d min", window),
                  util::StrFormat("%.2f", m.mae),
                  util::StrFormat("%.2f", m.rmse),
                  util::StrFormat("%.1f", result.seconds_per_epoch)});
  }

  std::printf("\nWindow-size ablation (Advanced DeepSD)\n");
  table.Print();
  std::printf(
      "\nExpected shape: accuracy saturates around the paper's L = 20 — the "
      "predictive signal lives in the last ~10-20 minutes (see also the "
      "sensitivity profiles from deepsd_predict --explain).\n");
  return 0;
}

}  // namespace
}  // namespace deepsd

int main() { return deepsd::Main(); }
