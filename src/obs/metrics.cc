#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace deepsd {
namespace obs {

void Gauge::Add(double delta) {
  if (!Enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DEEPSD_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  DEEPSD_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  DEEPSD_CHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<size_t>(i)] = edge;
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::LatencyUsBounds() {
  static const std::vector<double>* bounds =
      new std::vector<double>(ExponentialBounds(1.0, 2.0, 36));
  return *bounds;
}

namespace {
/// Relaxed CAS update keeping `slot` at an extreme of itself and `v`.
template <typename Cmp>
void UpdateExtreme(std::atomic<double>* slot, double v, Cmp better) {
  double cur = slot->load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void Histogram::ObserveAlways(double v) {
  size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  UpdateExtreme(&min_, v, [](double a, double b2) { return a < b2; });
  UpdateExtreme(&max_, v, [](double a, double b2) { return a > b2; });
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total);
  const double lo_clip = min();
  const double hi_clip = max();

  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(cumulative + counts[b]) >= rank) {
      // Interpolate inside bucket b. The bucket spans (lower, upper]; the
      // observed min/max clip the open-ended first/overflow buckets.
      double lower = b == 0 ? lo_clip : bounds_[b - 1];
      double upper = b < bounds_.size() ? bounds_[b] : hi_clip;
      lower = std::max(lower, lo_clip);
      upper = std::min(upper, hi_clip);
      if (upper < lower) upper = lower;
      double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lower + (upper - lower) * within;
    }
    cumulative += counts[b];
  }
  return hi_clip;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::LatencyUsBounds() : std::move(bounds));
  }
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  // std::map iteration is name-sorted per kind; merge order is
  // counters, gauges, histograms — stable enough for diffs and tests.
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = name;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = name;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->Quantile(0.50);
    s.p90 = h->Quantile(0.90);
    s.p99 = h->Quantile(0.99);
    s.bounds = h->bounds();
    s.bucket_counts = h->bucket_counts();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace deepsd
