#include "sim/area_profile.h"

#include <cmath>

namespace deepsd {
namespace sim {

namespace {

bool IsWeekend(int week_id) { return week_id >= 5; }

double EvalBumps(const std::vector<DemandBump>& bumps, int minute) {
  double v = 0.0;
  for (const DemandBump& b : bumps) {
    double d = (minute - b.center_minute) / b.width_minutes;
    v += b.weight * std::exp(-0.5 * d * d);
  }
  return v;
}

/// Suppresses demand in the small hours: multiplicative dip centered at 3:30.
double NightFactor(int minute) {
  double d = (minute - 210.0) / 150.0;
  return 1.0 - 0.85 * std::exp(-0.5 * d * d);
}

DemandBump Jitter(const DemandBump& b, util::Rng* rng) {
  DemandBump out = b;
  out.center_minute += rng->Normal(0.0, 8.0);
  out.width_minutes *= rng->Uniform(0.9, 1.1);
  out.weight *= rng->Uniform(0.9, 1.1);
  return out;
}

}  // namespace

double AreaProfile::DemandIntensity(int minute, int week_id) const {
  const auto& bumps = IsWeekend(week_id) ? weekend_bumps : weekday_bumps;
  double v = base_demand + EvalBumps(bumps, minute);
  v *= dow_multiplier[static_cast<size_t>(week_id)];
  v *= NightFactor(minute);
  return scale * std::max(v, 0.0);
}

double AreaProfile::SupplyIntensity(int minute, int week_id) const {
  // Supply tracks demand 15 minutes late and compresses surges: drivers
  // reposition slower than demand moves, which is exactly what creates gaps.
  int lagged = minute >= 15 ? minute - 15 : 0;
  const auto& bumps = IsWeekend(week_id) ? weekend_bumps : weekday_bumps;
  double shape = base_demand + 0.8 * EvalBumps(bumps, lagged);
  shape *= dow_multiplier[static_cast<size_t>(week_id)];
  shape *= NightFactor(minute);
  // A flat component of supply is always cruising regardless of demand.
  double flat = 0.55 * base_demand;
  return scale * supply_ratio * std::max(shape + flat, 0.0);
}

namespace {

// Cluster templates: areas in the same cluster share jittered copies of
// the same bumps so that their demand *shapes* match (embedding fodder).
struct ClusterTemplate {
  AreaType type;
  std::vector<DemandBump> weekday;
  std::vector<DemandBump> weekend;
  std::array<double, 7> dow;
  double supply_ratio;
};

const std::vector<ClusterTemplate>& Templates() {
  // Minutes: 8:00=480, 9:00=540, 12:00=720, 19:00=1140, 21:00=1260.
  static const std::vector<ClusterTemplate> templates = {
      // Residential: strong morning-out peak, moderate evening return.
      {AreaType::kResidential,
       {{500, 50, 2.2}, {1150, 70, 1.2}},
       {{780, 160, 0.9}},
       {1.05, 1.0, 1.0, 1.0, 1.05, 0.75, 0.7},
       1.12},
      // Business: double commute peak on weekdays, dead on weekends.
      {AreaType::kBusiness,
       {{510, 45, 1.8}, {1145, 55, 2.6}},
       {{840, 200, 0.4}},
       {1.0, 1.08, 1.0, 1.0, 1.1, 0.45, 0.4},
       1.04},
      // Entertainment: weekday quiet, Fri/Sat/Sun evening surges.
      {AreaType::kEntertainment,
       {{1250, 80, 0.7}},
       {{870, 130, 1.4}, {1290, 90, 2.8}},
       {0.7, 0.7, 0.75, 0.8, 1.3, 1.6, 1.5},
       0.98},
      // Suburban: flat and light.
      {AreaType::kSuburban,
       {{520, 70, 0.5}, {1120, 90, 0.5}},
       {{800, 220, 0.45}},
       {1.0, 1.0, 1.0, 1.0, 1.0, 0.9, 0.9},
       1.22},
      // Mixed: broad midday plateau plus soft commute peaks. Distinct
      // Tuesday behaviour (paper Sec V-A example of a day-specific area).
      {AreaType::kMixed,
       {{520, 60, 1.0}, {760, 150, 0.9}, {1140, 70, 1.1}},
       {{820, 180, 1.0}},
       {1.0, 1.45, 1.0, 1.0, 1.05, 0.95, 0.9},
       1.06},
  };
  return templates;
}

/// One profile drawn from a template. The draw order (scale, base demand,
/// bump jitters, dow multipliers, supply ratio, road segments) is frozen:
/// MakeAreaProfiles' output for a given rng stream is part of the
/// simulator's determinism contract (sim_determinism_test.cc).
AreaProfile ProfileFromTemplate(const ClusterTemplate& tpl, int cluster_id,
                                double mean_scale, util::Rng* rng) {
  AreaProfile p;
  p.type = tpl.type;
  p.cluster_id = cluster_id;
  p.scale = mean_scale * std::exp(rng->Normal(-0.45, 0.95));
  p.base_demand = 0.18 * rng->Uniform(0.8, 1.25);
  for (const DemandBump& b : tpl.weekday) p.weekday_bumps.push_back(Jitter(b, rng));
  for (const DemandBump& b : tpl.weekend) p.weekend_bumps.push_back(Jitter(b, rng));
  p.dow_multiplier = tpl.dow;
  for (double& m : p.dow_multiplier) m *= rng->Uniform(0.95, 1.05);
  p.supply_ratio = tpl.supply_ratio * rng->Uniform(0.92, 1.08);
  p.road_segments = static_cast<int>(rng->UniformInt(70, 150));
  return p;
}

}  // namespace

std::vector<AreaProfile> MakeAreaProfiles(int n, double mean_scale,
                                          util::Rng* rng) {
  std::vector<AreaProfile> profiles;
  profiles.reserve(static_cast<size_t>(n));

  // Heavy-tailed area scales: log-normal, so a handful of areas carry most
  // of the volume and the gap distribution becomes approximately power-law.
  const std::vector<ClusterTemplate>& templates = Templates();
  for (int i = 0; i < n; ++i) {
    int cluster = i % static_cast<int>(templates.size());
    profiles.push_back(ProfileFromTemplate(templates[static_cast<size_t>(cluster)],
                                           cluster, mean_scale, rng));
  }
  return profiles;
}

AreaProfile MakeProfileOfType(AreaType type, double mean_scale,
                              util::Rng* rng) {
  const std::vector<ClusterTemplate>& templates = Templates();
  for (size_t i = 0; i < templates.size(); ++i) {
    if (templates[i].type == type) {
      return ProfileFromTemplate(templates[i], static_cast<int>(i), mean_scale,
                                 rng);
    }
  }
  // Unreachable while templates cover every AreaType; fall back to mixed.
  return ProfileFromTemplate(templates.back(),
                             static_cast<int>(templates.size()) - 1,
                             mean_scale, rng);
}

}  // namespace sim
}  // namespace deepsd
