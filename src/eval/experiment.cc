#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace eval {

ExperimentScale MakeScale(const std::string& name) {
  ExperimentScale s;  // "default": see header for the preset values
  s.name = name;
  if (name == "tiny") {
    s.num_areas = 8;
    s.train_days = 8;
    s.test_days = 7;
    s.epochs = 3;
    s.best_k = 2;
    s.gbdt_trees = 25;
    s.rf_trees = 8;
    s.lasso_iters = 30;
    s.train_item_stride = 6;  // one item every 30 minutes
    s.mean_scale = 1.0;
  } else if (name == "full") {
    // Paper protocol (Sec VI-A): 58 areas, 24 train + 28 test days, items
    // every 5 minutes, 50 epochs, best-10 averaging.
    s.num_areas = 58;
    s.train_days = 24;
    s.test_days = 28;
    s.epochs = 50;
    s.best_k = 10;
    s.gbdt_trees = 150;
    s.rf_trees = 40;
    s.lasso_iters = 100;
    s.train_item_stride = 1;
    s.mean_scale = 1.0;
    s.dropout = 0.5f;  // the paper's setting, viable at 50-epoch budgets
  } else {
    DEEPSD_CHECK_MSG(name == "default", "unknown scale: " + name);
  }
  return s;
}

ExperimentScale GetScaleFromEnv() {
  const char* env = std::getenv("DEEPSD_BENCH_SCALE");
  return MakeScale(env != nullptr && *env != '\0' ? env : "default");
}

Experiment::Experiment(const ExperimentScale& scale, uint64_t seed)
    : scale_(scale) {
  city_config_.num_areas = scale.num_areas;
  city_config_.num_days = scale.train_days + scale.test_days;
  city_config_.seed = seed;
  city_config_.mean_scale = scale.mean_scale;
  dataset_ = sim::SimulateCity(city_config_, &summary_);

  feature::FeatureConfig fc;
  assembler_ = std::make_unique<feature::FeatureAssembler>(
      &dataset_, fc, train_day_begin(), train_day_end());

  // Paper training grid: every 5 min from 00:20 to 23:50; the stride
  // multiplier thins it for the smaller presets.
  train_items_ = data::MakeItems(dataset_, train_day_begin(), train_day_end(),
                                 20, 1430, 5 * scale.train_item_stride);
  test_items_ = data::MakeTestItems(dataset_, test_day_begin(), test_day_end());
}

std::vector<float> Experiment::TestTargets() const {
  return Targets(test_items_);
}

std::vector<float> Experiment::Targets(
    const std::vector<data::PredictionItem>& items) const {
  std::vector<float> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.gap);
  return out;
}

core::AssemblerSource Experiment::TrainSource(bool advanced) const {
  return core::AssemblerSource(assembler_.get(), train_items_, advanced);
}

core::AssemblerSource Experiment::TestSource(bool advanced) const {
  return core::AssemblerSource(assembler_.get(), test_items_, advanced);
}

core::DeepSDConfig Experiment::ModelConfig() const {
  core::DeepSDConfig config;
  config.num_areas = dataset_.num_areas();
  config.window = assembler_->config().window;
  config.dropout = scale_.dropout;
  return config;
}

core::TrainConfig Experiment::TrainerConfig(uint64_t seed) const {
  core::TrainConfig tc;
  tc.epochs = scale_.epochs;
  tc.best_k = scale_.best_k;
  tc.seed = seed;
  return tc;
}

Experiment::TrainedModel Experiment::TrainDeepSD(
    core::DeepSDModel::Mode mode, const core::DeepSDConfig& config,
    uint64_t seed) const {
  TrainedModel out;
  out.store = std::make_unique<nn::ParameterStore>();
  util::Rng rng(seed);
  out.model = std::make_unique<core::DeepSDModel>(config, mode,
                                                  out.store.get(), &rng);
  bool advanced = mode == core::DeepSDModel::Mode::kAdvanced;
  core::AssemblerSource train = TrainSource(advanced);
  core::AssemblerSource test = TestSource(advanced);
  core::Trainer trainer(TrainerConfig(seed));
  out.result = trainer.Train(out.model.get(), out.store.get(), train, test);
  out.test_predictions = out.model->Predict(test);
  return out;
}

baselines::FeatureMatrix Experiment::FlatFeatures(
    const std::vector<data::PredictionItem>& items, bool onehot) const {
  baselines::FeatureMatrix m;
  m.rows = static_cast<int>(items.size());
  m.cols = assembler_->FlatDim(onehot);
  m.values.reserve(static_cast<size_t>(m.rows) * m.cols);
  for (const auto& item : items) {
    std::vector<float> row = assembler_->AssembleFlat(item, onehot);
    m.values.insert(m.values.end(), row.begin(), row.end());
  }
  return m;
}

void PrintExperimentBanner(const Experiment& experiment,
                           const std::string& title) {
  const ExperimentScale& s = experiment.scale();
  const sim::SimSummary& sum = experiment.sim_summary();
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "scale=%s  areas=%d  train_days=%d  test_days=%d  epochs=%d\n",
      s.name.c_str(), s.num_areas, s.train_days, s.test_days, s.epochs);
  std::printf(
      "orders=%zu  invalid=%zu (%.1f%%)  zero-gap windows=%.1f%%  max gap=%d\n",
      sum.total_orders, sum.invalid_orders,
      sum.total_orders
          ? 100.0 * static_cast<double>(sum.invalid_orders) /
                static_cast<double>(sum.total_orders)
          : 0.0,
      100.0 * sum.zero_gap_fraction, sum.max_gap);
  std::printf("train items=%zu  test items=%zu\n",
              experiment.train_items().size(), experiment.test_items().size());
}

}  // namespace eval
}  // namespace deepsd
