#ifndef DEEPSD_LEARN_SHADOW_EVAL_H_
#define DEEPSD_LEARN_SHADOW_EVAL_H_

#include <cstdint>
#include <memory>

#include "eval/online_accuracy.h"
#include "serving/online_predictor.h"
#include "store/stored_model.h"

namespace deepsd {
namespace learn {

/// Side-by-side accuracy of the shadowed candidate vs the live serving
/// model over the same traffic and the same ground truth.
struct ShadowComparison {
  eval::TierAccuracy serving;
  eval::TierAccuracy candidate;
  /// Joined samples both sides have (min of the two) — the gate's
  /// min-sample floor applies to this.
  uint64_t samples = 0;
};

/// Replays a candidate model against live traffic alongside serving,
/// without touching the serving path (docs/continuous_learning.md).
///
/// Wiring: the evaluator is a PredictionObserver — chain it into the
/// serving predictor's tap (the learner does this). Every served batch is
/// recorded for the serving-side tracker, then re-answered by a private
/// OnlinePredictor over the candidate version and recorded for the
/// candidate-side tracker. Both trackers join against the *same* ground
/// truth: the candidate predictor's buffer — fed a copy of the live stream
/// via the Add*/AdvanceTo forwarders — fans its stream events out to both.
/// The candidate's buffer clock must be advanced before serving predicts a
/// minute (AdvanceTo first, then serving's), so shadow answers are for the
/// same slot as serving's.
///
/// Thread safety: OnPrediction may fire concurrently from serving threads
/// (the trackers and the candidate predictor are thread-safe); the feed
/// forwarders are called from the ingesting thread.
class ShadowEvaluator : public serving::PredictionObserver,
                        private serving::StreamObserver {
 public:
  /// `candidate` is kept alive by the evaluator; `history` must outlive it
  /// (the same assembler serving uses — the empirical vectors come from
  /// the training period either way).
  ShadowEvaluator(std::shared_ptr<const store::StoredModel> candidate,
                  const feature::FeatureAssembler* history,
                  const eval::OnlineAccuracyConfig& acc_config,
                  serving::FallbackConfig fallback = {});

  // serving::PredictionObserver — the serving tap.
  void OnPrediction(const std::vector<int>& area_ids,
                    const serving::PredictResult& result,
                    const std::vector<float>& activity,
                    int64_t now_abs) override;

  // Live-stream copy (the learner forwards every feed event here).
  void AddOrder(const data::Order& order);
  void AddWeather(const data::WeatherRecord& record);
  void AddTraffic(const data::TrafficRecord& record);
  void AdvanceTo(int day, int minute);

  ShadowComparison Compare() const;
  std::string candidate_id() const { return candidate_->version_id(); }
  const std::shared_ptr<const store::StoredModel>& candidate() const {
    return candidate_;
  }

 private:
  // serving::StreamObserver — attached to the candidate predictor's buffer;
  // fans ground truth out to both trackers. Runs under that buffer's lock
  // and only calls into the trackers (their own mutexes), never back into
  // the firing buffer.
  void OnOrderAccepted(const data::Order& order, int64_t ts_abs) override;
  void OnClockAdvance(int64_t now_abs) override;

  std::shared_ptr<const store::StoredModel> candidate_;
  serving::OnlinePredictor predictor_;  ///< Candidate, private buffer.
  eval::OnlineAccuracyTracker serving_acc_;
  eval::OnlineAccuracyTracker candidate_acc_;
};

}  // namespace learn
}  // namespace deepsd

#endif  // DEEPSD_LEARN_SHADOW_EVAL_H_
