#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepsd {
namespace util {

namespace {

/// The pool (if any) whose worker the current thread is. Lets nested
/// ParallelFor / Submit calls detect self-deadlock and run inline.
thread_local const ThreadPool* t_worker_pool = nullptr;

struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks;
  obs::Counter* busy_us;
  obs::Histogram* task_us;
};

/// Registry pointers are process-lifetime, so one shared set serves every
/// pool instance (in practice only the global pool and test pools exist).
PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    return PoolMetrics{r.GetGauge("pool/queue_depth"),
                       r.GetCounter("pool/tasks"),
                       r.GetCounter("pool/busy_us"),
                       r.GetHistogram("pool/task_us")};
  }();
  return m;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

struct ThreadPool::ForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t active_helpers = 0;
  /// (chunk index, exception) of every failed chunk; the lowest chunk
  /// index is rethrown so the surfaced error is scheduling-independent.
  std::vector<std::pair<size_t, std::exception_ptr>> errors;
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::WorkerLoop(int worker_id) {
  t_worker_pool = this;
  SetThreadLogTag(StrFormat("w%d", worker_id));
  DEEPSD_LOG(Debug) << "pool worker started";
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    if (obs::Enabled()) {
      int64_t t0 = SteadyNowUs();
      task();
      int64_t dur = SteadyNowUs() - t0;
      Metrics().tasks->Inc();
      Metrics().busy_us->Inc(static_cast<uint64_t>(std::max<int64_t>(dur, 0)));
      Metrics().task_us->Observe(static_cast<double>(dur));
    } else {
      task();
    }
  }
  DEEPSD_LOG(Debug) << "pool worker stopped";
  SetThreadLogTag("");
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  // No workers, or called from a worker of this pool: run inline. A worker
  // enqueueing and then waiting on the future could deadlock once every
  // worker blocks the same way.
  if (workers_.empty() || InWorkerThread()) {
    (*task)();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::RunChunks(ForState* state) {
  for (;;) {
    size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    size_t chunk_begin = state->begin + c * state->grain;
    size_t chunk_end = std::min(state->end, chunk_begin + state->grain);
    try {
      (*state->fn)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->errors.emplace_back(c, std::current_exception());
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (end - begin + grain - 1) / grain;

  // Serial fast path: single chunk, no workers, or nested call from one of
  // this pool's own workers (enqueueing would risk deadlock — every worker
  // could end up waiting for chunks only the queue can run).
  if (num_chunks == 1 || workers_.empty() || InWorkerThread()) {
    std::vector<std::pair<size_t, std::exception_ptr>> errors;
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t chunk_begin = begin + c * grain;
      size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        errors.emplace_back(c, std::current_exception());
      }
    }
    if (!errors.empty()) std::rethrow_exception(errors.front().second);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  // The caller also drains chunks, so at most num_chunks - 1 helpers.
  const size_t num_helpers =
      std::min(workers_.size(), num_chunks - 1);
  state->active_helpers = num_helpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < num_helpers; ++h) {
      queue_.emplace_back([state] {
        RunChunks(state.get());
        std::lock_guard<std::mutex> state_lock(state->mu);
        if (--state->active_helpers == 0) state->done_cv.notify_all();
      });
    }
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();

  RunChunks(state.get());
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock,
                        [&state] { return state->active_helpers == 0; });
  }

  if (!state->errors.empty()) {
    auto first = std::min_element(
        state->errors.begin(), state->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(0);
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_global_mu);
    old = std::move(g_global_pool);
    g_global_pool = std::make_unique<ThreadPool>(num_threads);
  }
  // Old pool (if any) drains and joins here, outside the registry lock.
}

int ThreadPool::GlobalThreads() { return Global().num_threads(); }

}  // namespace util
}  // namespace deepsd
