// Unit tests for the overload-protection primitives: Deadline,
// RateLimiter, CircuitBreaker. Everything time-dependent goes through the
// *At(now_us) variants with a hand-advanced virtual clock, so the tests
// are deterministic on any machine (including the 1-core CI runners).

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/circuit_breaker.h"
#include "util/deadline.h"
#include "util/rate_limiter.h"

namespace deepsd {
namespace util {
namespace {

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.ExpiredAt(Deadline::kInfiniteUs - 1));
  EXPECT_EQ(d.remaining_us(), Deadline::kInfiniteUs);
  EXPECT_EQ(d.deadline_us(), Deadline::kInfiniteUs);
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, AtSteadyUsExpiresExactlyAtTheInstant) {
  Deadline d = Deadline::AtSteadyUs(1000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.ExpiredAt(999));
  EXPECT_TRUE(d.ExpiredAt(1000));
  EXPECT_TRUE(d.ExpiredAt(2000));
  EXPECT_EQ(d.RemainingAt(400), 600);
  EXPECT_EQ(d.RemainingAt(1000), 0);
  EXPECT_EQ(d.RemainingAt(5000), 0);
}

TEST(DeadlineTest, AfterClampsNegativeToNow) {
  Deadline d = Deadline::After(-50);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_us(), 0);
}

TEST(DeadlineTest, AfterMillisExpiresOnTheRealClock) {
  Deadline d = Deadline::AfterMillis(1);
  EXPECT_FALSE(d.infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, NowSteadyUsIsMonotone) {
  int64_t a = NowSteadyUs();
  int64_t b = NowSteadyUs();
  EXPECT_LE(a, b);
}

// ------------------------------------------------------------- RateLimiter

TEST(RateLimiterTest, BurstThenRefill) {
  // 10 tokens/sec, burst 3: three immediate acquires pass, the fourth
  // fails until 100ms of virtual time refills one token.
  RateLimiter limiter(10.0, 3.0);
  int64_t now = 1'000'000;
  limiter.ResetAt(now);
  EXPECT_TRUE(limiter.TryAcquireAt(now));
  EXPECT_TRUE(limiter.TryAcquireAt(now));
  EXPECT_TRUE(limiter.TryAcquireAt(now));
  EXPECT_FALSE(limiter.TryAcquireAt(now));
  EXPECT_FALSE(limiter.TryAcquireAt(now + 50'000));   // half a token
  EXPECT_TRUE(limiter.TryAcquireAt(now + 100'000));   // one token
  EXPECT_FALSE(limiter.TryAcquireAt(now + 100'000));  // spent again
}

TEST(RateLimiterTest, BucketCapsAtBurst) {
  RateLimiter limiter(100.0, 2.0);
  int64_t now = 0;
  limiter.ResetAt(now);
  // A long idle period must not bank more than `burst` tokens.
  now += 10'000'000;
  EXPECT_DOUBLE_EQ(limiter.AvailableAt(now), 2.0);
  EXPECT_TRUE(limiter.TryAcquireAt(now));
  EXPECT_TRUE(limiter.TryAcquireAt(now));
  EXPECT_FALSE(limiter.TryAcquireAt(now));
}

TEST(RateLimiterTest, ZeroRateIsUnlimited) {
  RateLimiter limiter(0.0, 1.0);
  EXPECT_TRUE(limiter.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.TryAcquireAt(123));
}

TEST(RateLimiterTest, BurstBelowOneIsClampedToOne) {
  RateLimiter limiter(1.0, 0.0);
  EXPECT_DOUBLE_EQ(limiter.burst(), 1.0);
  limiter.ResetAt(0);
  EXPECT_TRUE(limiter.TryAcquireAt(0));
  EXPECT_FALSE(limiter.TryAcquireAt(0));
}

TEST(RateLimiterTest, MultiTokenAcquire) {
  RateLimiter limiter(10.0, 5.0);
  limiter.ResetAt(0);
  EXPECT_FALSE(limiter.TryAcquireAt(0, 6.0));  // more than the bucket holds
  EXPECT_TRUE(limiter.TryAcquireAt(0, 5.0));
  EXPECT_FALSE(limiter.TryAcquireAt(0, 1.0));
}

TEST(RateLimiterTest, BackwardsClockDoesNotMintTokens) {
  RateLimiter limiter(10.0, 1.0);
  limiter.ResetAt(1'000'000);
  EXPECT_TRUE(limiter.TryAcquireAt(1'000'000));
  // An out-of-order timestamp (clock observed on another thread) must not
  // refill or crash; the bucket stays empty.
  EXPECT_FALSE(limiter.TryAcquireAt(500'000));
  EXPECT_FALSE(limiter.TryAcquireAt(1'000'000));
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreaker::Config TestBreakerConfig() {
  CircuitBreaker::Config c;
  c.failure_threshold = 3;
  c.open_duration_us = 1000;
  c.half_open_probes = 2;
  c.name = "test_breaker";
  return c;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(TestBreakerConfig());
  int64_t now = 0;
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailureAt(now);
  breaker.RecordFailureAt(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailureAt(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.AllowAt(now + 1));
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(TestBreakerConfig());
  for (int round = 0; round < 5; ++round) {
    breaker.RecordFailureAt(0);
    breaker.RecordFailureAt(0);
    breaker.RecordSuccessAt(0);  // streak broken before the threshold
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, HalfOpenProbesThenClose) {
  CircuitBreaker breaker(TestBreakerConfig());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.RecordFailureAt(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Open window holds...
  EXPECT_FALSE(breaker.AllowAt(now + 999));
  // ...then the first Allow transitions to half-open and admits a probe.
  EXPECT_TRUE(breaker.AllowAt(now + 1000));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowAt(now + 1001));   // second probe slot
  EXPECT_FALSE(breaker.AllowAt(now + 1002));  // both slots in flight
  breaker.RecordSuccessAt(now + 1100);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccessAt(now + 1200);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowAt(now + 1300));
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRearms) {
  CircuitBreaker breaker(TestBreakerConfig());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.RecordFailureAt(now);
  EXPECT_TRUE(breaker.AllowAt(now + 1000));  // half-open probe
  breaker.RecordFailureAt(now + 1100);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The window restarts from the re-open instant.
  EXPECT_FALSE(breaker.AllowAt(now + 1100 + 999));
  EXPECT_TRUE(breaker.AllowAt(now + 1100 + 1000));
}

TEST(CircuitBreakerTest, CancelProbeFreesTheSlotWithoutClosing) {
  CircuitBreaker breaker(TestBreakerConfig());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.RecordFailureAt(now);
  EXPECT_TRUE(breaker.AllowAt(now + 1000));
  EXPECT_TRUE(breaker.AllowAt(now + 1001));
  EXPECT_FALSE(breaker.AllowAt(now + 1002));
  // Cancelling returns a slot but records no outcome: another probe can
  // start and the breaker must still be half-open, not closed.
  breaker.CancelProbe();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowAt(now + 1003));
}

TEST(CircuitBreakerTest, ResetClosesButKeepsCumulativeCounters) {
  CircuitBreaker breaker(TestBreakerConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailureAt(0);
  EXPECT_FALSE(breaker.AllowAt(1));
  breaker.Reset();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowAt(2));
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

TEST(CircuitBreakerTest, ConcurrentTrafficNeverDeadlocksOrMiscounts) {
  CircuitBreaker::Config c = TestBreakerConfig();
  c.failure_threshold = 2;
  CircuitBreaker breaker(c);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&breaker, t] {
      for (int i = 0; i < 500; ++i) {
        if (breaker.Allow()) {
          if ((i + t) % 3 == 0) {
            breaker.RecordFailure();
          } else {
            breaker.RecordSuccess();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // No strict final-state assertion (timing-dependent); the invariant is
  // that the state machine stayed coherent enough to answer.
  (void)breaker.state();
  EXPECT_GE(breaker.times_opened(), 0u);
}

}  // namespace
}  // namespace util
}  // namespace deepsd
