#ifndef DEEPSD_EVAL_EXPERIMENT_H_
#define DEEPSD_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/binned.h"
#include "core/batch.h"
#include "core/deepsd_config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "feature/feature_assembler.h"
#include "sim/city_sim.h"

namespace deepsd {
namespace eval {

/// Size knobs of an experiment run. The bench binaries pick a preset from
/// the DEEPSD_BENCH_SCALE environment variable:
///   "tiny"    — seconds-scale smoke runs (CI),
///   "default" — minutes-scale, reproduces the paper's orderings,
///   "full"    — the paper's protocol (58 areas, 24+28 days, 50 epochs).
struct ExperimentScale {
  std::string name = "default";
  int num_areas = 20;
  int train_days = 14;
  int test_days = 14;
  int epochs = 24;
  int best_k = 4;
  int gbdt_trees = 60;
  int rf_trees = 20;
  int lasso_iters = 60;
  /// Stride multiplier over the paper's 5-minute training grid (2 ⇒ one
  /// item every 10 minutes) to bound CPU training time.
  int train_item_stride = 2;
  double mean_scale = 1.0;
  /// Dropout after each block. The paper's 0.5 is right for its 300k-step
  /// training budget; at the reduced scales' ~15k steps it starves the
  /// 32-dim residual stream (measured: basic RMSE 6.16 @0.5 vs 4.79 @0.2),
  /// so the smaller presets use 0.2. "full" keeps the paper's 0.5.
  float dropout = 0.2f;
};

/// Resolves the scale preset from DEEPSD_BENCH_SCALE (default "default").
ExperimentScale GetScaleFromEnv();
ExperimentScale MakeScale(const std::string& name);

/// A fully prepared experiment: simulated city, split items, assembler and
/// lazy input sources for both model variants.
class Experiment {
 public:
  /// Simulates the city and builds items/assembler. `seed` controls
  /// everything (city + training).
  Experiment(const ExperimentScale& scale, uint64_t seed = 42);

  const ExperimentScale& scale() const { return scale_; }
  const data::OrderDataset& dataset() const { return dataset_; }
  const sim::SimSummary& sim_summary() const { return summary_; }
  const feature::FeatureAssembler& assembler() const { return *assembler_; }
  const std::vector<data::PredictionItem>& train_items() const {
    return train_items_;
  }
  const std::vector<data::PredictionItem>& test_items() const {
    return test_items_;
  }
  /// Ground-truth gaps of the test items.
  std::vector<float> TestTargets() const;

  /// Lazy feature sources.
  core::AssemblerSource TrainSource(bool advanced) const;
  core::AssemblerSource TestSource(bool advanced) const;

  /// DeepSD config matching this experiment's dataset.
  core::DeepSDConfig ModelConfig() const;
  /// Trainer config matching the scale.
  core::TrainConfig TrainerConfig(uint64_t seed = 7) const;

  /// Trains a DeepSD model variant and returns its test predictions.
  /// Exposed one-call path used by several benches.
  struct TrainedModel {
    std::unique_ptr<nn::ParameterStore> store;
    std::unique_ptr<core::DeepSDModel> model;
    core::TrainResult result;
    std::vector<float> test_predictions;
  };
  TrainedModel TrainDeepSD(core::DeepSDModel::Mode mode,
                           const core::DeepSDConfig& config,
                           uint64_t seed = 7) const;

  /// Flat feature matrices for the classical baselines.
  baselines::FeatureMatrix FlatFeatures(
      const std::vector<data::PredictionItem>& items, bool onehot) const;
  std::vector<float> Targets(
      const std::vector<data::PredictionItem>& items) const;

  int train_day_begin() const { return 0; }
  int train_day_end() const { return scale_.train_days; }
  int test_day_begin() const { return scale_.train_days; }
  int test_day_end() const { return scale_.train_days + scale_.test_days; }

 private:
  ExperimentScale scale_;
  sim::CityConfig city_config_;
  data::OrderDataset dataset_;
  sim::SimSummary summary_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
  std::vector<data::PredictionItem> train_items_;
  std::vector<data::PredictionItem> test_items_;
};

/// Prints a one-line banner describing the experiment (scale, orders,
/// zero-gap fraction) so bench output is self-describing.
void PrintExperimentBanner(const Experiment& experiment,
                           const std::string& title);

}  // namespace eval
}  // namespace deepsd

#endif  // DEEPSD_EVAL_EXPERIMENT_H_
