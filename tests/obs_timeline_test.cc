#include "src/obs/timeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/http_export.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/openmetrics.h"

namespace deepsd {
namespace obs {
namespace {

/// Telemetry on for the test, prior state restored after (the pattern of
/// obs_metrics_test.cc). Each test scrapes its own local registry so
/// metrics registered by other tests in this binary can't interfere.
class ObsTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
  }
  void TearDown() override { SetEnabled(was_enabled_); }

  MetricsRegistry registry_;

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTimelineTest, SampleNowComputesCounterDeltasAndRates) {
  Counter* c = registry_.GetCounter("tl/requests");
  TimelineRecorder recorder(TimelineConfig{}, &registry_);

  c->Inc(5);
  EXPECT_EQ(recorder.SampleNow(), 1u);
  c->Inc(7);
  EXPECT_EQ(recorder.SampleNow(), 2u);

  std::vector<TimelineSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 2u);
  // First scrape: the whole cumulative value counts as this interval's
  // increment (there is no earlier scrape to diff against).
  EXPECT_DOUBLE_EQ(samples[0].counter_deltas.at("tl/requests"), 5.0);
  EXPECT_DOUBLE_EQ(samples[1].counter_deltas.at("tl/requests"), 7.0);
  EXPECT_GT(samples[1].interval_s, 0.0);
  EXPECT_GT(samples[1].t_us, samples[0].t_us);
}

TEST_F(ObsTimelineTest, HistogramCountsAreMonotoneSeriesToo) {
  Histogram* h = registry_.GetHistogram("tl/latency");
  TimelineRecorder recorder(TimelineConfig{}, &registry_);
  h->Observe(10.0);
  h->Observe(20.0);
  recorder.SampleNow();
  h->Observe(30.0);
  recorder.SampleNow();
  std::vector<TimelineSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].counter_deltas.at("tl/latency"), 2.0);
  EXPECT_DOUBLE_EQ(samples[1].counter_deltas.at("tl/latency"), 1.0);
}

TEST_F(ObsTimelineTest, ResetValuesClampsDeltaToZeroNotNegative) {
  Counter* c = registry_.GetCounter("tl/reset_me");
  TimelineRecorder recorder(TimelineConfig{}, &registry_);
  c->Inc(100);
  recorder.SampleNow();
  registry_.ResetValues();
  c->Inc(3);
  recorder.SampleNow();
  std::vector<TimelineSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_GE(samples[1].counter_deltas.at("tl/reset_me"), 0.0);
}

TEST_F(ObsTimelineTest, RingEvictsOldestBeyondCapacity) {
  TimelineConfig config;
  config.capacity = 4;
  TimelineRecorder recorder(config, &registry_);
  for (int i = 0; i < 6; ++i) recorder.SampleNow();
  std::vector<TimelineSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().seq, 3u);  // 1 and 2 aged out
  EXPECT_EQ(samples.back().seq, 6u);
  EXPECT_EQ(recorder.scrape_count(), 6u);

  std::vector<TimelineSample> tail = recorder.TailSamples(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().seq, 5u);
  EXPECT_EQ(tail.back().seq, 6u);
}

TEST_F(ObsTimelineTest, BackgroundThreadScrapesOnItsOwn) {
  TimelineConfig config;
  config.interval_ms = 5;
  TimelineRecorder recorder(config, &registry_);
  EXPECT_FALSE(recorder.running());
  recorder.Start();
  EXPECT_TRUE(recorder.running());
  // Generous bound: just prove the thread scrapes without manual calls.
  for (int i = 0; i < 200 && recorder.scrape_count() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  recorder.Stop();
  EXPECT_FALSE(recorder.running());
  EXPECT_GE(recorder.scrape_count(), 3u);
  const uint64_t after_stop = recorder.scrape_count();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(recorder.scrape_count(), after_stop);
}

TEST_F(ObsTimelineTest, JsonLinesExportHoldsOneObjectPerScrape) {
  Counter* c = registry_.GetCounter("tl/jsonl");
  Gauge* g = registry_.GetGauge("tl/depth");
  TimelineRecorder recorder(TimelineConfig{}, &registry_);
  c->Inc(2);
  g->Set(7.0);
  recorder.SampleNow();
  c->Inc(1);
  recorder.SampleNow();

  const std::string path = ::testing::TempDir() + "/timeline_test.jsonl";
  ASSERT_TRUE(recorder.WriteJsonLines(path).ok());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"tl/jsonl\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());

  const std::string one =
      TimelineRecorder::SampleToJsonLine(recorder.Samples().front());
  EXPECT_NE(one.find("\"counters\""), std::string::npos);
  EXPECT_NE(one.find("\"gauges\""), std::string::npos);
  EXPECT_NE(one.find("\"tl/depth\":7"), std::string::npos);
}

// ------------------------------------------------------------ OpenMetrics

TEST_F(ObsTimelineTest, OpenMetricsNameSanitizesAndPrefixes) {
  EXPECT_EQ(OpenMetricsName("serving/predict_us"),
            "deepsd_serving_predict_us");
  EXPECT_EQ(OpenMetricsName("weird-name.x"), "deepsd_weird_name_x");
}

TEST_F(ObsTimelineTest, OpenMetricsRendersAllThreeKinds) {
  registry_.GetCounter("om/events")->Inc(3);
  registry_.GetGauge("om/depth")->Set(1.5);
  Histogram* h = registry_.GetHistogram("om/lat", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);

  const std::string text = ToOpenMetrics(registry_.Snapshot());
  // Counter: _total on both the family header and the sample line.
  EXPECT_NE(text.find("# TYPE deepsd_om_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("deepsd_om_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# HELP deepsd_om_events_total"), std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE deepsd_om_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("deepsd_om_depth 1.5"), std::string::npos);
  // Histogram: cumulative buckets ending at +Inf, then _sum/_count.
  EXPECT_NE(text.find("# TYPE deepsd_om_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("deepsd_om_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("deepsd_om_lat_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("deepsd_om_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("deepsd_om_lat_count 3"), std::string::npos);
  // Document framing.
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST_F(ObsTimelineTest, OpenMetricsWriteCreatesFile) {
  registry_.GetCounter("om/file")->Inc();
  const std::string path = ::testing::TempDir() + "/metrics_test.txt";
  ASSERT_TRUE(WriteOpenMetrics(registry_.Snapshot(), path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ToOpenMetrics(registry_.Snapshot()));
  std::remove(path.c_str());
}

// ------------------------------------------------------------ HTTP export

TEST_F(ObsTimelineTest, HttpServerServesMetricsAndHealth) {
  registry_.GetCounter("http/hits")->Inc(9);
  MetricsHttpServer server(&registry_);
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_GT(server.port(), 0);

  std::string body;
  ASSERT_TRUE(MetricsHttpServer::Get(server.port(), "/metrics", &body).ok());
  EXPECT_NE(body.find("deepsd_http_hits_total 9"), std::string::npos);
  EXPECT_NE(body.find("# EOF"), std::string::npos);

  body.clear();
  ASSERT_TRUE(MetricsHttpServer::Get(server.port(), "/healthz", &body).ok());
  EXPECT_EQ(body, "ok\n");

  EXPECT_FALSE(MetricsHttpServer::Get(server.port(), "/nope", &body).ok());
  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
  EXPECT_FALSE(MetricsHttpServer::Get(server.port(), "/metrics", &body).ok());
}

TEST_F(ObsTimelineTest, HttpServerStopIsIdempotent) {
  MetricsHttpServer server(&registry_);
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();  // second stop must be a no-op, not a crash
}

}  // namespace
}  // namespace obs
}  // namespace deepsd
