#ifndef DEEPSD_EVAL_METRICS_H_
#define DEEPSD_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace deepsd {
namespace eval {

/// MAE / RMSE pair (paper Sec VI-A1).
struct Metrics {
  double mae = 0;
  double rmse = 0;
  size_t count = 0;
};

/// Computes MAE and RMSE of `predictions` against `targets`.
Metrics ComputeMetrics(const std::vector<float>& predictions,
                       const std::vector<float>& targets);

/// Metrics restricted to items with target gap <= threshold — the
/// evaluation sweep of paper Fig 10.
Metrics ComputeMetricsThresholded(const std::vector<float>& predictions,
                                  const std::vector<float>& targets,
                                  double threshold);

/// Relative improvement (a vs b) in percent: 100·(b − a)/b. Positive means
/// `a` is better (smaller error). Used for the "11.9% lower RMSE" claim.
double ImprovementPercent(double a, double b);

}  // namespace eval
}  // namespace deepsd

#endif  // DEEPSD_EVAL_METRICS_H_
