#ifndef DEEPSD_CORE_DEEPSD_CONFIG_H_
#define DEEPSD_CORE_DEEPSD_CONFIG_H_

namespace deepsd {
namespace core {

/// Hyperparameters of the DeepSD network. Defaults reproduce the paper's
/// setting (Table I embeddings, L = 20, FC64/FC32 blocks, projection to
/// R^16, dropout 0.5, LReL with slope 0.001).
struct DeepSDConfig {
  /// Look-back window L; must match the FeatureAssembler.
  int window = 20;

  /// Vocabulary of AreaID (number of areas, 58 in the paper's dataset).
  int num_areas = 58;
  int area_embed_dim = 8;   ///< Table I: R^58 → R^8.
  int time_vocab = 1440;    ///< One TimeID per minute.
  int time_embed_dim = 6;   ///< Table I: R^1440 → R^6.
  int week_embed_dim = 3;   ///< Table I: R^7 → R^3.
  int weather_vocab = 10;   ///< Weather types.
  int weather_embed_dim = 3;  ///< Table I: R^10 → R^3.

  /// Hidden widths of every block (paper: FC64 then FC32).
  int hidden1 = 64;
  int hidden2 = 32;
  /// Projection dimensionality in the extended blocks (paper Sec V-A2: 16).
  int proj_dim = 16;

  float dropout = 0.5f;       ///< After each block except identity.
  float leaky_alpha = 0.001f; ///< LReL slope (paper Sec VI-B2).

  /// Environment blocks (Fig 13 ablation cases A/B/C).
  bool use_weather = true;
  bool use_traffic = true;

  /// Advanced-mode order blocks (ablations beyond the paper's: quantify the
  /// passenger-information blocks' contribution individually).
  bool use_last_call = true;
  bool use_waiting_time = true;

  /// Replace the learnt softmax combining weights p (paper Eq. 1) with the
  /// uniform 1/7 vector — ablates the paper's claim that *learnt*
  /// day-of-week weighting beats naive averaging.
  bool uniform_weekday_weights = false;

  /// Residual connections between blocks (Table V ablation). When false the
  /// blocks are simply concatenated (paper Fig 14).
  bool use_residual = true;

  /// Embedding vs one-hot representation of categoricals (Table III
  /// ablation).
  bool use_embedding = true;

  /// Clamp predictions at zero (a gap is non-negative by definition).
  bool clamp_nonnegative = true;
};

}  // namespace core
}  // namespace deepsd

#endif  // DEEPSD_CORE_DEEPSD_CONFIG_H_
