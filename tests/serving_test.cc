#include "src/serving/online_predictor.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepsd {
namespace serving {
namespace {

constexpr int kL = 20;

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = deepsd::testing::MakeSmallCity(4, 12, 616);
    feature::FeatureConfig fc;
    assembler_ = std::make_unique<feature::FeatureAssembler>(&ds_, fc, 0, 10);
  }

  /// Replays everything the dataset knows about [t-L, t) of `day` into the
  /// buffer, mimicking a live feed.
  void Replay(OrderStreamBuffer* buffer, int day, int t) const {
    buffer->AdvanceTo(day, t > kL ? t - kL : 0);
    for (int ts = std::max(t - kL, 0); ts < t; ++ts) {
      for (int a = 0; a < ds_.num_areas(); ++a) {
        for (const data::Order& o : ds_.OrdersAt(a, day, ts)) {
          buffer->AddOrder(o);
        }
        data::TrafficRecord tr = ds_.TrafficAt(a, day, ts);
        tr.area = a;
        tr.day = day;
        tr.ts = ts;
        buffer->AddTraffic(tr);
      }
      data::WeatherRecord w = ds_.WeatherAt(day, ts);
      w.day = day;
      w.ts = ts;
      buffer->AddWeather(w);
    }
    buffer->AdvanceTo(day, t);
  }

  data::OrderDataset ds_;
  std::unique_ptr<feature::FeatureAssembler> assembler_;
};

TEST_F(ServingTest, BufferVectorsMatchOfflineDefinitions) {
  OrderStreamBuffer buffer(ds_.num_areas(), kL);
  const int day = 11, t = 900;
  Replay(&buffer, day, t);
  for (int a = 0; a < ds_.num_areas(); ++a) {
    EXPECT_EQ(buffer.SupplyDemandVector(a),
              feature::SupplyDemandVector(ds_, a, day, t, kL))
        << "area " << a;
    EXPECT_EQ(buffer.LastCallVector(a),
              feature::LastCallVector(ds_, a, day, t, kL));
    EXPECT_EQ(buffer.WaitingTimeVector(a),
              feature::WaitingTimeVector(ds_, a, day, t, kL));
  }
}

TEST_F(ServingTest, EvictionDropsExpiredCalls) {
  OrderStreamBuffer buffer(1, 5);
  data::Order o;
  o.day = 0;
  o.ts = 100;
  o.passenger_id = 1;
  o.start_area = 0;
  buffer.AdvanceTo(0, 100);
  buffer.AddOrder(o);
  buffer.AdvanceTo(0, 103);
  EXPECT_EQ(buffer.buffered_orders(), 1u);
  float sum = 0;
  for (float v : buffer.SupplyDemandVector(0)) sum += v;
  EXPECT_EQ(sum, 1.0f);
  buffer.AdvanceTo(0, 106);  // order now 6 minutes old, window 5
  EXPECT_EQ(buffer.buffered_orders(), 0u);
}

TEST_F(ServingTest, ClockNeverMovesBackward) {
  OrderStreamBuffer buffer(1, 5);
  buffer.AdvanceTo(2, 100);
  buffer.AdvanceTo(1, 500);  // ignored
  EXPECT_EQ(buffer.day(), 2);
  EXPECT_EQ(buffer.minute(), 100);
}

TEST_F(ServingTest, OutOfOrderArrivalsHandled) {
  OrderStreamBuffer buffer(1, 10);
  buffer.AdvanceTo(0, 100);
  data::Order a, b;
  a.day = b.day = 0;
  a.ts = 95;
  b.ts = 93;  // arrives after a but is older
  a.passenger_id = 1;
  b.passenger_id = 2;
  a.valid = b.valid = true;
  buffer.AddOrder(a);
  buffer.AddOrder(b);
  std::vector<float> v = buffer.SupplyDemandVector(0);
  EXPECT_EQ(v[100 - 95 - 1], 1.0f);
  EXPECT_EQ(v[100 - 93 - 1], 1.0f);
}

TEST_F(ServingTest, TooOldEventsIgnoredOnArrival) {
  OrderStreamBuffer buffer(1, 5);
  buffer.AdvanceTo(0, 100);
  data::Order o;
  o.day = 0;
  o.ts = 50;
  buffer.AddOrder(o);
  EXPECT_EQ(buffer.buffered_orders(), 0u);
}

TEST_F(ServingTest, LivePredictionsMatchOfflineBasic) {
  nn::ParameterStore store;
  util::Rng rng(1);
  core::DeepSDConfig config;
  config.num_areas = ds_.num_areas();
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &store,
                          &rng);

  OnlinePredictor predictor(&model, assembler_.get());
  const int day = 11, t = 700;
  Replay(&predictor.buffer(), day, t);

  std::vector<float> live = predictor.PredictAll();
  std::vector<feature::ModelInput> offline_inputs;
  for (int a = 0; a < ds_.num_areas(); ++a) {
    data::PredictionItem item;
    item.area = a;
    item.day = day;
    item.t = t;
    item.week_id = ds_.WeekId(day);
    offline_inputs.push_back(assembler_->AssembleBasic(item));
  }
  std::vector<float> offline = model.Predict(offline_inputs);
  ASSERT_EQ(live.size(), offline.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(live[i], offline[i], 1e-4) << "area " << i;
  }
}

TEST_F(ServingTest, LivePredictionsMatchOfflineAdvanced) {
  nn::ParameterStore store;
  util::Rng rng(2);
  core::DeepSDConfig config;
  config.num_areas = ds_.num_areas();
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kAdvanced, &store,
                          &rng);

  OnlinePredictor predictor(&model, assembler_.get());
  const int day = 10, t = 1100;  // outside the reference period
  Replay(&predictor.buffer(), day, t);

  std::vector<float> live = predictor.PredictAll();
  std::vector<feature::ModelInput> offline_inputs;
  for (int a = 0; a < ds_.num_areas(); ++a) {
    data::PredictionItem item;
    item.area = a;
    item.day = day;
    item.t = t;
    item.week_id = ds_.WeekId(day);
    offline_inputs.push_back(assembler_->AssembleAdvanced(item));
  }
  std::vector<float> offline = model.Predict(offline_inputs);
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(live[i], offline[i], 1e-4) << "area " << i;
  }
}

TEST_F(ServingTest, PredictSingleAreaMatchesBatch) {
  nn::ParameterStore store;
  util::Rng rng(3);
  core::DeepSDConfig config;
  config.num_areas = ds_.num_areas();
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &store,
                          &rng);
  OnlinePredictor predictor(&model, assembler_.get());
  Replay(&predictor.buffer(), 11, 800);
  std::vector<float> all = predictor.PredictAll();
  EXPECT_FLOAT_EQ(predictor.Predict(2), all[2]);
}

TEST_F(ServingTest, PredictBatchMatchesPredictAllSubset) {
  nn::ParameterStore store;
  util::Rng rng(4);
  core::DeepSDConfig config;
  config.num_areas = ds_.num_areas();
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &store,
                          &rng);
  OnlinePredictor predictor(&model, assembler_.get());
  Replay(&predictor.buffer(), 11, 820);
  std::vector<float> all = predictor.PredictAll();
  std::vector<int> areas = {2, 0, 3};
  std::vector<float> batch = predictor.PredictBatch(areas);
  ASSERT_EQ(batch.size(), areas.size());
  for (size_t i = 0; i < areas.size(); ++i) {
    EXPECT_EQ(batch[i], all[static_cast<size_t>(areas[i])]) << "slot " << i;
  }
  EXPECT_TRUE(predictor.PredictBatch({}).empty());
}

TEST_F(ServingTest, ConcurrentIngestAndSnapshotReaders) {
  // One writer advances the clock and feeds events while reader threads
  // hammer the snapshot accessors — the scenario the buffer's internal
  // mutex exists for. Run under TSAN in CI; here we assert the invariants
  // snapshots must keep even mid-ingestion.
  OrderStreamBuffer buffer(ds_.num_areas(), kL);
  buffer.AdvanceTo(11, 500);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        int area = r % ds_.num_areas();
        std::vector<float> sd = buffer.SupplyDemandVector(area);
        std::vector<float> lc = buffer.LastCallVector(area);
        std::vector<float> wt = buffer.WaitingTimeVector(area);
        if (sd.size() != 2 * static_cast<size_t>(kL) ||
            lc.size() != sd.size() || wt.size() != sd.size()) {
          violations.fetch_add(1);
        }
        // Each snapshot must be internally consistent (counts can never go
        // negative, whatever instant it was taken at). Cross-vector
        // comparisons are deliberately avoided: sd and lc are separate
        // snapshots and the writer may land between them.
        for (size_t i = 0; i < sd.size(); ++i) {
          if (sd[i] < 0 || lc[i] < 0 || wt[i] < 0) violations.fetch_add(1);
        }
        if (buffer.WeatherTypes().size() != static_cast<size_t>(kL)) {
          violations.fetch_add(1);
        }
        buffer.buffered_orders();
        buffer.TrafficVector(area);
      }
    });
  }

  for (int t = 500; t < 560; ++t) {
    for (int a = 0; a < ds_.num_areas(); ++a) {
      for (const data::Order& o : ds_.OrdersAt(a, 11, t)) {
        buffer.AddOrder(o);
      }
      data::TrafficRecord tr = ds_.TrafficAt(a, 11, t);
      tr.area = a;
      tr.day = 11;
      tr.ts = t;
      buffer.AddTraffic(tr);
    }
    data::WeatherRecord w = ds_.WeatherAt(11, t);
    w.day = 11;
    w.ts = t;
    buffer.AddWeather(w);
    buffer.AdvanceTo(11, t + 1);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
  // After the writer finished, snapshots must equal the offline truth.
  EXPECT_EQ(buffer.SupplyDemandVector(0),
            feature::SupplyDemandVector(ds_, 0, 11, 560, kL));
}

TEST_F(ServingTest, ConcurrentPredictCallers) {
  nn::ParameterStore store;
  util::Rng rng(5);
  core::DeepSDConfig config;
  config.num_areas = ds_.num_areas();
  core::DeepSDModel model(config, core::DeepSDModel::Mode::kBasic, &store,
                          &rng);
  OnlinePredictor predictor(&model, assembler_.get());
  Replay(&predictor.buffer(), 11, 700);

  std::vector<float> expected = predictor.PredictAll();
  std::vector<std::vector<float>> got(4);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < got.size(); ++c) {
    callers.emplace_back([&, c] { got[c] = predictor.PredictAll(); });
  }
  for (auto& th : callers) th.join();
  for (size_t c = 0; c < got.size(); ++c) {
    EXPECT_EQ(got[c], expected) << "caller " << c;
  }
}

}  // namespace
}  // namespace serving
}  // namespace deepsd
