#include "serving/order_stream.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace deepsd {
namespace serving {

OrderStreamBuffer::OrderStreamBuffer(int num_areas, int window)
    : num_areas_(num_areas), window_(window) {
  DEEPSD_CHECK(num_areas > 0);
  DEEPSD_CHECK(window > 0);
  calls_.resize(static_cast<size_t>(num_areas));
  weather_.resize(static_cast<size_t>(window));
  weather_ts_.assign(static_cast<size_t>(window), -1);
  traffic_.resize(static_cast<size_t>(num_areas) * window);
  traffic_ts_.assign(static_cast<size_t>(num_areas) * window, -1);
}

void OrderStreamBuffer::AdvanceTo(int day, int minute) {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/advance_to_us");
  static obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("serving/buffered_orders");
  DEEPSD_SPAN("serving/advance_to", latency_us);
  int64_t target = static_cast<int64_t>(day) * data::kMinutesPerDay + minute;
  std::lock_guard<std::mutex> lock(mu_);
  if (target <= now_abs_.load(std::memory_order_relaxed)) return;
  now_abs_.store(target, std::memory_order_release);
  Evict();
  if (obs::Enabled()) {
    depth->Set(static_cast<double>(BufferedOrdersLocked()));
  }
}

void OrderStreamBuffer::Evict() {
  int64_t cutoff = now_abs_.load(std::memory_order_relaxed) - window_;
  for (auto& area_calls : calls_) {
    while (!area_calls.empty() && area_calls.front().ts_abs < cutoff) {
      area_calls.pop_front();
    }
  }
}

void OrderStreamBuffer::AddOrder(const data::Order& order) {
  static obs::Histogram* latency_us =
      obs::MetricsRegistry::Global().GetHistogram("serving/add_order_us");
  static obs::Counter* ingested =
      obs::MetricsRegistry::Global().GetCounter("serving/orders_ingested");
  DEEPSD_SPAN("serving/add_order", latency_us);
  ingested->Inc();
  DEEPSD_CHECK(order.start_area >= 0 && order.start_area < num_areas_);
  int64_t ts_abs =
      static_cast<int64_t>(order.day) * data::kMinutesPerDay + order.ts;
  std::lock_guard<std::mutex> lock(mu_);
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) {
    return;  // too old to matter
  }
  auto& area_calls = calls_[static_cast<size_t>(order.start_area)];
  Call call{ts_abs, order.passenger_id, order.valid};
  // Common case: in-order append; otherwise insert to keep ts ascending.
  if (area_calls.empty() || area_calls.back().ts_abs <= ts_abs) {
    area_calls.push_back(call);
  } else {
    auto pos = std::upper_bound(
        area_calls.begin(), area_calls.end(), call,
        [](const Call& a, const Call& b) { return a.ts_abs < b.ts_abs; });
    area_calls.insert(pos, call);
  }
}

void OrderStreamBuffer::AddWeather(const data::WeatherRecord& record) {
  int64_t ts_abs =
      static_cast<int64_t>(record.day) * data::kMinutesPerDay + record.ts;
  std::lock_guard<std::mutex> lock(mu_);
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) return;
  size_t slot = SlotIndex(ts_abs);
  weather_[slot].seen = true;
  weather_[slot].type = record.type;
  weather_[slot].temperature = record.temperature;
  weather_[slot].pm25 = record.pm25;
  weather_ts_[slot] = ts_abs;
}

void OrderStreamBuffer::AddTraffic(const data::TrafficRecord& record) {
  DEEPSD_CHECK(record.area >= 0 && record.area < num_areas_);
  int64_t ts_abs =
      static_cast<int64_t>(record.day) * data::kMinutesPerDay + record.ts;
  std::lock_guard<std::mutex> lock(mu_);
  if (ts_abs < now_abs_.load(std::memory_order_relaxed) - window_) return;
  size_t slot =
      static_cast<size_t>(record.area) * window_ + SlotIndex(ts_abs);
  traffic_[slot].seen = true;
  std::copy(record.level_counts,
            record.level_counts + data::kCongestionLevels,
            traffic_[slot].level_counts);
  traffic_ts_[slot] = ts_abs;
}

std::vector<float> OrderStreamBuffer::SupplyDemandVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    int l = static_cast<int>(now - call.ts_abs);  // in [1, window]
    size_t idx = static_cast<size_t>(call.valid ? l - 1 : window_ + l - 1);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<float> OrderStreamBuffer::LastCallVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  std::map<int32_t, const Call*> last;
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    auto [it, inserted] = last.emplace(call.pid, &call);
    if (!inserted && call.ts_abs >= it->second->ts_abs) it->second = &call;
  }
  for (auto& [pid, call] : last) {
    int l = static_cast<int>(now - call->ts_abs);
    size_t idx = static_cast<size_t>(call->valid ? l - 1 : window_ + l - 1);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<float> OrderStreamBuffer::WaitingTimeVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<float> v(2 * static_cast<size_t>(window_), 0.0f);
  struct Episode {
    int64_t first;
    int64_t last;
    bool last_valid;
  };
  std::map<int32_t, Episode> episodes;
  for (const Call& call : calls_[static_cast<size_t>(area)]) {
    if (!InWindow(call.ts_abs)) continue;
    auto [it, inserted] =
        episodes.emplace(call.pid, Episode{call.ts_abs, call.ts_abs, call.valid});
    if (!inserted) {
      it->second.first = std::min(it->second.first, call.ts_abs);
      if (call.ts_abs >= it->second.last) {
        it->second.last = call.ts_abs;
        it->second.last_valid = call.valid;
      }
    }
  }
  for (auto& [pid, e] : episodes) {
    int wait = static_cast<int>(e.last - e.first);
    if (wait < 0 || wait >= window_) continue;
    size_t idx = static_cast<size_t>(e.last_valid ? wait : window_ + wait);
    v[idx] += 1.0f;
  }
  return v;
}

std::vector<int> OrderStreamBuffer::WeatherTypes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(window_));
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    out.push_back(fresh ? weather_[slot].type : 0);
  }
  return out;
}

std::vector<float> OrderStreamBuffer::WeatherReals() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> temps, pms;
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0 ? SlotIndex(ts) : 0;
    bool fresh = ts >= 0 && weather_[slot].seen && weather_ts_[slot] == ts;
    temps.push_back(fresh ? weather_[slot].temperature : 0.0f);
    pms.push_back(fresh ? weather_[slot].pm25 : 0.0f);
  }
  temps.insert(temps.end(), pms.begin(), pms.end());
  return temps;
}

std::vector<float> OrderStreamBuffer::TrafficVector(int area) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_abs_.load(std::memory_order_relaxed);
  std::vector<float> out;
  out.reserve(static_cast<size_t>(data::kCongestionLevels) * window_);
  for (int l = 1; l <= window_; ++l) {
    int64_t ts = now - l;
    size_t slot = ts >= 0
                      ? static_cast<size_t>(area) * window_ + SlotIndex(ts)
                      : 0;
    bool fresh = ts >= 0 && traffic_[slot].seen && traffic_ts_[slot] == ts;
    for (int level = 0; level < data::kCongestionLevels; ++level) {
      out.push_back(fresh ? static_cast<float>(
                                traffic_[slot].level_counts[level])
                          : 0.0f);
    }
  }
  return out;
}

size_t OrderStreamBuffer::buffered_orders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BufferedOrdersLocked();
}

size_t OrderStreamBuffer::BufferedOrdersLocked() const {
  size_t n = 0;
  for (const auto& area_calls : calls_) n += area_calls.size();
  return n;
}

}  // namespace serving
}  // namespace deepsd
